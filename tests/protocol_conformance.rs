//! Conformance suite for the pluggable `ProtocolEngine` layer and the
//! backend-agnostic `Frontend` surface.
//!
//! The same read/write/commit script runs against all seven built-in
//! engines (eventual, RC, MAV, RAMP-Fast, RAMP-Small, master, 2PL) —
//! through the *simulator* frontend and through the *threaded* frontend
//! — and each recorded history is checked against the per-level anomaly
//! expectations from `hat-history` (Table 3's advertised guarantees,
//! plus the RAMP follow-up's Read Atomic row). The script is written
//! once, against `impl Frontend`, which is the point: HAT guarantees
//! are client-observable properties independent of the execution
//! substrate.
//!
//! The suite also proves the engine layer is actually pluggable: a stub
//! extra engine, defined entirely in this test file, drives the full
//! stack through `DeploymentBuilder::engine_factory` — no edits to
//! `server.rs` (or any other crate) required.

use hatdb::core::protocol::ProtocolEngine;
use hatdb::core::{
    ClusterSpec, DeploymentBuilder, ProtocolKind, SessionLevel, SessionOptions, TxnRecord,
};
use hatdb::history::{check, IsolationLevel};
use hatdb::sim::{Partition, PartitionSchedule, SimDuration, SimTime};
use hatdb::{BuildThreaded, Frontend, RuntimeConfig, Session};

/// The shared conformance script: several sessions interleave multi-key
/// read-modify-write transactions and repeat reads over a small hot
/// keyspace, with replication delays in between so readers observe mixed
/// staleness. Identical for every engine and every backend.
fn conformance_script<F: Frontend>(front: &mut F, sessions: &[Session]) -> Vec<TxnRecord> {
    for round in 0..5u32 {
        for (ci, s) in sessions.iter().enumerate() {
            let a = format!("item{}", (round as usize + ci) % 4);
            let b = format!("item{}", (round as usize + ci + 1) % 4);
            front.txn(s, |t| {
                let _ = t.get(&a)?;
                t.put(&a, &format!("r{round}c{ci}a"))?;
                t.put(&b, &format!("r{round}c{ci}b"))
            });
            front.run_for(SimDuration::from_millis(9));
            front.txn(s, |t| {
                let _ = t.get(&b)?;
                let _ = t.get(&a)?;
                let _ = t.get(&b)?; // repeat read (cut-isolation probe)
                Ok(())
            });
        }
        front.run_for(SimDuration::from_millis(11));
    }
    front.quiesce();
    front.take_records()
}

fn run_protocol_sim(protocol: ProtocolKind, seed: u64) -> Vec<TxnRecord> {
    let mut front = DeploymentBuilder::new(protocol)
        .seed(seed)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(2)
        .build();
    let sessions: Vec<Session> = (0..4)
        .map(|_| front.open_session(SessionOptions::default()))
        .collect();
    conformance_script(&mut front, &sessions)
}

fn run_protocol_threaded(protocol: ProtocolKind, seed: u64) -> Vec<TxnRecord> {
    // The threaded frontend scales its quiesce duration by the
    // runtime's `latency_scale`, so no config override is needed to
    // keep the wall-clock wait proportionate.
    let mut front = DeploymentBuilder::new(protocol)
        .seed(seed)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(2)
        .build_threaded(RuntimeConfig {
            latency_scale: 0.01,
            seed,
            ..RuntimeConfig::default()
        });
    let sessions: Vec<Session> = (0..4)
        .map(|_| front.open_session(SessionOptions::default()))
        .collect();
    let records = conformance_script(&mut front, &sessions);
    front.shutdown();
    records
}

/// The anomaly expectation for each engine: the strongest isolation
/// level (in hat-history's phenomenon terms) the engine's histories must
/// be clean at, per Table 3 (plus the RAMP follow-up's RA row).
fn expected_level(protocol: ProtocolKind, threaded: bool) -> IsolationLevel {
    match protocol {
        ProtocolKind::Eventual => IsolationLevel::ReadUncommitted,
        ProtocolKind::ReadCommitted => IsolationLevel::ReadCommitted,
        ProtocolKind::Mav => IsolationLevel::MonotonicAtomicView,
        // RAMP-Fast advertises Read Atomic outright: write-set metadata
        // lets interactive reads repair fractures in both directions.
        ProtocolKind::RampFast => IsolationLevel::ReadAtomic,
        // Interactive (sequential) RAMP-Small repairs only forward — its
        // constant-size metadata cannot name what an *earlier* read
        // missed — so its unconditional guarantee is the order-aware
        // atomic view; full RA needs one-shot reads (`get_many`, proven
        // in tests/isolation_guarantees.rs). The deterministic sim runs
        // at these pinned seeds are fully RA-clean and we assert that;
        // the real-time threaded runs assert the unconditional level.
        ProtocolKind::RampSmall => {
            if threaded {
                IsolationLevel::MonotonicAtomicView
            } else {
                IsolationLevel::ReadAtomic
            }
        }
        // Per-key masters linearize single-key access, but multi-key
        // transactions neither serialize nor buffer writes until commit
        // (op-time puts are visible early), so Read Uncommitted is the
        // honest cross-key isolation claim.
        ProtocolKind::Master => IsolationLevel::ReadUncommitted,
        ProtocolKind::TwoPhaseLocking => IsolationLevel::Serializable,
    }
}

#[test]
fn all_engines_meet_their_advertised_level() {
    for protocol in ProtocolKind::ALL {
        for seed in [21u64, 22] {
            let records = run_protocol_sim(protocol, seed);
            assert!(
                records.iter().filter(|r| r.committed()).count() >= 30,
                "{protocol:?} seed {seed}: too few committed txns"
            );
            let level = expected_level(protocol, false);
            let report = check(records, level);
            assert!(
                report.ok(),
                "{protocol:?} seed {seed} violates {level:?}: {report}"
            );
        }
    }
}

/// Acceptance: the *same* script, through the threaded frontend, for
/// every engine — interactive operations injected into client threads
/// over command channels, checked by the same anomaly checker.
#[test]
fn all_engines_conform_on_the_threaded_frontend() {
    for protocol in ProtocolKind::ALL {
        let records = run_protocol_threaded(protocol, 23);
        assert!(
            records.iter().filter(|r| r.committed()).count() >= 30,
            "{protocol:?} threaded: too few committed txns"
        );
        let level = expected_level(protocol, true);
        let report = check(records, level);
        assert!(
            report.ok(),
            "{protocol:?} threaded violates {level:?}: {report}"
        );
    }
}

/// Engines stronger than Read Uncommitted must also be clean at every
/// weaker level they dominate (the Figure 2 partial order is downward
/// closed over prohibited phenomena).
#[test]
fn stronger_engines_are_clean_at_weaker_levels() {
    let records = run_protocol_sim(ProtocolKind::TwoPhaseLocking, 23);
    for level in [
        IsolationLevel::ReadUncommitted,
        IsolationLevel::ReadCommitted,
        IsolationLevel::MonotonicAtomicView,
        IsolationLevel::Serializable,
    ] {
        let report = check(records.clone(), level);
        assert!(report.ok(), "2PL violates {level:?}: {report}");
    }
    let records = run_protocol_sim(ProtocolKind::Mav, 24);
    for level in [
        IsolationLevel::ReadUncommitted,
        IsolationLevel::ReadCommitted,
        IsolationLevel::MonotonicAtomicView,
    ] {
        let report = check(records.clone(), level);
        assert!(report.ok(), "MAV violates {level:?}: {report}");
    }
    // Read Atomic dominates MAV (Figure 2 extension): RAMP-Fast
    // histories are clean at every weaker level too.
    let records = run_protocol_sim(ProtocolKind::RampFast, 25);
    for level in [
        IsolationLevel::ReadUncommitted,
        IsolationLevel::ReadCommitted,
        IsolationLevel::MonotonicAtomicView,
        IsolationLevel::ReadAtomic,
    ] {
        let report = check(records.clone(), level);
        assert!(report.ok(), "RAMP-F violates {level:?}: {report}");
    }
}

/// The negative control: the conformance harness is not vacuous. The
/// `eventual` engine's unbuffered writes produce histories that fail
/// Read Committed under enough interleaving (intermediate reads), so a
/// wrong engine-to-level pairing would be caught.
#[test]
fn harness_detects_level_mismatches() {
    let mut any_violation = false;
    for seed in 0..30u64 {
        let records = run_protocol_sim(ProtocolKind::Eventual, 400 + seed);
        if !check(records, IsolationLevel::Serializable).ok() {
            any_violation = true;
            break;
        }
    }
    assert!(
        any_violation,
        "eventual histories should not pass a serializability check"
    );
}

/// Strict determinism (ROADMAP): with all protocol state in ordered
/// collections, two same-seed runs produce bit-identical histories for
/// every engine — including the RAMP pair, whose floors, observed-stamp
/// sets and parked fetches all live in ordered collections — no
/// `HashMap` iteration order leaks into the schedule.
#[test]
fn same_seed_runs_are_bit_identical() {
    for protocol in ProtocolKind::ALL {
        let a = run_protocol_sim(protocol, 77);
        let b = run_protocol_sim(protocol, 77);
        assert_eq!(a, b, "{protocol:?}: same-seed runs diverged");
    }
}

// ---------------------------------------------------------------------
// Per-session options: one deployment, differently-configured sessions.
// ---------------------------------------------------------------------

/// §5.1.3's contrast inside a *single* deployment: a sticky causal
/// session keeps read-your-writes while a concurrently running
/// non-sticky no-guarantee session demonstrably loses it. Only
/// expressible now that `SessionOptions` are per-session rather than
/// builder-global.
#[test]
fn mixed_sessions_sticky_causal_keeps_ryw_non_sticky_loses_it() {
    let mut non_sticky_missed = false;
    for seed in 0..20u64 {
        // Server-only partition: sessions can reach both clusters but
        // the clusters cannot replicate to each other.
        let probe = DeploymentBuilder::new(ProtocolKind::Eventual)
            .seed(500 + seed)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(1)
            .build();
        let side_a: Vec<u32> = probe.layout().servers[0].clone();
        let side_b: Vec<u32> = probe.layout().servers[1].clone();
        drop(probe);

        let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
            .seed(500 + seed)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(1)
            .partitions(PartitionSchedule::from_partitions(vec![
                Partition::forever(SimTime::ZERO, side_a, side_b),
            ]))
            .build();
        // One deployment, two sessions with different options:
        let sticky = front.open_session(SessionOptions {
            level: SessionLevel::Causal,
            sticky: true,
        });
        let bouncy = front.open_session(SessionOptions {
            level: SessionLevel::None,
            sticky: false,
        });
        assert_ne!(sticky.options(), bouncy.options());

        for i in 0..8 {
            // The sticky causal session always reads its own writes.
            let k = format!("s{seed}:{i}");
            front.txn(&sticky, |t| t.put(&k, "mine"));
            let v = front.txn(&sticky, |t| t.get(&k));
            assert_eq!(v.as_deref(), Some("mine"), "sticky causal RYW must hold");

            // The non-sticky session writes into whichever cluster the
            // load balancer picked; a later read may land on the other,
            // partitioned side and miss the write.
            let k = format!("b{seed}:{i}");
            if front.try_txn(&bouncy, |t| t.put(&k, "mine")).is_err() {
                continue;
            }
            if let Ok(v) = front.try_txn(&bouncy, |t| t.get(&k)) {
                if v.is_none() {
                    non_sticky_missed = true;
                }
            }
        }
        if non_sticky_missed {
            break;
        }
    }
    assert!(
        non_sticky_missed,
        "the §5.1.3 non-sticky RYW violation should appear in a mixed deployment"
    );
}

/// The same mixed-session deployment works on the threaded frontend: two
/// concurrently open sessions with different options, both committing,
/// with the sticky monotonic one reading its own writes back.
#[test]
fn threaded_deployment_hosts_mixed_sessions() {
    let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
        .seed(9)
        .clusters(ClusterSpec::single_dc(2, 2))
        .sessions_per_cluster(1)
        .build_threaded(RuntimeConfig::default());
    let sticky = front.open_session(SessionOptions {
        level: SessionLevel::Monotonic,
        sticky: true,
    });
    let bouncy = front.open_session(SessionOptions {
        level: SessionLevel::None,
        sticky: false,
    });
    assert_ne!(sticky.options(), bouncy.options());
    for i in 0..5 {
        let k = format!("k{i}");
        front.txn(&sticky, |t| t.put(&k, "v"));
        assert_eq!(
            front.txn(&sticky, |t| t.get(&k)).as_deref(),
            Some("v"),
            "sticky monotonic session reads its own writes"
        );
        front.txn(&bouncy, |t| t.put(&format!("b{i}"), "v"));
    }
    let (_, metrics, _) = front.shutdown();
    assert_eq!(metrics.committed, 15);
}

// ---------------------------------------------------------------------
// Pluggability: a sixth engine, defined here, with zero server edits.
// ---------------------------------------------------------------------

/// A stub sixth engine: protocol-wise identical to `eventual` (every
/// hook is the trait default), but a distinct type with a distinct name,
/// injected through the builder. If `Server` still branched on
/// `ProtocolKind`, this engine could not exist without editing it.
#[derive(Debug, Default)]
struct StubSixthEngine;

impl ProtocolEngine for StubSixthEngine {
    fn name(&self) -> &'static str {
        "stub-v6"
    }
}

#[test]
fn stub_sixth_engine_plugs_in_without_server_changes() {
    let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
        .seed(31)
        .clusters(ClusterSpec::single_dc(2, 2))
        .sessions_per_cluster(1)
        .engine_factory(|| Box::new(StubSixthEngine))
        .build();

    // Every server runs the injected engine.
    let server_ids: Vec<u32> = front.layout().servers.iter().flatten().copied().collect();
    for id in server_ids {
        let name = front
            .engine()
            .actor(id)
            .as_server()
            .expect("server node")
            .engine_name();
        assert_eq!(name, "stub-v6");
    }

    // And the full transaction path works through it.
    let s0 = front.open_session(SessionOptions::default());
    let s1 = front.open_session(SessionOptions::default());
    front.txn(&s0, |t| t.put("greeting", "from the sixth engine"));
    front.quiesce();
    let v = front.txn(&s1, |t| t.get("greeting"));
    assert_eq!(v.as_deref(), Some("from the sixth engine"));

    let records = front.take_records();
    let report = check(records, IsolationLevel::ReadUncommitted);
    assert!(report.ok(), "{report}");
}
