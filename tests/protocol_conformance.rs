//! Conformance suite for the pluggable `ProtocolEngine` layer: the same
//! read/write/commit script runs against all five built-in engines, and
//! each recorded history is checked against the per-level anomaly
//! expectations from `hat-history` (Table 3's advertised guarantees).
//!
//! The suite also proves the layer is actually pluggable: a stub sixth
//! engine, defined entirely in this test file, drives the full stack
//! through `SimulationBuilder::engine_factory` — no edits to `server.rs`
//! (or any other crate) required.

use hatdb::core::protocol::ProtocolEngine;
use hatdb::core::{ClusterSpec, ProtocolKind, SessionOptions, SimulationBuilder, TxnRecord};
use hatdb::history::{check, IsolationLevel};
use hatdb::sim::SimDuration;

/// The shared conformance script: several clients interleave multi-key
/// read-modify-write transactions and repeat reads over a small hot
/// keyspace, with replication delays in between so readers observe mixed
/// staleness. Identical for every engine.
fn conformance_script(sim: &mut hatdb::core::Sim) -> Vec<TxnRecord> {
    let clients: Vec<_> = (0..sim.num_clients()).map(|i| sim.client(i)).collect();
    for round in 0..5u32 {
        for (ci, &c) in clients.iter().enumerate() {
            let a = format!("item{}", (round as usize + ci) % 4);
            let b = format!("item{}", (round as usize + ci + 1) % 4);
            sim.txn(c, |t| {
                let _ = t.get(&a);
                t.put(&a, &format!("r{round}c{ci}a"));
                t.put(&b, &format!("r{round}c{ci}b"));
            });
            sim.run_for(SimDuration::from_millis(9));
            sim.txn(c, |t| {
                let _ = t.get(&b);
                let _ = t.get(&a);
                let _ = t.get(&b); // repeat read (cut-isolation probe)
            });
        }
        sim.run_for(SimDuration::from_millis(11));
    }
    sim.settle();
    sim.take_records()
}

fn run_protocol(protocol: ProtocolKind, seed: u64) -> Vec<TxnRecord> {
    let mut sim = SimulationBuilder::new(protocol)
        .seed(seed)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(2)
        .session(SessionOptions::default())
        .build();
    conformance_script(&mut sim)
}

/// The anomaly expectation for each engine: the strongest isolation
/// level (in hat-history's phenomenon terms) the engine's histories must
/// be clean at, per Table 3.
fn expected_level(protocol: ProtocolKind) -> IsolationLevel {
    match protocol {
        ProtocolKind::Eventual => IsolationLevel::ReadUncommitted,
        ProtocolKind::ReadCommitted => IsolationLevel::ReadCommitted,
        ProtocolKind::Mav => IsolationLevel::MonotonicAtomicView,
        // Per-key masters linearize single-key access, but multi-key
        // transactions neither serialize nor buffer writes until commit
        // (op-time puts are visible early), so Read Uncommitted is the
        // honest cross-key isolation claim.
        ProtocolKind::Master => IsolationLevel::ReadUncommitted,
        ProtocolKind::TwoPhaseLocking => IsolationLevel::Serializable,
    }
}

#[test]
fn all_five_engines_meet_their_advertised_level() {
    for protocol in ProtocolKind::ALL {
        for seed in [21u64, 22] {
            let records = run_protocol(protocol, seed);
            assert!(
                records.iter().filter(|r| r.committed()).count() >= 30,
                "{protocol:?} seed {seed}: too few committed txns"
            );
            let level = expected_level(protocol);
            let report = check(records, level);
            assert!(
                report.ok(),
                "{protocol:?} seed {seed} violates {level:?}: {report}"
            );
        }
    }
}

/// Engines stronger than Read Uncommitted must also be clean at every
/// weaker level they dominate (the Figure 2 partial order is downward
/// closed over prohibited phenomena).
#[test]
fn stronger_engines_are_clean_at_weaker_levels() {
    let records = run_protocol(ProtocolKind::TwoPhaseLocking, 23);
    for level in [
        IsolationLevel::ReadUncommitted,
        IsolationLevel::ReadCommitted,
        IsolationLevel::MonotonicAtomicView,
        IsolationLevel::Serializable,
    ] {
        let report = check(records.clone(), level);
        assert!(report.ok(), "2PL violates {level:?}: {report}");
    }
    let records = run_protocol(ProtocolKind::Mav, 24);
    for level in [
        IsolationLevel::ReadUncommitted,
        IsolationLevel::ReadCommitted,
        IsolationLevel::MonotonicAtomicView,
    ] {
        let report = check(records.clone(), level);
        assert!(report.ok(), "MAV violates {level:?}: {report}");
    }
}

/// The negative control: the conformance harness is not vacuous. The
/// `eventual` engine's unbuffered writes produce histories that fail
/// Read Committed under enough interleaving (intermediate reads), so a
/// wrong engine-to-level pairing would be caught.
#[test]
fn harness_detects_level_mismatches() {
    let mut any_violation = false;
    for seed in 0..30u64 {
        let records = run_protocol(ProtocolKind::Eventual, 400 + seed);
        if !check(records, IsolationLevel::Serializable).ok() {
            any_violation = true;
            break;
        }
    }
    assert!(
        any_violation,
        "eventual histories should not pass a serializability check"
    );
}

// ---------------------------------------------------------------------
// Pluggability: a sixth engine, defined here, with zero server edits.
// ---------------------------------------------------------------------

/// A stub sixth engine: protocol-wise identical to `eventual` (every
/// hook is the trait default), but a distinct type with a distinct name,
/// injected through the builder. If `Server` still branched on
/// `ProtocolKind`, this engine could not exist without editing it.
#[derive(Debug, Default)]
struct StubSixthEngine;

impl ProtocolEngine for StubSixthEngine {
    fn name(&self) -> &'static str {
        "stub-v6"
    }
}

#[test]
fn stub_sixth_engine_plugs_in_without_server_changes() {
    let mut sim = SimulationBuilder::new(ProtocolKind::Eventual)
        .seed(31)
        .clusters(ClusterSpec::single_dc(2, 2))
        .clients_per_cluster(1)
        .engine_factory(|| Box::new(StubSixthEngine))
        .build();

    // Every server runs the injected engine.
    let server_ids: Vec<u32> = sim.layout().servers.iter().flatten().copied().collect();
    for id in server_ids {
        let name = sim
            .engine()
            .actor(id)
            .as_server()
            .expect("server node")
            .engine_name();
        assert_eq!(name, "stub-v6");
    }

    // And the full transaction path works through it.
    let c0 = sim.client(0);
    let c1 = sim.client(1);
    sim.txn(c0, |t| t.put("greeting", "from the sixth engine"));
    sim.settle();
    let v = sim.txn(c1, |t| t.get("greeting"));
    assert_eq!(v.as_deref(), Some("from the sixth engine"));

    let records = sim.take_records();
    let report = check(records, IsolationLevel::ReadUncommitted);
    assert!(report.ok(), "{report}");
}
