//! Property-based tests over the core data structures and invariants.

use bytes::Bytes;
use hatdb::core::taxonomy::{Model, Taxonomy};
use hatdb::storage::{Key, Memtable, Record, VersionStamp};
use hatdb::storage::{Wal, WalEntry};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = Key> {
    "[a-z]{1,8}".prop_map(|s| Key::from(s.into_bytes()))
}

fn arb_stamp() -> impl Strategy<Value = VersionStamp> {
    (1u64..1000, 1u32..16).prop_map(|(seq, writer)| VersionStamp::new(seq, writer))
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        arb_stamp(),
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec(arb_key(), 0..4),
    )
        .prop_map(|(stamp, value, siblings)| Record::with_siblings(stamp, value, siblings))
}

proptest! {
    /// WAL entries round-trip byte-exactly through encode/decode.
    #[test]
    fn wal_entry_round_trips(key in arb_key(), record in arb_record()) {
        let entry = WalEntry::Put { key, record };
        let encoded = hatdb::storage::wal::encode_entry(&entry);
        prop_assert_eq!(hatdb::storage::wal::decode_entry(&encoded), Some(entry));
    }

    /// The memtable's latest() always agrees with a naive reference
    /// model (BTreeMap keyed by (key, stamp)).
    #[test]
    fn memtable_matches_reference_model(
        ops in proptest::collection::vec((arb_key(), arb_record()), 1..80)
    ) {
        let mut table = Memtable::new();
        let mut reference: std::collections::BTreeMap<(Key, VersionStamp), Bytes> =
            Default::default();
        for (key, record) in &ops {
            table.insert(key.clone(), record.clone());
            reference.insert((key.clone(), record.stamp), record.value.clone());
        }
        // latest per key must match the reference max stamp
        let keys: std::collections::BTreeSet<&Key> = ops.iter().map(|(k, _)| k).collect();
        for key in keys {
            let expect = reference
                .range((key.clone(), VersionStamp::new(0, 0))..=(key.clone(), VersionStamp::new(u64::MAX, u32::MAX)))
                .next_back()
                .map(|((_, s), v)| (*s, v.clone()));
            let got = table.latest(key).map(|r| (r.stamp, r.value.clone()));
            prop_assert_eq!(got, expect);
        }
    }

    /// Snapshot reads never return a version above the bound, and return
    /// the newest at-or-below one.
    #[test]
    fn snapshot_reads_respect_bound(
        ops in proptest::collection::vec((arb_key(), arb_record()), 1..60),
        bound in arb_stamp()
    ) {
        let mut table = Memtable::new();
        for (key, record) in &ops {
            table.insert(key.clone(), record.clone());
        }
        for (key, _) in &ops {
            if let Some(r) = table.latest_at_or_below(key, bound) {
                prop_assert!(r.stamp <= bound);
                // nothing between r.stamp and bound exists
                for v in table.versions(key) {
                    prop_assert!(!(v.stamp > r.stamp && v.stamp <= bound));
                }
            } else {
                for v in table.versions(key) {
                    prop_assert!(v.stamp > bound);
                }
            }
        }
    }

    /// GC below a bound preserves every read at or above the bound.
    #[test]
    fn gc_preserves_snapshot_reads_at_bound(
        ops in proptest::collection::vec((arb_key(), arb_record()), 1..60),
        bound in arb_stamp()
    ) {
        let mut table = Memtable::new();
        for (key, record) in &ops {
            table.insert(key.clone(), record.clone());
        }
        let before: Vec<(Key, Option<VersionStamp>)> = ops
            .iter()
            .map(|(k, _)| (k.clone(), table.latest_at_or_below(k, bound).map(|r| r.stamp)))
            .collect();
        table.gc_below(bound);
        for (key, expect) in before {
            let got = table.latest_at_or_below(&key, bound).map(|r| r.stamp);
            prop_assert_eq!(got, expect);
        }
    }

    /// Taxonomy: strength is a strict partial order (irreflexive,
    /// antisymmetric, transitive) over the Figure 2 models.
    #[test]
    fn taxonomy_is_a_strict_partial_order(ai in 0usize..21, bi in 0usize..21, ci in 0usize..21) {
        let t = Taxonomy::new();
        let (a, b, c) = (Model::ALL[ai], Model::ALL[bi], Model::ALL[ci]);
        prop_assert!(!t.stronger_than(a, a), "irreflexive");
        if t.stronger_than(a, b) {
            prop_assert!(!t.stronger_than(b, a), "antisymmetric");
        }
        if t.stronger_than(a, b) && t.stronger_than(b, c) {
            prop_assert!(t.stronger_than(a, c), "transitive");
        }
    }

    /// Version stamps order totally and agree with tuple ordering.
    #[test]
    fn stamps_order_like_tuples(a in arb_stamp(), b in arb_stamp()) {
        prop_assert_eq!(a.cmp(&b), (a.seq, a.writer).cmp(&(b.seq, b.writer)));
    }
}

/// Crash-recovery property (non-proptest loop: file I/O is slow): for a
/// range of truncation points, WAL replay returns a prefix of the
/// appended entries, never garbage.
#[test]
fn wal_recovery_yields_a_prefix_under_truncation() {
    let dir = std::env::temp_dir().join(format!("hat-prop-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wal");
    let entries: Vec<WalEntry> = (0..20u64)
        .map(|i| WalEntry::Put {
            key: Key::from(format!("k{i}")),
            record: Record::new(VersionStamp::new(i + 1, 1), Bytes::from(vec![i as u8; 8])),
        })
        .collect();
    {
        let mut wal = Wal::open(&path).unwrap();
        for e in &entries {
            wal.append(e).unwrap();
        }
        wal.sync().unwrap();
    }
    let full = std::fs::read(&path).unwrap();
    for cut in (0..full.len()).step_by(7) {
        std::fs::write(&path, &full[..cut]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert!(replayed.len() <= entries.len());
        assert_eq!(
            replayed.as_slice(),
            &entries[..replayed.len()],
            "prefix property violated at cut {cut}"
        );
    }
    std::fs::remove_dir_all(dir).unwrap();
}
