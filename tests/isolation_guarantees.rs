//! Cross-crate validation of Table 3: run real (simulated) workloads
//! under each protocol and check the recorded histories against the
//! Adya-style phenomena definitions. This is the executable form of the
//! paper's central claim — each HAT protocol provides exactly the
//! isolation level it advertises.

use hatdb::core::{
    ClusterSpec, ProtocolKind, SessionLevel, SessionOptions, SimulationBuilder, TxnRecord,
};
use hatdb::history::{check, IsolationLevel};
use hatdb::sim::SimDuration;

/// A mixed read/write workload over a small hot keyspace, driven through
/// the facade from several clients with replication delays in between.
fn workload(protocol: ProtocolKind, session: SessionOptions, seed: u64) -> Vec<TxnRecord> {
    let mut sim = SimulationBuilder::new(protocol)
        .seed(seed)
        .clusters(ClusterSpec::va_or(3))
        .clients_per_cluster(2)
        .session(session)
        .build();
    let clients: Vec<_> = (0..4).map(|i| sim.client(i)).collect();
    for round in 0..6u32 {
        for (ci, &c) in clients.iter().enumerate() {
            let a = format!("k{}", (round as usize + ci) % 5);
            let b = format!("k{}", (round as usize + ci + 1) % 5);
            sim.txn(c, |t| {
                let _ = t.get(&a);
                t.put(&a, &format!("{round}-{ci}-a"));
                t.put(&b, &format!("{round}-{ci}-b"));
            });
            // interleave with replication so readers see mixed staleness
            sim.run_for(SimDuration::from_millis(7));
            sim.txn(c, |t| {
                let _ = t.get(&b);
                let _ = t.get(&a);
                let _ = t.get(&a);
            });
        }
        sim.run_for(SimDuration::from_millis(13));
    }
    sim.settle();
    sim.take_records()
}

fn sticky_none() -> SessionOptions {
    SessionOptions {
        level: SessionLevel::None,
        sticky: true,
    }
}

#[test]
fn read_committed_histories_are_rc_clean() {
    for seed in [1, 2, 3] {
        let records = workload(ProtocolKind::ReadCommitted, sticky_none(), seed);
        let report = check(records, IsolationLevel::ReadCommitted);
        assert!(report.ok(), "seed {seed}: {report}");
        assert!(report.txns_checked > 40);
    }
}

#[test]
fn eventual_histories_are_ru_clean() {
    for seed in [4, 5] {
        let records = workload(ProtocolKind::Eventual, sticky_none(), seed);
        let report = check(records, IsolationLevel::ReadUncommitted);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

#[test]
fn mav_histories_prohibit_otv() {
    for seed in [6, 7, 8] {
        let records = workload(ProtocolKind::Mav, sticky_none(), seed);
        let report = check(records, IsolationLevel::MonotonicAtomicView);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

#[test]
fn item_cut_sessions_prohibit_imp() {
    let session = SessionOptions {
        level: SessionLevel::ItemCut,
        sticky: true,
    };
    for seed in [9, 10] {
        let records = workload(ProtocolKind::ReadCommitted, session, seed);
        let report = check(records, IsolationLevel::ItemCutIsolation);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

#[test]
fn monotonic_sessions_give_pram_minus_wfr() {
    let session = SessionOptions {
        level: SessionLevel::Monotonic,
        sticky: true,
    };
    for seed in [11, 12] {
        let records = workload(ProtocolKind::Mav, session, seed);
        for level in [
            IsolationLevel::MonotonicReads,
            IsolationLevel::ReadYourWrites,
            IsolationLevel::MonotonicWrites,
            IsolationLevel::Pram,
        ] {
            let report = check(records.clone(), level);
            assert!(report.ok(), "seed {seed} {level:?}: {report}");
        }
    }
}

#[test]
fn causal_sessions_over_mav_are_causal_clean() {
    let session = SessionOptions {
        level: SessionLevel::Causal,
        sticky: true,
    };
    for seed in [13, 14] {
        let records = workload(ProtocolKind::Mav, session, seed);
        let report = check(records, IsolationLevel::Causal);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

#[test]
fn master_histories_are_serializable_for_single_key_txns() {
    // per-key linearizability: single-key read-modify-write transactions
    // through the master serialize (multi-key txns would not).
    let mut sim = SimulationBuilder::new(ProtocolKind::Master)
        .seed(15)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(2)
        .build();
    let clients: Vec<_> = (0..4).map(|i| sim.client(i)).collect();
    for round in 0..5u32 {
        for &c in &clients {
            let _ = round;
            sim.txn(c, |t| {
                let v: u64 = t.get("ctr").and_then(|s| s.parse().ok()).unwrap_or(0);
                t.put("ctr", &(v + 1).to_string());
            });
        }
    }
    let v = sim.txn(clients[0], |t| t.get("ctr"));
    assert_eq!(v.as_deref(), Some("20"), "no increments lost");
    let report = check(sim.take_records(), IsolationLevel::Serializable);
    assert!(report.ok(), "{report}");
}

#[test]
fn twopl_histories_are_fully_serializable() {
    let mut sim = SimulationBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(16)
        .clusters(ClusterSpec::single_dc(2, 2))
        .clients_per_cluster(2)
        .build();
    let clients: Vec<_> = (0..4).map(|i| sim.client(i)).collect();
    // multi-key read-modify-write transactions with overlapping keys
    for round in 0..4u32 {
        for (ci, &c) in clients.iter().enumerate() {
            let a = format!("k{}", (round as usize + ci) % 3);
            let b = format!("k{}", (round as usize + ci + 1) % 3);
            sim.txn(c, |t| {
                let va: u64 = t.get(&a).and_then(|s| s.parse().ok()).unwrap_or(0);
                let vb: u64 = t.get(&b).and_then(|s| s.parse().ok()).unwrap_or(0);
                t.put(&a, &(va + 1).to_string());
                t.put(&b, &(vb + 1).to_string());
            });
        }
    }
    let report = check(sim.take_records(), IsolationLevel::Serializable);
    assert!(report.ok(), "{report}");
}

/// Negative control: the checker is not vacuous — eventual's unbuffered
/// writes do violate Read Committed's prohibition on intermediate reads
/// when a transaction overwrites its own key mid-transaction and a
/// concurrent reader catches the intermediate version.
#[test]
fn eventual_violates_rc_given_intermediate_reads() {
    let mut found = false;
    for seed in 0..25u64 {
        let mut sim = SimulationBuilder::new(ProtocolKind::Eventual)
            .seed(100 + seed)
            .clusters(ClusterSpec::single_dc(2, 2))
            .clients_per_cluster(2)
            .build();
        let writer = sim.client(0);
        let reader = sim.client(1);
        // writer writes x twice in one txn (an intermediate version
        // exists server-side between the two puts)
        sim.engine_mut().with_actor_ctx(writer, |node, ctx| {
            let c = node.as_client_mut().unwrap();
            c.clear_finished();
            c.begin(ctx.now());
        });
        // first write goes out...
        sim.engine_mut().with_actor_ctx(writer, |node, ctx| {
            node.as_client_mut().unwrap().issue_write(
                ctx,
                "x".into(),
                bytes::Bytes::from("intermediate"),
            )
        });
        // ... reader races while the writer's txn is still open (wait
        // past an anti-entropy tick so the other cluster has the dirty
        // value too)
        sim.run_for(SimDuration::from_millis(15 + seed % 20));
        let v = sim.txn(reader, |t| t.get("x"));
        if v.as_deref() == Some("intermediate") {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "eventual (Read Uncommitted) should expose uncommitted data"
    );
}
