//! Cross-crate validation of Table 3: run real (simulated) workloads
//! under each protocol and check the recorded histories against the
//! Adya-style phenomena definitions. This is the executable form of the
//! paper's central claim — each HAT protocol provides exactly the
//! isolation level it advertises.

use hatdb::core::{
    ClusterSpec, DeploymentBuilder, ProtocolKind, SessionLevel, SessionOptions, TxnRecord,
};
use hatdb::history::{check, IsolationLevel};
use hatdb::sim::SimDuration;
use hatdb::{Frontend, Session};

/// A mixed read/write workload over a small hot keyspace, driven through
/// the frontend from several sessions with replication delays in between.
fn workload(protocol: ProtocolKind, session: SessionOptions, seed: u64) -> Vec<TxnRecord> {
    let mut front = DeploymentBuilder::new(protocol)
        .seed(seed)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(2)
        .build();
    let sessions: Vec<Session> = (0..4).map(|_| front.open_session(session)).collect();
    for round in 0..6u32 {
        for (ci, s) in sessions.iter().enumerate() {
            let a = format!("k{}", (round as usize + ci) % 5);
            let b = format!("k{}", (round as usize + ci + 1) % 5);
            front.txn(s, |t| {
                let _ = t.get(&a)?;
                t.put(&a, &format!("{round}-{ci}-a"))?;
                t.put(&b, &format!("{round}-{ci}-b"))
            });
            // interleave with replication so readers see mixed staleness
            front.run_for(SimDuration::from_millis(7));
            front.txn(s, |t| {
                let _ = t.get(&b)?;
                let _ = t.get(&a)?;
                let _ = t.get(&a)?;
                Ok(())
            });
        }
        front.run_for(SimDuration::from_millis(13));
    }
    front.quiesce();
    front.take_records()
}

fn sticky_none() -> SessionOptions {
    SessionOptions {
        level: SessionLevel::None,
        sticky: true,
    }
}

#[test]
fn read_committed_histories_are_rc_clean() {
    for seed in [1, 2, 3] {
        let records = workload(ProtocolKind::ReadCommitted, sticky_none(), seed);
        let report = check(records, IsolationLevel::ReadCommitted);
        assert!(report.ok(), "seed {seed}: {report}");
        assert!(report.txns_checked > 40);
    }
}

#[test]
fn eventual_histories_are_ru_clean() {
    for seed in [4, 5] {
        let records = workload(ProtocolKind::Eventual, sticky_none(), seed);
        let report = check(records, IsolationLevel::ReadUncommitted);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

#[test]
fn mav_histories_prohibit_otv() {
    for seed in [6, 7, 8] {
        let records = workload(ProtocolKind::Mav, sticky_none(), seed);
        let report = check(records, IsolationLevel::MonotonicAtomicView);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

#[test]
fn item_cut_sessions_prohibit_imp() {
    let session = SessionOptions {
        level: SessionLevel::ItemCut,
        sticky: true,
    };
    for seed in [9, 10] {
        let records = workload(ProtocolKind::ReadCommitted, session, seed);
        let report = check(records, IsolationLevel::ItemCutIsolation);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

#[test]
fn monotonic_sessions_give_pram_minus_wfr() {
    let session = SessionOptions {
        level: SessionLevel::Monotonic,
        sticky: true,
    };
    for seed in [11, 12] {
        let records = workload(ProtocolKind::Mav, session, seed);
        for level in [
            IsolationLevel::MonotonicReads,
            IsolationLevel::ReadYourWrites,
            IsolationLevel::MonotonicWrites,
            IsolationLevel::Pram,
        ] {
            let report = check(records.clone(), level);
            assert!(report.ok(), "seed {seed} {level:?}: {report}");
        }
    }
}

#[test]
fn causal_sessions_over_mav_are_causal_clean() {
    let session = SessionOptions {
        level: SessionLevel::Causal,
        sticky: true,
    };
    for seed in [13, 14] {
        let records = workload(ProtocolKind::Mav, session, seed);
        let report = check(records, IsolationLevel::Causal);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

#[test]
fn master_histories_are_serializable_for_single_key_txns() {
    // per-key linearizability: single-key read-modify-write transactions
    // through the master serialize (multi-key txns would not).
    let mut front = DeploymentBuilder::new(ProtocolKind::Master)
        .seed(15)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(2)
        .build();
    let sessions: Vec<Session> = (0..4)
        .map(|_| front.open_session(SessionOptions::default()))
        .collect();
    for _round in 0..5u32 {
        for s in &sessions {
            front.txn(s, |t| {
                let v: u64 = t.get("ctr")?.and_then(|s| s.parse().ok()).unwrap_or(0);
                t.put("ctr", &(v + 1).to_string())
            });
        }
    }
    let v = front.txn(&sessions[0], |t| t.get("ctr"));
    assert_eq!(v.as_deref(), Some("20"), "no increments lost");
    let report = check(front.take_records(), IsolationLevel::Serializable);
    assert!(report.ok(), "{report}");
}

#[test]
fn twopl_histories_are_fully_serializable() {
    let mut front = DeploymentBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(16)
        .clusters(ClusterSpec::single_dc(2, 2))
        .sessions_per_cluster(2)
        .build();
    let sessions: Vec<Session> = (0..4)
        .map(|_| front.open_session(SessionOptions::default()))
        .collect();
    // multi-key read-modify-write transactions with overlapping keys
    for round in 0..4u32 {
        for (ci, s) in sessions.iter().enumerate() {
            let a = format!("k{}", (round as usize + ci) % 3);
            let b = format!("k{}", (round as usize + ci + 1) % 3);
            front.txn(s, |t| {
                let va: u64 = t.get(&a)?.and_then(|s| s.parse().ok()).unwrap_or(0);
                let vb: u64 = t.get(&b)?.and_then(|s| s.parse().ok()).unwrap_or(0);
                t.put(&a, &(va + 1).to_string())?;
                t.put(&b, &(vb + 1).to_string())
            });
        }
    }
    let report = check(front.take_records(), IsolationLevel::Serializable);
    assert!(report.ok(), "{report}");
}

/// Negative control: the checker is not vacuous — eventual's unbuffered
/// writes do violate Read Committed's prohibition on intermediate reads
/// when a transaction overwrites its own key mid-transaction and a
/// concurrent reader catches the intermediate version.
#[test]
fn eventual_violates_rc_given_intermediate_reads() {
    let mut found = false;
    for seed in 0..25u64 {
        let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
            .seed(100 + seed)
            .clusters(ClusterSpec::single_dc(2, 2))
            .sessions_per_cluster(2)
            .build();
        let _writer_session = front.open_session(SessionOptions::default());
        let reader = front.open_session(SessionOptions::default());
        let writer = front.client(0);
        // writer writes x twice in one txn (an intermediate version
        // exists server-side between the two puts)
        front.engine_mut().with_actor_ctx(writer, |node, ctx| {
            let c = node.as_client_mut().unwrap();
            c.clear_finished();
            c.begin(ctx.now());
        });
        // first write goes out...
        front.engine_mut().with_actor_ctx(writer, |node, ctx| {
            node.as_client_mut().unwrap().issue_write(
                ctx,
                "x".into(),
                bytes::Bytes::from("intermediate"),
            )
        });
        // ... reader races while the writer's txn is still open (wait
        // past an anti-entropy tick so the other cluster has the dirty
        // value too)
        front.run_for(SimDuration::from_millis(15 + seed % 20));
        let v = front.txn(&reader, |t| t.get("x"));
        if v.as_deref() == Some("intermediate") {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "eventual (Read Uncommitted) should expose uncommitted data"
    );
}
