//! Cross-crate validation of Table 3: run real (simulated) workloads
//! under each protocol and check the recorded histories against the
//! Adya-style phenomena definitions. This is the executable form of the
//! paper's central claim — each HAT protocol provides exactly the
//! isolation level it advertises.

use hatdb::core::{
    ClusterSpec, DeploymentBuilder, ProtocolKind, SessionLevel, SessionOptions, TxnRecord,
};
use hatdb::history::{check, IsolationLevel, Phenomenon};
use hatdb::sim::SimDuration;
use hatdb::{Frontend, Session};

/// The generic fractured-reads detector: RAMP Definition 2 violations
/// (a transaction observing a partial write-set), order-free over each
/// transaction's read set. Runs over any engine's recorded history.
fn fractured_reads(records: Vec<TxnRecord>) -> usize {
    check(records, IsolationLevel::ReadAtomic)
        .violations
        .into_iter()
        .filter(|v| v.phenomenon == Phenomenon::FracturedReads)
        .count()
}

/// A mixed read/write workload over a small hot keyspace, driven through
/// the frontend from several sessions with replication delays in between.
fn workload(protocol: ProtocolKind, session: SessionOptions, seed: u64) -> Vec<TxnRecord> {
    let mut front = DeploymentBuilder::new(protocol)
        .seed(seed)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(2)
        .build();
    let sessions: Vec<Session> = (0..4).map(|_| front.open_session(session)).collect();
    for round in 0..6u32 {
        for (ci, s) in sessions.iter().enumerate() {
            let a = format!("k{}", (round as usize + ci) % 5);
            let b = format!("k{}", (round as usize + ci + 1) % 5);
            front.txn(s, |t| {
                let _ = t.get(&a)?;
                t.put(&a, &format!("{round}-{ci}-a"))?;
                t.put(&b, &format!("{round}-{ci}-b"))
            });
            // interleave with replication so readers see mixed staleness
            front.run_for(SimDuration::from_millis(7));
            front.txn(s, |t| {
                let _ = t.get(&b)?;
                let _ = t.get(&a)?;
                let _ = t.get(&a)?;
                Ok(())
            });
        }
        front.run_for(SimDuration::from_millis(13));
    }
    front.quiesce();
    front.take_records()
}

fn sticky_none() -> SessionOptions {
    SessionOptions {
        level: SessionLevel::None,
        sticky: true,
    }
}

#[test]
fn read_committed_histories_are_rc_clean() {
    for seed in [1, 2, 3] {
        let records = workload(ProtocolKind::ReadCommitted, sticky_none(), seed);
        let report = check(records, IsolationLevel::ReadCommitted);
        assert!(report.ok(), "seed {seed}: {report}");
        assert!(report.txns_checked > 40);
    }
}

#[test]
fn eventual_histories_are_ru_clean() {
    for seed in [4, 5] {
        let records = workload(ProtocolKind::Eventual, sticky_none(), seed);
        let report = check(records, IsolationLevel::ReadUncommitted);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

#[test]
fn mav_histories_prohibit_otv() {
    for seed in [6, 7, 8] {
        let records = workload(ProtocolKind::Mav, sticky_none(), seed);
        let report = check(records, IsolationLevel::MonotonicAtomicView);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

#[test]
fn item_cut_sessions_prohibit_imp() {
    let session = SessionOptions {
        level: SessionLevel::ItemCut,
        sticky: true,
    };
    for seed in [9, 10] {
        let records = workload(ProtocolKind::ReadCommitted, session, seed);
        let report = check(records, IsolationLevel::ItemCutIsolation);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

#[test]
fn monotonic_sessions_give_pram_minus_wfr() {
    let session = SessionOptions {
        level: SessionLevel::Monotonic,
        sticky: true,
    };
    for seed in [11, 12] {
        let records = workload(ProtocolKind::Mav, session, seed);
        for level in [
            IsolationLevel::MonotonicReads,
            IsolationLevel::ReadYourWrites,
            IsolationLevel::MonotonicWrites,
            IsolationLevel::Pram,
        ] {
            let report = check(records.clone(), level);
            assert!(report.ok(), "seed {seed} {level:?}: {report}");
        }
    }
}

/// Session guarantees compose with the RAMP engines too: every read
/// path (round-1, repair fetches, batch reads) clamps against the
/// session cache, so monotonic sessions never step backwards even when
/// a RAMP second round lands on a lagging replica.
#[test]
fn monotonic_sessions_hold_over_ramp_engines() {
    let session = SessionOptions {
        level: SessionLevel::Monotonic,
        sticky: true,
    };
    for protocol in [ProtocolKind::RampFast, ProtocolKind::RampSmall] {
        for seed in [11, 12] {
            let records = workload(protocol, session, seed);
            for level in [
                IsolationLevel::MonotonicReads,
                IsolationLevel::ReadYourWrites,
                IsolationLevel::MonotonicWrites,
                IsolationLevel::Pram,
            ] {
                let report = check(records.clone(), level);
                assert!(report.ok(), "{protocol:?} seed {seed} {level:?}: {report}");
            }
        }
    }
}

#[test]
fn causal_sessions_over_mav_are_causal_clean() {
    let session = SessionOptions {
        level: SessionLevel::Causal,
        sticky: true,
    };
    for seed in [13, 14] {
        let records = workload(ProtocolKind::Mav, session, seed);
        let report = check(records, IsolationLevel::Causal);
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

/// A workload shaped to induce fractured reads: one session per cluster
/// writes multi-key sets while the others read the same keys in the
/// opposite order, with replication mid-flight.
fn fracture_probe(protocol: ProtocolKind, seed: u64) -> Vec<TxnRecord> {
    let mut front = DeploymentBuilder::new(protocol)
        .seed(seed)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(2)
        .build();
    let sessions: Vec<Session> = (0..4)
        .map(|_| front.open_session(SessionOptions::default()))
        .collect();
    for round in 0..6u32 {
        for (ci, s) in sessions.iter().enumerate() {
            if ci % 2 == 0 {
                let v = format!("r{round}s{ci}");
                front.txn(s, |t| {
                    t.put("fx", &v)?;
                    t.put("fy", &v)
                });
            } else {
                front.txn(s, |t| {
                    let _ = t.get("fy")?;
                    let _ = t.get("fx")?;
                    Ok(())
                });
            }
            front.run_for(SimDuration::from_millis(3));
        }
        front.run_for(SimDuration::from_millis(8));
    }
    front.quiesce();
    front.take_records()
}

/// RAMP-Fast passes the symmetric fractured-reads detector even under
/// the adversarial cross-cluster probe with *interactive* (sequential)
/// reads: write-set metadata lets the client repair both directions —
/// floor fetches for stale siblings, ceiling fetches for reads that
/// would expose a write-set an earlier observation fractures.
#[test]
fn ramp_fast_interactive_reads_never_fracture() {
    for seed in [40, 41, 42, 43, 44, 45] {
        let records = fracture_probe(ProtocolKind::RampFast, seed);
        assert!(
            records.iter().filter(|r| r.committed()).count() > 20,
            "seed {seed}: too few txns"
        );
        assert_eq!(
            fractured_reads(records),
            0,
            "seed {seed}: fractured read observed"
        );
    }
}

/// The same probe with *one-shot* read transactions (`get_many`, the
/// RAMP paper's `GET_ALL`) in the paper's own deployment model (one
/// cluster, partitioned across servers): both RAMP variants pass the
/// detector. RAMP-Small's constant-size metadata guarantees atomicity
/// exactly in this mode — the prepare-everywhere-before-commit-anywhere
/// invariant makes every stamp in the union set fetchable by round 2.
#[test]
fn ramp_one_shot_reads_never_fracture_in_cluster() {
    for protocol in [ProtocolKind::RampFast, ProtocolKind::RampSmall] {
        for seed in [50, 51, 52, 53] {
            let mut front = DeploymentBuilder::new(protocol)
                .seed(seed)
                .clusters(ClusterSpec::single_dc(1, 4))
                .sessions_per_cluster(4)
                .build();
            let sessions: Vec<Session> = (0..4)
                .map(|_| front.open_session(SessionOptions::default()))
                .collect();
            for round in 0..8u32 {
                for (ci, s) in sessions.iter().enumerate() {
                    if ci % 2 == 0 {
                        let v = format!("r{round}s{ci}");
                        front.txn(s, |t| {
                            t.put("fx", &v)?;
                            t.put("fy", &v)
                        });
                    } else {
                        front.txn(s, |t| {
                            let _ = t.get_many(&["fy", "fx"])?;
                            Ok(())
                        });
                    }
                    front.run_for(SimDuration::from_millis(2));
                }
            }
            front.quiesce();
            let records = front.take_records();
            assert!(
                records.iter().filter(|r| r.committed()).count() > 20,
                "{protocol:?} seed {seed}: too few txns"
            );
            assert_eq!(
                fractured_reads(records),
                0,
                "{protocol:?} seed {seed}: fractured one-shot read"
            );
        }
    }
}

/// The head-to-head the detector was built for: under the adversarial
/// probe, MAV *does* fracture (its guarantee is order-aware — once a
/// write is observed, later sibling reads catch up; a stale sibling
/// read *before* the observation stays exposed), while RAMP-Fast, whose
/// metadata repairs both directions, never does. Read Atomic is
/// strictly stronger than Monotonic Atomic View, with less server-side
/// coordination.
#[test]
fn detector_separates_read_atomic_from_mav() {
    let mut mav_fractures = 0;
    for seed in 40..60u64 {
        mav_fractures += fractured_reads(fracture_probe(ProtocolKind::Mav, seed));
        if mav_fractures > 0 {
            break;
        }
    }
    assert!(
        mav_fractures > 0,
        "expected MAV to exhibit a backward fracture under the probe"
    );
    // MAV's own guarantee (order-aware atomic view) still holds.
    for seed in 40..44u64 {
        let report = check(
            fracture_probe(ProtocolKind::Mav, seed),
            IsolationLevel::MonotonicAtomicView,
        );
        assert!(report.ok(), "seed {seed}: {report}");
    }
}

/// Negative control pinning the anomaly: engines *without* atomic
/// visibility (eventual and RC) do exhibit fractured reads under the
/// same probe — the detector is not vacuous, and the anomaly is real.
#[test]
fn eventual_and_rc_exhibit_fractured_reads() {
    for protocol in [ProtocolKind::Eventual, ProtocolKind::ReadCommitted] {
        let mut found = 0;
        for seed in 0..40u64 {
            found += fractured_reads(fracture_probe(protocol, 600 + seed));
            if found > 0 {
                break;
            }
        }
        assert!(
            found > 0,
            "{protocol:?}: expected at least one fractured read under the probe"
        );
    }
}

#[test]
fn master_histories_are_serializable_for_single_key_txns() {
    // per-key linearizability: single-key read-modify-write transactions
    // through the master serialize (multi-key txns would not).
    let mut front = DeploymentBuilder::new(ProtocolKind::Master)
        .seed(15)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(2)
        .build();
    let sessions: Vec<Session> = (0..4)
        .map(|_| front.open_session(SessionOptions::default()))
        .collect();
    for _round in 0..5u32 {
        for s in &sessions {
            front.txn(s, |t| {
                let v: u64 = t.get("ctr")?.and_then(|s| s.parse().ok()).unwrap_or(0);
                t.put("ctr", &(v + 1).to_string())
            });
        }
    }
    let v = front.txn(&sessions[0], |t| t.get("ctr"));
    assert_eq!(v.as_deref(), Some("20"), "no increments lost");
    let report = check(front.take_records(), IsolationLevel::Serializable);
    assert!(report.ok(), "{report}");
}

#[test]
fn twopl_histories_are_fully_serializable() {
    let mut front = DeploymentBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(16)
        .clusters(ClusterSpec::single_dc(2, 2))
        .sessions_per_cluster(2)
        .build();
    let sessions: Vec<Session> = (0..4)
        .map(|_| front.open_session(SessionOptions::default()))
        .collect();
    // multi-key read-modify-write transactions with overlapping keys
    for round in 0..4u32 {
        for (ci, s) in sessions.iter().enumerate() {
            let a = format!("k{}", (round as usize + ci) % 3);
            let b = format!("k{}", (round as usize + ci + 1) % 3);
            front.txn(s, |t| {
                let va: u64 = t.get(&a)?.and_then(|s| s.parse().ok()).unwrap_or(0);
                let vb: u64 = t.get(&b)?.and_then(|s| s.parse().ok()).unwrap_or(0);
                t.put(&a, &(va + 1).to_string())?;
                t.put(&b, &(vb + 1).to_string())
            });
        }
    }
    let report = check(front.take_records(), IsolationLevel::Serializable);
    assert!(report.ok(), "{report}");
}

/// Negative control: the checker is not vacuous — eventual's unbuffered
/// writes do violate Read Committed's prohibition on intermediate reads
/// when a transaction overwrites its own key mid-transaction and a
/// concurrent reader catches the intermediate version.
#[test]
fn eventual_violates_rc_given_intermediate_reads() {
    let mut found = false;
    for seed in 0..25u64 {
        let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
            .seed(100 + seed)
            .clusters(ClusterSpec::single_dc(2, 2))
            .sessions_per_cluster(2)
            .build();
        let _writer_session = front.open_session(SessionOptions::default());
        let reader = front.open_session(SessionOptions::default());
        let writer = front.client(0);
        // writer writes x twice in one txn (an intermediate version
        // exists server-side between the two puts)
        front.engine_mut().with_actor_ctx(writer, |node, ctx| {
            let c = node.as_client_mut().unwrap();
            c.clear_finished();
            c.begin(ctx.now());
        });
        // first write goes out...
        front.engine_mut().with_actor_ctx(writer, |node, ctx| {
            node.as_client_mut().unwrap().issue_write(
                ctx,
                "x".into(),
                bytes::Bytes::from("intermediate"),
            )
        });
        // ... reader races while the writer's txn is still open (wait
        // past an anti-entropy tick so the other cluster has the dirty
        // value too)
        front.run_for(SimDuration::from_millis(15 + seed % 20));
        let v = front.txn(&reader, |t| t.get("x"));
        if v.as_deref() == Some("intermediate") {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "eventual (Read Uncommitted) should expose uncommitted data"
    );
}
