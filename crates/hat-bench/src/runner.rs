//! Shared closed-loop YCSB experiment runner (§6.3 methodology).
//!
//! Each run builds a simulated deployment, attaches `clients` closed-loop
//! YCSB drivers, runs for a simulated duration, and reports throughput
//! and latency aggregates — the series plotted in Figures 3–6.

use hat_core::client::TxnSource;
use hat_core::{ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, SystemConfig};
use hat_sim::SimDuration;
use hat_workloads::{YcsbConfig, YcsbSource};

/// One experiment point.
#[derive(Debug, Clone)]
pub struct YcsbRunConfig {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Cluster deployment.
    pub spec: ClusterSpec,
    /// Total closed-loop clients (spread round-robin over clusters).
    pub clients: usize,
    /// Workload shape.
    pub ycsb: YcsbConfig,
    /// Simulated measurement window.
    pub duration: SimDuration,
    /// Engine seed.
    pub seed: u64,
}

impl YcsbRunConfig {
    /// The paper's §6.3 defaults on a given deployment: 100k keys, 1 KB
    /// values, 8 ops/txn, 50% reads.
    pub fn paper_defaults(protocol: ProtocolKind, spec: ClusterSpec, clients: usize) -> Self {
        YcsbRunConfig {
            protocol,
            spec,
            clients,
            ycsb: YcsbConfig::default(),
            duration: SimDuration::from_secs(2),
            seed: 0xEC2,
        }
    }
}

/// Aggregated result of one run.
#[derive(Debug, Clone)]
pub struct YcsbRunResult {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Client count.
    pub clients: usize,
    /// Committed transactions per simulated second.
    pub throughput_tps: f64,
    /// Committed operations per simulated second.
    pub throughput_ops: f64,
    /// Mean transaction latency, ms.
    pub mean_latency_ms: f64,
    /// Median transaction latency, ms.
    pub p50_latency_ms: f64,
    /// 95th percentile transaction latency, ms.
    pub p95_latency_ms: f64,
    /// 99th percentile transaction latency, ms.
    pub p99_latency_ms: f64,
    /// 99.9th percentile transaction latency, ms.
    pub p999_latency_ms: f64,
    /// Maximum observed transaction latency, ms.
    pub max_latency_ms: f64,
    /// Transactions committed in the window.
    pub committed: u64,
    /// Client→server message rounds issued (coordination cost).
    pub msg_rounds: u64,
    /// Second-round fracture repairs (RAMP-Fast; 0 elsewhere).
    pub repair_rounds: u64,
    /// Metadata bytes moved for atomic visibility.
    pub metadata_bytes: u64,
}

/// Runs one experiment point.
pub fn run_ycsb(cfg: &YcsbRunConfig) -> YcsbRunResult {
    let drivers: Vec<Box<dyn TxnSource>> = (0..cfg.clients)
        .map(|_| Box::new(YcsbSource::new(cfg.ycsb.clone())) as Box<dyn TxnSource>)
        .collect();
    let mut system = SystemConfig::new(cfg.protocol);
    system.record_history = false; // throughput runs skip history capture
    let mut sim = DeploymentBuilder::new(cfg.protocol)
        .seed(cfg.seed)
        .clusters(cfg.spec.clone())
        .config(system)
        .drivers(drivers)
        .build();
    sim.run_for(cfg.duration);
    let ops_per_txn = cfg.ycsb.ops_per_txn as f64;
    let m = sim.aggregate_metrics();
    let secs = cfg.duration.as_secs_f64();
    // Tail percentiles come from the lossless histogram summary (clamped
    // at the true max), so p999/max stay honest at low sample counts.
    let p = m.commit_percentiles();
    YcsbRunResult {
        protocol: cfg.protocol,
        clients: cfg.clients,
        throughput_tps: m.committed as f64 / secs,
        throughput_ops: m.committed as f64 * ops_per_txn / secs,
        mean_latency_ms: m.txn_latency_ms.mean(),
        p50_latency_ms: p.p50,
        p95_latency_ms: m.txn_latency_ms.quantile(0.95).min(p.max),
        p99_latency_ms: p.p99,
        p999_latency_ms: p.p999,
        max_latency_ms: p.max,
        committed: m.committed,
        msg_rounds: m.msg_rounds,
        repair_rounds: m.repair_rounds,
        metadata_bytes: m.metadata_bytes,
    }
}

/// Formats a result as an aligned table row.
pub fn row(r: &YcsbRunResult) -> String {
    format!(
        "{:10} {:>8} {:>12.0} {:>12.0} {:>12.2} {:>12.2}",
        r.protocol.label(),
        r.clients,
        r.throughput_tps,
        r.throughput_ops,
        r.mean_latency_ms,
        r.p95_latency_ms
    )
}

/// Table header matching [`row`].
pub fn header() -> String {
    format!(
        "{:10} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "protocol", "clients", "txn/s", "ops/s", "mean ms", "p95 ms"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_sane_numbers() {
        let cfg = YcsbRunConfig {
            protocol: ProtocolKind::Eventual,
            spec: ClusterSpec::single_dc(2, 2),
            clients: 4,
            ycsb: YcsbConfig::small(),
            duration: SimDuration::from_millis(500),
            seed: 1,
        };
        let r = run_ycsb(&cfg);
        assert!(r.committed > 0, "{r:?}");
        assert!(r.throughput_tps > 0.0);
        assert!(r.mean_latency_ms > 0.0);
        assert!(r.p95_latency_ms >= r.mean_latency_ms * 0.3);
    }

    #[test]
    fn master_slower_than_eventual_over_wan() {
        let mk = |p| YcsbRunConfig {
            protocol: p,
            spec: ClusterSpec::va_or(2),
            clients: 8,
            ycsb: YcsbConfig::small(),
            duration: SimDuration::from_secs(2),
            seed: 2,
        };
        let ev = run_ycsb(&mk(ProtocolKind::Eventual));
        let ma = run_ycsb(&mk(ProtocolKind::Master));
        assert!(
            ma.mean_latency_ms > ev.mean_latency_ms * 5.0,
            "master {:.1}ms vs eventual {:.1}ms",
            ma.mean_latency_ms,
            ev.mean_latency_ms
        );
    }
}
