//! Nemesis sweep: every protocol engine through every adversarial
//! schedule in the standard catalog, at a fixed seed.
//!
//! For each `(schedule, engine)` pair the nemesis runner injects
//! rolling/one-way partitions, clock skew, latency spikes and
//! crash-restarts with torn WAL tails while a closed-loop workload keeps
//! committing, then heals the deployment and checks the three HAT
//! claims: the advertised isolation level held, every replica group
//! converged, and each crash-restart provably served WAL-recovered
//! state (`wal replayed > 0`).
//!
//! Expected shape:
//! * The HAT engines (eventual, RC, MAV, both RAMPs) stay available
//!   through partitions — `unavail` stays near zero outside the
//!   crash-restart windows of their own home replicas.
//! * Master and 2PL go unavailable whenever the faults separate them
//!   from the key's master — the paper's §6 impossibility, measured.
//! * `violations` is zero everywhere: faults cost availability, never
//!   the advertised isolation.
//!
//! Run: `cargo run -p hat-bench --release --bin exp_nemesis [--smoke]
//! [--schedule <substring>] [--json]` (`--smoke` is the CI
//! configuration: shorter horizon, fewer keys; `--schedule` filters the
//! catalog by name substring, e.g. `--schedule handoff` for the
//! shard-smoke job; `--json` emits one JSON object per pair with the
//! per-window telemetry series and fault marks embedded, for
//! `scripts/bench_snapshot.sh` and the CI obs-smoke validator).
//! Exits non-zero if any pair fails its claims, so CI can gate on it.

use hat_core::ProtocolKind;
use hat_nemesis::{run, standard_catalog, NemesisOpts, NemesisReport};
use hat_sim::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let filter: Option<&str> = args
        .iter()
        .position(|a| a == "--schedule")
        .map(|i| args.get(i + 1).expect("--schedule needs a name").as_str());
    let opts = NemesisOpts {
        seed: 0xBAD_CAFE,
        horizon: if smoke {
            SimDuration::from_millis(400)
        } else {
            SimDuration::from_millis(600)
        },
        keys: if smoke { 4 } else { 6 },
        ..NemesisOpts::default()
    };
    if !json {
        println!(
            "{:48} {:16} {:>7} {:>7} {:>7} {:>6} {:>8} {:>8} {:>8} {:>7} {:>7} {:>8} {:>5}",
            "schedule",
            "engine",
            "commit",
            "unavail",
            "abort",
            "viol",
            "p50 ms",
            "p99 ms",
            "p999 ms",
            "dropped",
            "crashes",
            "replayed",
            "ok"
        );
    }
    let mut failures = Vec::new();
    let mut ran = 0usize;
    for nemesis in &standard_catalog() {
        if let Some(f) = filter {
            if !nemesis.name().contains(f) {
                continue;
            }
        }
        ran += 1;
        for protocol in ProtocolKind::ALL {
            let r = run(protocol, nemesis.as_ref(), &opts);
            if json {
                print_json(&r);
            } else {
                println!(
                    "{:48} {:16} {:>7} {:>7} {:>7} {:>6} {:>8.2} {:>8.2} {:>8.2} {:>7} {:>7} {:>8} {:>5}",
                    r.schedule,
                    format!("{protocol:?}"),
                    r.committed,
                    r.unavailable,
                    r.aborted,
                    r.violations,
                    r.commit_latency.p50,
                    r.commit_latency.p99,
                    r.commit_latency.p999,
                    r.msgs_dropped_by_partition,
                    r.crashes,
                    r.wal_records_replayed,
                    r.ok()
                );
            }
            if !r.ok() {
                failures.push(format!(
                    "[schedule={} seed={:#x}] {protocol:?}: violations={} converged={} committed={} crashes={} replayed={}",
                    r.schedule,
                    r.seed,
                    r.violations,
                    r.converged,
                    r.committed,
                    r.crashes,
                    r.wal_records_replayed
                ));
            }
        }
    }
    if ran == 0 {
        eprintln!("no schedule matches filter {:?}", filter.unwrap_or(""));
        std::process::exit(1);
    }
    if !failures.is_empty() {
        eprintln!("\n{} failing pair(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if !json {
        println!("\nall engine x schedule pairs hold their claims");
    }
}

/// One JSON object per (schedule, engine) pair, the per-window series
/// (`{"windows":[...],"faults":[...]}`) embedded verbatim so consumers
/// get the availability timeline and fault marks without re-running.
/// Deterministic field order; one line per pair, like `exp_ramp`.
fn print_json(r: &NemesisReport) {
    let staleness = match &r.staleness {
        Some(p) => format!(
            "{{\"count\":{},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"max_ms\":{:.3}}}",
            p.count, p.p50, p.p99, p.max
        ),
        None => "null".to_string(),
    };
    println!(
        "{{\"schedule\":\"{}\",\"engine\":\"{}\",\"seed\":{},\"committed\":{},\
         \"unavailable\":{},\"aborted\":{},\"violations\":{},\"stream_violations\":{},\
         \"converged\":{},\"crashes\":{},\"wal_replayed\":{},\"dropped\":{},\
         \"p50_ms\":{:.3},\"p99_ms\":{:.3},\"staleness\":{},\"ok\":{},\"series\":{}}}",
        r.schedule.replace('"', "\\\""),
        r.protocol.label(),
        r.seed,
        r.committed,
        r.unavailable,
        r.aborted,
        r.violations,
        r.stream_violations,
        r.converged,
        r.crashes,
        r.wal_records_replayed,
        r.msgs_dropped_by_partition,
        r.commit_latency.p50,
        r.commit_latency.p99,
        staleness,
        r.ok(),
        r.series.to_json()
    );
}
