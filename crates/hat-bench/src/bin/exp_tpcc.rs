//! §6.2: TPC-C under HAT semantics — which claims hold, executably.
//!
//! 1. Payment/Order-Status/Stock-Level run fine under HATs; Consistency
//!    Condition 1 (warehouse YTD = Σ district YTD) holds under MAV.
//! 2. New-Order stock never goes negative (restock rule).
//! 3. Sequential order IDs break under a partition (Lost Update on the
//!    district counter); unique timestamp IDs stay unique.
//! 4. Delivery double-delivers under a partition (non-monotonic delete
//!    needs coordination).
//!
//! Run: `cargo run -p hat-bench --release --bin exp_tpcc`

use hat_core::{
    ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, SessionLevel, SessionOptions,
};
use hat_sim::{Partition, PartitionSchedule, SimDuration, SimTime};
use hat_workloads::tpcc::{check_consistency, IdPolicy, TpccConfig, TpccRunner};

fn session() -> SessionOptions {
    SessionOptions {
        level: SessionLevel::Monotonic,
        sticky: true,
    }
}

/// Healthy-network runs: 4 of 5 transactions are HAT-safe.
fn healthy_run(protocol: ProtocolKind) {
    let mut sim = DeploymentBuilder::new(protocol)
        .seed(42)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(1)
        .build();
    let client = sim.open_session(session());
    let cfg = TpccConfig {
        items: 50,
        initial_stock: 20,
        ..TpccConfig::default()
    };
    let mut runner = TpccRunner::new(cfg, 1);
    runner.load(&mut sim, &client).unwrap();
    for i in 0..20u32 {
        runner
            .new_order(
                &mut sim,
                &client,
                0,
                i % 2,
                i % 5,
                &[(i % 50, 3), ((i + 7) % 50, 2)],
            )
            .unwrap();
        runner
            .payment(&mut sim, &client, 0, i % 2, i % 5, 100 + u64::from(i))
            .unwrap();
        if i % 4 == 0 {
            sim.quiesce();
            runner.delivery(&mut sim, &client, 0, i % 2, 1 + i).unwrap();
        }
    }
    sim.quiesce();
    let report = check_consistency(&mut sim, &client, &runner.config).unwrap();
    println!(
        "{:10} healthy: C1 mismatches={:?} dup_ids={} neg_stock={} double_deliv={}",
        protocol.label(),
        report.c1_ytd_mismatches,
        report.duplicate_order_ids,
        report.negative_stock,
        report.double_deliveries
    );
}

/// Partitioned run with sequential IDs: the district counter suffers
/// Lost Update, so the same order id is assigned on both sides.
fn partitioned_sequential_ids() {
    let probe = DeploymentBuilder::new(ProtocolKind::ReadCommitted)
        .seed(7)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(1)
        .build();
    let side_a: Vec<u32> = probe.layout().servers[0]
        .iter()
        .copied()
        .chain([probe.client(0)])
        .collect();
    let side_b: Vec<u32> = probe.layout().servers[1]
        .iter()
        .copied()
        .chain([probe.client(1)])
        .collect();
    drop(probe);
    let mut sim = DeploymentBuilder::new(ProtocolKind::ReadCommitted)
        .seed(7)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![Partition::new(
            SimTime::from_secs(5),
            SimTime::from_secs(60),
            side_a,
            side_b,
        )]))
        .build();
    let c0 = sim.open_session(session());
    let c1 = sim.open_session(session());
    let cfg = TpccConfig {
        id_policy: IdPolicy::Sequential,
        ..TpccConfig::default()
    };
    let mut r0 = TpccRunner::new(cfg, 1);
    let mut r1 = TpccRunner::new(cfg, 2);
    r0.load(&mut sim, &c0).unwrap();
    sim.quiesce(); // both clusters converge; partition starts at t=5s
    sim.run_for(SimDuration::from_secs(4));

    // both sides place orders concurrently during the partition
    let mut placed = Vec::new();
    for i in 0..3 {
        placed.push(
            r0.new_order(&mut sim, &c0, 0, 0, 0, &[(i, 1)])
                .unwrap()
                .o_id,
        );
        placed.push(
            r1.new_order(&mut sim, &c1, 0, 0, 1, &[(i + 3, 1)])
                .unwrap()
                .o_id,
        );
    }
    // heal + converge
    sim.run_for(SimDuration::from_secs(60));
    sim.quiesce();
    let report = check_consistency(&mut sim, &c0, &cfg).unwrap();
    // Duplicate sequential ids collide on the same order *key*: after
    // last-writer-wins convergence the colliding orders are silently
    // lost. Count placements vs surviving orders.
    let surviving = sim.txn(&c0, |t| Ok(t.scan("o/0000/00/")?.len()));
    let distinct_ids: std::collections::HashSet<&String> = placed.iter().collect();
    println!(
        "RC + partition, sequential ids: placed={} distinct_ids={} surviving_orders={} lost={} (paper: HATs cannot assign sequential ids)",
        placed.len(),
        distinct_ids.len(),
        surviving,
        placed.len() - surviving,
    );
    let _ = report;

    // unique ids under the same schedule: no duplicates, no gaps tracked
    let mut sim2 = DeploymentBuilder::new(ProtocolKind::ReadCommitted)
        .seed(8)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(2)
        .build();
    let d0 = sim2.open_session(session());
    let d1 = sim2.open_session(session());
    let ucfg = TpccConfig::default();
    let mut u0 = TpccRunner::new(ucfg, 1);
    let mut u1 = TpccRunner::new(ucfg, 2);
    u0.load(&mut sim2, &d0).unwrap();
    sim2.quiesce();
    for i in 0..3 {
        u0.new_order(&mut sim2, &d0, 0, 0, 0, &[(i, 1)]).unwrap();
        u1.new_order(&mut sim2, &d1, 0, 0, 1, &[(i + 3, 1)])
            .unwrap();
    }
    sim2.quiesce();
    let report2 = check_consistency(&mut sim2, &d0, &ucfg).unwrap();
    println!(
        "RC, unique (timestamp) ids:     duplicates={} (uniqueness is HAT-achievable)",
        report2.duplicate_order_ids
    );
}

/// Partitioned concurrent Delivery: double billing.
fn partitioned_delivery() {
    let probe = DeploymentBuilder::new(ProtocolKind::ReadCommitted)
        .seed(9)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(1)
        .build();
    let side_a: Vec<u32> = probe.layout().servers[0]
        .iter()
        .copied()
        .chain([probe.client(0)])
        .collect();
    let side_b: Vec<u32> = probe.layout().servers[1]
        .iter()
        .copied()
        .chain([probe.client(1)])
        .collect();
    drop(probe);
    let mut sim = DeploymentBuilder::new(ProtocolKind::ReadCommitted)
        .seed(9)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![Partition::new(
            SimTime::from_secs(5),
            SimTime::from_secs(60),
            side_a,
            side_b,
        )]))
        .build();
    let c0 = sim.open_session(session());
    let c1 = sim.open_session(session());
    let cfg = TpccConfig::default();
    let mut r0 = TpccRunner::new(cfg, 1);
    let mut r1 = TpccRunner::new(cfg, 2);
    r0.load(&mut sim, &c0).unwrap();
    r0.new_order(&mut sim, &c0, 0, 0, 0, &[(1, 1)]).unwrap();
    sim.quiesce(); // order visible on both sides; partition starts at 5s
    sim.run_for(SimDuration::from_secs(4));
    // two carriers deliver the same order on opposite sides
    let a = r0.delivery(&mut sim, &c0, 0, 0, 100).unwrap();
    let b = r1.delivery(&mut sim, &c1, 0, 0, 200).unwrap();
    sim.run_for(SimDuration::from_secs(60));
    sim.quiesce();
    let report = check_consistency(&mut sim, &c0, &cfg).unwrap();
    let double_billed = a.is_some() && a == b;
    println!(
        "RC + partition, Delivery: side A delivered {:?}, side B delivered {:?} -> same order billed twice: {} (paper: needs compensation)",
        a, b, double_billed
    );
    let _ = report;
}

fn main() {
    println!("== TPC-C under HAT semantics (§6.2) ==");
    for protocol in [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
    ] {
        healthy_run(protocol);
    }
    println!();
    partitioned_sequential_ids();
    println!();
    partitioned_delivery();
    println!();
    println!("# paper: 4/5 TPC-C transactions are HAT-compatible; New-Order's");
    println!("# sequential IDs and Delivery's idempotent delete are not.");
}
