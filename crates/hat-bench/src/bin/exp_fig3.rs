//! Figure 3: YCSB latency and throughput vs number of clients for the
//! three deployments of §6.3:
//!
//! * **A** — two clusters of five servers within a single datacenter
//! * **B** — clusters in us-east (VA) and us-west-2 (OR)
//! * **C** — five clusters across five regions
//!
//! Run: `cargo run -p hat-bench --release --bin exp_fig3 [a|b|c|all] [--quick]`

use hat_bench::{header, row, run_ycsb, YcsbRunConfig};
use hat_core::{ClusterSpec, ProtocolKind};
use hat_sim::latency::FIG3C_REGIONS;
use hat_sim::SimDuration;

fn scenario(name: &str) -> (String, ClusterSpec, Vec<usize>) {
    match name {
        "a" => (
            "A: two clusters, single datacenter (us-east)".into(),
            ClusterSpec::single_dc(2, 5),
            vec![8, 32, 128, 256, 512],
        ),
        "b" => (
            "B: clusters in us-east (VA) and us-west-2 (OR)".into(),
            ClusterSpec::va_or(5),
            vec![8, 32, 128, 256, 512],
        ),
        "c" => (
            "C: five clusters across VA, CA, OR, IR, TO".into(),
            ClusterSpec::regions(&FIG3C_REGIONS, 5),
            vec![25, 100, 400, 800],
        ),
        other => panic!("unknown scenario {other:?} (use a, b, c or all)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let names: Vec<&str> = if which == "all" {
        vec!["a", "b", "c"]
    } else {
        vec![which.as_str()]
    };
    let protocols = [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
        ProtocolKind::Master,
    ];
    for name in names {
        let (title, spec, mut client_steps) = scenario(name);
        if quick {
            client_steps.truncate(2);
        }
        println!("== Figure 3{} — {title}", name.to_uppercase());
        println!("{}", header());
        for &clients in &client_steps {
            for protocol in protocols {
                let mut cfg = YcsbRunConfig::paper_defaults(protocol, spec.clone(), clients);
                if quick {
                    cfg.duration = SimDuration::from_millis(500);
                    cfg.ycsb.num_keys = 10_000;
                }
                let r = run_ycsb(&cfg);
                println!("{}", row(&r));
            }
        }
        println!();
    }
    println!("# paper shape: within one DC master ~ half the throughput of eventual;");
    println!("# across regions master latency grows to ~300ms (B) and ~800ms (C)");
    println!("# while eventual/RC/MAV stay at single-DC latency; RC ~ eventual;");
    println!("# MAV ~75% of eventual (2 clusters) and ~half (5 clusters).");
}
