//! Table 3: summary of highly available, sticky available, and
//! unavailable models, with unavailability causes (†: lost update,
//! ‡: write skew, ⊕: recency).
//!
//! Run: `cargo run -p hat-bench --release --bin exp_table3`

use hat_core::taxonomy::{Availability, Model};

fn main() {
    let mut ha = Vec::new();
    let mut sticky = Vec::new();
    let mut unavailable = Vec::new();
    for m in Model::ALL {
        match m.availability() {
            Availability::HighlyAvailable => ha.push(m.acronym().to_string()),
            Availability::Sticky => sticky.push(m.acronym().to_string()),
            Availability::Unavailable(u) => {
                let mut marks = String::new();
                if u.prevents_lost_update {
                    marks.push('†');
                }
                if u.prevents_write_skew {
                    marks.push('‡');
                }
                if u.requires_recency {
                    marks.push('⊕');
                }
                unavailable.push(format!("{}{}", m.acronym(), marks));
            }
        }
    }
    println!("HA          {}", ha.join(", "));
    println!("Sticky      {}", sticky.join(", "));
    println!("Unavailable {}", unavailable.join(", "));
    println!();
    println!("legend: † prevents lost update, ‡ prevents write skew, ⊕ requires recency");
    println!(
        "paper Table 3: HA = RU, RC, MAV, I-CI, P-CI, WFR, MR, MW; Sticky = RYW, PRAM, causal;"
    );
    println!("Unavailable = CS†, SI†, RR†‡, 1SR†‡, recency⊕, safe⊕, regular⊕, linearizable⊕, Strong-1SR†‡⊕");
}
