//! Figure 6: scale-out — total servers (two clusters, Virginia+Oregon)
//! vs throughput at 15 closed-loop clients per server. Eventual and RC
//! scale linearly; MAV scales sub-linearly (the paper measured 3.8x from
//! 10 to 50 servers vs 5x for eventual/RC).
//!
//! Run: `cargo run -p hat-bench --release --bin exp_fig6 [--quick]`

use hat_bench::{run_ycsb, YcsbRunConfig};
use hat_core::{ClusterSpec, ProtocolKind};
use hat_sim::SimDuration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_cluster: &[usize] = if quick {
        &[5, 15]
    } else {
        &[5, 10, 15, 20, 25]
    };
    let protocols = [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
    ];
    println!(
        "{:>8} {:10} {:>12} {:>10}",
        "servers", "protocol", "txn/s", "scale-up"
    );
    let mut base: Vec<f64> = vec![0.0; protocols.len()];
    for &sc in per_cluster {
        let total_servers = sc * 2;
        let clients = total_servers * 15;
        for (pi, protocol) in protocols.into_iter().enumerate() {
            let mut cfg = YcsbRunConfig::paper_defaults(protocol, ClusterSpec::va_or(sc), clients);
            cfg.duration = if quick {
                SimDuration::from_millis(500)
            } else {
                // scale-out points are noisy at short windows (retry
                // bursts around saturation); 5s smooths them
                SimDuration::from_secs(5)
            };
            if quick {
                cfg.ycsb.num_keys = 10_000;
            }
            let r = run_ycsb(&cfg);
            if sc == per_cluster[0] {
                base[pi] = r.throughput_tps;
            }
            println!(
                "{:>8} {:10} {:>12.0} {:>9.2}x",
                total_servers,
                protocol.label(),
                r.throughput_tps,
                r.throughput_tps / base[pi].max(1.0)
            );
        }
    }
    println!();
    println!("# paper shape: 10 -> 50 servers gives ~5x for eventual/RC and");
    println!("# ~3.8x for MAV (anti-entropy/notification fan-in contention).");
}
