//! Figure 4: transaction length (1..128 ops) vs throughput, clusters in
//! Virginia and Oregon. MAV throughput decreases with length (metadata
//! is proportional to transaction size); eventual/RC/master are flat.
//!
//! Run: `cargo run -p hat-bench --release --bin exp_fig4 [--quick]`

use hat_bench::{run_ycsb, YcsbRunConfig};
use hat_core::{ClusterSpec, ProtocolKind};
use hat_sim::SimDuration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let lengths: &[usize] = if quick {
        &[1, 8, 128]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };
    let protocols = [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
        ProtocolKind::Master,
    ];
    println!(
        "{:>8} {:10} {:>12} {:>14}",
        "txn len", "protocol", "ops/s", "vs eventual"
    );
    for &len in lengths {
        let mut eventual_ops = 0.0;
        for protocol in protocols {
            let mut cfg = YcsbRunConfig::paper_defaults(protocol, ClusterSpec::va_or(5), 128);
            cfg.ycsb.ops_per_txn = len;
            // long transactions need a window many times their duration,
            // or partially-complete transactions dominate the measurement
            let base_ms = if quick { 400 } else { 2000 };
            cfg.duration = SimDuration::from_millis(base_ms.max(len as u64 * 60));
            if quick {
                cfg.ycsb.num_keys = 10_000;
            }
            let r = run_ycsb(&cfg);
            if protocol == ProtocolKind::Eventual {
                eventual_ops = r.throughput_ops;
            }
            let rel = if eventual_ops > 0.0 {
                r.throughput_ops / eventual_ops
            } else {
                0.0
            };
            println!(
                "{:>8} {:10} {:>12.0} {:>13.0}%",
                len,
                protocol.label(),
                r.throughput_ops,
                rel * 100.0
            );
        }
    }
    println!();
    println!("# paper shape: eventual/RC/master flat in ops/s; MAV ~82% of");
    println!("# eventual at length 1 degrading to ~40-60% at length 128");
    println!("# (34B -> ~1.9kB of per-write sibling metadata).");
}
