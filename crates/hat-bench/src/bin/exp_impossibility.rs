//! §5.2 impossibility results, demonstrated end-to-end and verified with
//! the Adya checker:
//!
//! * Lost Update happens under partitions on every HAT protocol and the
//!   history checker finds it (so Snapshot Isolation is unachievable).
//! * Write Skew likewise (so Repeatable Read / 1SR are unachievable).
//! * Read-your-writes fails for non-sticky clients (so RYW/PRAM/causal
//!   require stickiness).
//! * master (recency) and 2PL (serializability) simply block.
//!
//! Run: `cargo run -p hat-bench --release --bin exp_impossibility`

use hat_core::{
    ClusterSpec, DeploymentBuilder, Frontend, HatError, ProtocolKind, SessionLevel, SessionOptions,
};
use hat_history::{check, IsolationLevel};
use hat_sim::{Partition, PartitionSchedule, SimDuration, SimTime};

fn split_sides(protocol: ProtocolKind, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let probe = DeploymentBuilder::new(protocol)
        .seed(seed)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .build();
    let a = probe.layout().servers[0]
        .iter()
        .copied()
        .chain([probe.client(0)])
        .collect();
    let b = probe.layout().servers[1]
        .iter()
        .copied()
        .chain([probe.client(1)])
        .collect();
    (a, b)
}

fn partitioned_sim(protocol: ProtocolKind, seed: u64) -> hat_core::SimFrontend {
    let (a, b) = split_sides(protocol, seed);
    DeploymentBuilder::new(protocol)
        .seed(seed)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![Partition::new(
            SimTime::from_secs(5),
            SimTime::from_secs(60),
            a,
            b,
        )]))
        .build()
}

fn lost_update(protocol: ProtocolKind) {
    let mut sim = partitioned_sim(protocol, 11);
    let s0 = sim.open_session(SessionOptions::default());
    let s1 = sim.open_session(SessionOptions::default());
    sim.txn(&s0, |t| t.put("x", "100"));
    sim.quiesce();
    sim.run_for(SimDuration::from_secs(4)); // now inside the partition
    sim.txn(&s0, |t| {
        let v: u64 = t.get("x")?.unwrap().parse().unwrap();
        t.put("x", &(v + 20).to_string())
    });
    sim.txn(&s1, |t| {
        let v: u64 = t.get("x")?.unwrap().parse().unwrap();
        t.put("x", &(v + 30).to_string())
    });
    sim.run_for(SimDuration::from_secs(60));
    sim.quiesce();
    let final_v = sim.txn(&s0, |t| t.get("x")).unwrap();
    let report = check(sim.take_records(), IsolationLevel::SnapshotIsolation);
    println!(
        "{:10} lost update: final x={} (serial would be 150); SI check: {} violation(s)",
        protocol.label(),
        final_v,
        report.violations.len()
    );
}

fn write_skew(protocol: ProtocolKind) {
    let mut sim = partitioned_sim(protocol, 12);
    let s0 = sim.open_session(SessionOptions::default());
    let s1 = sim.open_session(SessionOptions::default());
    sim.txn(&s0, |t| {
        t.put("x", "0")?;
        t.put("y", "0")
    });
    sim.quiesce();
    sim.run_for(SimDuration::from_secs(4));
    // constraint: at most one of x,y may be 1
    sim.txn(&s0, |t| {
        if t.get("y")?.as_deref() == Some("0") {
            t.put("x", "1")?;
        }
        Ok(())
    });
    sim.txn(&s1, |t| {
        if t.get("x")?.as_deref() == Some("0") {
            t.put("y", "1")?;
        }
        Ok(())
    });
    sim.run_for(SimDuration::from_secs(60));
    sim.quiesce();
    let (x, y) = sim.txn(&s0, |t| Ok((t.get("x")?, t.get("y")?)));
    let report = check(sim.take_records(), IsolationLevel::RepeatableRead);
    println!(
        "{:10} write skew: x={:?} y={:?} (constraint: not both 1); RR check: {} violation(s)",
        protocol.label(),
        x,
        y,
        report.violations.len()
    );
}

fn ryw_without_stickiness() {
    let mut violations = 0;
    let mut attempts = 0;
    for seed in 0..20 {
        // server-only partition: the client can reach both clusters but
        // the clusters cannot replicate to each other — the §5.1.3
        // scenario where "the client can only execute T2 on a different
        // replica that is partitioned from the replica that executed T1".
        let probe = DeploymentBuilder::new(ProtocolKind::Eventual)
            .seed(100 + seed)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(1)
            .build();
        let a: Vec<u32> = probe.layout().servers[0].clone();
        let b: Vec<u32> = probe.layout().servers[1].clone();
        drop(probe);
        let mut sim = DeploymentBuilder::new(ProtocolKind::Eventual)
            .seed(100 + seed)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(1)
            .partitions(PartitionSchedule::from_partitions(vec![
                Partition::forever(SimTime::ZERO, a, b),
            ]))
            .build();
        let c = sim.open_session(SessionOptions {
            level: SessionLevel::None,
            sticky: false,
        });
        for i in 0..10 {
            let k = format!("w{i}");
            // non-sticky ops can themselves time out hunting for a
            // reachable cluster; only a completed write+read pair counts
            if sim.try_txn(&c, |t| t.put(&k, "mine")).is_err() {
                continue;
            }
            let Ok(read) = sim.try_txn(&c, |t| t.get(&k)) else {
                continue;
            };
            attempts += 1;
            if read.is_none() {
                violations += 1;
            }
        }
    }
    println!(
        "non-sticky RYW: {violations}/{attempts} reads missed the session's own write under partition"
    );
    println!("sticky RYW:     0 violations by construction (home replica holds the write)");
}

fn unavailable_protocols_block() {
    for protocol in [ProtocolKind::Master, ProtocolKind::TwoPhaseLocking] {
        let (a, b) = split_sides(protocol, 31);
        let mut sim = DeploymentBuilder::new(protocol)
            .seed(31)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(1)
            .partitions(PartitionSchedule::from_partitions(vec![
                Partition::forever(SimTime::ZERO, a, b),
            ]))
            .build();
        let s0 = sim.open_session(SessionOptions::default());
        // find a key mastered on the far side
        let key = (0..200)
            .map(|i| format!("k{i}"))
            .find(|k| {
                let key = hat_storage::Key::from(k.clone());
                sim.layout().cluster_of(sim.layout().master(&key)) == Some(1)
            })
            .unwrap();
        let res = sim.try_txn(&s0, |t| t.put(&key, "v"));
        let verdict = match res {
            Err(HatError::Unavailable { .. }) => "unavailable (blocked)",
            Err(HatError::ExternalAbort { .. }) => "external abort (lock timeout)",
            Err(HatError::InternalAbort { .. }) => "internal abort?",
            Err(HatError::InvalidDeployment { .. }) => "invalid deployment?!",
            Ok(_) => "committed?!",
        };
        println!("{:10} under partition: {verdict}", protocol.label());
    }
}

fn main() {
    println!("== §5.2 impossibility results ==");
    for protocol in [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
    ] {
        lost_update(protocol);
    }
    println!();
    for protocol in [ProtocolKind::ReadCommitted, ProtocolKind::Mav] {
        write_skew(protocol);
    }
    println!();
    ryw_without_stickiness();
    println!();
    unavailable_protocols_block();
    println!();
    println!("# paper: preventing Lost Update / Write Skew / recency bounds");
    println!("# requires unavailability; RYW requires stickiness.");
}
