//! Table 2: default and maximum isolation levels of 18 ACID/NewSQL
//! databases (January 2013 survey, reproduced verbatim).
//!
//! Run: `cargo run -p hat-bench --release --bin exp_table2`

use hat_core::survey::{stats, SURVEY};

fn main() {
    println!("{:<26} {:>10} {:>10}", "Database", "Default", "Maximum");
    println!("{}", "-".repeat(48));
    for e in SURVEY {
        println!(
            "{:<26} {:>10} {:>10}",
            e.database,
            e.default.code(),
            e.maximum.code()
        );
    }
    println!("{}", "-".repeat(48));
    let s = stats();
    println!("databases surveyed:              {}", s.total);
    println!(
        "serializable by default:         {} (paper: 3)",
        s.serializable_by_default
    );
    println!(
        "no serializability option:       {} (paper: 8)",
        s.no_serializability_option
    );
    println!("weak (RC/CS/CR) default:         {}", s.weak_default);
}
