//! Table 1: mean RTTs on EC2 — intra-AZ (a), cross-AZ (b), cross-region
//! (c) — regenerated from the calibrated latency models.
//!
//! Run: `cargo run -p hat-bench --release --bin exp_table1`

use hat_sim::latency::{LinkClass, RegionPair};
use hat_sim::{LatencyModel, ALL_REGIONS};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sampled_mean(model: &LatencyModel, class: LinkClass, rng: &mut StdRng, n: usize) -> f64 {
    (0..n).map(|_| model.sample_rtt_ms(class, rng)).sum::<f64>() / n as f64
}

fn main() {
    let model = LatencyModel::default();
    let mut rng = StdRng::seed_from_u64(0xEC2);
    let n = 10_000;

    println!("Table 1a: within one availability zone (paper: 0.50-0.56 ms)");
    println!(
        "  sampled mean RTT: {:.2} ms  (model mean {:.2} ms)",
        sampled_mean(&model, LinkClass::IntraAz, &mut rng, n),
        model.mean_rtt_ms(LinkClass::IntraAz)
    );
    println!();
    println!("Table 1b: across availability zones (paper: 1.08-3.57 ms)");
    println!(
        "  sampled mean RTT: {:.2} ms  (model mean {:.2} ms)",
        sampled_mean(&model, LinkClass::CrossAz, &mut rng, n),
        model.mean_rtt_ms(LinkClass::CrossAz)
    );
    println!();
    println!("Table 1c: cross-region mean RTTs, ms (sampled / paper)");
    print!("{:>6}", "");
    for b in &ALL_REGIONS[1..] {
        print!("{:>14}", b.code());
    }
    println!();
    for (i, &a) in ALL_REGIONS.iter().enumerate() {
        if i == ALL_REGIONS.len() - 1 {
            break;
        }
        print!("{:>6}", a.code());
        for &b in &ALL_REGIONS[1..] {
            if b.index() <= i {
                print!("{:>14}", "");
                continue;
            }
            let class = LinkClass::CrossRegion(RegionPair(a, b));
            let sampled = sampled_mean(&model, class, &mut rng, n);
            let paper = model.mean_rtt_ms(class);
            print!("{:>7.1}/{:<6.1}", sampled, paper);
        }
        println!();
    }
    println!();
    let intra = model.mean_rtt_ms(LinkClass::IntraAz);
    let az = model.mean_rtt_ms(LinkClass::CrossAz);
    let wan_min = 22.5;
    let wan_max = 362.8;
    println!(
        "ratios: cross-AZ/intra = {:.1}x; cross-region/intra = {:.0}x-{:.0}x",
        az / intra,
        wan_min / intra,
        wan_max / intra
    );
    println!("(paper: 1.82-6.38x and 40-647x)");
}
