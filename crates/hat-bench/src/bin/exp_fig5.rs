//! Figure 5: proportion of reads vs throughput (clusters in Virginia and
//! Oregon). Writes cost ~4x reads, so all-write workloads run several
//! times slower; MAV tracks eventual closely on read-heavy mixes.
//!
//! Run: `cargo run -p hat-bench --release --bin exp_fig5 [--quick]`

use hat_bench::{run_ycsb, YcsbRunConfig};
use hat_core::{ClusterSpec, ProtocolKind};
use hat_sim::SimDuration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let write_props: &[f64] = if quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0]
    };
    let protocols = [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
        ProtocolKind::Master,
    ];
    println!(
        "{:>10} {:10} {:>12} {:>14}",
        "write frac", "protocol", "txn/s", "vs eventual"
    );
    for &wp in write_props {
        let mut eventual_tps = 0.0;
        for protocol in protocols {
            let mut cfg = YcsbRunConfig::paper_defaults(protocol, ClusterSpec::va_or(5), 128);
            cfg.ycsb.read_proportion = 1.0 - wp;
            cfg.duration = if quick {
                SimDuration::from_millis(500)
            } else {
                SimDuration::from_secs(2)
            };
            if quick {
                cfg.ycsb.num_keys = 10_000;
            }
            let r = run_ycsb(&cfg);
            if protocol == ProtocolKind::Eventual {
                eventual_tps = r.throughput_tps;
            }
            let rel = if eventual_tps > 0.0 {
                r.throughput_tps / eventual_tps
            } else {
                0.0
            };
            println!(
                "{:>10.2} {:10} {:>12.0} {:>13.0}%",
                wp,
                protocol.label(),
                r.throughput_tps,
                rel * 100.0
            );
        }
    }
    // The paper also quotes Facebook's 99.8%-read mix.
    println!();
    println!("# 99.8% reads (Facebook mix, §6.3):");
    for protocol in [ProtocolKind::Eventual, ProtocolKind::Mav] {
        let mut cfg = YcsbRunConfig::paper_defaults(protocol, ClusterSpec::va_or(5), 128);
        cfg.ycsb.read_proportion = 0.998;
        cfg.duration = if quick {
            SimDuration::from_millis(500)
        } else {
            SimDuration::from_secs(2)
        };
        let r = run_ycsb(&cfg);
        println!(
            "#   {:10} {:>12.0} txn/s",
            protocol.label(),
            r.throughput_tps
        );
    }
    println!("# paper shape: all-reads >> all-writes (~3.9x for eventual);");
    println!("# MAV within ~5% of eventual at all-reads, within ~33% at all-writes.");
}
