//! Figure 1: CDFs of round-trip times for the slowest intra- and
//! inter-availability-zone links vs cross-region links.
//!
//! Prints `(rtt_ms, cumulative_fraction)` series, one block per link, in
//! a gnuplot-friendly format.
//!
//! Run: `cargo run -p hat-bench --release --bin exp_fig1`

use hat_sim::latency::{LinkClass, RegionPair};
use hat_sim::{Histogram, LatencyModel, Region};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = LatencyModel::default();
    let mut rng = StdRng::seed_from_u64(0xF161);
    let links: [(&str, LinkClass); 4] = [
        ("east-b:east-b (intra-AZ)", LinkClass::IntraAz),
        ("east-c:east-d (cross-AZ)", LinkClass::CrossAz),
        (
            "CA:OR",
            LinkClass::CrossRegion(RegionPair(Region::California, Region::Oregon)),
        ),
        (
            "SI:SP",
            LinkClass::CrossRegion(RegionPair(Region::Singapore, Region::SaoPaulo)),
        ),
    ];
    for (name, class) in links {
        let mut h = Histogram::for_latency_ms();
        for _ in 0..100_000 {
            h.record(model.sample_rtt_ms(class, &mut rng));
        }
        println!("# {name}");
        println!(
            "# p50={:.2}ms p95={:.2}ms p99={:.2}ms",
            h.quantile(0.5),
            h.quantile(0.95),
            h.quantile(0.99)
        );
        // thin the CDF to ~40 points per curve
        let cdf = h.cdf();
        let step = (cdf.len() / 40).max(1);
        for (i, (v, f)) in cdf.iter().enumerate() {
            if i % step == 0 || *f >= 1.0 {
                println!("{v:.3} {f:.4}");
            }
        }
        println!();
    }
    println!("# paper: trend intra < cross-AZ < cross-region over 10^-1..10^3 ms");
}
