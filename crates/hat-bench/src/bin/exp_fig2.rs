//! Figure 2: the partial order of HAT, sticky and unavailable models —
//! edges, incomparable pairs, achievable-combination counts and the
//! strongest (maximal) HAT combinations.
//!
//! Run: `cargo run -p hat-bench --release --bin exp_fig2`

use hat_core::taxonomy::{Model, Taxonomy, EDGES};

fn main() {
    println!("# strength edges (stronger -> weaker)");
    for (a, b) in EDGES {
        println!("{} -> {}", a.acronym(), b.acronym());
    }
    println!();

    let t = Taxonomy::new();
    println!("# downsets: what each unavailable headline model entails");
    for m in [
        Model::SnapshotIsolation,
        Model::RepeatableRead,
        Model::OneCopySerializability,
        Model::StrongOneCopySerializability,
    ] {
        let implied: Vec<&str> = t.implied_by(m).iter().map(|x| x.acronym()).collect();
        println!("{} => {}", m.acronym(), implied.join(", "));
    }
    println!();

    let count = t.count_hat_combinations();
    println!("# achievable (HA + sticky) combination count");
    println!(
        "non-empty antichains of the 11 achievable models: {count} \
         (paper caption: \"144 possible HAT combinations\"; the paper does \
         not state its counting convention — see EXPERIMENTS.md)"
    );
    println!();

    println!("# maximal simultaneously-achievable combinations");
    for combo in t.maximal_hat_combinations() {
        let names: Vec<&str> = combo.iter().map(|m| m.acronym()).collect();
        println!("{{{}}}", names.join(", "));
    }
    println!();
    println!(
        "# §5.3: combining all HAT and sticky guarantees = causal + P-CI \
         (transactional, causally consistent snapshot reads)"
    );
}
