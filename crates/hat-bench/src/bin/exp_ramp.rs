//! Read Atomic head-to-head: MAV vs RAMP-Fast vs RAMP-Small.
//!
//! The paper implements atomic visibility with MAV's sibling
//! notifications (server→server fan-in on every write); the RAMP
//! follow-up direction moves the work to readers, who repair fractured
//! reads from per-write metadata. This experiment compares the three
//! engines' *coordination cost* — client message rounds per committed
//! transaction, metadata bytes per transaction, second-round repair
//! frequency — alongside throughput and p50/p99 latency, on read-heavy
//! vs balanced vs write-heavy YCSB mixes over the Virginia + Oregon
//! deployment.
//!
//! Expected shape:
//! * RAMP-F reads are one round unless a fracture is detected, so its
//!   rounds/txn sit close to RC's; its metadata cost scales with the
//!   write-set (like MAV's) but it sends no Notify traffic at all.
//! * RAMP-S always pays two read rounds (worst rounds/txn on read-heavy
//!   mixes) in exchange for constant-size metadata (lowest bytes/txn).
//! * MAV keeps client rounds low but pays |write-set| × |clusters|
//!   sibling notifications server-side on every write — the fan-in this
//!   experiment exists to avoid; its write amplification also shows up
//!   as lower write-heavy throughput.
//!
//! The second axis is **shard scaling** (§6.3's "millions of keys"
//! regime): the same two-region deployment grown from 1 to 16 shards
//! per cluster, closed-loop clients growing with it. RAMP-F's
//! coordination rides on the messages the transaction already sends, so
//! its throughput should track the shard count near-linearly; MAV's
//! sibling notifications fan out to every server holding a sibling key
//! — at 1 shard they collapse onto the writing server, at 16 they are
//! |write-set| × |clusters| extra serviced messages per transaction —
//! so its curve flattens as shards (and therefore write-set spread)
//! grow.
//!
//! Run: `cargo run -p hat-bench --release --bin exp_ramp [--smoke]`
//! (`--smoke` is the CI configuration: small keyspace, short window).

use hat_bench::{run_ycsb, YcsbRunConfig, YcsbRunResult};
use hat_core::{ClusterSpec, ProtocolKind};
use hat_sim::SimDuration;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--quick");
    // `--json` emits one JSON object per (mix, engine) line instead of
    // the table — consumed by scripts/bench_snapshot.sh to track the
    // latency-percentile trajectory across PRs.
    let json = std::env::args().any(|a| a == "--json");
    let mixes: &[(&str, f64)] = &[
        ("read-heavy 90/10", 0.9),
        ("balanced 50/50", 0.5),
        ("write-heavy 10/90", 0.1),
    ];
    let protocols = [
        ProtocolKind::Mav,
        ProtocolKind::RampFast,
        ProtocolKind::RampSmall,
    ];
    if !json {
        println!(
            "{:>18} {:8} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9}",
            "mix",
            "engine",
            "txn/s",
            "p50 ms",
            "p99 ms",
            "p999 ms",
            "rounds/tx",
            "meta B/tx",
            "repairs",
            "commits"
        );
    }
    for &(label, read_prop) in mixes {
        for protocol in protocols {
            let clients = if smoke { 8 } else { 64 };
            let mut cfg = YcsbRunConfig::paper_defaults(protocol, ClusterSpec::va_or(2), clients);
            cfg.ycsb.read_proportion = read_prop;
            cfg.seed = 0x7A3F ^ read_prop.to_bits();
            if smoke {
                cfg.ycsb.num_keys = 200;
                cfg.ycsb.value_size = 32;
                cfg.duration = SimDuration::from_millis(250);
            }
            let r = run_ycsb(&cfg);
            if json {
                print_json(label, &r);
            } else {
                print_row(label, &r);
            }
            sanity(&r, protocol, smoke);
        }
        if !json {
            println!();
        }
    }
    if !json {
        println!("rounds/tx counts client→server request rounds (reads, repair fetches,");
        println!("prepare and commit phases); MAV's sibling-notification fan-in is");
        println!("server→server and does not appear in client rounds — that asymmetry");
        println!("is the point: RAMP buys atomic visibility with reader-side rounds");
        println!("and metadata instead of write-side notification storms.");
        println!();
    }
    shard_scaling(smoke, json);
}

/// Shard-scaling sweep: RAMP-F vs MAV on 2 clusters × {1,2,4,8,16}
/// shards, balanced 50/50 mix, clients growing with the shard count so
/// the offered load scales with the deployment.
fn shard_scaling(smoke: bool, json: bool) {
    let shard_counts: &[usize] = if smoke { &[1, 8] } else { &[1, 2, 4, 8, 16] };
    let protocols = [ProtocolKind::RampFast, ProtocolKind::Mav];
    if !json {
        println!(
            "{:>18} {:8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>8}",
            "axis", "engine", "shards", "txn/s", "p50 ms", "p99 ms", "commits", "scale"
        );
    }
    for protocol in protocols {
        let mut base_tps = 0.0f64;
        for &shards in shard_counts {
            let clients = if smoke { 4 * shards } else { 8 * shards };
            let mut cfg =
                YcsbRunConfig::paper_defaults(protocol, ClusterSpec::va_or(shards), clients);
            cfg.ycsb.read_proportion = 0.5;
            cfg.seed = 0x5AAD ^ shards as u64;
            if smoke {
                cfg.ycsb.num_keys = 400;
                cfg.ycsb.value_size = 32;
                cfg.duration = SimDuration::from_millis(250);
            }
            let r = run_ycsb(&cfg);
            if base_tps == 0.0 {
                base_tps = r.throughput_tps;
            }
            let scale = r.throughput_tps / base_tps;
            if json {
                print_shard_json(shards, scale, &r);
            } else {
                println!(
                    "{:>18} {:8} {:>7} {:>9.0} {:>9.2} {:>9.2} {:>9} {:>7.2}x",
                    "shard-scaling",
                    r.protocol.label(),
                    shards,
                    r.throughput_tps,
                    r.p50_latency_ms,
                    r.p99_latency_ms,
                    r.committed,
                    scale
                );
            }
            assert!(
                r.committed > 0,
                "{protocol:?} @ {shards} shards: no transactions committed"
            );
        }
        if !json {
            println!();
        }
    }
    if !json {
        println!("scale is throughput relative to the engine's own 1-shard run; clients");
        println!("grow with shards, so a flat curve means the engine burns the added");
        println!("hardware on coordination (MAV's sibling fan-in) rather than commits.");
    }
}

fn print_shard_json(shards: usize, scale: f64, r: &YcsbRunResult) {
    println!(
        "{{\"axis\":\"shard-scaling\",\"engine\":\"{}\",\"shards\":{},\"clients\":{},\
         \"tps\":{:.1},\"scale\":{:.3},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"commits\":{}}}",
        r.protocol.label(),
        shards,
        r.clients,
        r.throughput_tps,
        scale,
        r.p50_latency_ms,
        r.p99_latency_ms,
        r.committed
    );
}

fn print_json(mix: &str, r: &YcsbRunResult) {
    // `shards` is the per-cluster server count (the mix axis runs the
    // paper's fixed 2-shard deployment; the shard axis sweeps it).
    println!(
        "{{\"mix\":\"{}\",\"engine\":\"{}\",\"shards\":2,\"tps\":{:.1},\"p50_ms\":{:.3},\
         \"p95_ms\":{:.3},\"p99_ms\":{:.3},\"p999_ms\":{:.3},\"max_ms\":{:.3},\
         \"commits\":{}}}",
        mix,
        r.protocol.label(),
        r.throughput_tps,
        r.p50_latency_ms,
        r.p95_latency_ms,
        r.p99_latency_ms,
        r.p999_latency_ms,
        r.max_latency_ms,
        r.committed
    );
}

fn print_row(mix: &str, r: &YcsbRunResult) {
    let per_txn = |v: u64| {
        if r.committed == 0 {
            0.0
        } else {
            v as f64 / r.committed as f64
        }
    };
    println!(
        "{:>18} {:8} {:>9.0} {:>9.2} {:>9.2} {:>9.2} {:>10.2} {:>10.1} {:>9} {:>9}",
        mix,
        r.protocol.label(),
        r.throughput_tps,
        r.p50_latency_ms,
        r.p99_latency_ms,
        r.p999_latency_ms,
        per_txn(r.msg_rounds),
        per_txn(r.metadata_bytes),
        r.repair_rounds,
        r.committed
    );
}

/// Smoke-mode assertions so CI fails loudly if the experiment rots.
fn sanity(r: &YcsbRunResult, protocol: ProtocolKind, smoke: bool) {
    assert!(r.committed > 0, "{protocol:?}: no transactions committed");
    assert!(r.msg_rounds > 0, "{protocol:?}: no message rounds counted");
    match protocol {
        ProtocolKind::RampFast => {
            assert!(r.metadata_bytes > 0, "RAMP-F must move write-set metadata")
        }
        ProtocolKind::RampSmall => {
            assert!(r.metadata_bytes > 0, "RAMP-S must move timestamp metadata")
        }
        _ => {}
    }
    let _ = smoke;
}
