//! # hat-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/exp_*.rs`) plus
//! criterion micro-benchmarks (`benches/`). This library holds shared
//! experiment plumbing: YCSB-style closed-loop runs over simulated
//! deployments and row formatting.

pub mod runner;

pub use runner::{header, row, run_ycsb, YcsbRunConfig, YcsbRunResult};
