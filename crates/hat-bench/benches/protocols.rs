//! Criterion benchmarks over whole simulated protocol runs: how many
//! simulated transactions per wall-clock second each protocol sustains,
//! plus ablations for the design choices called out in DESIGN.md
//! (service-time model on/off, WAN latency on/off).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hat_bench::{run_ycsb, YcsbRunConfig};
use hat_core::{
    ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, ServiceModel, SessionOptions,
    SystemConfig,
};
use hat_sim::{LatencyModel, SimDuration};
use hat_workloads::YcsbConfig;

fn point(protocol: ProtocolKind) -> YcsbRunConfig {
    YcsbRunConfig {
        protocol,
        spec: ClusterSpec::single_dc(2, 2),
        clients: 8,
        ycsb: YcsbConfig {
            num_keys: 1000,
            value_size: 64,
            ..YcsbConfig::small()
        },
        duration: SimDuration::from_millis(250),
        seed: 3,
    }
}

fn bench_protocol_sims(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_250ms_window");
    for protocol in [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
        ProtocolKind::Master,
        ProtocolKind::TwoPhaseLocking,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(protocol.label()),
            &protocol,
            |b, &p| b.iter(|| black_box(run_ycsb(&point(p)))),
        );
    }
    g.finish();
}

/// Ablation: zero service time isolates protocol/network effects from the
/// queueing model (DESIGN.md "Deterministic simulation vs real network").
fn bench_ablation_service_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.bench_function("facade_txns_default_model", |b| {
        b.iter(|| {
            let mut sim = DeploymentBuilder::new(ProtocolKind::Mav)
                .seed(4)
                .clusters(ClusterSpec::single_dc(2, 2))
                .build();
            let s0 = sim.open_session(SessionOptions::default());
            for i in 0..20 {
                let k = format!("k{i}");
                sim.txn(&s0, |t| t.put(&k, "v"));
            }
            black_box(sim.now())
        })
    });
    g.bench_function("facade_txns_zero_cost_model", |b| {
        b.iter(|| {
            let mut cfg = SystemConfig::new(ProtocolKind::Mav);
            cfg.service = ServiceModel::zero();
            let mut sim = DeploymentBuilder::new(ProtocolKind::Mav)
                .seed(4)
                .clusters(ClusterSpec::single_dc(2, 2))
                .config(cfg)
                .latency(LatencyModel::zero())
                .build();
            let s0 = sim.open_session(SessionOptions::default());
            for i in 0..20 {
                let k = format!("k{i}");
                sim.txn(&s0, |t| t.put(&k, "v"));
            }
            black_box(sim.now())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_protocol_sims, bench_ablation_service_model
}
criterion_main!(benches);
