//! Criterion micro-benchmarks for the substrates: storage engine,
//! version stamps, history checker, latency sampling and workload
//! generation.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use hat_core::protocol::replication::ReplicationLog;
use hat_core::{OpRecord, Timestamp, TxnOutcome, TxnRecord};
use hat_history::{check, IsolationLevel};
use hat_sim::latency::LinkClass;
use hat_sim::LatencyModel;
use hat_storage::{Key, MemStore, Record, Store, VersionStamp};
use hat_workloads::{YcsbConfig, YcsbSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage");
    g.bench_function("memstore_put", |b| {
        b.iter_batched(
            MemStore::new,
            |mut store| {
                for i in 0..1000u64 {
                    let key = Key::from(format!("user{:08}", i % 128));
                    store
                        .put(
                            key,
                            Record::new(VersionStamp::new(i + 1, 1), "value").into(),
                        )
                        .unwrap();
                }
                store
            },
            BatchSize::SmallInput,
        )
    });
    let mut store = MemStore::new();
    for i in 0..10_000u64 {
        store
            .put(
                Key::from(format!("user{:08}", i % 1000)),
                Record::new(VersionStamp::new(i + 1, 1), "value").into(),
            )
            .unwrap();
    }
    g.bench_function("memstore_get_latest", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1000;
            black_box(store.latest(format!("user{i:08}").as_bytes()))
        })
    });
    g.bench_function("memstore_snapshot_read", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1000;
            black_box(
                store.latest_at_or_below(
                    format!("user{i:08}").as_bytes(),
                    VersionStamp::new(5000, 0),
                ),
            )
        })
    });
    g.bench_function("memstore_scan_prefix", |b| {
        b.iter(|| black_box(store.scan_prefix(b"user0000001")))
    });
    g.finish();
}

/// The anti-entropy hot path: an unacknowledged suffix is re-batched on
/// every tick for every peer. `batch_for` now hands out `Arc` clones of
/// the log entries; the `deep_clone` baseline is what the old
/// `to_vec`-of-owned-records implementation paid per tick — the
/// difference is the win of index/Arc-based batches.
fn bench_replication_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication_log");
    let mut log = ReplicationLog::new(2);
    for i in 0..1024u64 {
        let key = Key::from(format!("user{:08}", i));
        let siblings = (0..8)
            .map(|s| Key::from(format!("user{:08}", i + s)))
            .collect();
        let record = Record::with_siblings(
            VersionStamp::new(i + 1, 1),
            bytes::Bytes::from(vec![7u8; 1024]),
            siblings,
        );
        log.push(key, record.into());
    }
    g.bench_function("batch_for_arc", |b| {
        // Peer 0 never acks: the full suffix is re-batched every call,
        // exactly the partitioned-peer worst case.
        b.iter(|| black_box(log.batch_for(0)))
    });
    g.bench_function("batch_for_deep_clone_baseline", |b| {
        b.iter(|| {
            let (start, batch) = log.batch_for(0);
            // Clone out of the Arcs: the per-record cost the old
            // implementation paid on every tick.
            let owned: Vec<(Key, Record)> = batch
                .iter()
                .map(|(k, r)| (k.clone(), (**r).clone()))
                .collect();
            black_box((start, owned))
        })
    });
    g.finish();
}

/// The zero-copy record path: a read hands back an `Arc` handle; the
/// deep-clone baseline is what the pre-`SharedRecord` code paid to move
/// the same record through a response (key + value + sibling list all
/// copied). 1 KiB values with an 8-key write set, like a MAV/RAMP
/// commit under YCSB-sized payloads.
fn bench_record_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("record_path");
    let mut store = MemStore::new();
    for i in 0..1000u64 {
        let siblings = (0..8)
            .map(|s| Key::from(format!("user{:08}", i + s)))
            .collect();
        store
            .put(
                Key::from(format!("user{:08}", i)),
                Record::with_siblings(
                    VersionStamp::new(i + 1, 1),
                    bytes::Bytes::from(vec![7u8; 1024]),
                    siblings,
                )
                .into(),
            )
            .unwrap();
    }
    let keys: Vec<Key> = (0..1000u64)
        .map(|i| Key::from(format!("user{i:08}")))
        .collect();
    g.bench_function("read_shared", |b| {
        // What every engine read does now: clone the handle out of the
        // store (a refcount bump), as `GetResp` will carry it.
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % 1000;
            black_box(store.latest(&keys[i]))
        })
    });
    g.bench_function("read_deep_clone_baseline", |b| {
        // The old record path: every hop deep-copies the record.
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % 1000;
            let rec = store.latest(&keys[i]);
            black_box(rec.map(|r| (*r).clone()))
        })
    });
    // The per-hop cost in isolation: a record crosses several ownership
    // boundaries per transaction (store → response message → client →
    // txn/session cache, and store → replication log → gossip message).
    // Each hop used to clone the `Record` (sibling-vector allocation
    // plus a refcount bump per key/value handle); now every hop is one
    // `Arc` refcount bump.
    let hop_rec: hat_storage::SharedRecord = Record::with_siblings(
        VersionStamp::new(1, 1),
        bytes::Bytes::from(vec![7u8; 1024]),
        (0..8).map(|s| Key::from(format!("user{s:08}"))).collect(),
    )
    .into();
    g.bench_function("hop_shared", |b| b.iter(|| black_box(hop_rec.clone())));
    g.bench_function("hop_deep_clone_baseline", |b| {
        b.iter(|| black_box((*hop_rec).clone()))
    });
    g.bench_function("write_fanout_shared", |b| {
        // One write allocation shared by store + replication log (the
        // server's accept path).
        let rec: hat_storage::SharedRecord = Record::with_siblings(
            VersionStamp::new(1, 1),
            bytes::Bytes::from(vec![7u8; 1024]),
            (0..8).map(|s| Key::from(format!("user{s:08}"))).collect(),
        )
        .into();
        b.iter_batched(
            || (MemStore::new(), ReplicationLog::new(2)),
            |(mut store, mut log)| {
                for i in 0..100u64 {
                    let key = Key::from(format!("user{:08}", i));
                    store.put(key.clone(), rec.clone()).unwrap();
                    log.push(key, rec.clone());
                }
                (store, log)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Group commit + delta catch-up: building one compacted catch-up batch
/// for a 10k-entry lag (hot overwrite workload, 1000 live keys) versus
/// the per-record replay the old path performed (10 full `MAX_BATCH`
/// rebatches, each deep-copied on the wire in the pre-Arc code). The
/// comparison is sender-side CPU only; the point of compaction is the
/// wire, where the single delta ships ~10× fewer records and zero
/// round-trip acks (asserted numerically in
/// `hat-core/tests/isolation_guarantees.rs`).
fn bench_group_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("group_commit");
    let mut log = ReplicationLog::new(1);
    for i in 0..10_000u64 {
        log.push(
            Key::from(format!("user{:08}", i % 1000)),
            Record::new(
                VersionStamp::new(i + 1, 1),
                bytes::Bytes::from(vec![7u8; 128]),
            )
            .into(),
        );
    }
    g.bench_function("catchup_10k_lag_compacted", |b| {
        b.iter(|| black_box(log.catchup_for(0)))
    });
    g.bench_function("replay_10k_lag_baseline", |b| {
        // Per-record replay: the peer acks each MAX_BATCH chunk and the
        // sender rebatches from the next cursor — ten round trips'
        // worth of batch construction, with each record deep-copied
        // onto the wire the way the pre-`SharedRecord` message types
        // required.
        b.iter(|| {
            let mut peer_log = log.clone();
            let mut total = 0usize;
            loop {
                let (start, batch) = peer_log.batch_for(0);
                if batch.is_empty() {
                    break;
                }
                let wire: Vec<(Key, Record)> = batch
                    .iter()
                    .map(|(k, r)| (k.clone(), (**r).clone()))
                    .collect();
                total += black_box(wire).len();
                peer_log.ack(0, start + batch.len() as u64);
            }
            black_box(total)
        })
    });
    g.finish();
}

/// Shard routing: `cluster_of` sits on every message dispatch (the
/// server resolves the receiving cluster to decide ownership), so it
/// must stay an O(1) table lookup. The scan baseline is the cost the
/// pre-table implementation paid — a walk over every server list — and
/// exists so a regression back to scanning shows up as a step change at
/// a 4×64 deployment rather than hiding inside protocol noise.
fn bench_shard_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_routing");
    let clusters = 4usize;
    let servers_each = 64usize;
    let mut next = 0u32;
    let servers: Vec<Vec<hat_sim::NodeId>> = (0..clusters)
        .map(|_| {
            (0..servers_each)
                .map(|_| {
                    let id = next;
                    next += 1;
                    id
                })
                .collect()
        })
        .collect();
    let layout = hat_core::ClusterLayout::new(servers.clone(), vec![next, next + 1], vec![0, 1]);
    let ids: Vec<hat_sim::NodeId> = (0..(clusters * servers_each) as u32).collect();
    g.bench_function("cluster_of_table", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 17) % ids.len();
            black_box(layout.cluster_of(ids[i]))
        })
    });
    g.bench_function("cluster_of_scan_baseline", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 17) % ids.len();
            let id = ids[i];
            black_box(servers.iter().position(|c| c.contains(&id)))
        })
    });
    let keys: Vec<Key> = (0..1000u64)
        .map(|i| Key::from(format!("user{i:08}")))
        .collect();
    g.bench_function("ring_owner_position", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % keys.len();
            black_box(layout.ring().owner_position(&keys[i]))
        })
    });
    g.bench_function("master_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7) % keys.len();
            black_box(layout.master(&keys[i]))
        })
    });
    g.finish();
}

fn bench_latency_model(c: &mut Criterion) {
    let model = LatencyModel::default();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("latency_sample_wan", |b| {
        b.iter(|| {
            black_box(model.sample_rtt_ms(
                LinkClass::CrossRegion(hat_sim::latency::RegionPair(
                    hat_sim::Region::Virginia,
                    hat_sim::Region::Oregon,
                )),
                &mut rng,
            ))
        })
    });
}

fn bench_ycsb_generation(c: &mut Criterion) {
    let mut src = YcsbSource::new(YcsbConfig::default());
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("ycsb_next_txn", |b| {
        b.iter(|| black_box(hat_core::client::TxnSource::next_txn(&mut src, &mut rng)))
    });
}

fn history_fixture(txns: usize) -> Vec<TxnRecord> {
    let mut records = Vec::with_capacity(txns);
    for i in 0..txns as u64 {
        let id = Timestamp::new(i + 1, (i % 8) as u32 + 1);
        let prev = Timestamp::new(i, ((i + 7) % 8) as u32 + 1);
        records.push(TxnRecord {
            id,
            session: (i % 8) as u32 + 1,
            session_seq: i / 8,
            ops: vec![
                OpRecord::Read {
                    key: Key::from(format!("k{}", i % 64)),
                    observed: if i == 0 { Timestamp::INITIAL } else { prev },
                    value: bytes::Bytes::from("v"),
                },
                OpRecord::Write {
                    key: Key::from(format!("k{}", i % 64)),
                    value: bytes::Bytes::from("v"),
                },
            ],
            outcome: TxnOutcome::Committed,
        });
    }
    records
}

fn bench_history_checker(c: &mut Criterion) {
    let records = history_fixture(500);
    c.bench_function("dsg_check_500_txns_serializable", |b| {
        b.iter_batched(
            || records.clone(),
            |r| black_box(check(r, IsolationLevel::Serializable)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("dsg_check_500_txns_rc", |b| {
        b.iter_batched(
            || records.clone(),
            |r| black_box(check(r, IsolationLevel::ReadCommitted)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_storage, bench_replication_log, bench_record_path, bench_group_commit, bench_shard_routing, bench_latency_model, bench_ycsb_generation, bench_history_checker
}
criterion_main!(benches);
