//! Criterion micro-benchmarks for the substrates: storage engine,
//! version stamps, history checker, latency sampling and workload
//! generation.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use hat_core::protocol::replication::ReplicationLog;
use hat_core::{OpRecord, Timestamp, TxnOutcome, TxnRecord};
use hat_history::{check, IsolationLevel};
use hat_sim::latency::LinkClass;
use hat_sim::LatencyModel;
use hat_storage::{Key, MemStore, Record, Store, VersionStamp};
use hat_workloads::{YcsbConfig, YcsbSource};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage");
    g.bench_function("memstore_put", |b| {
        b.iter_batched(
            MemStore::new,
            |mut store| {
                for i in 0..1000u64 {
                    let key = Key::from(format!("user{:08}", i % 128));
                    store
                        .put(key, Record::new(VersionStamp::new(i + 1, 1), "value"))
                        .unwrap();
                }
                store
            },
            BatchSize::SmallInput,
        )
    });
    let mut store = MemStore::new();
    for i in 0..10_000u64 {
        store
            .put(
                Key::from(format!("user{:08}", i % 1000)),
                Record::new(VersionStamp::new(i + 1, 1), "value"),
            )
            .unwrap();
    }
    g.bench_function("memstore_get_latest", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1000;
            black_box(store.latest(format!("user{i:08}").as_bytes()))
        })
    });
    g.bench_function("memstore_snapshot_read", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1000;
            black_box(
                store.latest_at_or_below(
                    format!("user{i:08}").as_bytes(),
                    VersionStamp::new(5000, 0),
                ),
            )
        })
    });
    g.bench_function("memstore_scan_prefix", |b| {
        b.iter(|| black_box(store.scan_prefix(b"user0000001")))
    });
    g.finish();
}

/// The anti-entropy hot path: an unacknowledged suffix is re-batched on
/// every tick for every peer. `batch_for` now hands out `Arc` clones of
/// the log entries; the `deep_clone` baseline is what the old
/// `to_vec`-of-owned-records implementation paid per tick — the
/// difference is the win of index/Arc-based batches.
fn bench_replication_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication_log");
    let mut log = ReplicationLog::new(2);
    for i in 0..1024u64 {
        let key = Key::from(format!("user{:08}", i));
        let siblings = (0..8)
            .map(|s| Key::from(format!("user{:08}", i + s)))
            .collect();
        let record = Record::with_siblings(
            VersionStamp::new(i + 1, 1),
            bytes::Bytes::from(vec![7u8; 1024]),
            siblings,
        );
        log.push(key, record);
    }
    g.bench_function("batch_for_arc", |b| {
        // Peer 0 never acks: the full suffix is re-batched every call,
        // exactly the partitioned-peer worst case.
        b.iter(|| black_box(log.batch_for(0)))
    });
    g.bench_function("batch_for_deep_clone_baseline", |b| {
        b.iter(|| {
            let (start, batch) = log.batch_for(0);
            // Clone out of the Arcs: the per-record cost the old
            // implementation paid on every tick.
            let owned: Vec<(Key, Record)> = batch.iter().map(|e| (**e).clone()).collect();
            black_box((start, owned))
        })
    });
    g.finish();
}

fn bench_latency_model(c: &mut Criterion) {
    let model = LatencyModel::default();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("latency_sample_wan", |b| {
        b.iter(|| {
            black_box(model.sample_rtt_ms(
                LinkClass::CrossRegion(hat_sim::latency::RegionPair(
                    hat_sim::Region::Virginia,
                    hat_sim::Region::Oregon,
                )),
                &mut rng,
            ))
        })
    });
}

fn bench_ycsb_generation(c: &mut Criterion) {
    let mut src = YcsbSource::new(YcsbConfig::default());
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("ycsb_next_txn", |b| {
        b.iter(|| black_box(hat_core::client::TxnSource::next_txn(&mut src, &mut rng)))
    });
}

fn history_fixture(txns: usize) -> Vec<TxnRecord> {
    let mut records = Vec::with_capacity(txns);
    for i in 0..txns as u64 {
        let id = Timestamp::new(i + 1, (i % 8) as u32 + 1);
        let prev = Timestamp::new(i, ((i + 7) % 8) as u32 + 1);
        records.push(TxnRecord {
            id,
            session: (i % 8) as u32 + 1,
            session_seq: i / 8,
            ops: vec![
                OpRecord::Read {
                    key: Key::from(format!("k{}", i % 64)),
                    observed: if i == 0 { Timestamp::INITIAL } else { prev },
                    value: bytes::Bytes::from("v"),
                },
                OpRecord::Write {
                    key: Key::from(format!("k{}", i % 64)),
                    value: bytes::Bytes::from("v"),
                },
            ],
            outcome: TxnOutcome::Committed,
        });
    }
    records
}

fn bench_history_checker(c: &mut Criterion) {
    let records = history_fixture(500);
    c.bench_function("dsg_check_500_txns_serializable", |b| {
        b.iter_batched(
            || records.clone(),
            |r| black_box(check(r, IsolationLevel::Serializable)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("dsg_check_500_txns_rc", |b| {
        b.iter_batched(
            || records.clone(),
            |r| black_box(check(r, IsolationLevel::ReadCommitted)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_storage, bench_replication_log, bench_latency_model, bench_ycsb_generation, bench_history_checker
}
criterion_main!(benches);
