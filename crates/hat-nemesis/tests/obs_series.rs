//! Time-sliced telemetry under faults (PR 10): the per-window series
//! with embedded fault marks must show the paper's availability split —
//! HAT engines keep committing *inside* a split-brain partition while
//! master/2PL write throughput drops to zero and recovers after the
//! heal — and the whole telemetry pipeline must stay deterministic and
//! quiet (no streaming-checker false alarms) across the catalog.

use hat_core::ProtocolKind;
use hat_nemesis::{run, NemesisOpts, SplitBrain};

const SEED: u64 = 0xBAD_CAFE;

fn opts() -> NemesisOpts {
    NemesisOpts {
        seed: SEED,
        ..NemesisOpts::default()
    }
}

/// The split-brain partition window as the series itself reports it:
/// `(begin_us, end_us)` of the single partition mark pair. Taken from
/// the marks rather than the schedule because slow engines (2PL burning
/// lock timeouts) reach the injection instant later in virtual time.
fn marked_window(r: &hat_nemesis::NemesisReport) -> (u64, u64) {
    let begin = r
        .series
        .marks
        .iter()
        .find(|m| m.begin && m.label.starts_with("partition"))
        .expect("partition begin mark")
        .t_us;
    let end = r
        .series
        .marks
        .iter()
        .find(|m| !m.begin && m.label.starts_with("partition"))
        .expect("partition end mark")
        .t_us;
    (begin, end)
}

/// One sample window of slack past the injection mark: the first
/// window *ending* inside the partition still contains commits from
/// just before it opened.
const SLACK_US: u64 = 20_000;

#[test]
fn split_brain_availability_split_is_visible_per_window() {
    for protocol in ProtocolKind::ALL {
        let r = run(protocol, &SplitBrain, &opts());
        let (begin, end) = marked_window(&r);
        assert!(end > begin, "{protocol:?}: unordered partition marks");
        assert!(
            r.series.marks_paired(&[]),
            "{protocol:?}: unpaired fault marks in {:?}",
            r.series.marks
        );
        let inside = r.series.writes_committed_in(begin + SLACK_US, end);
        let after = r.series.writes_committed_in(end, u64::MAX);
        match protocol {
            // §6: serializability and linearizable master reads cannot
            // be HAT — with every workload pair's masters straddling
            // the cut, not one write commits inside the window...
            ProtocolKind::Master | ProtocolKind::TwoPhaseLocking => {
                assert_eq!(
                    inside, 0,
                    "[seed={SEED:#x}] {protocol:?}: wrote through a total partition"
                );
                // ...but the engine recovers once the partition heals.
                assert!(
                    after > 0,
                    "[seed={SEED:#x}] {protocol:?}: no write committed after the heal"
                );
            }
            // The HAT engines keep committing writes throughout.
            _ => {
                assert!(
                    inside > 0,
                    "[seed={SEED:#x}] {protocol:?}: HAT engine starved inside the \
                     partition (series {:?})",
                    r.series.points.len()
                );
            }
        }
        assert_eq!(
            r.stream_violations, 0,
            "[seed={SEED:#x}] {protocol:?}: streaming checker tripped at its \
             advertised level"
        );
        assert!(r.ok(), "[seed={SEED:#x}] {protocol:?}: claims failed");
    }
}

#[test]
fn series_timestamps_are_monotone_and_unavailability_totals_match() {
    for protocol in [ProtocolKind::Eventual, ProtocolKind::TwoPhaseLocking] {
        let r = run(protocol, &SplitBrain, &opts());
        for w in r.series.points.windows(2) {
            assert!(
                w[1].t_us > w[0].t_us,
                "{protocol:?}: non-monotone window timestamps"
            );
        }
        let unavailable: u64 = r.series.points.iter().map(|p| p.unavailable).sum();
        assert_eq!(
            unavailable, r.unavailable,
            "{protocol:?}: series unavailability disagrees with the run total"
        );
        let committed: u64 = r.series.points.iter().map(|p| p.committed).sum();
        assert_eq!(
            committed, r.committed,
            "{protocol:?}: series throughput disagrees with the run total"
        );
    }
}

/// t-visibility: the probe pair must resolve a finite staleness
/// distribution for the weak engines even while a partition delays
/// remote visibility (crashed or cut replicas simply resolve later).
#[test]
fn staleness_probes_resolve_under_the_split() {
    for protocol in [ProtocolKind::Eventual, ProtocolKind::ReadCommitted] {
        let r = run(protocol, &SplitBrain, &opts());
        let p = r
            .staleness
            .unwrap_or_else(|| panic!("{protocol:?}: no probe resolved"));
        assert!(p.count > 0);
        assert!(
            p.max.is_finite(),
            "{protocol:?}: infinite staleness measured"
        );
        // Replication through a 300ms partition plus anti-entropy heal
        // keeps worst-case visibility bounded well under the run tail.
        assert!(
            p.max < 5_000.0,
            "{protocol:?}: staleness max {} ms exceeds the heal tail",
            p.max
        );
    }
}

/// Same-seed runs reproduce the telemetry byte for byte — series,
/// registry exposition and JSON exports included (the report equality
/// in the conformance suite covers the structs; this pins the exports).
#[test]
fn same_seed_split_brain_telemetry_is_byte_identical() {
    let a = run(ProtocolKind::Mav, &SplitBrain, &opts());
    let b = run(ProtocolKind::Mav, &SplitBrain, &opts());
    assert_eq!(a, b, "same-seed reports diverged");
    assert_eq!(a.series.to_json(), b.series.to_json());
    assert_eq!(a.registry.prometheus(), b.registry.prometheus());
    assert_eq!(a.registry.to_json(), b.registry.to_json());
}
