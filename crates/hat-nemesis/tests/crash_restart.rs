//! End-to-end crash-restart: under every engine, commit a write and
//! kill the server that owns it before the simulation advances — commit
//! propagation (gossip, MAV notifies) is still in flight — then tear the
//! WAL tail, restart, and prove the recovery protocol:
//!
//! * the restarted server replays a non-empty WAL
//!   (`wal_records_replayed != 0` — restarts provably serve
//!   log-recovered state, not a blank store);
//! * the commit-acknowledged write survives the torn tail and is
//!   readable after restart (acked means synced: tearing only ever
//!   removes the frame that was in flight, never durable records);
//! * every replica group reconverges and the engine's advertised
//!   isolation level holds over the whole history.
//!
//! Every assertion message carries the engine and seed, so a failure is
//! replayable verbatim.

use hat_core::{
    ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, SessionOptions, SystemConfig,
};
use hat_history::check;
use hat_nemesis::{advertised_level, converged};
use hat_sim::{LatencyModel, SimDuration};
use hat_storage::{Key, SyncPolicy};

const SEED: u64 = 0x0C4A_54ED;
const TORN_BYTES: u64 = 48;

#[test]
fn mid_commit_crash_with_torn_tail_recovers_under_every_engine() {
    for protocol in ProtocolKind::ALL {
        let dir =
            std::env::temp_dir().join(format!("hat-crash-e2e-{}-{protocol:?}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut cfg = SystemConfig::new(protocol);
        cfg.op_deadline = SimDuration::from_millis(40);
        cfg.lock_timeout = SimDuration::from_millis(25);
        let mut front = DeploymentBuilder::new(protocol)
            .seed(SEED)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(1)
            .config(cfg)
            .latency(LatencyModel {
                wan_scale: 0.1,
                ..LatencyModel::default()
            })
            .durable(dir.clone(), SyncPolicy::Always)
            .build();
        let s = front.open_session(SessionOptions::default());

        // Settled history first, so the victim's WAL has a body to
        // replay beneath the write the crash races.
        for i in 0..4 {
            front
                .try_txn(&s, |t| {
                    t.put("ck0", &format!("v{i}"))?;
                    t.put("ck1", &format!("w{i}"))
                })
                .unwrap_or_else(|e| panic!("[{protocol:?} seed={SEED:#x}] warmup {i}: {e:?}"));
        }
        front.run_for(SimDuration::from_millis(30));

        // The mid-commit kill: the moment the commit is acknowledged,
        // crash the server the write landed on. Gossip to the sibling
        // cluster has not run yet — recovery must resurrect the write
        // from the torn log alone.
        front
            .try_txn(&s, |t| t.put("ck0", "final"))
            .unwrap_or_else(|e| panic!("[{protocol:?} seed={SEED:#x}] final commit: {e:?}"));
        let key = Key::from("ck0".to_owned());
        let victim = match protocol {
            ProtocolKind::Master | ProtocolKind::TwoPhaseLocking => front.layout().master(&key),
            // Sticky sessions write to their own cluster's replica, and
            // the only open session lives in cluster 0.
            _ => front.layout().replica_in_cluster(&key, 0),
        };
        front.crash_server(victim);
        front.tear_wal_tail(victim, TORN_BYTES);
        front.run_for(SimDuration::from_millis(50));
        front.restart_server(victim);
        front.quiesce();
        front.quiesce();

        let stats = front.server_stats();
        assert_eq!(
            stats.crashes, 1,
            "[{protocol:?} seed={SEED:#x}] exactly one crash injected"
        );
        assert!(
            stats.wal_records_replayed > 0,
            "[{protocol:?} seed={SEED:#x}] restart must serve WAL-recovered state, \
             not a blank store"
        );

        // MAV acknowledges a client write while it is still in the
        // volatile pending set (promotion to the durable good set is an
        // async notification round), so a crash in that window may
        // legitimately lose the not-yet-promoted write. Every other
        // engine installs through the WAL before acking.
        if protocol != ProtocolKind::Mav {
            let got = front
                .try_txn(&s, |t| t.get("ck0"))
                .unwrap_or_else(|e| panic!("[{protocol:?} seed={SEED:#x}] read-back: {e:?}"));
            assert_eq!(
                got.as_deref(),
                Some("final"),
                "[{protocol:?} seed={SEED:#x}] commit-acknowledged write must survive \
                 the torn tail"
            );
        }

        assert!(
            converged(&front),
            "[{protocol:?} seed={SEED:#x}] replica groups diverged after recovery"
        );
        let records = front.take_records();
        let report = check(records, advertised_level(protocol));
        assert!(
            report.violations.is_empty(),
            "[{protocol:?} seed={SEED:#x}] {:?} violated across crash-restart: {:?}",
            advertised_level(protocol),
            report.violations
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}
