//! Tier-1 nemesis conformance: every protocol engine, through every
//! adversarial schedule, at fixed seeds.
//!
//! For each `(engine, schedule)` pair the runner injects the schedule's
//! faults while a closed-loop workload keeps committing, heals the
//! deployment, and then asserts the three HAT claims: the advertised
//! isolation level held through the faults, every replica group
//! converged, and each crash-restart provably served WAL-recovered
//! state. Every assertion message carries the schedule name and the
//! seed, so a failure is replayable verbatim.

use hat_core::ProtocolKind;
use hat_nemesis::{run, standard_catalog, CrashRestart, NemesisOpts, Rolling};
use hat_sim::SimDuration;

const SEED: u64 = 0xBAD_CAFE;

/// The canonical schedules (split-brain, rolling partition, flapping
/// link, clock skew, crash-restart with torn WAL, the composed storm,
/// and live handoffs) — shared with `exp_nemesis` via
/// [`standard_catalog`].
fn schedules() -> Vec<Box<dyn hat_nemesis::Nemesis>> {
    standard_catalog()
}

#[test]
fn all_engines_hold_their_advertised_level_under_every_schedule() {
    for protocol in ProtocolKind::ALL {
        for nemesis in &schedules() {
            let opts = NemesisOpts {
                seed: SEED,
                ..NemesisOpts::default()
            };
            let r = run(protocol, nemesis.as_ref(), &opts);
            assert!(
                r.committed > 0,
                "[schedule={} seed={:#x}] {protocol:?}: no transaction committed",
                r.schedule,
                r.seed
            );
            assert_eq!(
                r.violations, 0,
                "[schedule={} seed={:#x}] {protocol:?} violated {:?} \
                 (committed={} unavailable={} aborted={})",
                r.schedule, r.seed, r.level, r.committed, r.unavailable, r.aborted
            );
            assert!(
                r.converged,
                "[schedule={} seed={:#x}] {protocol:?}: replicas diverged after heal",
                r.schedule, r.seed
            );
            if r.crashes > 0 {
                assert!(
                    r.wal_records_replayed > 0,
                    "[schedule={} seed={:#x}] {protocol:?}: {} crashes but no WAL \
                     records replayed — restarts served empty stores",
                    r.schedule,
                    r.seed,
                    r.crashes
                );
            }
        }
    }
}

/// Determinism: the whole adversarial pipeline — faults, workload,
/// recovery — replays bit-identically from the seed. `NemesisReport`
/// includes the full recorded history, so this is equality of every
/// operation of every transaction, not just summary counters.
#[test]
fn same_seed_nemesis_runs_are_bit_identical() {
    let all = schedules();
    let combined = all
        .iter()
        .find(|n| n.name().contains('+'))
        .expect("catalog has the composed schedule");
    for protocol in ProtocolKind::ALL {
        let opts = NemesisOpts {
            seed: 0x5EED_0001,
            ..NemesisOpts::default()
        };
        let a = run(protocol, combined.as_ref(), &opts);
        let b = run(protocol, combined.as_ref(), &opts);
        assert_eq!(
            a,
            b,
            "[schedule={} seed={:#x}] {protocol:?}: same-seed runs diverged",
            combined.name(),
            opts.seed
        );
    }
}

/// The fault counters are live: rolling partitions actually drop
/// messages, crash schedules actually crash and replay.
#[test]
fn fault_ledgers_record_real_damage() {
    let opts = NemesisOpts {
        seed: SEED,
        ..NemesisOpts::default()
    };
    let rolling = run(
        ProtocolKind::Eventual,
        &Rolling {
            period: SimDuration::from_millis(80),
            outage: SimDuration::from_millis(40),
        },
        &opts,
    );
    assert!(
        rolling.msgs_dropped_by_partition > 0,
        "[schedule={} seed={:#x}] partitions dropped nothing",
        rolling.schedule,
        rolling.seed
    );
    let crashes = run(
        ProtocolKind::Eventual,
        &CrashRestart {
            period: SimDuration::from_millis(140),
            downtime: SimDuration::from_millis(50),
            torn_tail: 48,
        },
        &opts,
    );
    assert!(
        crashes.crashes >= 2,
        "[schedule={} seed={:#x}] expected repeated crashes, got {}",
        crashes.schedule,
        crashes.seed,
        crashes.crashes
    );
    assert!(
        crashes.wal_records_replayed > 0,
        "[schedule={} seed={:#x}] no WAL replay despite {} crashes",
        crashes.schedule,
        crashes.seed,
        crashes.crashes
    );
}

/// Partitions cost the strong engines availability (the paper's central
/// trade-off) while the HAT engines keep committing. We assert the weak
/// engines' availability rather than the strong engines' unavailability
/// — the latter depends on which side of each cut the workload lands —
/// but every engine must keep its guarantee either way.
#[test]
fn hat_engines_stay_available_through_rolling_partitions() {
    let opts = NemesisOpts {
        seed: SEED,
        ..NemesisOpts::default()
    };
    let nemesis = Rolling {
        period: SimDuration::from_millis(80),
        outage: SimDuration::from_millis(40),
    };
    for protocol in [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
        ProtocolKind::RampFast,
    ] {
        let r = run(protocol, &nemesis, &opts);
        assert!(
            r.committed > r.unavailable,
            "[schedule={} seed={:#x}] {protocol:?} mostly unavailable: \
             committed={} unavailable={}",
            r.schedule,
            r.seed,
            r.committed,
            r.unavailable
        );
    }
}
