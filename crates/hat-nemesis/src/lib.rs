//! Deterministic fault injection for HAT deployments.
//!
//! A *nemesis* is a seeded, fully deterministic adversarial schedule —
//! a time-ordered list of [`Fault`]s composed from rolling partitions,
//! asymmetric (one-way) link loss, per-node clock skew, latency spikes,
//! crash-restart with WAL replay and torn log tails, and live shard
//! handoffs racing the workload mid-transaction. The
//! [`runner`] drives every protocol engine through a schedule while a
//! closed-loop workload keeps committing, then heals the deployment,
//! waits for anti-entropy to settle, and asserts:
//!
//! 1. the engine's **advertised isolation level** still holds over the
//!    recorded history (`hat-history`'s phenomenon checkers — Table 3
//!    of the paper, plus the RAMP follow-up's Read Atomic row);
//! 2. every replica **converges** to the same per-key newest version;
//! 3. a restarted replica provably serves **WAL-recovered state**
//!    (`wal_records_replayed > 0`).
//!
//! HAT systems promise exactly this: availability and their (weak but
//! honest) isolation guarantees *through* partitions and node failures,
//! not merely in their absence. The nemesis harness is the executable
//! form of that claim.
//!
//! Determinism: schedules are pure functions of the cluster layout and
//! the horizon; the simulator consumes one seeded rng stream; faults
//! never draw from it (clock skew offsets hash the node id, latency
//! scaling multiplies the sampled value without extra draws). Two runs
//! with the same seed are bit-identical — a failing schedule replays
//! exactly from `(schedule, engine, seed)`, which every assertion
//! message includes.

pub mod runner;
pub mod schedule;

pub use runner::{advertised_level, converged, run, workload_keys, NemesisOpts, NemesisReport};
pub use schedule::{
    standard_catalog, Compose, CrashRestart, Fault, Flapping, Handoffs, LatencySpikes, Nemesis,
    Rolling, SkewClocks, SplitBrain,
};
