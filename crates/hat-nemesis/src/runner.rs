//! Drives one engine through one nemesis schedule and checks the wreck.

use crate::schedule::{Fault, Nemesis};
use hat_core::{
    format_txn_window, ClusterSpec, DeploymentBuilder, Frontend, HatError, ProtocolKind, Session,
    SessionOptions, SimFrontend, SystemConfig, TraceEventKind, TxnId, TxnRecord,
};
use hat_history::{check, IsolationLevel};
use hat_obs::{LatencyPercentiles as StalenessPercentiles, MetricsRegistry, ObsSink, TimeSeries};
use hat_sim::{LatencyModel, LatencyPercentiles, NodeId, Partition, SimDuration, SimTime};
use hat_storage::{Key, SyncPolicy, VersionStamp};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shape and pacing of a nemesis run. The defaults provision a paper
/// deployment (VA + OR, two servers each, two sessions per cluster) with
/// WAN latency scaled down 10× so a whole adversarial run fits in under
/// a second of simulated time.
#[derive(Debug, Clone)]
pub struct NemesisOpts {
    /// Engine seed (the single rng stream; same seed ⇒ bit-identical run).
    pub seed: u64,
    /// Fault-injection window.
    pub horizon: SimDuration,
    /// Gap between workload rounds.
    pub tick: SimDuration,
    /// Servers per cluster (two clusters, VA and OR).
    pub servers_per_cluster: usize,
    /// Hot-keyspace size the workload cycles over.
    pub keys: usize,
}

impl Default for NemesisOpts {
    fn default() -> Self {
        NemesisOpts {
            seed: 0x0ADE_57ED,
            horizon: SimDuration::from_millis(600),
            tick: SimDuration::from_millis(15),
            servers_per_cluster: 2,
            keys: 6,
        }
    }
}

/// What one `(engine, schedule, seed)` run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct NemesisReport {
    /// Engine under test.
    pub protocol: ProtocolKind,
    /// Schedule name.
    pub schedule: String,
    /// Engine seed.
    pub seed: u64,
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that failed unavailable (paper §2 availability:
    /// blocked on an unreachable replica).
    pub unavailable: u64,
    /// Transactions aborted by the system (lock timeouts, validation).
    pub aborted: u64,
    /// Isolation level the history was checked at.
    pub level: IsolationLevel,
    /// Phenomenon violations found at that level (must be 0).
    pub violations: usize,
    /// Messages dropped by active partitions, across servers.
    pub msgs_dropped_by_partition: u64,
    /// Server crashes injected.
    pub crashes: u64,
    /// WAL records replayed by restarted servers (must be > 0 whenever
    /// `crashes > 0`: restarts provably serve log-recovered state).
    pub wal_records_replayed: u64,
    /// Every replica group agreed on per-key newest versions post-heal.
    pub converged: bool,
    /// Commit-latency tail percentiles aggregated across sessions.
    pub commit_latency: LatencyPercentiles,
    /// Per-window telemetry timeline with embedded fault marks: the
    /// paper's availability split readable window by window.
    pub series: TimeSeries,
    /// End-of-run metrics registry snapshot, with the client/server
    /// counter exposition and probe/checker metrics folded in.
    pub registry: MetricsRegistry,
    /// t-visibility staleness percentiles from the online probe pair
    /// (None when no probe resolved before the run ended).
    pub staleness: Option<StalenessPercentiles>,
    /// Violations flagged *live* by the streaming checker. Must be 0,
    /// like the offline `violations` — the streamed check is bounded-
    /// memory and may miss (evicted writers), but never false-alarms.
    pub stream_violations: u64,
    /// The full recorded history (for bit-identical same-seed checks).
    pub records: Vec<TxnRecord>,
}

impl NemesisReport {
    /// Availability + correctness in one predicate: the advertised level
    /// held, replicas converged, progress was made, and every crash
    /// restart served recovered state.
    pub fn ok(&self) -> bool {
        self.violations == 0
            && self.stream_violations == 0
            && self.converged
            && self.committed > 0
            && (self.crashes == 0 || self.wal_records_replayed > 0)
    }
}

/// The strongest isolation level each engine's nemesis history must be
/// clean at — Table 3's advertised guarantees (plus the RAMP follow-up's
/// Read Atomic row). Mirrors the conformance suite: the nemesis workload
/// reads multi-key pairs through one-shot `get_many`, so both RAMP
/// variants are held to full Read Atomic.
pub fn advertised_level(protocol: ProtocolKind) -> IsolationLevel {
    match protocol {
        ProtocolKind::Eventual => IsolationLevel::ReadUncommitted,
        ProtocolKind::ReadCommitted => IsolationLevel::ReadCommitted,
        ProtocolKind::Mav => IsolationLevel::MonotonicAtomicView,
        ProtocolKind::RampFast => IsolationLevel::ReadAtomic,
        ProtocolKind::RampSmall => IsolationLevel::ReadAtomic,
        ProtocolKind::Master => IsolationLevel::ReadUncommitted,
        ProtocolKind::TwoPhaseLocking => IsolationLevel::Serializable,
    }
}

/// Deterministic workload key names whose masters stripe round-robin
/// across clusters: key `i`'s master lives in cluster `i % clusters`
/// (found by probing candidate names against the layout's placement
/// hash — a pure function of the layout, no rng). Adjacent workload
/// pairs therefore always straddle an inter-cluster cut, which is what
/// keeps the split-brain availability split sharp: a 2PL write must
/// lock a master on each side of the cut, so zero writes commit inside
/// the window, while the HAT engines keep committing against whatever
/// replicas they can reach.
pub fn workload_keys(layout: &hat_core::ClusterLayout, n: usize) -> Vec<String> {
    let clusters = layout.servers.len().max(1);
    (0..n)
        .map(|i| {
            let want = i % clusters;
            (0..10_000)
                .map(|c| format!("nk{i}-{c}"))
                .find(|k| layout.master_cluster(&Key::from(k.clone())) == want)
                .expect("some candidate key masters in the wanted cluster")
        })
        .collect()
}

/// Monotonic run counter: every run gets a private durable-store
/// directory even when tests run concurrently in one process.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(protocol: ProtocolKind, seed: u64) -> PathBuf {
    let n = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "hat-nemesis-{}-{protocol:?}-{seed}-{n}",
        std::process::id()
    ))
}

/// Runs `protocol` through `nemesis` and returns the report. The
/// deployment is always durable (WAL-backed stores), so crash faults
/// have a log to tear and restarts have one to replay.
pub fn run(protocol: ProtocolKind, nemesis: &dyn Nemesis, opts: &NemesisOpts) -> NemesisReport {
    let dir = fresh_dir(protocol, opts.seed);
    let report = run_in(protocol, nemesis, opts, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn run_in(
    protocol: ProtocolKind,
    nemesis: &dyn Nemesis,
    opts: &NemesisOpts,
    dir: &Path,
) -> NemesisReport {
    let mut cfg = SystemConfig::new(protocol);
    // Fast failure detection: an unreachable replica should cost an
    // unavailability data point, not half the horizon. Both bounds stay
    // an order of magnitude above the (scaled) WAN round trip.
    cfg.op_deadline = SimDuration::from_millis(40);
    cfg.lock_timeout = SimDuration::from_millis(25);
    // Always trace: the sink is rng-neutral (same-seed runs stay
    // bit-identical), and a conformance failure can then dump the
    // fault-annotated timeline around the violating transaction.
    cfg.trace = true;
    // Always observe: the live registry, the per-window time series
    // with fault marks, the t-visibility probes and the streaming
    // checker are equally rng-neutral, so telemetry is free to leave on.
    cfg.obs.enabled = true;
    let mut front = DeploymentBuilder::new(protocol)
        .seed(opts.seed)
        .clusters(ClusterSpec::va_or(opts.servers_per_cluster))
        .sessions_per_cluster(2)
        .config(cfg)
        .latency(LatencyModel {
            wan_scale: 0.1,
            ..LatencyModel::default()
        })
        .durable(dir.to_path_buf(), SyncPolicy::Always)
        .build();
    let sessions: Vec<Session> = (0..4)
        .map(|_| front.open_session(SessionOptions::default()))
        .collect();

    let keys = workload_keys(front.layout(), opts.keys);
    let schedule = nemesis.schedule(front.layout(), opts.horizon);
    let mut crashed: BTreeSet<NodeId> = BTreeSet::new();
    let mut spiked = false;
    let mut next = 0usize;
    let (mut committed, mut unavailable, mut aborted) = (0u64, 0u64, 0u64);
    let end = SimTime::ZERO + opts.horizon;
    let mut round = 0usize;
    while front.now() < end {
        while next < schedule.len() && schedule[next].0 <= front.now() {
            apply(&mut front, &schedule[next].1, &mut crashed, &mut spiked);
            next += 1;
        }
        workload_round(
            &mut front,
            &sessions,
            round,
            &keys,
            &mut committed,
            &mut unavailable,
            &mut aborted,
        );
        round += 1;
        front.run_for(opts.tick);
    }
    // Fire anything left (typically the restarts paired with the last
    // crashes), then heal: revive stragglers, restore latency, let every
    // bounded partition expire, and give anti-entropy + bootstrap
    // recovery time to settle.
    for (_, fault) in &schedule[next..] {
        if let Fault::Restart { node } = fault {
            if crashed.remove(node) {
                front
                    .obs_sink()
                    .fault_end(front.now().as_micros(), &format!("crash node {node}"));
                front.restart_server(*node);
            }
        }
    }
    for node in std::mem::take(&mut crashed) {
        front
            .obs_sink()
            .fault_end(front.now().as_micros(), &format!("crash node {node}"));
        front.restart_server(node);
    }
    if std::mem::take(&mut spiked) {
        // The horizon cut mid-spike: close the mark so the exported
        // series keeps every bounded fault paired.
        front
            .obs_sink()
            .fault_end(front.now().as_micros(), "latency spike");
    }
    front.engine_mut().set_latency_factor(1.0);
    let max_cut = schedule
        .iter()
        .filter_map(|(t, f)| match f {
            Fault::Partition { duration, .. } => Some(*t + *duration),
            _ => None,
        })
        .max()
        .unwrap_or(SimTime::ZERO);
    if max_cut > front.now() {
        front.run_for(max_cut.since(front.now()));
    }
    front.quiesce();
    front.quiesce();

    let records = front.take_records();
    let level = advertised_level(protocol);
    let report = check(records.clone(), level);
    if !report.violations.is_empty() {
        dump_violation_traces(
            &front,
            &report.violations,
            &records,
            protocol,
            nemesis,
            opts,
        );
    }
    let stats = front.server_stats();
    let series = front.obs_series().unwrap_or_default();
    let registry = front.obs_registry().unwrap_or_default();
    let staleness = front.obs_sink().staleness();
    let stream_violations = front.obs_sink().violations();
    NemesisReport {
        protocol,
        schedule: nemesis.name(),
        seed: opts.seed,
        committed,
        unavailable,
        aborted,
        level,
        violations: report.violations.len(),
        msgs_dropped_by_partition: stats.msgs_dropped_by_partition,
        crashes: stats.crashes,
        wal_records_replayed: stats.wal_records_replayed,
        converged: converged(&front),
        commit_latency: front.aggregate_metrics().commit_percentiles(),
        series,
        registry,
        staleness,
        stream_violations,
        records,
    }
}

/// On a conformance failure, prints the fault-annotated trace timeline
/// around each violating transaction (capped at three) so the report is
/// debuggable without a re-run: which partitions/crashes were open, what
/// the client retried, and which messages were dropped.
fn dump_violation_traces(
    front: &SimFrontend,
    violations: &[hat_history::Violation],
    records: &[TxnRecord],
    protocol: ProtocolKind,
    nemesis: &dyn Nemesis,
    opts: &NemesisOpts,
) {
    let events = front.trace_events();
    for v in violations.iter().take(3) {
        eprintln!(
            "[schedule={} seed={:#x}] {protocol:?}: {v}",
            nemesis.name(),
            opts.seed
        );
        if let Some(rec) = v
            .txns
            .iter()
            .find_map(|t| records.iter().find(|r| r.id == *t))
        {
            let txn = TxnId::new(rec.session, rec.session_seq);
            eprint!("{}", format_txn_window(&events, txn, 50_000));
        }
    }
}

fn apply(
    front: &mut SimFrontend,
    fault: &Fault,
    crashed: &mut BTreeSet<NodeId>,
    spiked: &mut bool,
) {
    let now = front.now();
    let trace = front.trace_sink().clone();
    // Fault marks mirror the trace records into the telemetry series.
    // Begin/end pairs must share one label (the series validator pairs
    // by label), so restart closes with the *crash* label and latency
    // transitions share a constant one; clock skew and handoffs are
    // instantaneous and stay begin-only.
    let obs = front.obs_sink().clone();
    match fault {
        Fault::Partition {
            a,
            b,
            duration,
            one_way,
        } => {
            let desc = format!(
                "partition {a:?}{}{b:?}",
                if *one_way { " -/-> " } else { " <-/-> " }
            );
            let reporter = a.first().copied().unwrap_or(0);
            trace.record(
                now.as_micros(),
                reporter,
                TraceEventKind::FaultBegin { desc: desc.clone() },
            );
            // Bounded faults know their end now; stamping the close
            // event at its future time keeps the sorted timeline honest.
            trace.record(
                (now + *duration).as_micros(),
                reporter,
                TraceEventKind::FaultEnd { desc: desc.clone() },
            );
            obs.fault_begin(now.as_micros(), &desc);
            obs.fault_end((now + *duration).as_micros(), &desc);
            let p = if *one_way {
                Partition::one_way(now, now + *duration, a.iter().copied(), b.iter().copied())
            } else {
                Partition::new(now, now + *duration, a.iter().copied(), b.iter().copied())
            };
            front.engine_mut().partitions_mut().add(p);
        }
        Fault::SkewClock { node, offset_us } => {
            trace.record(
                now.as_micros(),
                *node,
                TraceEventKind::FaultBegin {
                    desc: format!("clock skew {offset_us}us on node {node}"),
                },
            );
            obs.fault_begin(
                now.as_micros(),
                &format!("clock skew {offset_us}us on node {node}"),
            );
            front.engine_mut().set_clock_offset(*node, *offset_us);
        }
        Fault::LatencyScale { factor } => {
            let kind = if *factor > 1.0 {
                TraceEventKind::FaultBegin {
                    desc: format!("latency x{factor}"),
                }
            } else {
                TraceEventKind::FaultEnd {
                    desc: format!("latency x{factor}"),
                }
            };
            trace.record(now.as_micros(), 0, kind);
            if *factor > 1.0 {
                obs.fault_begin(now.as_micros(), "latency spike");
                *spiked = true;
            } else {
                obs.fault_end(now.as_micros(), "latency spike");
                *spiked = false;
            }
            front.engine_mut().set_latency_factor(*factor)
        }
        Fault::Crash { node, torn_tail } => {
            if crashed.insert(*node) {
                trace.record(
                    now.as_micros(),
                    *node,
                    TraceEventKind::FaultBegin {
                        desc: format!("crash node {node} (torn tail {torn_tail}B)"),
                    },
                );
                obs.fault_begin(now.as_micros(), &format!("crash node {node}"));
                front.crash_server(*node);
                if *torn_tail > 0 {
                    front.tear_wal_tail(*node, *torn_tail);
                }
            }
        }
        Fault::Restart { node } => {
            if crashed.remove(node) {
                trace.record(
                    now.as_micros(),
                    *node,
                    TraceEventKind::FaultEnd {
                        desc: format!("restart node {node}"),
                    },
                );
                obs.fault_end(now.as_micros(), &format!("crash node {node}"));
                front.restart_server(*node);
            }
        }
        Fault::ShardHandoff { token, to_position } => {
            trace.record(
                now.as_micros(),
                0,
                TraceEventKind::FaultBegin {
                    desc: format!("handoff token {token} -> position {to_position}"),
                },
            );
            obs.fault_begin(
                now.as_micros(),
                &format!("handoff token {token} -> position {to_position}"),
            );
            front.begin_handoff(*token, *to_position);
        }
    }
}

/// One closed-loop round: every session runs a read-modify-write over a
/// rotating key pair, then a one-shot `get_many` of the same pair (the
/// atomic-visibility probe — fractured reads show up here).
#[allow(clippy::too_many_arguments)]
fn workload_round(
    front: &mut SimFrontend,
    sessions: &[Session],
    round: usize,
    keys: &[String],
    committed: &mut u64,
    unavailable: &mut u64,
    aborted: &mut u64,
) {
    let obs = front.obs_sink().clone();
    for (ci, s) in sessions.iter().enumerate() {
        let a = keys[(round + ci) % keys.len()].clone();
        let b = keys[(round + ci + 1) % keys.len()].clone();
        let w = front.try_txn(s, |t| {
            let _ = t.get(&a)?;
            t.put(&a, &format!("r{round}c{ci}a"))?;
            t.put(&b, &format!("r{round}c{ci}b"))
        });
        tally(w.map(|_| ()), &obs, committed, unavailable, aborted);
        let r = front.try_txn(s, |t| {
            let _ = t.get_many(&[&a, &b])?;
            Ok(())
        });
        tally(r, &obs, committed, unavailable, aborted);
    }
}

/// Folds one transaction outcome into the run totals. Unavailability
/// is not a client-side counter (the client only sees an error), so
/// the tally also feeds it to the telemetry registry, where the series
/// sampler picks it up per window.
fn tally(
    outcome: Result<(), HatError>,
    obs: &ObsSink,
    committed: &mut u64,
    unavailable: &mut u64,
    aborted: &mut u64,
) {
    match outcome {
        Ok(()) => *committed += 1,
        Err(HatError::Unavailable { .. }) => {
            *unavailable += 1;
            obs.counter_add("hat_txn_unavailable_total", &[], 1);
        }
        Err(_) => *aborted += 1,
    }
}

/// Post-heal replica agreement. Replication groups are positional
/// (server `i` of each cluster owns the same key partition), so the
/// fingerprint — per-key newest `(stamp, value)` — must match across
/// clusters at each position. Public so crash-restart end-to-end tests
/// can assert it on deployments they drive themselves.
pub fn converged(front: &SimFrontend) -> bool {
    let layout = front.layout();
    let positions = layout.servers.iter().map(|c| c.len()).max().unwrap_or(0);
    for pos in 0..positions {
        let mut group: Vec<BTreeMap<Key, (VersionStamp, Vec<u8>)>> = Vec::new();
        for cluster in &layout.servers {
            let Some(&id) = cluster.get(pos) else {
                continue;
            };
            let Some(srv) = front.engine().actor(id).as_server() else {
                continue;
            };
            let mut newest: BTreeMap<Key, (VersionStamp, Vec<u8>)> = BTreeMap::new();
            for (key, record) in srv.store().all_versions() {
                let entry = (record.stamp, record.value.to_vec());
                match newest.get(&key) {
                    Some((stamp, _)) if *stamp >= record.stamp => {}
                    _ => {
                        newest.insert(key, entry);
                    }
                }
            }
            group.push(newest);
        }
        if group.windows(2).any(|w| w[0] != w[1]) {
            if std::env::var_os("NEMESIS_DEBUG").is_some() {
                for (i, g) in group.iter().enumerate() {
                    for (k, (s, _)) in g {
                        eprintln!(
                            "pos{pos} replica{i} {:?} -> {s:?}",
                            String::from_utf8_lossy(k)
                        );
                    }
                }
            }
            return false;
        }
    }
    true
}
