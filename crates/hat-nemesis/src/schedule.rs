//! Fault vocabulary and the combinators that compose schedules.

use hat_core::ClusterLayout;
use hat_sim::{NodeId, SimDuration, SimTime};

/// One injectable fault, applied at a scheduled instant.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Cut `a` from `b` for `duration` (both directions), or only the
    /// `a → b` direction when `one_way` — an asymmetric link failure:
    /// `b` keeps hearing from `a`'s side is silent. Partitions are
    /// bounded, so every schedule self-heals.
    Partition {
        /// One side of the cut.
        a: Vec<NodeId>,
        /// The other side (the blocked *destination* when one-way).
        b: Vec<NodeId>,
        /// How long the cut lasts.
        duration: SimDuration,
        /// Drop only `a → b` traffic.
        one_way: bool,
    },
    /// Skew `node`'s local clock by `offset_us` microseconds (negative =
    /// behind). Affects only what the node *reads* as wall time — HAT
    /// guarantees are clock-free, and the harness proves it.
    SkewClock {
        /// The node whose clock drifts.
        node: NodeId,
        /// Signed drift in microseconds.
        offset_us: i64,
    },
    /// Multiply every cross-node latency sample by `factor` (1.0
    /// restores normal service).
    LatencyScale {
        /// The multiplier (≥ 0, non-finite values are ignored).
        factor: f64,
    },
    /// Hard-crash server `node`, leaving `torn_tail` bytes of a partial
    /// WAL — the torn write a real machine leaves when power dies
    /// mid-append. Volatile state (RAMP prepared sets, 2PL lock tables,
    /// MAV pending queues) is lost outright.
    Crash {
        /// The server to kill.
        node: NodeId,
        /// Bytes of the partially-flushed frame left torn at the WAL
        /// tail (0 = clean crash). Never covers acknowledged records.
        torn_tail: u64,
    },
    /// Restart a previously crashed server: reopen its store (replaying
    /// checkpoint + surviving WAL prefix) and rejoin the cluster via the
    /// bootstrap recovery protocol.
    Restart {
        /// The server to revive.
        node: NodeId,
    },
    /// Start a live handoff of ring token `token` to the server at
    /// `to_position` of each cluster, while traffic keeps flowing: the
    /// old owner streams the shard snapshot plus its replication tail,
    /// and NACKs (`WrongShard`) new requests only once the receiver
    /// holds a byte-complete copy. Races the cutover against in-flight
    /// transactions by construction.
    ShardHandoff {
        /// The ring token to move.
        token: u32,
        /// Destination server position (same position in every cluster —
        /// handoffs are positional, like replication).
        to_position: u32,
    },
}

/// A deterministic fault schedule generator. Implementations must be
/// pure: the same layout and horizon always produce the same schedule
/// (no clocks, no ambient randomness — derive any per-node variation
/// from node ids).
pub trait Nemesis {
    /// Human-readable schedule name (appears in every failure message).
    fn name(&self) -> String;

    /// The time-ordered fault list for a deployment shaped by `layout`,
    /// covering `[0, horizon)`. Faults must self-heal within a bounded
    /// tail after `horizon` (bounded partitions, every `Crash` paired
    /// with a later `Restart`); the runner restarts any still-crashed
    /// node during its heal phase as a backstop.
    fn schedule(&self, layout: &ClusterLayout, horizon: SimDuration) -> Vec<(SimTime, Fault)>;
}

/// Every server of every cluster, in id order.
fn all_servers(layout: &ClusterLayout) -> Vec<NodeId> {
    layout.servers.iter().flatten().copied().collect()
}

/// Deterministic per-node spread in `[-max, +max]` (multiplicative
/// hash of the node id — not the run rng, which faults must not touch).
fn node_spread(node: NodeId, max: i64) -> i64 {
    if max == 0 {
        return 0;
    }
    let h = (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
    (h % (2 * max as u64 + 1)) as i64 - max
}

/// Rolling single-node isolation: each server in turn is cut off from
/// every other node (servers *and* clients) for `outage`, one victim
/// per `period`, cycling until the horizon. The classic "one replica at
/// a time" maintenance-gone-wrong schedule.
#[derive(Debug, Clone)]
pub struct Rolling {
    /// Gap between consecutive victims.
    pub period: SimDuration,
    /// How long each victim stays isolated (≤ `period` keeps cuts
    /// non-overlapping).
    pub outage: SimDuration,
}

impl Nemesis for Rolling {
    fn name(&self) -> String {
        "rolling-partition".into()
    }

    fn schedule(&self, layout: &ClusterLayout, horizon: SimDuration) -> Vec<(SimTime, Fault)> {
        let servers = all_servers(layout);
        let mut everyone = servers.clone();
        everyone.extend(layout.clients.iter().copied());
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + self.period;
        let mut i = 0usize;
        while t < SimTime::ZERO + horizon {
            let victim = servers[i % servers.len()];
            let rest: Vec<NodeId> = everyone.iter().copied().filter(|&n| n != victim).collect();
            out.push((
                t,
                Fault::Partition {
                    a: vec![victim],
                    b: rest,
                    duration: self.outage,
                    one_way: false,
                },
            ));
            t += self.period;
            i += 1;
        }
        out
    }
}

/// Flapping asymmetric inter-cluster link: every `period`, cluster 0's
/// servers lose their *outbound* path to cluster 1 for half the period,
/// then it comes back — the replies still flow, the requests vanish.
/// Exercises one-way partitions and rapid heal/cut cycling (routing
/// flaps, asymmetric firewall rules).
#[derive(Debug, Clone)]
pub struct Flapping {
    /// Full flap cycle length (down for `period / 2`, up for the rest).
    pub period: SimDuration,
}

impl Nemesis for Flapping {
    fn name(&self) -> String {
        "flapping-one-way-link".into()
    }

    fn schedule(&self, layout: &ClusterLayout, horizon: SimDuration) -> Vec<(SimTime, Fault)> {
        if layout.servers.len() < 2 {
            return Vec::new();
        }
        let a = layout.servers[0].clone();
        let b = layout.servers[1].clone();
        let down = SimDuration::from_micros(self.period.as_micros() / 2);
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + down;
        while t < SimTime::ZERO + horizon {
            out.push((
                t,
                Fault::Partition {
                    a: a.clone(),
                    b: b.clone(),
                    duration: down,
                    one_way: true,
                },
            ));
            t += self.period;
        }
        out
    }
}

/// Per-node clock skew, applied once at the start: each node's local
/// clock drifts by a deterministic offset in `[-max_us, +max_us]`.
/// HAT protocols stamp versions with logical `(seq, writer)` pairs, so
/// every guarantee must survive arbitrary skew — this schedule is the
/// regression test for anyone tempted to reach for wall clocks.
#[derive(Debug, Clone)]
pub struct SkewClocks {
    /// Maximum absolute drift in microseconds.
    pub max_us: i64,
}

impl Nemesis for SkewClocks {
    fn name(&self) -> String {
        "clock-skew".into()
    }

    fn schedule(&self, layout: &ClusterLayout, _horizon: SimDuration) -> Vec<(SimTime, Fault)> {
        let mut nodes = all_servers(layout);
        nodes.extend(layout.clients.iter().copied());
        nodes
            .into_iter()
            .map(|node| {
                (
                    SimTime::ZERO,
                    Fault::SkewClock {
                        node,
                        offset_us: node_spread(node, self.max_us),
                    },
                )
            })
            .collect()
    }
}

/// Crash-restart cycling: every `period`, the next server (round-robin)
/// is hard-crashed, a `torn_tail`-byte partial frame is left on its WAL, and it
/// restarts after `downtime` — recovering its store from the surviving
/// log prefix and re-joining via the bootstrap protocol.
#[derive(Debug, Clone)]
pub struct CrashRestart {
    /// Gap between consecutive crashes.
    pub period: SimDuration,
    /// How long each victim stays down (< `period`: the victim must be
    /// back before the next one falls, or a 2-server cluster would lose
    /// both replicas at once).
    pub downtime: SimDuration,
    /// Bytes torn off the WAL tail at each crash.
    pub torn_tail: u64,
}

impl Nemesis for CrashRestart {
    fn name(&self) -> String {
        "crash-restart-torn-wal".into()
    }

    fn schedule(&self, layout: &ClusterLayout, horizon: SimDuration) -> Vec<(SimTime, Fault)> {
        let servers = all_servers(layout);
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + self.period;
        let mut i = 0usize;
        while t < SimTime::ZERO + horizon {
            let node = servers[i % servers.len()];
            out.push((
                t,
                Fault::Crash {
                    node,
                    torn_tail: self.torn_tail,
                },
            ));
            out.push((t + self.downtime, Fault::Restart { node }));
            t += self.period;
            i += 1;
        }
        out
    }
}

/// Periodic latency spikes: cross-node latency multiplies by `factor`
/// for the first half of every `period`, then recovers. Stresses
/// timeout-sensitive paths (2PL lock waits, op deadlines) without
/// dropping a single message.
#[derive(Debug, Clone)]
pub struct LatencySpikes {
    /// Full spike cycle (spiked for `period / 2`, normal for the rest).
    pub period: SimDuration,
    /// Latency multiplier while spiked.
    pub factor: f64,
}

impl Nemesis for LatencySpikes {
    fn name(&self) -> String {
        "latency-spikes".into()
    }

    fn schedule(&self, _layout: &ClusterLayout, horizon: SimDuration) -> Vec<(SimTime, Fault)> {
        let half = SimDuration::from_micros(self.period.as_micros() / 2);
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + half;
        while t < SimTime::ZERO + horizon {
            out.push((
                t,
                Fault::LatencyScale {
                    factor: self.factor,
                },
            ));
            out.push((t + half, Fault::LatencyScale { factor: 1.0 }));
            t += self.period;
        }
        out
    }
}

/// Live shard handoffs mid-workload: every `period` the next ring
/// token (stepping a stride so successive handoffs hit different
/// owners) moves to another position — in every cluster at once, since
/// handoffs are positional. Each cutover races in-flight transactions
/// by construction; the conformance suite asserts every engine's
/// advertised isolation survives it and that replicas still converge.
#[derive(Debug, Clone)]
pub struct Handoffs {
    /// Gap between consecutive handoffs.
    pub period: SimDuration,
}

impl Nemesis for Handoffs {
    fn name(&self) -> String {
        "shard-handoffs".into()
    }

    fn schedule(&self, layout: &ClusterLayout, horizon: SimDuration) -> Vec<(SimTime, Fault)> {
        let positions = layout.shards_per_cluster() as u32;
        if positions < 2 {
            return Vec::new(); // a single shard has nowhere to move
        }
        let ring = layout.ring();
        let tokens = ring.num_tokens();
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + self.period;
        let mut i = 0u32;
        while t < SimTime::ZERO + horizon {
            let token = i.wrapping_mul(7) % tokens;
            let owner = ring.position_of_token(token);
            // Any position but the token's base owner. The broadcast is
            // ownership-agnostic (only the *current* owner acts on it),
            // so a token that already moved may get a no-op — the next
            // stride picks a fresh one.
            let to_position = (owner + 1 + i % (positions - 1)) % positions;
            out.push((t, Fault::ShardHandoff { token, to_position }));
            t += self.period;
            i += 1;
        }
        out
    }
}

/// One clean inter-datacenter split: for the middle half of the
/// horizon, every node of cluster 0 — its servers *and* its home
/// clients — is cut both ways from everything in the other clusters.
/// Each side stays internally healthy, so this is the paper's §6
/// experiment in schedule form: HAT engines keep committing against
/// their local replicas straight through the split, while 2PL (whose
/// writes must lock every positional replica) produces exactly zero
/// commits inside the window and recovers after the heal. The PR-10
/// time series makes that split visible per window instead of
/// flattening it into run totals.
#[derive(Debug, Clone)]
pub struct SplitBrain;

impl SplitBrain {
    /// The partition window `[begin, end)` this schedule opens for a
    /// given horizon — `[horizon/4, 3·horizon/4)`. Exposed so tests and
    /// the experiment binary can assert per-window behavior without
    /// re-deriving the fractions.
    pub fn window(horizon: SimDuration) -> (SimTime, SimTime) {
        let quarter = SimDuration::from_micros(horizon.as_micros() / 4);
        let begin = SimTime::ZERO + quarter;
        (begin, begin + quarter + quarter)
    }
}

impl Nemesis for SplitBrain {
    fn name(&self) -> String {
        "split-brain".into()
    }

    fn schedule(&self, layout: &ClusterLayout, horizon: SimDuration) -> Vec<(SimTime, Fault)> {
        if layout.servers.len() < 2 {
            return Vec::new();
        }
        // Each side of the cut is a whole datacenter: its servers plus
        // the clients homed there, so intra-DC traffic keeps flowing.
        let mut sides: Vec<Vec<NodeId>> = layout.servers.clone();
        for (i, &c) in layout.clients.iter().enumerate() {
            sides[layout.client_home[i]].push(c);
        }
        let a = sides.remove(0);
        let b: Vec<NodeId> = sides.into_iter().flatten().collect();
        let (begin, end) = Self::window(horizon);
        vec![(
            begin,
            Fault::Partition {
                a,
                b,
                duration: end.since(begin),
                one_way: false,
            },
        )]
    }
}

/// Runs several nemeses at once: the union of their schedules, stably
/// sorted by fire time (ties keep constituent order). This is where the
/// harness earns its keep — a crash *during* a partition *under* clock
/// skew is the adversary none of the single-fault tests construct.
pub struct Compose {
    /// The constituent schedule generators.
    pub parts: Vec<Box<dyn Nemesis>>,
}

impl Compose {
    /// Composes `parts` into one schedule.
    pub fn new(parts: Vec<Box<dyn Nemesis>>) -> Self {
        Compose { parts }
    }
}

impl Nemesis for Compose {
    fn name(&self) -> String {
        self.parts
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join("+")
    }

    fn schedule(&self, layout: &ClusterLayout, horizon: SimDuration) -> Vec<(SimTime, Fault)> {
        let mut out: Vec<(SimTime, Fault)> = self
            .parts
            .iter()
            .flat_map(|p| p.schedule(layout, horizon))
            .collect();
        out.sort_by_key(|(t, _)| *t);
        out
    }
}

/// The seven canonical schedules every engine must survive: a clean
/// inter-DC split-brain, rolling partitions, a flapping one-way link,
/// cluster-wide clock skew, crash-restart with torn WAL tails, the
/// partition/skew/crash/latency faults composed at once, and live
/// shard handoffs racing the workload. The conformance suite and the
/// `exp_nemesis` experiment binary share this catalog, so a schedule
/// added here is exercised by both.
pub fn standard_catalog() -> Vec<Box<dyn Nemesis>> {
    vec![
        Box::new(SplitBrain),
        Box::new(Rolling {
            period: SimDuration::from_millis(80),
            outage: SimDuration::from_millis(40),
        }),
        Box::new(Flapping {
            period: SimDuration::from_millis(60),
        }),
        Box::new(SkewClocks { max_us: 500_000 }),
        Box::new(CrashRestart {
            period: SimDuration::from_millis(140),
            downtime: SimDuration::from_millis(50),
            torn_tail: 48,
        }),
        Box::new(Compose::new(vec![
            Box::new(Rolling {
                period: SimDuration::from_millis(160),
                outage: SimDuration::from_millis(40),
            }),
            Box::new(SkewClocks { max_us: 250_000 }),
            Box::new(CrashRestart {
                period: SimDuration::from_millis(200),
                downtime: SimDuration::from_millis(60),
                torn_tail: 32,
            }),
            Box::new(LatencySpikes {
                period: SimDuration::from_millis(120),
                factor: 6.0,
            }),
        ])),
        // Handoffs stay un-composed with crashes: a crashed server loses
        // its in-memory handoff state, which models a different failure
        // (split ownership recovery) than live rebalancing under load.
        Box::new(Handoffs {
            period: SimDuration::from_millis(70),
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_core::{ClusterSpec, DeploymentBuilder, ProtocolKind};

    fn layout() -> std::sync::Arc<ClusterLayout> {
        let front = DeploymentBuilder::new(ProtocolKind::Eventual)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(2)
            .build();
        std::sync::Arc::new(front.layout().clone())
    }

    #[test]
    fn schedules_are_pure_functions_of_layout_and_horizon() {
        let l = layout();
        let h = SimDuration::from_millis(500);
        let n = Compose::new(vec![
            Box::new(Rolling {
                period: SimDuration::from_millis(80),
                outage: SimDuration::from_millis(40),
            }),
            Box::new(CrashRestart {
                period: SimDuration::from_millis(120),
                downtime: SimDuration::from_millis(50),
                torn_tail: 48,
            }),
            Box::new(SkewClocks { max_us: 250_000 }),
        ]);
        assert_eq!(n.schedule(&l, h), n.schedule(&l, h));
        assert!(!n.schedule(&l, h).is_empty());
    }

    #[test]
    fn compose_merges_sorted_and_names_every_part() {
        let l = layout();
        let h = SimDuration::from_millis(400);
        let n = Compose::new(vec![
            Box::new(Flapping {
                period: SimDuration::from_millis(60),
            }),
            Box::new(LatencySpikes {
                period: SimDuration::from_millis(100),
                factor: 8.0,
            }),
        ]);
        let s = n.schedule(&l, h);
        assert!(s.windows(2).all(|w| w[0].0 <= w[1].0), "schedule unsorted");
        assert_eq!(n.name(), "flapping-one-way-link+latency-spikes");
    }

    #[test]
    fn crash_restart_pairs_every_crash_with_a_later_restart() {
        let l = layout();
        let s = CrashRestart {
            period: SimDuration::from_millis(100),
            downtime: SimDuration::from_millis(40),
            torn_tail: 32,
        }
        .schedule(&l, SimDuration::from_millis(600));
        let crashes: Vec<_> = s
            .iter()
            .filter_map(|(t, f)| match f {
                Fault::Crash { node, .. } => Some((*t, *node)),
                _ => None,
            })
            .collect();
        assert!(!crashes.is_empty());
        for (t, node) in crashes {
            assert!(
                s.iter().any(
                    |(rt, f)| matches!(f, Fault::Restart { node: n } if *n == node) && *rt > t
                ),
                "crash of {node} at {t:?} has no later restart"
            );
        }
    }

    #[test]
    fn skew_is_bounded_and_deterministic() {
        let l = layout();
        let s = SkewClocks { max_us: 1_000 }.schedule(&l, SimDuration::from_millis(100));
        for (_, f) in &s {
            match f {
                Fault::SkewClock { offset_us, .. } => assert!(offset_us.abs() <= 1_000),
                other => panic!("unexpected fault {other:?}"),
            }
        }
        // At least two nodes actually drift apart.
        let offsets: std::collections::BTreeSet<i64> = s
            .iter()
            .map(|(_, f)| match f {
                Fault::SkewClock { offset_us, .. } => *offset_us,
                _ => unreachable!(),
            })
            .collect();
        assert!(offsets.len() > 1, "all nodes got the same skew");
    }
}
