//! Debug harness: run one (engine, schedule) pair at a fixed seed and
//! print the violation list. Edit locally when chasing a conformance
//! failure; the committed configuration reproduces nothing.

use hat_core::ProtocolKind;
use hat_nemesis::{advertised_level, run, CrashRestart, NemesisOpts};
use hat_sim::SimDuration;

fn main() {
    let opts = NemesisOpts {
        seed: 0xBAD_CAFE,
        ..NemesisOpts::default()
    };
    let r = run(
        ProtocolKind::TwoPhaseLocking,
        &CrashRestart {
            period: SimDuration::from_millis(140),
            downtime: SimDuration::from_millis(50),
            torn_tail: 48,
        },
        &opts,
    );
    println!(
        "committed={} unavailable={} aborted={} violations={} converged={}",
        r.committed, r.unavailable, r.aborted, r.violations, r.converged
    );
    let report = hat_history::check(
        r.records.clone(),
        advertised_level(ProtocolKind::TwoPhaseLocking),
    );
    for v in &report.violations {
        println!("{v}");
    }
}
