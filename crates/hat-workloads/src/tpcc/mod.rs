//! TPC-C-lite: the paper's §6.2 application analysis, made executable.
//!
//! TPC-C models a wholesale supplier: warehouses with districts,
//! customers, stock and orders, plus five transaction types. The paper
//! argues that four of the five are well served by HATs while New-Order's
//! sequential ID assignment (and Delivery's idempotence requirement)
//! inherently need unavailable coordination. The test suite and the
//! `exp_tpcc` experiment reproduce each claim:
//!
//! * Payment is monotonic (increment-only) and commutes: YTD sums
//!   converge under any HAT protocol (Consistency Condition 1 holds
//!   under MAV).
//! * New-Order's stock decrement never drives stock negative thanks to
//!   the restock rule (§6.2: "restocks each item's inventory count
//!   (increments by 91) if it would become negative").
//! * Sequential order IDs require preventing Lost Update — under a
//!   partition, two HAT New-Orders assign the same ID (Consistency
//!   Conditions 2–3 are violated); timestamp-based IDs keep uniqueness
//!   but not sequentiality.
//! * Delivery is non-monotonic (deletes from the pending queue): under a
//!   partition two carriers can deliver the same order (double billing),
//!   the compensation the paper discusses.

pub mod consistency;
pub mod schema;
pub mod txns;

pub use consistency::{check_consistency, ConsistencyReport};
pub use schema::{keys, Customer, District, Order, Stock, Warehouse};
pub use txns::{IdPolicy, TpccConfig, TpccRunner};
