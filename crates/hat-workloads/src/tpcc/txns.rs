//! The five TPC-C transactions over the backend-agnostic HAT frontend.

use super::schema::{keys, Customer, District, Order, Stock, Warehouse};
use hat_core::{Frontend, HatError, Session};

/// Order-ID assignment policy (§6.2 "IDs and decrements").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdPolicy {
    /// TPC-C-compliant sequential IDs from the district counter —
    /// requires preventing Lost Update, so HAT systems can assign
    /// duplicates under partitions.
    Sequential,
    /// Unique (client id ⊕ counter) IDs — HAT-safe uniqueness, but not
    /// sequential, hence not TPC-C-compliant.
    UniqueTimestamp,
}

/// Workload scale parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpccConfig {
    /// Warehouses.
    pub warehouses: u32,
    /// Districts per warehouse (TPC-C: 10).
    pub districts: u32,
    /// Customers per district.
    pub customers: u32,
    /// Distinct items.
    pub items: u32,
    /// Initial stock quantity per item.
    pub initial_stock: i64,
    /// ID assignment policy for New-Order.
    pub id_policy: IdPolicy,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 1,
            districts: 2,
            customers: 5,
            items: 20,
            initial_stock: 50,
            id_policy: IdPolicy::UniqueTimestamp,
        }
    }
}

/// Result of a New-Order transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewOrderResult {
    /// The assigned order id (as used in keys).
    pub o_id: String,
    /// Stock quantities after the decrements, per line.
    pub stock_after: Vec<i64>,
}

/// Runs TPC-C transactions against any [`Frontend`] (simulated or
/// threaded) on behalf of one [`Session`].
///
/// Each TPC-C transaction maps to exactly one HAT transaction; reads and
/// read-modify-writes execute inside the transaction closure, so the
/// isolation observed is whatever the deployed protocol provides — that
/// is the point of the exercise.
#[derive(Debug)]
pub struct TpccRunner {
    /// Configuration used by this runner.
    pub config: TpccConfig,
    client_tag: u32,
    next_uid: u64,
}

impl TpccRunner {
    /// A runner stamping unique IDs with `client_tag`.
    pub fn new(config: TpccConfig, client_tag: u32) -> Self {
        TpccRunner {
            config,
            client_tag,
            next_uid: 1,
        }
    }

    fn uid(&mut self) -> String {
        let u = self.next_uid;
        self.next_uid += 1;
        format!("{:04}-{u:08}", self.client_tag)
    }

    /// Loads the initial database (one transaction per table group).
    pub fn load<F: Frontend>(&mut self, front: &mut F, session: &Session) -> Result<(), HatError> {
        let cfg = self.config;
        for w in 0..cfg.warehouses {
            front.try_txn(session, |t| {
                t.put(&keys::warehouse(w), &Warehouse { ytd: 0 }.encode())?;
                for d in 0..cfg.districts {
                    t.put(
                        &keys::district(w, d),
                        &District {
                            next_o_id: 1,
                            ytd: 0,
                        }
                        .encode(),
                    )?;
                    for c in 0..cfg.customers {
                        t.put(&keys::customer(w, d, c), &Customer::default().encode())?;
                    }
                }
                Ok(())
            })?;
            // stock in chunks to keep transactions reasonable
            for chunk in (0..cfg.items).collect::<Vec<_>>().chunks(32) {
                let chunk = chunk.to_vec();
                front.try_txn(session, |t| {
                    for i in &chunk {
                        t.put(
                            &keys::stock(w, *i),
                            &Stock {
                                quantity: cfg.initial_stock,
                                ytd: 0,
                                order_cnt: 0,
                            }
                            .encode(),
                        )?;
                    }
                    Ok(())
                })?;
            }
        }
        Ok(())
    }

    /// New-Order (§6.2): assigns an order id, decrements stock with the
    /// restock rule, writes the order, its lines and a pending-queue
    /// entry.
    pub fn new_order<F: Frontend>(
        &mut self,
        front: &mut F,
        session: &Session,
        w: u32,
        d: u32,
        c: u32,
        lines: &[(u32, u32)],
    ) -> Result<NewOrderResult, HatError> {
        let id_policy = self.config.id_policy;
        let uid = self.uid();
        front.try_txn(session, |t| {
            // ID assignment
            let o_id = match id_policy {
                IdPolicy::Sequential => {
                    let dk = keys::district(w, d);
                    let mut district = t
                        .get(&dk)?
                        .and_then(|s| District::decode(&s))
                        .unwrap_or_default();
                    let o = district.next_o_id;
                    district.next_o_id += 1;
                    t.put(&dk, &district.encode())?;
                    format!("{o:08}")
                }
                IdPolicy::UniqueTimestamp => uid.clone(),
            };
            // stock maintenance with the TPC-C restock rule
            let mut stock_after = Vec::with_capacity(lines.len());
            for (n, &(item, qty)) in lines.iter().enumerate() {
                let sk = keys::stock(w, item);
                let mut stock = t
                    .get(&sk)?
                    .and_then(|s| Stock::decode(&s))
                    .unwrap_or_default();
                stock.quantity -= qty as i64;
                if stock.quantity < 10 {
                    // "restocks each item's inventory count (increments
                    // by 91) if it would become negative [or fall below
                    // 10]" — TPC-C 2.4.2.2
                    stock.quantity += 91;
                }
                stock.ytd += qty as u64;
                stock.order_cnt += 1;
                t.put(&sk, &stock.encode())?;
                stock_after.push(stock.quantity);
                t.put(
                    &keys::order_line(w, d, &o_id, n as u32),
                    &format!("{item}|{qty}"),
                )?;
            }
            // the order row and pending-queue entry
            t.put(
                &keys::order(w, d, &o_id),
                &Order {
                    c_id: c,
                    line_count: lines.len() as u32,
                    carrier_id: 0,
                    delivered: 0,
                }
                .encode(),
            )?;
            t.put(&keys::new_order(w, d, &o_id), "pending")?;
            Ok(NewOrderResult { o_id, stock_after })
        })
    }

    /// Payment (§6.2): increments warehouse/district YTD and the
    /// customer's balance; appends an (unique-keyed) audit-trail entry.
    /// Monotonic: all updates commute.
    pub fn payment<F: Frontend>(
        &mut self,
        front: &mut F,
        session: &Session,
        w: u32,
        d: u32,
        c: u32,
        amount: u64,
    ) -> Result<(), HatError> {
        let uid = self.uid();
        front.try_txn(session, |t| {
            let wk = keys::warehouse(w);
            let mut wh = t
                .get(&wk)?
                .and_then(|s| Warehouse::decode(&s))
                .unwrap_or_default();
            wh.ytd += amount;
            t.put(&wk, &wh.encode())?;

            let dk = keys::district(w, d);
            let mut district = t
                .get(&dk)?
                .and_then(|s| District::decode(&s))
                .unwrap_or_default();
            district.ytd += amount;
            t.put(&dk, &district.encode())?;

            let ck = keys::customer(w, d, c);
            let mut customer = t
                .get(&ck)?
                .and_then(|s| Customer::decode(&s))
                .unwrap_or_default();
            customer.balance -= amount as i64;
            customer.ytd_payment += amount;
            t.put(&ck, &customer.encode())?;

            t.put(&keys::history(w, d, c, &uid), &amount.to_string())
        })
    }

    /// Order-Status (read-only, HAT-safe): the latest order of a
    /// district and its lines.
    pub fn order_status<F: Frontend>(
        &mut self,
        front: &mut F,
        session: &Session,
        w: u32,
        d: u32,
    ) -> Result<Option<(String, Order, Vec<String>)>, HatError> {
        front.try_txn(session, |t| {
            let orders = t.scan(&keys::order_prefix(w, d))?;
            let Some((okey, oval)) = orders.last().cloned() else {
                return Ok(None);
            };
            let o_id = okey.rsplit('/').next().unwrap_or_default().to_string();
            let Some(order) = Order::decode(&oval) else {
                return Ok(None);
            };
            let lines = t
                .scan(&keys::order_line_prefix(w, d, &o_id))?
                .into_iter()
                .map(|(_, v)| v)
                .collect();
            Ok(Some((o_id, order, lines)))
        })
    }

    /// Delivery (§6.2, non-monotonic): pops the oldest pending order,
    /// marks it delivered with `carrier`, and credits the customer.
    /// Returns the delivered order id, if any. Idempotence requires
    /// preventing Lost Update — concurrent Deliveries under partitions
    /// double-deliver, which the consistency checker counts.
    pub fn delivery<F: Frontend>(
        &mut self,
        front: &mut F,
        session: &Session,
        w: u32,
        d: u32,
        carrier: u32,
    ) -> Result<Option<String>, HatError> {
        front.try_txn(session, |t| {
            let pending = t.scan(&keys::new_order_prefix(w, d))?;
            let Some((no_key, _)) = pending.iter().find(|(_, v)| v == "pending").cloned() else {
                return Ok(None);
            };
            let o_id = no_key.rsplit('/').next().unwrap_or_default().to_string();
            // mark done in the queue (tombstone value)
            t.put(&no_key, "delivered")?;
            // update the order row
            let ok = keys::order(w, d, &o_id);
            let Some(mut order) = t.get(&ok)?.and_then(|s| Order::decode(&s)) else {
                return Ok(None);
            };
            order.carrier_id = carrier;
            order.delivered += 1;
            let c_id = order.c_id;
            t.put(&ok, &order.encode())?;
            // credit the customer (fixed amount per delivery here)
            let ck = keys::customer(w, d, c_id);
            let mut customer = t
                .get(&ck)?
                .and_then(|s| Customer::decode(&s))
                .unwrap_or_default();
            customer.balance += 100;
            customer.delivery_cnt += 1;
            t.put(&ck, &customer.encode())?;
            Ok(Some(o_id))
        })
    }

    /// Stock-Level (read-only, HAT-safe): how many items of the district
    /// sit below `threshold`.
    pub fn stock_level<F: Frontend>(
        &mut self,
        front: &mut F,
        session: &Session,
        w: u32,
        threshold: i64,
    ) -> Result<usize, HatError> {
        front.try_txn(session, |t| {
            Ok(t.scan(&format!("s/{w:04}/"))?
                .iter()
                .filter_map(|(_, v)| Stock::decode(v))
                .filter(|s| s.quantity < threshold)
                .count())
        })
    }
}
