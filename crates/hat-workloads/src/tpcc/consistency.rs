//! TPC-C consistency conditions (§6.2 "Integrity Constraints").

use super::schema::{keys, District, Order, Stock, Warehouse};
use super::txns::TpccConfig;
use hat_core::{Frontend, HatError, Session};
use std::collections::HashSet;

/// Outcome of the consistency audit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Condition 1 violations: warehouses whose YTD ≠ Σ district YTD.
    pub c1_ytd_mismatches: Vec<u32>,
    /// Conditions 2–3 violations: duplicate order ids per district
    /// (sequential-ID mode under concurrency).
    pub duplicate_order_ids: u64,
    /// Gaps in sequential order ids (d_next_o_id - 1 ≠ max assigned).
    pub sequence_gaps: u64,
    /// Stock rows observed below zero (must be 0 thanks to the restock
    /// rule).
    pub negative_stock: u64,
    /// Orders delivered more than once (double billing).
    pub double_deliveries: u64,
}

impl ConsistencyReport {
    /// True if every audited condition holds.
    pub fn all_ok(&self) -> bool {
        self.c1_ytd_mismatches.is_empty()
            && self.duplicate_order_ids == 0
            && self.sequence_gaps == 0
            && self.negative_stock == 0
            && self.double_deliveries == 0
    }
}

/// Audits the database through one session's view. Run after
/// [`Frontend::quiesce`] so replicas have converged.
pub fn check_consistency<F: Frontend>(
    front: &mut F,
    session: &Session,
    cfg: &TpccConfig,
) -> Result<ConsistencyReport, HatError> {
    let mut report = ConsistencyReport::default();
    for w in 0..cfg.warehouses {
        // C1: warehouse YTD equals sum of district YTDs.
        let (w_ytd, d_ytd_sum) = front.try_txn(session, |t| {
            let wh = t
                .get(&keys::warehouse(w))?
                .and_then(|s| Warehouse::decode(&s))
                .unwrap_or_default();
            let mut sum = 0u64;
            for d in 0..cfg.districts {
                sum += t
                    .get(&keys::district(w, d))?
                    .and_then(|s| District::decode(&s))
                    .unwrap_or_default()
                    .ytd;
            }
            Ok((wh.ytd, sum))
        })?;
        if w_ytd != d_ytd_sum {
            report.c1_ytd_mismatches.push(w);
        }

        // C2/C3 + duplicates + deliveries, per district.
        for d in 0..cfg.districts {
            let (orders, next_o_id) = front.try_txn(session, |t| {
                let orders = t.scan(&keys::order_prefix(w, d))?;
                let next = t
                    .get(&keys::district(w, d))?
                    .and_then(|s| District::decode(&s))
                    .unwrap_or_default()
                    .next_o_id;
                Ok((orders, next))
            })?;
            let mut seen: HashSet<String> = HashSet::new();
            let mut max_seq: u32 = 0;
            let mut sequential_orders = 0u64;
            for (okey, oval) in &orders {
                let o_id = okey.rsplit('/').next().unwrap_or_default().to_string();
                if !seen.insert(o_id.clone()) {
                    report.duplicate_order_ids += 1;
                }
                if let Ok(seq) = o_id.parse::<u32>() {
                    max_seq = max_seq.max(seq);
                    sequential_orders += 1;
                }
                if let Some(order) = Order::decode(oval) {
                    if order.delivered > 1 {
                        report.double_deliveries += 1;
                    }
                }
            }
            // Note: duplicate sequential IDs collide on the same key, so
            // they are *invisible* as duplicates in the key space — the
            // signature is a gap between assigned orders and the counter.
            if sequential_orders > 0 && u64::from(next_o_id) != u64::from(max_seq) + 1 {
                report.sequence_gaps += 1;
            }
            let _ = sequential_orders;
        }

        // stock non-negativity
        let stocks = front.try_txn(session, |t| t.scan(&format!("s/{w:04}/")))?;
        for (_, v) in stocks {
            if let Some(s) = Stock::decode(&v) {
                if s.quantity < 0 {
                    report.negative_stock += 1;
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::super::txns::{IdPolicy, TpccRunner};
    use super::*;
    use hat_core::{ClusterSpec, DeploymentBuilder, ProtocolKind, SimFrontend};

    /// TPC-C runs with Monotonic sticky sessions — the paper's
    /// deployment "stick[s] all clients within a datacenter to their
    /// respective cluster (trivially providing read-your-writes and
    /// monotonic reads guarantees)" (§6.3), which read-modify-write
    /// application logic needs.
    fn deployment(protocol: ProtocolKind, seed: u64) -> (SimFrontend, Session) {
        let mut front = DeploymentBuilder::new(protocol)
            .seed(seed)
            .clusters(ClusterSpec::single_dc(2, 2))
            .sessions_per_cluster(1)
            .build();
        let session = front.open_session(hat_core::SessionOptions {
            level: hat_core::SessionLevel::Monotonic,
            sticky: true,
        });
        (front, session)
    }

    #[test]
    fn fresh_load_is_consistent() {
        let (mut s, c) = deployment(ProtocolKind::Mav, 1);
        let mut runner = TpccRunner::new(TpccConfig::default(), 1);
        runner.load(&mut s, &c).unwrap();
        s.quiesce();
        let report = check_consistency(&mut s, &c, &runner.config).unwrap();
        assert!(report.all_ok(), "{report:?}");
    }

    #[test]
    fn payments_preserve_c1_under_mav() {
        let (mut s, c) = deployment(ProtocolKind::Mav, 2);
        let mut runner = TpccRunner::new(TpccConfig::default(), 1);
        runner.load(&mut s, &c).unwrap();
        for i in 0..10 {
            runner
                .payment(&mut s, &c, 0, i % 2, i % 5, 100 + u64::from(i))
                .unwrap();
        }
        s.quiesce();
        let report = check_consistency(&mut s, &c, &runner.config).unwrap();
        assert!(report.c1_ytd_mismatches.is_empty(), "{report:?}");
    }

    #[test]
    fn new_orders_never_drive_stock_negative() {
        let (mut s, c) = deployment(ProtocolKind::ReadCommitted, 3);
        let cfg = TpccConfig {
            initial_stock: 15,
            ..TpccConfig::default()
        };
        let mut runner = TpccRunner::new(cfg, 1);
        runner.load(&mut s, &c).unwrap();
        // hammer a single item well past its initial stock
        for _ in 0..30 {
            let res = runner.new_order(&mut s, &c, 0, 0, 1, &[(3, 5)]).unwrap();
            assert!(res.stock_after.iter().all(|&q| q >= 0));
        }
        s.quiesce();
        let report = check_consistency(&mut s, &c, &runner.config).unwrap();
        assert_eq!(report.negative_stock, 0, "{report:?}");
    }

    #[test]
    fn sequential_ids_stay_sequential_without_concurrency() {
        let (mut s, c) = deployment(ProtocolKind::Mav, 4);
        let cfg = TpccConfig {
            id_policy: IdPolicy::Sequential,
            ..TpccConfig::default()
        };
        let mut runner = TpccRunner::new(cfg, 1);
        runner.load(&mut s, &c).unwrap();
        for i in 0..5 {
            let res = runner.new_order(&mut s, &c, 0, 0, 0, &[(i, 1)]).unwrap();
            assert_eq!(res.o_id, format!("{:08}", i + 1));
        }
        s.quiesce();
        let report = check_consistency(&mut s, &c, &runner.config).unwrap();
        assert_eq!(report.sequence_gaps, 0, "{report:?}");
        assert_eq!(report.duplicate_order_ids, 0);
    }

    #[test]
    fn delivery_pops_pending_and_credits_customer() {
        let (mut s, c) = deployment(ProtocolKind::Mav, 5);
        let mut runner = TpccRunner::new(TpccConfig::default(), 1);
        runner.load(&mut s, &c).unwrap();
        let placed = runner
            .new_order(&mut s, &c, 0, 0, 2, &[(1, 1), (2, 2)])
            .unwrap();
        // scans read converged replica state: let replication quiesce
        s.quiesce();
        let delivered = runner.delivery(&mut s, &c, 0, 0, 7).unwrap();
        assert_eq!(delivered, Some(placed.o_id));
        // second delivery finds nothing pending
        s.quiesce();
        let again = runner.delivery(&mut s, &c, 0, 0, 7).unwrap();
        assert_eq!(again, None);
        s.quiesce();
        let report = check_consistency(&mut s, &c, &runner.config).unwrap();
        assert_eq!(report.double_deliveries, 0, "{report:?}");
    }

    #[test]
    fn order_status_and_stock_level_are_read_only() {
        let (mut s, c) = deployment(ProtocolKind::Eventual, 6);
        let mut runner = TpccRunner::new(TpccConfig::default(), 1);
        runner.load(&mut s, &c).unwrap();
        runner.new_order(&mut s, &c, 0, 0, 3, &[(5, 2)]).unwrap();
        s.quiesce();
        let status = runner.order_status(&mut s, &c, 0, 0).unwrap();
        let (_, order, lines) = status.expect("order visible");
        assert_eq!(order.c_id, 3);
        assert_eq!(lines.len(), 1);
        let low = runner.stock_level(&mut s, &c, 0, 49).unwrap();
        assert!(low >= 1, "item 5 dipped below 49");
    }
}
