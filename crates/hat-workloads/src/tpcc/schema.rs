//! TPC-C-lite rows and key encoding.
//!
//! Rows are encoded as `|`-separated integer fields (schema is fixed per
//! type); keys are zero-padded path strings so related rows share
//! prefixes and predicate scans enumerate them in order.

/// Warehouse row (w_ytd in cents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Warehouse {
    /// Year-to-date payment total, cents.
    pub ytd: u64,
}

/// District row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct District {
    /// Next order number to assign (sequential-ID mode).
    pub next_o_id: u32,
    /// Year-to-date payment total, cents.
    pub ytd: u64,
}

/// Customer row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Customer {
    /// Balance, cents (may go negative).
    pub balance: i64,
    /// Year-to-date payments, cents.
    pub ytd_payment: u64,
    /// Deliveries credited to this customer.
    pub delivery_cnt: u32,
}

/// Stock row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stock {
    /// Quantity on hand.
    pub quantity: i64,
    /// Units sold year-to-date.
    pub ytd: u64,
    /// Orders that touched this stock.
    pub order_cnt: u32,
}

/// Order row.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Order {
    /// Ordering customer.
    pub c_id: u32,
    /// Number of order lines.
    pub line_count: u32,
    /// Carrier assigned at delivery (0 = undelivered).
    pub carrier_id: u32,
    /// Times this order has been delivered (must end ≤ 1; >1 means the
    /// double-billing anomaly).
    pub delivered: u32,
}

macro_rules! int_codec {
    ($ty:ident, $($field:ident : $ft:ty),+) => {
        impl $ty {
            /// Encodes the row as `|`-separated integers.
            pub fn encode(&self) -> String {
                let parts: Vec<String> = vec![$(self.$field.to_string()),+];
                parts.join("|")
            }

            /// Decodes a row encoded by [`Self::encode`].
            pub fn decode(s: &str) -> Option<Self> {
                let mut it = s.split('|');
                let out = $ty {
                    $($field: it.next()?.parse::<$ft>().ok()?,)+
                };
                if it.next().is_some() {
                    return None;
                }
                Some(out)
            }
        }
    };
}

int_codec!(Warehouse, ytd: u64);
int_codec!(District, next_o_id: u32, ytd: u64);
int_codec!(Customer, balance: i64, ytd_payment: u64, delivery_cnt: u32);
int_codec!(Stock, quantity: i64, ytd: u64, order_cnt: u32);
int_codec!(Order, c_id: u32, line_count: u32, carrier_id: u32, delivered: u32);

/// Key construction for every table.
pub mod keys {
    /// Warehouse row key.
    pub fn warehouse(w: u32) -> String {
        format!("w/{w:04}")
    }
    /// District row key.
    pub fn district(w: u32, d: u32) -> String {
        format!("d/{w:04}/{d:02}")
    }
    /// Customer row key.
    pub fn customer(w: u32, d: u32, c: u32) -> String {
        format!("c/{w:04}/{d:02}/{c:04}")
    }
    /// Stock row key.
    pub fn stock(w: u32, i: u32) -> String {
        format!("s/{w:04}/{i:06}")
    }
    /// Order row key (`o_id` is already formatted/zero-padded).
    pub fn order(w: u32, d: u32, o_id: &str) -> String {
        format!("o/{w:04}/{d:02}/{o_id}")
    }
    /// Prefix of all orders of a district.
    pub fn order_prefix(w: u32, d: u32) -> String {
        format!("o/{w:04}/{d:02}/")
    }
    /// New-order (pending) queue entry key.
    pub fn new_order(w: u32, d: u32, o_id: &str) -> String {
        format!("no/{w:04}/{d:02}/{o_id}")
    }
    /// Prefix of a district's pending queue.
    pub fn new_order_prefix(w: u32, d: u32) -> String {
        format!("no/{w:04}/{d:02}/")
    }
    /// Order line key.
    pub fn order_line(w: u32, d: u32, o_id: &str, n: u32) -> String {
        format!("ol/{w:04}/{d:02}/{o_id}/{n:02}")
    }
    /// Prefix of an order's lines.
    pub fn order_line_prefix(w: u32, d: u32, o_id: &str) -> String {
        format!("ol/{w:04}/{d:02}/{o_id}/")
    }
    /// Payment history entry key (unique per payment).
    pub fn history(w: u32, d: u32, c: u32, uid: &str) -> String {
        format!("h/{w:04}/{d:02}/{c:04}/{uid}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codecs_round_trip() {
        let d = District {
            next_o_id: 42,
            ytd: 123_456,
        };
        assert_eq!(District::decode(&d.encode()), Some(d));
        let c = Customer {
            balance: -500,
            ytd_payment: 10,
            delivery_cnt: 3,
        };
        assert_eq!(Customer::decode(&c.encode()), Some(c));
        let s = Stock {
            quantity: 91,
            ytd: 7,
            order_cnt: 2,
        };
        assert_eq!(Stock::decode(&s.encode()), Some(s));
        let o = Order {
            c_id: 1,
            line_count: 5,
            carrier_id: 0,
            delivered: 0,
        };
        assert_eq!(Order::decode(&o.encode()), Some(o));
        let w = Warehouse { ytd: 999 };
        assert_eq!(Warehouse::decode(&w.encode()), Some(w));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(District::decode("1"), None, "missing field");
        assert_eq!(District::decode("1|2|3"), None, "extra field");
        assert_eq!(District::decode("x|2"), None, "non-integer");
        assert_eq!(Customer::decode(""), None);
    }

    #[test]
    fn keys_are_prefix_consistent() {
        assert!(keys::order(1, 2, "00000042").starts_with(&keys::order_prefix(1, 2)));
        assert!(keys::new_order(1, 2, "00000042").starts_with(&keys::new_order_prefix(1, 2)));
        assert!(keys::order_line(1, 2, "00000042", 1)
            .starts_with(&keys::order_line_prefix(1, 2, "00000042")));
        // zero padding keeps scan order numeric
        assert!(keys::order(1, 2, "00000009") < keys::order(1, 2, "00000010"));
    }
}
