//! Key-choice distributions.

use rand::Rng;

/// Distribution over `0..n` key indices.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over all keys (the paper's configuration: "uniform random
    /// key access", §6.3).
    Uniform,
    /// Zipfian with the given theta (YCSB default 0.99), scrambled so
    /// hot keys spread over the keyspace.
    Zipfian(Zipfian),
}

impl KeyDist {
    /// Uniform distribution.
    pub fn uniform() -> Self {
        KeyDist::Uniform
    }

    /// Scrambled zipfian with `theta` over `n` items.
    pub fn zipfian(n: u64, theta: f64) -> Self {
        KeyDist::Zipfian(Zipfian::new(n, theta))
    }

    /// Samples a key index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, n: u64, rng: &mut R) -> u64 {
        match self {
            KeyDist::Uniform => rng.gen_range(0..n),
            KeyDist::Zipfian(z) => {
                // scramble: FNV of the rank spreads hot items
                let rank = z.sample(rng);
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in rank.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h % n
            }
        }
    }
}

/// Zipfian rank sampler (Gray et al.'s rejection-free method, as used by
/// YCSB).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// A zipfian over `0..n` with skew `theta` (0 = uniform-ish,
    /// 0.99 = YCSB default).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0 && theta > 0.0 && theta < 1.0);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // exact up to 10^6 terms, then integral approximation
        let exact = n.min(1_000_000);
        let mut z: f64 = (1..=exact).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        if n > exact {
            // ∫ x^-theta dx from `exact` to `n`
            let a = 1.0 - theta;
            z += ((n as f64).powf(a) - (exact as f64).powf(a)) / a;
        }
        z
    }

    /// Samples a rank in `0..n` (0 is the hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let _ = self.zeta2;
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64 % self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_covers_range() {
        let d = KeyDist::uniform();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let k = d.sample(10, &mut rng);
            assert!(k < 10);
            seen.insert(k);
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn zipfian_is_skewed() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u64; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // rank 0 should dominate the median rank
        let hot = counts[0];
        let mid = counts[500].max(1);
        assert!(hot > mid * 10, "hot {hot} vs mid {mid}");
    }

    #[test]
    fn zipfian_samples_in_range() {
        let z = Zipfian::new(50, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let d = KeyDist::zipfian(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(d.sample(1000, &mut rng));
        }
        assert!(
            seen.len() > 50,
            "scrambling should spread mass: {}",
            seen.len()
        );
    }
}
