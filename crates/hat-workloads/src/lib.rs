//! # hat-workloads — workload generators
//!
//! * [`dist`] — key-choice distributions: uniform and YCSB's scrambled
//!   zipfian.
//! * [`ycsb`] — the YCSB-style closed-loop workload of §6.3: grouped
//!   read/write transactions over `user###` keys with configurable value
//!   size, read proportion and transaction length. Implements
//!   [`hat_core::client::TxnSource`], so it plugs straight into the
//!   simulator's closed-loop clients.
//! * [`tpcc`] — an executable TPC-C-lite (§6.2): all five transactions
//!   over the HAT key-value API plus the consistency conditions the
//!   paper analyses (warehouse/district YTD sums, order-ID sequencing,
//!   non-negative stock).

pub mod dist;
pub mod tpcc;
pub mod ycsb;

pub use dist::{KeyDist, Zipfian};
pub use ycsb::{YcsbConfig, YcsbSource};
