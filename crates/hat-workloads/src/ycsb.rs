//! YCSB-style closed-loop workload (§6.3 configuration).
//!
//! "We link our client library to the YCSB benchmark ... grouping every
//! eight YCSB operations from the default workload (50% reads, 50%
//! writes) to form a transaction. We increase the number of keys in the
//! workload from the default 1,000 to 100,000 with uniform random key
//! access, keeping the default value size of 1KB."

use crate::dist::KeyDist;
use bytes::Bytes;
use hat_core::client::TxnSource;
use hat_core::{Op, TxnSpec};
use hat_storage::Key;
use rand::rngs::StdRng;
use rand::Rng;

/// YCSB workload knobs.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Number of distinct keys (paper: 100,000).
    pub num_keys: u64,
    /// Value size in bytes (paper: 1 KB).
    pub value_size: usize,
    /// Fraction of operations that are reads (paper default: 0.5).
    pub read_proportion: f64,
    /// Operations per transaction (paper: 8).
    pub ops_per_txn: usize,
    /// Key distribution (paper: uniform).
    pub dist: KeyDist,
    /// Stop after this many transactions (`None` = run forever; the
    /// experiment harness bounds runs by simulated time instead).
    pub txn_limit: Option<u64>,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            num_keys: 100_000,
            value_size: 1024,
            read_proportion: 0.5,
            ops_per_txn: 8,
            dist: KeyDist::uniform(),
            txn_limit: None,
        }
    }
}

impl YcsbConfig {
    /// A scaled-down configuration for tests (small keyspace and values).
    pub fn small() -> Self {
        YcsbConfig {
            num_keys: 100,
            value_size: 16,
            read_proportion: 0.5,
            ops_per_txn: 4,
            dist: KeyDist::uniform(),
            txn_limit: None,
        }
    }

    /// The key string for index `i` (YCSB-style `user` prefix,
    /// zero-padded so predicate scans see a dense ordered space).
    pub fn key(&self, i: u64) -> Key {
        Key::from(format!("user{i:08}"))
    }
}

/// A closed-loop YCSB transaction source.
#[derive(Debug, Clone)]
pub struct YcsbSource {
    config: YcsbConfig,
    value: Bytes,
    issued: u64,
}

impl YcsbSource {
    /// Builds a source over `config`.
    pub fn new(config: YcsbConfig) -> Self {
        // deterministic filler value; contents don't matter, size does
        let value = Bytes::from(vec![0x61u8; config.value_size]);
        YcsbSource {
            config,
            value,
            issued: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }
}

impl TxnSource for YcsbSource {
    fn next_txn(&mut self, rng: &mut StdRng) -> Option<TxnSpec> {
        if let Some(limit) = self.config.txn_limit {
            if self.issued >= limit {
                return None;
            }
        }
        self.issued += 1;
        let mut ops = Vec::with_capacity(self.config.ops_per_txn);
        for _ in 0..self.config.ops_per_txn {
            let key = self
                .config
                .key(self.config.dist.sample(self.config.num_keys, rng));
            if rng.gen_bool(self.config.read_proportion) {
                ops.push(Op::Read(key));
            } else {
                ops.push(Op::Write(key, self.value.clone()));
            }
        }
        Some(TxnSpec::new(ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_shape() {
        let mut src = YcsbSource::new(YcsbConfig {
            num_keys: 10,
            value_size: 8,
            read_proportion: 0.5,
            ops_per_txn: 8,
            dist: KeyDist::uniform(),
            txn_limit: Some(5),
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut txns = 0;
        while let Some(spec) = src.next_txn(&mut rng) {
            assert_eq!(spec.ops.len(), 8);
            for op in &spec.ops {
                if let Op::Write(_, v) = op {
                    assert_eq!(v.len(), 8);
                }
            }
            txns += 1;
        }
        assert_eq!(txns, 5, "txn_limit respected");
    }

    #[test]
    fn read_proportion_is_respected() {
        let mut src = YcsbSource::new(YcsbConfig {
            read_proportion: 0.998, // Facebook's workload (§6.3)
            ops_per_txn: 8,
            txn_limit: Some(1000),
            ..YcsbConfig::small()
        });
        let mut rng = StdRng::seed_from_u64(2);
        let (mut reads, mut writes) = (0u64, 0u64);
        while let Some(spec) = src.next_txn(&mut rng) {
            for op in &spec.ops {
                if op.is_write() {
                    writes += 1;
                } else {
                    reads += 1;
                }
            }
        }
        let frac = reads as f64 / (reads + writes) as f64;
        assert!((frac - 0.998).abs() < 0.01, "read fraction {frac}");
    }

    #[test]
    fn keys_are_zero_padded_and_bounded() {
        let cfg = YcsbConfig::small();
        assert_eq!(cfg.key(7), Key::from("user00000007"));
        let mut src = YcsbSource::new(YcsbConfig {
            txn_limit: Some(100),
            ..YcsbConfig::small()
        });
        let mut rng = StdRng::seed_from_u64(3);
        while let Some(spec) = src.next_txn(&mut rng) {
            for op in &spec.ops {
                let k = String::from_utf8(op.key().to_vec()).unwrap();
                let idx: u64 = k.strip_prefix("user").unwrap().parse().unwrap();
                assert!(idx < 100);
            }
        }
    }
}
