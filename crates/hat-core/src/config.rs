//! System configuration: protocol choice and the server service-time
//! model.

use hat_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Which concurrency-control / replication protocol the deployment runs.
///
/// The first three are the HAT configurations of §6.3; the last two are
/// the unavailable baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Last-writer-wins Read Uncommitted with all-to-all anti-entropy —
    /// the paper's `eventual`.
    Eventual,
    /// `eventual` plus client-side write buffering until commit — the
    /// paper's `RC` ("essentially eventual with buffering").
    ReadCommitted,
    /// The efficient Monotonic Atomic View algorithm of §5.1.2 /
    /// Appendix B (pending/good sets, sibling notifications, `required`
    /// vectors).
    Mav,
    /// Read Atomic visibility, RAMP-Fast style: each write carries its
    /// transaction's full write-set as metadata, readers detect
    /// fractured reads from that metadata and repair them with a second
    /// round of by-timestamp fetches. One-round reads in the race-free
    /// case; no server-side sibling-notification fan-in at all.
    RampFast,
    /// Read Atomic visibility, RAMP-Small style: constant-size
    /// (timestamp-only) metadata. Reads always take two rounds — fetch
    /// the latest committed stamp, then fetch the newest version whose
    /// stamp is in the transaction's observed-timestamp set.
    RampSmall,
    /// All operations for a key routed to a designated master replica,
    /// guaranteeing single-key linearizability (as in the CAP proof and
    /// PNUTS "read latest") — the paper's `master`.
    Master,
    /// Distributed two-phase locking: per-key exclusive/shared locks at
    /// the key's master, held until commit. One-copy serializable and
    /// thoroughly unavailable.
    TwoPhaseLocking,
}

impl ProtocolKind {
    /// True for protocols that are highly available (HAT-compliant).
    pub fn is_hat(self) -> bool {
        matches!(
            self,
            ProtocolKind::Eventual
                | ProtocolKind::ReadCommitted
                | ProtocolKind::Mav
                | ProtocolKind::RampFast
                | ProtocolKind::RampSmall
        )
    }

    /// True for the Read Atomic (RAMP) family: reader-side repair from
    /// per-write metadata, two-phase (prepare/commit) writes.
    pub fn is_ramp(self) -> bool {
        matches!(self, ProtocolKind::RampFast | ProtocolKind::RampSmall)
    }

    /// True for protocols whose clients buffer writes until commit
    /// (Read Committed write buffering, §5.1.1 — shared by RC, MAV and
    /// both RAMP engines).
    pub fn buffers_writes(self) -> bool {
        matches!(
            self,
            ProtocolKind::ReadCommitted
                | ProtocolKind::Mav
                | ProtocolKind::RampFast
                | ProtocolKind::RampSmall
        )
    }

    /// Short label used in experiment output (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Eventual => "eventual",
            ProtocolKind::ReadCommitted => "RC",
            ProtocolKind::Mav => "MAV",
            ProtocolKind::RampFast => "RAMP-F",
            ProtocolKind::RampSmall => "RAMP-S",
            ProtocolKind::Master => "master",
            ProtocolKind::TwoPhaseLocking => "2PL",
        }
    }

    /// Streaming-checker policy for this engine: only phenomena the
    /// engine's *advertised* isolation level prohibits are checked
    /// online, mirroring `hat-history`'s `IsolationLevel::prohibited`
    /// sets. Read Atomic (both RAMP engines) and Serializable (2PL)
    /// prohibit fractured reads; only Serializable prohibits
    /// non-monotonic session reads (MAV's monotonic *view* still
    /// permits per-key read regression, Definition 28 vs the MAV cut).
    pub fn checker_policy(self) -> hat_obs::CheckerPolicy {
        hat_obs::CheckerPolicy {
            fractured: self.is_ramp() || self == ProtocolKind::TwoPhaseLocking,
            monotonic: self == ProtocolKind::TwoPhaseLocking,
        }
    }

    /// All protocol kinds, HAT first (the order used in experiment
    /// tables).
    pub const ALL: [ProtocolKind; 7] = [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
        ProtocolKind::RampFast,
        ProtocolKind::RampSmall,
        ProtocolKind::Master,
        ProtocolKind::TwoPhaseLocking,
    ];
}

/// Server-side service-time model.
///
/// The simulator charges each request a service duration at the replica
/// that handles it; a replica is a single queue (requests are serialized),
/// which is what produces the saturation and contention shapes of
/// Figures 3–6. Defaults are calibrated so the *ratios* the paper reports
/// hold: writes ≈ 4× reads (LevelDB write + synchronous WAL, Figure 5's
/// all-read vs all-write gap), MAV writes ≈ 1.5× plain writes plus a
/// per-metadata-byte cost (Figure 4) plus a per-sibling-replica
/// notification cost (the five-cluster fan-in effect of Figure 3C).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Service time of a read, µs.
    pub read_us: f64,
    /// Service time of a write (WAL + storage), µs.
    pub write_us: f64,
    /// MAV write amplification factor ("two writes for every client-side
    /// write": WAL/pending put then good promotion).
    pub mav_write_factor: f64,
    /// Cost per byte of MAV sibling metadata, µs/byte.
    pub meta_byte_us: f64,
    /// Cost of processing one MAV sibling notification, µs.
    pub notify_us: f64,
    /// Cost of applying one anti-entropy record, µs.
    pub replicate_record_us: f64,
    /// Cost of a lock-table operation (grant/enqueue/release), µs.
    pub lock_us: f64,
    /// Cost of a predicate scan per matched record, µs.
    pub scan_record_us: f64,
    /// Cost of a RAMP-Small first-round timestamp read (no value moved,
    /// constant-size reply), µs.
    pub ts_read_us: f64,
    /// Cost of applying a RAMP commit marker (promote prepared →
    /// visible), µs.
    pub ramp_commit_us: f64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            read_us: 100.0,
            write_us: 400.0,
            mav_write_factor: 1.5,
            meta_byte_us: 0.15,
            notify_us: 40.0,
            replicate_record_us: 120.0,
            lock_us: 20.0,
            scan_record_us: 20.0,
            ts_read_us: 40.0,
            ramp_commit_us: 40.0,
        }
    }
}

impl ServiceModel {
    /// A free service model (all costs zero) for ablations that isolate
    /// pure network effects.
    pub fn zero() -> Self {
        ServiceModel {
            read_us: 0.0,
            write_us: 0.0,
            mav_write_factor: 1.0,
            meta_byte_us: 0.0,
            notify_us: 0.0,
            replicate_record_us: 0.0,
            lock_us: 0.0,
            scan_record_us: 0.0,
            ts_read_us: 0.0,
            ramp_commit_us: 0.0,
        }
    }

    /// Service duration of a MAV write carrying `meta_bytes` of sibling
    /// metadata.
    pub fn mav_write(&self, meta_bytes: usize) -> SimDuration {
        SimDuration::from_micros(
            (self.write_us * self.mav_write_factor + self.meta_byte_us * meta_bytes as f64) as u64,
        )
    }

    /// Plain write service duration.
    pub fn write(&self) -> SimDuration {
        SimDuration::from_micros(self.write_us as u64)
    }

    /// Read service duration.
    pub fn read(&self) -> SimDuration {
        SimDuration::from_micros(self.read_us as u64)
    }

    /// RAMP-Small first-round (timestamp-only) read service duration.
    pub fn ts_read(&self) -> SimDuration {
        SimDuration::from_micros(self.ts_read_us as u64)
    }

    /// RAMP commit-marker service duration.
    pub fn ramp_commit(&self) -> SimDuration {
        SimDuration::from_micros(self.ramp_commit_us as u64)
    }

    /// Service duration of a RAMP prepare carrying `meta_bytes` of
    /// write-set metadata: a plain durable write plus the per-byte
    /// metadata cost (no MAV-style write amplification — the second
    /// phase is a cheap commit marker, charged separately).
    pub fn ramp_prepare(&self, meta_bytes: usize) -> SimDuration {
        SimDuration::from_micros((self.write_us + self.meta_byte_us * meta_bytes as f64) as u64)
    }
}

/// Client retry/backoff policy for outstanding requests.
///
/// Replaces the previously hardcoded backoff constants: a retried
/// request waits `base × multiplier^min(attempts, max_exponent)` before
/// the next attempt. Without the exponential component a saturated
/// server turns slow commits into a retry storm; the cap keeps sticky
/// clients probing often enough to notice a healed partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Per-attempt backoff multiplier.
    pub multiplier: u64,
    /// Exponent cap: attempts beyond this reuse the maximum delay.
    pub max_exponent: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: SimDuration::from_millis(1000),
            multiplier: 2,
            max_exponent: 4,
        }
    }
}

impl RetryPolicy {
    /// A fixed-interval policy (no exponential growth).
    pub fn fixed(interval: SimDuration) -> Self {
        RetryPolicy {
            base: interval,
            multiplier: 1,
            max_exponent: 0,
        }
    }

    /// The delay scheduled after `attempts` failed tries.
    pub fn backoff(&self, attempts: u32) -> SimDuration {
        let factor = self
            .multiplier
            .max(1)
            .saturating_pow(attempts.min(self.max_exponent));
        self.base.saturating_mul(factor)
    }
}

/// Full deployment configuration shared by servers and clients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Protocol the deployment runs.
    pub protocol: ProtocolKind,
    /// Server service-time model.
    pub service: ServiceModel,
    /// Anti-entropy gossip period between sibling replicas.
    pub anti_entropy_interval: SimDuration,
    /// Client retry/backoff policy for outstanding requests.
    pub retry: RetryPolicy,
    /// Per-operation deadline after which the facade reports
    /// unavailability.
    pub op_deadline: SimDuration,
    /// 2PL: how long a lock request may wait before the system aborts the
    /// transaction (external abort; also the deadlock breaker).
    pub lock_timeout: SimDuration,
    /// Upper bound on one WAN round trip (the largest Table 1c mean is
    /// São Paulo–Singapore at ~363ms). Used to derive the quiesce
    /// duration.
    pub wan_rtt_bound: SimDuration,
    /// Whether clients record full [`crate::TxnRecord`] histories (turn
    /// off for throughput runs).
    pub record_history: bool,
    /// Per-key bound on server version chains. Multi-version readers
    /// (RAMP's `get_at`, snapshot reads) only reach back a bounded
    /// distance, so replicas keep at most this many versions per key.
    pub version_chain_limit: usize,
    /// Group commit: the most commit marks a RAMP phase-2 client
    /// coalesces into one [`crate::Msg::CommitBatch`] per destination
    /// server. Values ≤ 1 disable batching (one [`crate::Msg::Commit`]
    /// per key, the pre-group-commit wire behavior).
    pub commit_batch_size: usize,
    /// Anti-entropy lag (in log entries) above which a peer is caught up
    /// with one delta-compressed batch (latest version per key, closed
    /// over transaction stamps) instead of per-record replay. The default
    /// matches `MAX_BATCH`, so compaction kicks in exactly when replay
    /// would need more than one full batch.
    pub delta_catchup_threshold: u64,
    /// Structured tracing. When `false` (the default) every node carries
    /// a no-op [`hat_trace::TraceSink`] — recording is a branch on a
    /// `None`, no allocation, no lock. When `true` the deployment builder
    /// installs one shared sink on every client, server, and the network,
    /// exported via the frontend. Tracing observes the same seeded
    /// schedule either way: same-seed runs are bit-identical with it on
    /// or off.
    pub trace: bool,
    /// Live telemetry (hat-obs). Same determinism contract as `trace`:
    /// disabled (the default) costs one branch per hook; enabled, the
    /// sampler and probes only *read* simulation state and draw nothing
    /// from the rng, so same-seed runs are bit-identical on or off.
    pub obs: ObsConfig,
}

/// Live-telemetry configuration (see `hat-obs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Master switch; when false the deployment carries no-op sinks.
    pub enabled: bool,
    /// Time-series sampling cadence.
    pub sample_interval: SimDuration,
    /// Register every Nth commit as a t-visibility probe (0 = none).
    pub probe_every: u64,
    /// Max in-flight visibility probes.
    pub probe_cap: usize,
    /// Streaming-checker sliding window (recent writers kept).
    pub checker_window: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            sample_interval: SimDuration::from_millis(10),
            probe_every: 4,
            probe_cap: 64,
            checker_window: 256,
        }
    }
}

impl ObsConfig {
    /// The hat-obs options this configuration expands to for an engine
    /// running `protocol` (the checker policy is per-engine).
    pub fn options(&self, protocol: ProtocolKind) -> hat_obs::ObsOptions {
        hat_obs::ObsOptions {
            sample_interval_us: self.sample_interval.as_micros(),
            probe_every: self.probe_every,
            probe_cap: self.probe_cap,
            checker_window: self.checker_window,
            policy: protocol.checker_policy(),
        }
    }
}

impl SystemConfig {
    /// Defaults for `protocol`.
    pub fn new(protocol: ProtocolKind) -> Self {
        SystemConfig {
            protocol,
            service: ServiceModel::default(),
            anti_entropy_interval: SimDuration::from_millis(10),
            retry: RetryPolicy::default(),
            op_deadline: SimDuration::from_secs(30),
            lock_timeout: SimDuration::from_secs(10),
            wan_rtt_bound: SimDuration::from_millis(400),
            record_history: true,
            version_chain_limit: 64,
            commit_batch_size: 64,
            delta_catchup_threshold: crate::protocol::replication::MAX_BATCH as u64,
            trace: false,
            obs: ObsConfig::default(),
        }
    }

    /// How long a deployment must run, mutation-free, for replication to
    /// quiesce: enough anti-entropy rounds *and* WAN round trips for
    /// every write (and, under MAV, every sibling notification) to reach
    /// every replica. Derived rather than hardcoded so deployments with
    /// faster gossip or shorter links quiesce proportionally faster.
    pub fn quiesce_duration(&self) -> SimDuration {
        self.quiesce_duration_scaled(1.0)
    }

    /// [`SystemConfig::quiesce_duration`] with the WAN term scaled by
    /// `wan_scale` — for runtimes that scale network latency but run
    /// timers (the anti-entropy term) in real time, like the threaded
    /// runtime's `latency_scale`.
    pub fn quiesce_duration_scaled(&self, wan_scale: f64) -> SimDuration {
        let wan =
            SimDuration::from_micros((self.wan_rtt_bound.as_micros() as f64 * wan_scale) as u64);
        (self.anti_entropy_interval + wan).saturating_mul(QUIESCE_ROUNDS)
    }
}

/// Rounds of (anti-entropy interval + WAN RTT) covered by a quiesce:
/// gossip propagation is clique-wide, but MAV promotion needs a write to
/// replicate *and* its notifications to fan back in, with retries.
const QUIESCE_ROUNDS: u64 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hat_classification() {
        assert!(ProtocolKind::Eventual.is_hat());
        assert!(ProtocolKind::ReadCommitted.is_hat());
        assert!(ProtocolKind::Mav.is_hat());
        assert!(ProtocolKind::RampFast.is_hat(), "RA is HAT-compliant");
        assert!(ProtocolKind::RampSmall.is_hat(), "RA is HAT-compliant");
        assert!(!ProtocolKind::Master.is_hat());
        assert!(!ProtocolKind::TwoPhaseLocking.is_hat());
        assert!(ProtocolKind::RampFast.is_ramp() && ProtocolKind::RampSmall.is_ramp());
        assert!(!ProtocolKind::Mav.is_ramp());
        for p in [
            ProtocolKind::ReadCommitted,
            ProtocolKind::Mav,
            ProtocolKind::RampFast,
            ProtocolKind::RampSmall,
        ] {
            assert!(p.buffers_writes());
        }
        assert!(!ProtocolKind::Eventual.buffers_writes());
    }

    #[test]
    fn labels_match_paper_legend() {
        let labels: Vec<_> = ProtocolKind::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec!["eventual", "RC", "MAV", "RAMP-F", "RAMP-S", "master", "2PL"]
        );
    }

    #[test]
    fn writes_cost_about_4x_reads() {
        let m = ServiceModel::default();
        let ratio = m.write_us / m.read_us;
        assert!(
            (3.0..=5.0).contains(&ratio),
            "Figure 5's all-read/all-write gap needs writes ~4x reads, got {ratio}"
        );
    }

    #[test]
    fn mav_write_grows_with_metadata() {
        let m = ServiceModel::default();
        let short = m.mav_write(34); // 1-op txn overhead (paper, Fig 4)
        let long = m.mav_write(1898); // 128-op txn overhead
        assert!(long > short);
        assert!(long.as_micros() > m.write().as_micros());
    }

    #[test]
    fn retry_policy_backs_off_exponentially_with_cap() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), SimDuration::from_millis(1000));
        assert_eq!(p.backoff(1), SimDuration::from_millis(2000));
        assert_eq!(p.backoff(4), SimDuration::from_millis(16000));
        assert_eq!(p.backoff(9), p.backoff(4), "capped at max_exponent");
        let f = RetryPolicy::fixed(SimDuration::from_millis(50));
        assert_eq!(f.backoff(7), SimDuration::from_millis(50));
    }

    #[test]
    fn quiesce_duration_tracks_config() {
        let mut c = SystemConfig::new(ProtocolKind::Mav);
        let slow = c.quiesce_duration();
        c.anti_entropy_interval = SimDuration::from_millis(1);
        c.wan_rtt_bound = SimDuration::from_millis(10);
        assert!(c.quiesce_duration() < slow, "faster links quiesce faster");
    }

    #[test]
    fn zero_model_is_free() {
        let m = ServiceModel::zero();
        assert_eq!(m.read().as_micros(), 0);
        assert_eq!(m.mav_write(10_000).as_micros(), 0);
        assert_eq!(m.ramp_prepare(10_000).as_micros(), 0);
        assert_eq!(m.ts_read().as_micros(), 0);
    }

    #[test]
    fn ramp_costs_sit_between_plain_and_mav() {
        let m = ServiceModel::default();
        // RAMP prepare pays metadata bytes but not MAV's write
        // amplification; the second phase is a cheap marker.
        assert!(m.ramp_prepare(100) > m.write());
        assert!(m.ramp_prepare(100) < m.mav_write(100));
        // A timestamp-only read is cheaper than a value read.
        assert!(m.ts_read() < m.read());
    }
}
