//! System configuration: protocol choice and the server service-time
//! model.

use hat_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Which concurrency-control / replication protocol the deployment runs.
///
/// The first three are the HAT configurations of §6.3; the last two are
/// the unavailable baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Last-writer-wins Read Uncommitted with all-to-all anti-entropy —
    /// the paper's `eventual`.
    Eventual,
    /// `eventual` plus client-side write buffering until commit — the
    /// paper's `RC` ("essentially eventual with buffering").
    ReadCommitted,
    /// The efficient Monotonic Atomic View algorithm of §5.1.2 /
    /// Appendix B (pending/good sets, sibling notifications, `required`
    /// vectors).
    Mav,
    /// All operations for a key routed to a designated master replica,
    /// guaranteeing single-key linearizability (as in the CAP proof and
    /// PNUTS "read latest") — the paper's `master`.
    Master,
    /// Distributed two-phase locking: per-key exclusive/shared locks at
    /// the key's master, held until commit. One-copy serializable and
    /// thoroughly unavailable.
    TwoPhaseLocking,
}

impl ProtocolKind {
    /// True for protocols that are highly available (HAT-compliant).
    pub fn is_hat(self) -> bool {
        matches!(
            self,
            ProtocolKind::Eventual | ProtocolKind::ReadCommitted | ProtocolKind::Mav
        )
    }

    /// Short label used in experiment output (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Eventual => "eventual",
            ProtocolKind::ReadCommitted => "RC",
            ProtocolKind::Mav => "MAV",
            ProtocolKind::Master => "master",
            ProtocolKind::TwoPhaseLocking => "2PL",
        }
    }

    /// All protocol kinds, HAT first (the order used in experiment
    /// tables).
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
        ProtocolKind::Master,
        ProtocolKind::TwoPhaseLocking,
    ];
}

/// Server-side service-time model.
///
/// The simulator charges each request a service duration at the replica
/// that handles it; a replica is a single queue (requests are serialized),
/// which is what produces the saturation and contention shapes of
/// Figures 3–6. Defaults are calibrated so the *ratios* the paper reports
/// hold: writes ≈ 4× reads (LevelDB write + synchronous WAL, Figure 5's
/// all-read vs all-write gap), MAV writes ≈ 1.5× plain writes plus a
/// per-metadata-byte cost (Figure 4) plus a per-sibling-replica
/// notification cost (the five-cluster fan-in effect of Figure 3C).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Service time of a read, µs.
    pub read_us: f64,
    /// Service time of a write (WAL + storage), µs.
    pub write_us: f64,
    /// MAV write amplification factor ("two writes for every client-side
    /// write": WAL/pending put then good promotion).
    pub mav_write_factor: f64,
    /// Cost per byte of MAV sibling metadata, µs/byte.
    pub meta_byte_us: f64,
    /// Cost of processing one MAV sibling notification, µs.
    pub notify_us: f64,
    /// Cost of applying one anti-entropy record, µs.
    pub replicate_record_us: f64,
    /// Cost of a lock-table operation (grant/enqueue/release), µs.
    pub lock_us: f64,
    /// Cost of a predicate scan per matched record, µs.
    pub scan_record_us: f64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            read_us: 100.0,
            write_us: 400.0,
            mav_write_factor: 1.5,
            meta_byte_us: 0.15,
            notify_us: 40.0,
            replicate_record_us: 120.0,
            lock_us: 20.0,
            scan_record_us: 20.0,
        }
    }
}

impl ServiceModel {
    /// A free service model (all costs zero) for ablations that isolate
    /// pure network effects.
    pub fn zero() -> Self {
        ServiceModel {
            read_us: 0.0,
            write_us: 0.0,
            mav_write_factor: 1.0,
            meta_byte_us: 0.0,
            notify_us: 0.0,
            replicate_record_us: 0.0,
            lock_us: 0.0,
            scan_record_us: 0.0,
        }
    }

    /// Service duration of a MAV write carrying `meta_bytes` of sibling
    /// metadata.
    pub fn mav_write(&self, meta_bytes: usize) -> SimDuration {
        SimDuration::from_micros(
            (self.write_us * self.mav_write_factor + self.meta_byte_us * meta_bytes as f64) as u64,
        )
    }

    /// Plain write service duration.
    pub fn write(&self) -> SimDuration {
        SimDuration::from_micros(self.write_us as u64)
    }

    /// Read service duration.
    pub fn read(&self) -> SimDuration {
        SimDuration::from_micros(self.read_us as u64)
    }
}

/// Full deployment configuration shared by servers and clients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Protocol the deployment runs.
    pub protocol: ProtocolKind,
    /// Server service-time model.
    pub service: ServiceModel,
    /// Anti-entropy gossip period between sibling replicas.
    pub anti_entropy_interval: SimDuration,
    /// Client retry interval for outstanding requests.
    pub retry_interval: SimDuration,
    /// Per-operation deadline after which the facade reports
    /// unavailability.
    pub op_deadline: SimDuration,
    /// 2PL: how long a lock request may wait before the system aborts the
    /// transaction (external abort; also the deadlock breaker).
    pub lock_timeout: SimDuration,
    /// Whether clients record full [`crate::TxnRecord`] histories (turn
    /// off for throughput runs).
    pub record_history: bool,
}

impl SystemConfig {
    /// Defaults for `protocol`.
    pub fn new(protocol: ProtocolKind) -> Self {
        SystemConfig {
            protocol,
            service: ServiceModel::default(),
            anti_entropy_interval: SimDuration::from_millis(10),
            retry_interval: SimDuration::from_millis(1000),
            op_deadline: SimDuration::from_secs(30),
            lock_timeout: SimDuration::from_secs(10),
            record_history: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hat_classification() {
        assert!(ProtocolKind::Eventual.is_hat());
        assert!(ProtocolKind::ReadCommitted.is_hat());
        assert!(ProtocolKind::Mav.is_hat());
        assert!(!ProtocolKind::Master.is_hat());
        assert!(!ProtocolKind::TwoPhaseLocking.is_hat());
    }

    #[test]
    fn labels_match_paper_legend() {
        let labels: Vec<_> = ProtocolKind::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["eventual", "RC", "MAV", "master", "2PL"]);
    }

    #[test]
    fn writes_cost_about_4x_reads() {
        let m = ServiceModel::default();
        let ratio = m.write_us / m.read_us;
        assert!(
            (3.0..=5.0).contains(&ratio),
            "Figure 5's all-read/all-write gap needs writes ~4x reads, got {ratio}"
        );
    }

    #[test]
    fn mav_write_grows_with_metadata() {
        let m = ServiceModel::default();
        let short = m.mav_write(34); // 1-op txn overhead (paper, Fig 4)
        let long = m.mav_write(1898); // 128-op txn overhead
        assert!(long > short);
        assert!(long.as_micros() > m.write().as_micros());
    }

    #[test]
    fn zero_model_is_free() {
        let m = ServiceModel::zero();
        assert_eq!(m.read().as_micros(), 0);
        assert_eq!(m.mav_write(10_000).as_micros(), 0);
    }
}
