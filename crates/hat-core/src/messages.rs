//! The wire protocol: every message exchanged between clients and
//! servers, across all five protocol kinds.

use crate::timestamp::Timestamp;
use hat_sim::NodeId;
use hat_storage::{Key, SharedRecord};
use serde::{Deserialize, Serialize};

/// Which version a RAMP second-round fetch asks for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VersionReq {
    /// Exactly this stamp (RAMP-Fast repair: the sibling version named
    /// in another record's metadata). The server may hold the reply
    /// until the version arrives — it is guaranteed to be in flight.
    Exact(Timestamp),
    /// The newest committed version at or below this stamp (RAMP-Fast
    /// ceiling repair: a later read must not expose a write-set a
    /// previously returned read fractures).
    AtOrBelow(Timestamp),
    /// The newest version whose stamp is in this set (RAMP-Small second
    /// round: the transaction's observed-timestamp set).
    Among(Vec<Timestamp>),
}

/// Messages of the HAT deployment. One enum covers all protocols; servers
/// ignore variants their protocol never receives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Msg {
    // ---- client → server ----
    /// Read `key`. `required` is the MAV lower bound (Appendix B's
    /// `ts_required`); `Timestamp::INITIAL` means "no bound, give me the
    /// latest".
    Get {
        /// Transaction issuing the read.
        txn: Timestamp,
        /// Op index within the transaction (correlates the response).
        op: u32,
        /// Key to read.
        key: Key,
        /// MAV `required` lower bound (INITIAL = none).
        required: Timestamp,
    },
    /// Predicate read: all keys under `prefix`.
    Scan {
        /// Transaction issuing the scan.
        txn: Timestamp,
        /// Op index within the transaction.
        op: u32,
        /// Key prefix to scan.
        prefix: Key,
    },
    /// Install a write. The record carries the transaction timestamp and
    /// (for MAV) the sibling key list. The handle is the write's single
    /// allocation: the client's commit buffer, this message, the server's
    /// store, and the replication log all share it.
    Put {
        /// Transaction issuing the write.
        txn: Timestamp,
        /// Op index within the transaction.
        op: u32,
        /// Key to write.
        key: Key,
        /// The version to install.
        record: SharedRecord,
    },
    /// RAMP-Small round 1: fetch the latest *committed stamp* of `key`
    /// (no value moves — this is the constant-size metadata read).
    GetTs {
        /// Transaction issuing the read.
        txn: Timestamp,
        /// Op index within the transaction.
        op: u32,
        /// Key whose latest committed stamp is wanted.
        key: Key,
    },
    /// RAMP second-round fetch: a specific version of `key`, selected by
    /// `req` (exact sibling stamp, ceiling, or timestamp set).
    GetVersion {
        /// Transaction issuing the fetch.
        txn: Timestamp,
        /// Op index within the transaction.
        op: u32,
        /// Key to fetch.
        key: Key,
        /// Which version is wanted.
        req: VersionReq,
    },
    /// RAMP commit marker: promote the prepared version of `key` stamped
    /// `ts` to visible (phase 2 of the two-phase write).
    Commit {
        /// Committing transaction.
        txn: Timestamp,
        /// Op index (correlates the ack, which is a [`Msg::PutResp`]).
        op: u32,
        /// Key whose prepared version commits.
        key: Key,
        /// Stamp of the version committing.
        ts: Timestamp,
    },
    /// Group commit: every commit marker a transaction owes one server,
    /// coalesced into a single message (phase 2 of the two-phase write
    /// sends one `CommitBatch` per destination instead of one
    /// [`Msg::Commit`] per key). Acked by [`Msg::CommitBatchResp`].
    CommitBatch {
        /// Committing transaction.
        txn: Timestamp,
        /// Stamp of the versions committing (the transaction timestamp).
        ts: Timestamp,
        /// `(op, key)` commit marks, in op order.
        marks: Vec<(u32, Key)>,
    },
    /// 2PL: acquire a lock on `key` at its lock master.
    Lock {
        /// Requesting transaction.
        txn: Timestamp,
        /// Op index (correlates the grant).
        op: u32,
        /// Key to lock.
        key: Key,
        /// Exclusive (write) or shared (read) mode.
        exclusive: bool,
    },
    /// 2PL: release this transaction's locks on `keys`.
    Unlock {
        /// Transaction releasing.
        txn: Timestamp,
        /// Keys to release.
        keys: Vec<Key>,
    },
    /// 2PL commit-time validation: is `txn`'s lock on `key` still on
    /// the master's table? A crash wipes the volatile lock table, so a
    /// read lock can vanish mid-transaction and a conflicting writer
    /// can be granted the key before the reader commits — write skew
    /// the write-path fence ([`crate::protocol::ProtocolEngine::
    /// write_admissible`]) cannot see, because the reader never writes
    /// the key. The client checks every read-locked key before flushing
    /// its commit writes and aborts on any `ok: false` answer.
    LockCheck {
        /// Transaction validating its lock.
        txn: Timestamp,
        /// Op index (correlates the response).
        op: u32,
        /// Key whose lock is being validated.
        key: Key,
    },

    // ---- server → client ----
    /// Response to [`Msg::Get`].
    GetResp {
        /// Transaction the read belongs to.
        txn: Timestamp,
        /// Op index echoed from the request.
        op: u32,
        /// The version read, or `None` for the initial `⊥` value.
        found: Option<SharedRecord>,
    },
    /// Response to [`Msg::Scan`].
    ScanResp {
        /// Transaction the scan belongs to.
        txn: Timestamp,
        /// Op index echoed from the request.
        op: u32,
        /// Matched `(key, version)` pairs in key order.
        matches: Vec<(Key, SharedRecord)>,
    },
    /// Response to [`Msg::GetTs`].
    GetTsResp {
        /// Transaction the read belongs to.
        txn: Timestamp,
        /// Op index echoed from the request.
        op: u32,
        /// Latest committed stamp (INITIAL when the key has no version).
        ts: Timestamp,
    },
    /// Response to [`Msg::GetVersion`].
    GetVersionResp {
        /// Transaction the fetch belongs to.
        txn: Timestamp,
        /// Op index echoed from the request.
        op: u32,
        /// The version found, or `None` when nothing satisfies the
        /// request.
        found: Option<SharedRecord>,
    },
    /// Acknowledgement of [`Msg::Put`] (and of [`Msg::Commit`]).
    PutResp {
        /// Transaction the write belongs to.
        txn: Timestamp,
        /// Op index echoed from the request.
        op: u32,
    },
    /// Acknowledgement of [`Msg::CommitBatch`]: every mark in the batch
    /// was applied.
    CommitBatchResp {
        /// Transaction the batch belongs to.
        txn: Timestamp,
        /// Op indexes of the acknowledged marks.
        ops: Vec<u32>,
    },
    /// 2PL: the lock on `key` was granted to `txn`.
    LockResp {
        /// Transaction the grant is for.
        txn: Timestamp,
        /// Op index echoed from the request.
        op: u32,
        /// Lamport floor: the granted key's current version stamp
        /// ([`Timestamp::INITIAL`] when the key has no version). The
        /// client observes it into its clock so the commit stamp
        /// Lamport-dominates every locked key's current version — a
        /// *blind* write (locked X, never read) would otherwise carry a
        /// stamp ordered only against the transaction's read set, and
        /// last-writer-wins could place it *behind* the version it
        /// overwrote, inverting the lock serialization order.
        floor: Timestamp,
    },
    /// Response to [`Msg::LockCheck`]. `ok: false` means the lock is no
    /// longer on the table (the master crashed and rebuilt an empty
    /// one) — the transaction must abort instead of committing.
    LockCheckResp {
        /// Transaction echoed from the request.
        txn: Timestamp,
        /// Op index echoed from the request.
        op: u32,
        /// Whether the lock is still held.
        ok: bool,
    },

    // ---- server → server ----
    /// Anti-entropy: a batch of versions for the receiving replica's
    /// partition, starting at the sender's log index `from_index`.
    /// Entries are shared handles into the sender's
    /// [`crate::protocol::replication::ReplicationLog`] — batching a
    /// retransmission clones `Arc`s, not records (the throughput hot
    /// path: an unacked suffix is re-batched every anti-entropy tick).
    Replicate {
        /// Absolute index of the first record in the sender's log.
        from_index: u64,
        /// `(key, version)` pairs to install.
        writes: Vec<(Key, SharedRecord)>,
    },
    /// Delta-compressed anti-entropy catch-up for a badly lagging peer:
    /// instead of replaying every log entry above the peer's watermark,
    /// the sender ships one compacted batch — the latest version of each
    /// key written in the lag window, closed over transaction timestamps
    /// so multi-key transactions arrive whole (MAV sibling counting and
    /// RAMP promotion stay correct). Applying it is idempotent; the
    /// receiver acks `upto` directly.
    ReplicateDelta {
        /// Log position (exclusive) the batch catches the peer up to.
        upto: u64,
        /// Compacted `(key, version)` pairs, in log order.
        writes: Vec<(Key, SharedRecord)>,
    },
    /// Anti-entropy acknowledgement: the receiver has applied the
    /// sender's log up to `upto` (exclusive).
    ReplicateAck {
        /// Acknowledged log position.
        upto: u64,
    },
    /// Crash-recovery bootstrap: a restarted replica asks a gossip peer
    /// for a full state dump. Needed because peers never re-gossip
    /// writes they did not originate — a record this server accepted,
    /// gossiped out, and then lost to a torn WAL tail survives only in
    /// peers' *stores*, where no incremental log path can reach it.
    /// Retried on a timer until a response arrives (the request itself
    /// may be lost to a concurrent partition).
    RecoverReq,
    /// Bootstrap response: every version of the sender's store. One
    /// message rather than a chunked stream — acceptable at simulation
    /// scale, and the idempotent apply path makes duplicates free.
    RecoverResp {
        /// The sender's full version set, in key order.
        writes: Vec<(Key, SharedRecord)>,
    },
    /// MAV: a replica announces it has received transaction `ts`'s write
    /// of `key` (Appendix B's `notify(w.ts)`, keyed so retransmissions
    /// count once).
    Notify {
        /// The transaction whose write was received.
        ts: Timestamp,
        /// The key whose write the sender received.
        key: Key,
    },
    /// MAV: the complete acknowledgement set a replica collected before
    /// promoting transaction `ts`. Sent in answer to a *duplicate*
    /// notification for an already-promoted transaction — the sender of
    /// that duplicate is replaying notifications on its anti-entropy
    /// timer because it is still pending, which means the notifications
    /// it is missing were lost (e.g. to a one-way partition) *and* every
    /// replica that could re-send them has already promoted and stopped
    /// replaying. The summary lets the stuck replica finish its count
    /// from a peer's records instead.
    NotifySummary {
        /// The promoted transaction.
        ts: Timestamp,
        /// Every `(origin, key)` notification the sender collected.
        acks: Vec<(NodeId, Key)>,
    },

    // ---- shard handoff ----
    /// Control: start handing `token`'s ownership to `to` (a server in
    /// the same cluster). Injected by the deployment frontend — the
    /// nemesis schedules these mid-transaction — at the token's current
    /// owner; a receiver that does not own the token ignores it.
    BeginHandoff {
        /// Ring token (vnode arc) to move.
        token: u32,
        /// The new owner.
        to: NodeId,
    },
    /// Handoff stream: records of the migrating token, starting at
    /// index `from_seq` of the sender's handoff queue (snapshot followed
    /// by late writes). Chunks are resent from the acked cursor every
    /// anti-entropy tick until acknowledged; the receiver applies them
    /// idempotently.
    ShardTransfer {
        /// The migrating token.
        token: u32,
        /// Absolute queue index of the first record in `writes`.
        from_seq: u64,
        /// `(key, version)` pairs to install at the new owner.
        writes: Vec<(Key, SharedRecord)>,
    },
    /// Handoff acknowledgement: the new owner has applied the sender's
    /// handoff queue up to `upto` (exclusive).
    ShardTransferAck {
        /// The migrating token.
        token: u32,
        /// Acknowledged queue position.
        upto: u64,
    },

    // ---- server → client (routing) ----
    /// NACK: the requested key's shard has been handed off; retry at
    /// `owner`. The client updates its routing overrides and resends
    /// immediately, without waiting for the retry timer.
    WrongShard {
        /// Transaction the rejected request belonged to.
        txn: Timestamp,
        /// Op index echoed from the request.
        op: u32,
        /// The key whose shard moved.
        key: Key,
        /// The shard's current owner in this cluster.
        owner: NodeId,
    },
}

impl Msg {
    /// True for messages a client sends to a server.
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Msg::Get { .. }
                | Msg::GetTs { .. }
                | Msg::GetVersion { .. }
                | Msg::Scan { .. }
                | Msg::Put { .. }
                | Msg::Commit { .. }
                | Msg::CommitBatch { .. }
                | Msg::Lock { .. }
                | Msg::Unlock { .. }
                | Msg::LockCheck { .. }
        )
    }

    /// Short stable label for tracing (the variant name).
    pub fn label(&self) -> &'static str {
        match self {
            Msg::Get { .. } => "Get",
            Msg::Scan { .. } => "Scan",
            Msg::Put { .. } => "Put",
            Msg::GetTs { .. } => "GetTs",
            Msg::GetVersion { .. } => "GetVersion",
            Msg::Commit { .. } => "Commit",
            Msg::CommitBatch { .. } => "CommitBatch",
            Msg::Lock { .. } => "Lock",
            Msg::Unlock { .. } => "Unlock",
            Msg::LockCheck { .. } => "LockCheck",
            Msg::LockCheckResp { .. } => "LockCheckResp",
            Msg::GetResp { .. } => "GetResp",
            Msg::ScanResp { .. } => "ScanResp",
            Msg::GetTsResp { .. } => "GetTsResp",
            Msg::GetVersionResp { .. } => "GetVersionResp",
            Msg::PutResp { .. } => "PutResp",
            Msg::CommitBatchResp { .. } => "CommitBatchResp",
            Msg::LockResp { .. } => "LockResp",
            Msg::Replicate { .. } => "Replicate",
            Msg::ReplicateDelta { .. } => "ReplicateDelta",
            Msg::ReplicateAck { .. } => "ReplicateAck",
            Msg::RecoverReq => "RecoverReq",
            Msg::RecoverResp { .. } => "RecoverResp",
            Msg::Notify { .. } => "Notify",
            Msg::NotifySummary { .. } => "NotifySummary",
            Msg::BeginHandoff { .. } => "BeginHandoff",
            Msg::ShardTransfer { .. } => "ShardTransfer",
            Msg::ShardTransferAck { .. } => "ShardTransferAck",
            Msg::WrongShard { .. } => "WrongShard",
        }
    }

    /// Approximate wire size in bytes, using the same accounting as
    /// `ServerStats::note_replication_batch` (`4 + key + encoded record`
    /// per version, 12 bytes per timestamp). Tracing-only: nothing
    /// protocol-visible depends on it.
    pub fn approx_bytes(&self) -> u64 {
        const TS: u64 = 12;
        fn rec(r: &SharedRecord) -> u64 {
            r.encoded_len() as u64
        }
        fn versions(writes: &[(Key, SharedRecord)]) -> u64 {
            writes
                .iter()
                .map(|(k, r)| 4 + k.len() as u64 + rec(r))
                .sum()
        }
        match self {
            Msg::Get { key, .. } => TS + TS + 4 + key.len() as u64,
            Msg::Scan { prefix, .. } => TS + 4 + prefix.len() as u64,
            Msg::Put { key, record, .. } => TS + 4 + key.len() as u64 + rec(record),
            Msg::GetTs { key, .. } => TS + 4 + key.len() as u64,
            Msg::GetVersion { key, req, .. } => {
                let req_bytes = match req {
                    VersionReq::Exact(_) | VersionReq::AtOrBelow(_) => TS,
                    VersionReq::Among(set) => TS * set.len() as u64,
                };
                TS + 4 + key.len() as u64 + req_bytes
            }
            Msg::Commit { key, .. } => TS + TS + 4 + key.len() as u64,
            Msg::CommitBatch { marks, .. } => {
                TS + TS + marks.iter().map(|(_, k)| 4 + k.len() as u64).sum::<u64>()
            }
            Msg::Lock { key, .. } => TS + 5 + key.len() as u64,
            Msg::Unlock { keys, .. } => TS + keys.iter().map(|k| 4 + k.len() as u64).sum::<u64>(),
            Msg::LockCheck { key, .. } => TS + 4 + key.len() as u64,
            Msg::LockCheckResp { .. } => TS + 5,
            Msg::GetResp { found, .. } | Msg::GetVersionResp { found, .. } => {
                TS + 4 + found.as_ref().map_or(0, rec)
            }
            Msg::ScanResp { matches, .. } => TS + 4 + versions(matches),
            Msg::GetTsResp { .. } => TS + 4 + TS,
            Msg::PutResp { .. } => TS + 4,
            Msg::CommitBatchResp { ops, .. } => TS + 4 * ops.len() as u64,
            Msg::LockResp { .. } => 2 * TS + 4,
            Msg::Replicate { writes, .. } | Msg::ReplicateDelta { writes, .. } => {
                8 + versions(writes)
            }
            Msg::ReplicateAck { .. } => 8,
            Msg::RecoverReq => 1,
            Msg::RecoverResp { writes } => versions(writes),
            Msg::Notify { key, .. } => TS + 4 + key.len() as u64,
            Msg::NotifySummary { acks, .. } => {
                TS + acks.iter().map(|(_, k)| 8 + k.len() as u64).sum::<u64>()
            }
            Msg::BeginHandoff { .. } => 8,
            Msg::ShardTransfer { writes, .. } => 12 + versions(writes),
            Msg::ShardTransferAck { .. } => 12,
            Msg::WrongShard { key, .. } => TS + 4 + key.len() as u64 + 4,
        }
    }

    /// True for server-to-server traffic.
    pub fn is_replication(&self) -> bool {
        matches!(
            self,
            Msg::Replicate { .. }
                | Msg::ReplicateDelta { .. }
                | Msg::ReplicateAck { .. }
                | Msg::RecoverReq
                | Msg::RecoverResp { .. }
                | Msg::Notify { .. }
                | Msg::NotifySummary { .. }
                | Msg::BeginHandoff { .. }
                | Msg::ShardTransfer { .. }
                | Msg::ShardTransferAck { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let get = Msg::Get {
            txn: Timestamp::new(1, 1),
            op: 0,
            key: Key::from("x"),
            required: Timestamp::INITIAL,
        };
        assert!(get.is_request());
        assert!(!get.is_replication());
        let n = Msg::Notify {
            ts: Timestamp::new(1, 1),
            key: Key::from("x"),
        };
        assert!(n.is_replication());
        assert!(!n.is_request());
        let resp = Msg::PutResp {
            txn: Timestamp::new(1, 1),
            op: 0,
        };
        assert!(!resp.is_request());
        assert!(!resp.is_replication());
        let ramp_reqs = [
            Msg::GetTs {
                txn: Timestamp::new(1, 1),
                op: 0,
                key: Key::from("x"),
            },
            Msg::GetVersion {
                txn: Timestamp::new(1, 1),
                op: 0,
                key: Key::from("x"),
                req: VersionReq::Exact(Timestamp::new(2, 1)),
            },
            Msg::Commit {
                txn: Timestamp::new(1, 1),
                op: 0,
                key: Key::from("x"),
                ts: Timestamp::new(1, 1),
            },
        ];
        for m in ramp_reqs {
            assert!(m.is_request() && !m.is_replication(), "{m:?}");
        }
        let batch = Msg::CommitBatch {
            txn: Timestamp::new(1, 1),
            ts: Timestamp::new(1, 1),
            marks: vec![(0, Key::from("x")), (1, Key::from("y"))],
        };
        assert!(batch.is_request() && !batch.is_replication());
        let delta = Msg::ReplicateDelta {
            upto: 7,
            writes: Vec::new(),
        };
        assert!(delta.is_replication() && !delta.is_request());
        let transfer = Msg::ShardTransfer {
            token: 3,
            from_seq: 0,
            writes: Vec::new(),
        };
        assert!(transfer.is_replication() && !transfer.is_request());
        assert!(Msg::ShardTransferAck { token: 3, upto: 1 }.is_replication());
        assert!(Msg::BeginHandoff { token: 3, to: 1 }.is_replication());
        let nack = Msg::WrongShard {
            txn: Timestamp::new(1, 1),
            op: 0,
            key: Key::from("x"),
            owner: 2,
        };
        // a routing NACK is a response, not a request or replication
        assert!(!nack.is_request() && !nack.is_replication());
    }
}
