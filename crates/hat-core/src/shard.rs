//! The consistent-hash shard ring shared by every cluster.
//!
//! §6.3 partitions data *within* a cluster by hash. The naive form —
//! `hash(key) % servers` — remaps nearly every key when a cluster is
//! resized, which makes live rebalancing (and the "millions of keys"
//! scaling regime) impractical. The ring fixes that: each server
//! position owns a fixed number of *virtual nodes* (tokens) placed
//! deterministically on a 64-bit circle, a key belongs to the first
//! token clockwise from its hash, and adding one server steals only
//! ~1/N of the keyspace (one arc per new token) instead of reshuffling
//! everything.
//!
//! The ring is keyed on the server's **position within its cluster**,
//! not its node id. Every equal-sized cluster therefore shares one
//! identical ring, which keeps replica sets positional: key `k` lives
//! at the same position in every cluster, and anti-entropy peering
//! (position `i` gossips with position `i` elsewhere) keeps working
//! unchanged. Token placement is a pure function of `(position,
//! vnode)`, so two layouts built from the same spec are bit-identical —
//! the determinism the simulator and nemesis reruns rely on.
//!
//! Live handoff ([`crate::Server`]) moves *token ownership* — a
//! `(token → new position)` override — without touching the ring
//! itself; the ring stays the immutable base placement that every node
//! derives routing from.

use crate::cluster::fnv1a;

/// Virtual nodes (tokens) per server position. More tokens smooth the
/// per-server keyspace share: at 16 positions, 16 vnodes leave the
/// hottest shard ~1.7× the mean share (which caps closed-loop shard
/// scaling near 0.6× linear — the hottest server queues while the rest
/// idle), 128 brings it under 1.15×. The ring stays tiny (≤2048
/// entries at 16 shards) and lookups are a binary search, so the extra
/// tokens cost nanoseconds.
pub const VNODES_PER_POSITION: u32 = 128;

/// A consistent-hash ring over server positions `0..positions`.
///
/// Tokens are identified by their index in the sorted ring (`0..
/// num_tokens()`); a token id is only meaningful relative to one ring,
/// which is fine because a deployment's ring is fixed for its lifetime
/// (handoffs move ownership of a token, never the token itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRing {
    /// Sorted `(token hash, home position)` pairs — the vnode arcs.
    entries: Vec<(u64, u32)>,
    positions: u32,
}

impl ShardRing {
    /// Ring for `positions` servers with the default vnode count.
    pub fn new(positions: usize) -> ShardRing {
        ShardRing::with_vnodes(positions, VNODES_PER_POSITION)
    }

    /// Ring for `positions` servers with `vnodes` tokens each.
    pub fn with_vnodes(positions: usize, vnodes: u32) -> ShardRing {
        assert!(positions > 0, "ring needs at least one position");
        assert!(vnodes > 0, "ring needs at least one vnode per position");
        let mut entries = Vec::with_capacity(positions * vnodes as usize);
        for pos in 0..positions as u32 {
            for v in 0..vnodes {
                entries.push((vnode_token(pos, v), pos));
            }
        }
        entries.sort_unstable();
        ShardRing {
            entries,
            positions: positions as u32,
        }
    }

    /// Server positions covered by the ring.
    pub fn num_positions(&self) -> u32 {
        self.positions
    }

    /// Total tokens (vnode arcs) on the ring.
    pub fn num_tokens(&self) -> u32 {
        self.entries.len() as u32
    }

    /// The token (vnode arc) owning `key`.
    pub fn token_of(&self, key: &[u8]) -> u32 {
        // FNV-1a alone leaves the high bits of short sequential keys
        // ("key-1", "key-2", …) nearly identical, which would dump the
        // whole workload into one arc; the finalizer spreads them over
        // the full circle.
        self.token_of_hash(mix64(fnv1a(key)))
    }

    /// The token owning hash `h`: the first token at or clockwise from
    /// `h`, wrapping past the top of the circle.
    pub fn token_of_hash(&self, h: u64) -> u32 {
        let idx = self.entries.partition_point(|&(t, _)| t < h);
        (if idx == self.entries.len() { 0 } else { idx }) as u32
    }

    /// The home position of `token` (base placement, before any
    /// handoff overrides).
    pub fn position_of_token(&self, token: u32) -> u32 {
        self.entries[token as usize].1
    }

    /// The home position owning `key`.
    pub fn owner_position(&self, key: &[u8]) -> u32 {
        self.position_of_token(self.token_of(key))
    }
}

/// Deterministic token placement: FNV-1a over the `(position, vnode)`
/// pair's little-endian bytes, finalized so tokens spread over the
/// whole circle. Stable across runs and platforms.
fn vnode_token(position: u32, vnode: u32) -> u64 {
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&position.to_le_bytes());
    bytes[4..].copy_from_slice(&vnode.to_le_bytes());
    mix64(fnv1a(&bytes))
}

/// MurmurHash3's 64-bit finalizer: full-avalanche bit mixing, so inputs
/// differing in any bit land anywhere on the circle.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_hash_has_exactly_one_owner() {
        let ring = ShardRing::new(5);
        for i in 0..1000u64 {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let t = ring.token_of_hash(h);
            assert!(t < ring.num_tokens());
            assert!(ring.position_of_token(t) < 5);
        }
    }

    #[test]
    fn same_parameters_give_identical_rings() {
        assert_eq!(ShardRing::new(7), ShardRing::new(7));
        assert_eq!(ShardRing::with_vnodes(3, 4), ShardRing::with_vnodes(3, 4));
    }

    #[test]
    fn wraps_past_the_top_of_the_circle() {
        let ring = ShardRing::new(2);
        // u64::MAX is above every token, so it wraps to token 0.
        assert_eq!(ring.token_of_hash(u64::MAX), 0);
    }

    #[test]
    fn growth_remaps_a_bounded_fraction() {
        // The consistent-hash contract: adding one server moves ~1/(n+1)
        // of the keyspace, not ~all of it as modulo placement would.
        let n = 8usize;
        let old = ShardRing::new(n);
        let new = ShardRing::new(n + 1);
        let samples = 4000;
        let moved = (0..samples)
            .filter(|i| {
                let key = format!("sample-{i}");
                old.owner_position(key.as_bytes()) != new.owner_position(key.as_bytes())
            })
            .count();
        let bound = 2 * samples / n;
        assert!(moved <= bound, "moved {moved}/{samples}, bound {bound}");
        assert!(moved > 0, "growth must hand some keys to the new server");
    }

    #[test]
    fn all_positions_get_keyspace() {
        let ring = ShardRing::new(5);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..200 {
            let key = format!("key-{i}");
            seen.insert(ring.owner_position(key.as_bytes()));
        }
        assert_eq!(seen.len(), 5, "vnode placement should cover all servers");
    }
}
