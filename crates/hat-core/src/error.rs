//! Error and abort classification.
//!
//! §4.2 distinguishes *internal* aborts (the transaction's own choosing —
//! an explicit abort operation or an integrity-constraint violation) from
//! *external* aborts (system-induced). Transactional availability demands
//! that, given replica availability, transactions eventually commit or
//! internally abort — a system may not externally abort forever.

use std::fmt;

/// Errors surfaced by the transaction layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HatError {
    /// No replica for some accessed item responded before the deadline —
    /// the operation is blocked on an unreachable server. Under the
    /// paper's definitions the *system* is unavailable for this
    /// transaction (this is what master/2PL exhibit under partition).
    Unavailable {
        /// The key whose replicas were unreachable, if attributable.
        key: Option<String>,
    },
    /// The system aborted the transaction (external abort): lock timeout,
    /// deadlock victim, failed validation.
    ExternalAbort {
        /// Why the system aborted.
        reason: String,
    },
    /// The transaction aborted itself (internal abort): explicit abort or
    /// declared integrity-constraint violation.
    InternalAbort {
        /// The application-provided reason.
        reason: String,
    },
    /// The deployment description is unusable (for example a
    /// [`crate::ClusterSpec`] declaring a zero-server cluster):
    /// rejected at build time instead of panicking on the first routed
    /// key.
    InvalidDeployment {
        /// What was wrong with the spec.
        reason: String,
    },
}

impl fmt::Display for HatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HatError::Unavailable { key: Some(k) } => {
                write!(f, "unavailable: no reachable replica for key {k:?}")
            }
            HatError::Unavailable { key: None } => write!(f, "unavailable: operation timed out"),
            HatError::ExternalAbort { reason } => write!(f, "external abort: {reason}"),
            HatError::InternalAbort { reason } => write!(f, "internal abort: {reason}"),
            HatError::InvalidDeployment { reason } => write!(f, "invalid deployment: {reason}"),
        }
    }
}

impl std::error::Error for HatError {}

impl HatError {
    /// True if this abort counts against transactional availability
    /// (§4.2): unavailability and external aborts do; internal aborts
    /// are the transaction's own doing and configuration errors never
    /// reach a running transaction.
    pub fn violates_availability(&self) -> bool {
        !matches!(
            self,
            HatError::InternalAbort { .. } | HatError::InvalidDeployment { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_aborts_do_not_violate_availability() {
        assert!(!HatError::InternalAbort {
            reason: "balance too low".into()
        }
        .violates_availability());
        assert!(HatError::ExternalAbort {
            reason: "lock timeout".into()
        }
        .violates_availability());
        assert!(HatError::Unavailable { key: None }.violates_availability());
    }

    #[test]
    fn display_mentions_key() {
        let e = HatError::Unavailable {
            key: Some("x".into()),
        };
        assert!(e.to_string().contains("\"x\""));
    }
}
