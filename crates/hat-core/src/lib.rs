//! # hat-core — Highly Available Transactions
//!
//! The primary contribution of the paper, as a library: protocol state
//! machines for the HAT and non-HAT systems evaluated in §6.3, the client
//! session machinery of §5.1, the isolation/consistency taxonomy of
//! Table 3 / Figure 2, and the ACID-in-the-wild survey of Table 2.
//!
//! ## Protocols
//!
//! | Kind | Availability | Guarantees (with the right session options) |
//! |---|---|---|
//! | [`ProtocolKind::Eventual`] | highly available | Read Uncommitted, eventual convergence |
//! | [`ProtocolKind::ReadCommitted`] | highly available | Read Committed (write buffering) |
//! | [`ProtocolKind::Mav`] | highly available | Monotonic Atomic View (Appendix B algorithm) |
//! | [`ProtocolKind::Master`] | unavailable | per-key linearizability (reads/writes at a master) |
//! | [`ProtocolKind::TwoPhaseLocking`] | unavailable | one-copy serializability (distributed 2PL) |
//!
//! Servers and clients are deterministic [`hat_sim::Actor`]s; the same
//! state machines run under the discrete-event simulator and the threaded
//! runtime. Each protocol's server-side behavior is a
//! [`protocol::ProtocolEngine`] implementation plugged into the
//! protocol-agnostic [`Server`]; new levels register in
//! [`protocol::engine_for`] or inject through
//! [`DeploymentBuilder::engine_factory`] without touching the server.
//!
//! ## High-level API
//!
//! [`DeploymentBuilder`] assembles a cluster deployment;
//! [`Frontend::open_session`] opens sessions with per-session options;
//! [`Frontend::txn`] runs interactive transactions with typed results:
//!
//! ```
//! use hat_core::{
//!     ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, SessionOptions,
//! };
//!
//! let mut front = DeploymentBuilder::new(ProtocolKind::ReadCommitted)
//!     .seed(7)
//!     .clusters(ClusterSpec::single_dc(2, 3))
//!     .build();
//! let session = front.open_session(SessionOptions::default());
//! front.txn(&session, |t| t.put("greeting", "hello"));
//! front.quiesce();
//! let v = front.txn(&session, |t| t.get("greeting"));
//! assert_eq!(v.as_deref(), Some("hello"));
//! ```
//!
//! The same code runs against the threaded runtime by swapping
//! `build()` for `build_threaded()` (from the `hat-runtime` crate) —
//! [`Frontend`] is the backend-agnostic surface.

pub mod api;
pub mod client;
pub mod cluster;
pub mod config;
pub mod error;
pub mod frontend;
pub mod messages;
pub mod metrics;
pub mod node;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod survey;
pub mod taxonomy;
pub mod timestamp;
pub mod txn;

pub use api::{DeploymentBuilder, SimFrontend};
pub use client::{Client, SessionLevel, SessionOptions};
pub use cluster::{ClusterLayout, ClusterSpec};
pub use config::{ProtocolKind, RetryPolicy, ServiceModel, SystemConfig};
pub use error::HatError;
pub use frontend::{Frontend, Session, TxnBackend, TxnCtx};
pub use messages::{Msg, VersionReq};
pub use metrics::ClientMetrics;
pub use node::Node;
pub use protocol::{engine_for, ProtocolEngine, ServerView};
pub use server::{Server, ServerStats};
pub use shard::ShardRing;
pub use timestamp::{Timestamp, TimestampGen};
pub use txn::{Op, OpRecord, TxnOutcome, TxnRecord, TxnSpec};

// Re-export the tracing vocabulary so downstream crates (runtime,
// nemesis, bench) speak it without a direct hat-trace dependency.
pub use hat_trace::{
    events_recorded_total, format_txn_window, format_window, spans, DropReason, OpKind, OpSpan,
    TraceEvent, TraceEventKind, TraceSink, TxnId, TxnSpan,
};
