//! # hat-core — Highly Available Transactions
//!
//! The primary contribution of the paper, as a library: protocol state
//! machines for the HAT and non-HAT systems evaluated in §6.3, the client
//! session machinery of §5.1, the isolation/consistency taxonomy of
//! Table 3 / Figure 2, and the ACID-in-the-wild survey of Table 2.
//!
//! ## Protocols
//!
//! | Kind | Availability | Guarantees (with the right session options) |
//! |---|---|---|
//! | [`ProtocolKind::Eventual`] | highly available | Read Uncommitted, eventual convergence |
//! | [`ProtocolKind::ReadCommitted`] | highly available | Read Committed (write buffering) |
//! | [`ProtocolKind::Mav`] | highly available | Monotonic Atomic View (Appendix B algorithm) |
//! | [`ProtocolKind::Master`] | unavailable | per-key linearizability (reads/writes at a master) |
//! | [`ProtocolKind::TwoPhaseLocking`] | unavailable | one-copy serializability (distributed 2PL) |
//!
//! Servers and clients are deterministic [`hat_sim::Actor`]s; the same
//! state machines run under the discrete-event simulator and the threaded
//! runtime. Each protocol's server-side behavior is a
//! [`protocol::ProtocolEngine`] implementation plugged into the
//! protocol-agnostic [`Server`]; new levels register in
//! [`protocol::engine_for`] or inject through
//! [`SimulationBuilder::engine_factory`] without touching the server.
//!
//! ## High-level API
//!
//! [`SimulationBuilder`] assembles a cluster deployment and exposes a
//! synchronous transaction facade:
//!
//! ```
//! use hat_core::{ClusterSpec, ProtocolKind, SimulationBuilder};
//!
//! let mut sim = SimulationBuilder::new(ProtocolKind::ReadCommitted)
//!     .seed(7)
//!     .clusters(ClusterSpec::single_dc(2, 3))
//!     .build();
//! let c = sim.client(0);
//! sim.txn(c, |t| {
//!     t.put("greeting", "hello");
//! });
//! sim.settle();
//! let v = sim.txn(c, |t| t.get("greeting"));
//! assert_eq!(v.as_deref(), Some("hello"));
//! ```

pub mod api;
pub mod client;
pub mod cluster;
pub mod config;
pub mod error;
pub mod messages;
pub mod metrics;
pub mod node;
pub mod protocol;
pub mod server;
pub mod survey;
pub mod taxonomy;
pub mod timestamp;
pub mod txn;

pub use api::{Sim, SimulationBuilder, TxnCtx};
pub use client::{Client, SessionLevel, SessionOptions};
pub use cluster::{ClusterLayout, ClusterSpec};
pub use config::{ProtocolKind, ServiceModel, SystemConfig};
pub use error::HatError;
pub use messages::Msg;
pub use metrics::ClientMetrics;
pub use node::Node;
pub use protocol::{engine_for, ProtocolEngine, ServerView};
pub use server::Server;
pub use timestamp::{Timestamp, TimestampGen};
pub use txn::{Op, OpRecord, TxnOutcome, TxnRecord, TxnSpec};
