//! The HAT client: transaction execution, session guarantees, buffering.
//!
//! Clients implement the client-side algorithms of §5.1 and Appendix B:
//!
//! * **Write buffering** (Read Committed, §5.1.1): writes stay in a
//!   client-side buffer until commit, so no transaction ever reads
//!   another's uncommitted data.
//! * **Item cut isolation** (§5.1.1): a per-transaction read cache makes
//!   repeated reads of an item return the same value.
//! * **MAV `required` vectors** (§5.1.2): reads collect sibling
//!   timestamps and attach them as lower bounds on subsequent reads.
//! * **Session guarantees** (§5.1.3): a cross-transaction read/write
//!   cache plus stickiness yield read-your-writes and monotonic reads;
//!   with the MAV substrate this extends to causal-style sessions.
//! * **Stickiness** (§4.1): sticky clients always contact their home
//!   cluster's replica; non-sticky clients pick a random cluster per
//!   attempt (and retry elsewhere on failure — which is exactly how the
//!   read-your-writes impossibility of §5.1.3 manifests).
//!
//! A client is either driven externally (a [`crate::Frontend`] backend) or by
//! a [`TxnSource`] in a closed loop (one transaction completes, the next
//! begins — the YCSB harness of §6.3).

use crate::cluster::ClusterLayout;
use crate::config::{ProtocolKind, SystemConfig};
use crate::messages::{Msg, VersionReq};
use crate::metrics::ClientMetrics;
use crate::timestamp::{Timestamp, TimestampGen};
use crate::txn::{Op, OpRecord, TxnOutcome, TxnRecord, TxnSpec};
use bytes::Bytes;
use hat_sim::{Ctx, NodeId, SimTime};
use hat_storage::{Key, Record, SharedRecord};
use hat_trace::{OpKind, TraceEventKind, TraceSink, TxnId};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Bound on chained RAMP-Fast ceiling repairs for one read. Each round
/// strictly lowers the ceiling, so the loop terminates on its own; the
/// cap is a defensive fuse (an exhausted loop is counted in
/// [`ClientMetrics::unrepaired_reads`]).
const MAX_RAMP_REPAIRS: u32 = 4;

/// Encoded size of one timestamp on the wire (seq + writer).
const TS_WIRE_BYTES: u64 = 12;

/// Supplies transaction plans to a closed-loop client.
pub trait TxnSource: Send {
    /// The next transaction to run, or `None` to stop.
    fn next_txn(&mut self, rng: &mut rand::rngs::StdRng) -> Option<TxnSpec>;
}

/// Client-side session guarantee level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SessionLevel {
    /// No client-side caching beyond per-transaction read-your-writes.
    #[default]
    None,
    /// Item cut isolation: repeated reads in a transaction return the
    /// same value (per-transaction cache, discarded at commit).
    ItemCut,
    /// Monotonic sessions: a cross-transaction cache of the newest
    /// version observed or written per item gives monotonic reads and
    /// read-your-writes (the client "acts as a server itself", §4.1).
    Monotonic,
    /// Causal sessions: [`SessionLevel::Monotonic`] plus a cross-
    /// transaction `required` vector over the MAV substrate; requires a
    /// sticky configuration (§5.1.3 proves stickiness is necessary).
    Causal,
}

/// Session configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOptions {
    /// Client-side guarantee level.
    pub level: SessionLevel,
    /// Sticky (home-cluster) routing vs any-replica routing.
    pub sticky: bool,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            level: SessionLevel::None,
            sticky: true,
        }
    }
}

/// What the single outstanding network round is waiting for.
#[derive(Debug, Clone, PartialEq)]
enum PendingKind {
    /// A `Get` for an item read.
    Read { key: Key },
    /// A `Scan` for a predicate read. Scans scatter-gather: data is
    /// hash-partitioned within a cluster, so every server of the target
    /// cluster is queried and the responses merged.
    Scan {
        prefix: Key,
        /// Servers that have not responded yet.
        waiting: Vec<NodeId>,
        /// Accumulated matches from servers that responded.
        acc: Vec<(Key, SharedRecord)>,
    },
    /// A `Put` issued at operation time (eventual / master / 2PL data
    /// writes at commit are tracked via `commit_waiting` instead).
    WriteNow { key: Key, value: Bytes },
    /// A RAMP-Small round-1 `GetTs` (timestamp-only metadata read).
    RampTs { key: Key },
    /// A one-shot RAMP-Small multi-key read (the paper's `GET_ALL`):
    /// round 1 fetches every key's latest committed stamp in parallel,
    /// round 2 fetches values by the union timestamp set in parallel.
    /// Sub-requests carry their own op ids (`pending_ts`/`pending_val`
    /// map them back to keys).
    RampBatch {
        /// Keys in request order (the recording order).
        keys: Vec<Key>,
        /// Outstanding round-1 ops → key.
        pending_ts: BTreeMap<u32, Key>,
        /// Collected round-1 stamps.
        stamps: BTreeMap<Key, Timestamp>,
        /// Outstanding round-2 ops → key.
        pending_val: BTreeMap<u32, Key>,
        /// Collected results (round 2, plus cache/buffer hits).
        acc: BTreeMap<Key, SharedRecord>,
        /// Per-key replica (both rounds pinned to one server per key).
        targets: BTreeMap<Key, NodeId>,
        /// The round-2 `Among` set, kept for retransmissions.
        ts_set: Vec<Timestamp>,
    },
    /// A RAMP second-round `GetVersion` (RAMP-Small round 2, or a
    /// RAMP-Fast fracture repair). `repairs` counts chained ceiling
    /// repairs for this read.
    RampVersion {
        key: Key,
        req: VersionReq,
        repairs: u32,
    },
    /// A 2PL `Lock`; on grant, `then` decides the follow-up.
    Lock {
        key: Key,
        exclusive: bool,
        then: LockFollowup,
    },
}

/// What to do once a 2PL lock is granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockFollowup {
    /// Issue the read at the lock master.
    Read,
    /// Just buffer the write (data moves at commit).
    BufferWrite,
}

#[derive(Debug, Clone, PartialEq)]
struct PendingOp {
    kind: PendingKind,
    op: u32,
    target: NodeId,
    issued: SimTime,
    issue_id: u64,
    /// Retries so far (drives exponential backoff).
    attempts: u32,
    /// Value carried for `Lock{then: BufferWrite}`.
    write_value: Option<Bytes>,
    /// Key of the 2PL lock-timeout timer (the deadlock breaker),
    /// fixed at first issue. Kept separate from `issue_id`, which
    /// rotates on every retry — keying the timeout to `issue_id`
    /// would silently disarm it after the first retry.
    timeout_issue: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Executing,
    Committing,
    Done(TxnOutcome),
}

#[derive(Debug)]
struct ActiveTxn {
    id: Timestamp,
    /// Stamp all of this transaction's writes carry. Assigned lazily at
    /// the first write so it Lamport-dominates every version the
    /// transaction has read by then (under locking this makes the
    /// last-writer-wins order agree with the serial order).
    write_stamp: Option<Timestamp>,
    started: SimTime,
    ops_done: Vec<OpRecord>,
    /// Buffered writes in program order (last write per key wins).
    write_buffer: Vec<(Key, Bytes)>,
    /// Per-transaction read cache (item cut isolation + per-txn RYW).
    /// Ordered map: iteration order must not depend on hash seeds, or
    /// fixed-seed runs diverge across processes.
    txn_cache: BTreeMap<Key, SharedRecord>,
    /// MAV `required` vector (Appendix B). Ordered for determinism.
    required: BTreeMap<Key, Timestamp>,
    /// RAMP-Fast floors: for every key named in the metadata of a
    /// version this transaction observed, the highest such writer
    /// stamp. A later read of that key below its floor is a fractured
    /// read and triggers an exact-stamp repair fetch.
    ramp_floor: BTreeMap<Key, Timestamp>,
    /// RAMP-Small observed-stamp set: the stamps of every version this
    /// transaction has read (the second-round `Among` set).
    ramp_ts_set: BTreeSet<Timestamp>,
    /// RAMP commit: true once the prepare phase is fully acknowledged
    /// and the outstanding `commit_waiting` entries are commit markers.
    ramp_committing: bool,
    /// RAMP commit: `(key, replica)` targets of the prepare phase, so
    /// phase 2 commits exactly where phase 1 prepared.
    ramp_commit_keys: Vec<(Key, NodeId)>,
    phase: Phase,
    /// Remaining plan when driver-driven: `(spec, next_op_index)`.
    plan: Option<(TxnSpec, usize)>,
    op_seq: u32,
    pending: Option<PendingOp>,
    /// Commit phase: op ids of unacknowledged `Put`s and their payloads
    /// for retry. Ordered so commit-retry resend order is deterministic.
    commit_waiting: BTreeMap<u32, (Key, SharedRecord, NodeId)>,
    /// Commit-phase retries so far (drives exponential backoff).
    commit_attempts: u32,
    /// Issue id of the live commit retry timer (stale timers are
    /// ignored).
    commit_issue: u64,
    /// 2PL: lock masters holding our locks (for unlock).
    locks_held: Vec<(Key, NodeId)>,
    /// 2PL commit: true while the `commit_waiting` entries are
    /// [`Msg::LockCheck`] validations of read-locked keys (sent before
    /// the write flush). A `false` answer — the master crashed and lost
    /// the lock — aborts the transaction instead of committing.
    locks_validating: bool,
}

/// The client actor.
pub struct Client {
    id: NodeId,
    client_idx: u32,
    home: usize,
    layout: Arc<ClusterLayout>,
    config: Arc<SystemConfig>,
    session: SessionOptions,
    tsgen: TimestampGen,
    session_seq: u64,
    /// Cross-transaction cache for Monotonic/Causal sessions. Ordered
    /// for deterministic folds.
    session_cache: BTreeMap<Key, SharedRecord>,
    /// Cross-transaction `required` floor for Causal sessions.
    causal_required: BTreeMap<Key, Timestamp>,
    current: Option<ActiveTxn>,
    /// Key/value pairs of the most recent scan response (facade access).
    last_scan: Vec<(Key, Bytes)>,
    /// Performance counters.
    pub metrics: ClientMetrics,
    records: Vec<TxnRecord>,
    driver: Option<Box<dyn TxnSource>>,
    issue_counter: u64,
    /// Structured-event sink. Disabled (no-op) unless the deployment was
    /// built with `SystemConfig::trace`; recording never touches the rng,
    /// so traced runs stay bit-identical to untraced ones.
    trace: TraceSink,
    /// Live-telemetry sink (same determinism contract as `trace`):
    /// commits feed the visibility probes and the streaming checker.
    obs: hat_obs::ObsSink,
    /// Shard-routing overrides learnt from [`Msg::WrongShard`] NACKs:
    /// ring token → new owner *position*. A handoff moves a token's
    /// position in every cluster at once (handoffs are positional), so
    /// one override redirects the token's replica in all clusters.
    shard_overrides: BTreeMap<u32, u32>,
}

/// Timer tag bit marking a 2PL lock timeout (vs a retry timer).
const LOCK_TIMEOUT_BIT: u64 = 1 << 63;

impl Client {
    /// Builds a client. `client_idx` is the unique writer id used in
    /// timestamps; `home` is the sticky home cluster.
    pub fn new(
        id: NodeId,
        client_idx: u32,
        home: usize,
        layout: Arc<ClusterLayout>,
        config: Arc<SystemConfig>,
        session: SessionOptions,
    ) -> Self {
        Client {
            id,
            client_idx,
            home,
            layout,
            config,
            session,
            tsgen: TimestampGen::new(client_idx),
            session_seq: 0,
            session_cache: BTreeMap::new(),
            causal_required: BTreeMap::new(),
            current: None,
            last_scan: Vec::new(),
            metrics: ClientMetrics::default(),
            records: Vec::new(),
            driver: None,
            issue_counter: 0,
            trace: TraceSink::disabled(),
            obs: hat_obs::ObsSink::disabled(),
            shard_overrides: BTreeMap::new(),
        }
    }

    /// Installs the shared trace sink (deployment builders call this
    /// when `SystemConfig::trace` is set).
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Installs the shared live-telemetry sink (deployment builders call
    /// this when `SystemConfig::obs` is enabled).
    pub fn set_obs_sink(&mut self, sink: hat_obs::ObsSink) {
        self.obs = sink;
    }

    /// The transaction id the *current* (or next) transaction carries in
    /// trace events: `(writer id, session sequence)` — joinable against
    /// `TxnRecord::{session, session_seq}`.
    fn trace_txn(&self) -> TxnId {
        TxnId::new(self.client_idx, self.session_seq)
    }

    /// Records one trace event stamped with `now` (no-op when disabled).
    fn trace_ev(&self, now: SimTime, kind: TraceEventKind) {
        self.trace.record(now.as_micros(), self.id, kind);
    }

    /// Installs a closed-loop transaction source (driver mode).
    pub fn with_driver(mut self, driver: Box<dyn TxnSource>) -> Self {
        self.driver = Some(driver);
        self
    }

    /// The session options this client currently runs with.
    pub fn session_options(&self) -> SessionOptions {
        self.session
    }

    /// Replaces the session options. Frontends call this when a
    /// [`crate::Session`] is opened over this client, so each session
    /// carries its own guarantee level and stickiness.
    ///
    /// # Panics
    /// Panics if a transaction is active (options may not change
    /// mid-transaction).
    pub fn set_session_options(&mut self, opts: SessionOptions) {
        assert!(
            self.current.is_none(),
            "cannot change session options mid-transaction"
        );
        self.session = opts;
    }

    /// The node id of this client.
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    /// The writer id used in this client's timestamps.
    pub fn client_idx(&self) -> u32 {
        self.client_idx
    }

    /// Recorded transaction histories (empty unless
    /// `config.record_history`).
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }

    /// Takes the recorded histories out of the client.
    pub fn take_records(&mut self) -> Vec<TxnRecord> {
        std::mem::take(&mut self.records)
    }

    // ---------------------------------------------------------------
    // Facade-facing state inspection
    // ---------------------------------------------------------------

    /// True while a network round (or commit) is outstanding.
    pub fn busy(&self) -> bool {
        match &self.current {
            None => false,
            Some(t) => t.pending.is_some() || !t.commit_waiting.is_empty(),
        }
    }

    /// The outcome of the current transaction once it finished.
    pub fn txn_outcome(&self) -> Option<TxnOutcome> {
        match &self.current {
            Some(ActiveTxn {
                phase: Phase::Done(o),
                ..
            }) => Some(*o),
            _ => None,
        }
    }

    /// The result of the last completed read/scan, as recorded ops.
    pub fn last_op(&self) -> Option<&OpRecord> {
        self.current.as_ref().and_then(|t| t.ops_done.last())
    }

    /// The last completed item read as the frontend-facing value
    /// (`None` for the initial `⊥` version or if the last op was not a
    /// read). Shared by every backend so the read mapping cannot
    /// diverge between them.
    pub fn last_read_value(&self) -> Option<Bytes> {
        match self.last_op() {
            Some(OpRecord::Read {
                observed, value, ..
            }) if !observed.is_initial() => Some(value.clone()),
            _ => None,
        }
    }

    /// Maps the finished transaction's outcome to the frontend-facing
    /// commit result. A missing outcome (the commit never resolved)
    /// abandons the transaction and reports unavailability. Shared by
    /// every backend so outcome reporting cannot diverge between them.
    pub fn commit_result(&mut self, ctx: &mut Ctx<'_, Msg>) -> Result<(), crate::error::HatError> {
        use crate::error::HatError;
        match self.txn_outcome() {
            Some(TxnOutcome::Committed) => Ok(()),
            Some(TxnOutcome::AbortedExternal) => Err(HatError::ExternalAbort {
                reason: "system abort during commit".into(),
            }),
            Some(TxnOutcome::AbortedInternal) => Err(HatError::InternalAbort {
                reason: "transaction aborted".into(),
            }),
            Some(TxnOutcome::Indeterminate) | None => {
                self.abandon(ctx);
                Err(HatError::Unavailable { key: None })
            }
        }
    }

    /// If the transaction finished *during* an operation — a 2PL lock
    /// timeout externally aborts mid-op, for instance — the operation
    /// itself must fail, per the typed-API contract that aborts surface
    /// at the failing operation. `None` while the transaction is still
    /// executing (or after it committed).
    pub fn op_interrupted(&self) -> Option<crate::error::HatError> {
        use crate::error::HatError;
        match self.txn_outcome() {
            Some(TxnOutcome::AbortedExternal) => Some(HatError::ExternalAbort {
                reason: "system abort mid-operation".into(),
            }),
            Some(TxnOutcome::AbortedInternal) => Some(HatError::InternalAbort {
                reason: "transaction aborted".into(),
            }),
            _ => None,
        }
    }

    /// Key/value pairs of the most recent scan response.
    pub fn last_scan(&self) -> &[(Key, Bytes)] {
        &self.last_scan
    }

    /// The last `n` completed item reads as frontend-facing values, in
    /// execution order (`None` for `⊥`). Backends use this to collect a
    /// batch read's results; shared so the mapping cannot diverge
    /// between them.
    pub fn last_read_values(&self, n: usize) -> Vec<Option<Bytes>> {
        let Some(t) = self.current.as_ref() else {
            return Vec::new();
        };
        let reads: Vec<Option<Bytes>> = t
            .ops_done
            .iter()
            .rev()
            .filter_map(|op| match op {
                OpRecord::Read {
                    observed, value, ..
                } => Some((!observed.is_initial()).then(|| value.clone())),
                _ => None,
            })
            .take(n)
            .collect();
        reads.into_iter().rev().collect()
    }

    // ---------------------------------------------------------------
    // Transaction lifecycle (called by the facade or the driver loop)
    // ---------------------------------------------------------------

    /// Begins a transaction.
    ///
    /// # Panics
    /// Panics if one is already active.
    pub fn begin(&mut self, now: SimTime) -> Timestamp {
        assert!(
            self.current.is_none(),
            "client {} already has an active transaction",
            self.id
        );
        let id = self.tsgen.next();
        self.trace_ev(
            now,
            TraceEventKind::TxnBegin {
                txn: self.trace_txn(),
            },
        );
        self.current = Some(ActiveTxn {
            id,
            write_stamp: None,
            started: now,
            ops_done: Vec::new(),
            write_buffer: Vec::new(),
            txn_cache: BTreeMap::new(),
            required: BTreeMap::new(),
            ramp_floor: BTreeMap::new(),
            ramp_ts_set: BTreeSet::new(),
            ramp_committing: false,
            ramp_commit_keys: Vec::new(),
            phase: Phase::Executing,
            plan: None,
            op_seq: 0,
            pending: None,
            commit_waiting: BTreeMap::new(),
            commit_attempts: 0,
            commit_issue: 0,
            locks_held: Vec::new(),
            locks_validating: false,
        });
        id
    }

    /// Issues an item read. May complete immediately (buffered write /
    /// cache hit), in which case no network round happens.
    pub fn issue_read(&mut self, ctx: &mut Ctx<'_, Msg>, key: Key) {
        let tid = self.trace_txn();
        self.trace_ev(
            ctx.now(),
            TraceEventKind::OpStart {
                txn: tid,
                kind: OpKind::Get,
            },
        );
        let trace = self.trace.clone();
        let node = self.id;
        let local_end = |now: SimTime| {
            trace.record(
                now.as_micros(),
                node,
                TraceEventKind::OpEnd {
                    txn: tid,
                    kind: OpKind::Get,
                },
            );
        };
        let txn = self.current.as_mut().expect("no active txn");
        assert!(txn.pending.is_none(), "one op at a time");
        // Per-transaction read-your-writes from the write buffer
        // (Appendix B client GET pseudocode).
        if let Some((_, v)) = txn.write_buffer.iter().rev().find(|(k, _)| *k == key) {
            let rec = OpRecord::Read {
                key,
                observed: txn.id,
                value: v.clone(),
            };
            txn.ops_done.push(rec);
            local_end(ctx.now());
            return;
        }
        // Item cut isolation: same-transaction repeat reads hit the cache.
        if matches!(
            self.session.level,
            SessionLevel::ItemCut | SessionLevel::Monotonic | SessionLevel::Causal
        ) {
            if let Some(cached) = txn.txn_cache.get(&key) {
                let rec = OpRecord::Read {
                    key,
                    observed: cached.stamp,
                    value: cached.value.clone(),
                };
                txn.ops_done.push(rec);
                local_end(ctx.now());
                return;
            }
        }
        if self.config.protocol == ProtocolKind::TwoPhaseLocking {
            self.issue_lock(ctx, key, false, LockFollowup::Read, None);
            return;
        }
        if self.config.protocol == ProtocolKind::RampSmall {
            // RAMP-Small round 1: fetch the latest committed stamp only.
            self.send_get_ts(ctx, key);
            return;
        }
        self.send_get(ctx, key);
    }

    /// Issues a one-shot multi-key read (the RAMP paper's `GET_ALL`):
    /// all round-1 stamp fetches go out in parallel, then all round-2
    /// value fetches constrained by the union timestamp set. Only the
    /// RAMP-Small protocol drives this path — its constant-size
    /// metadata gives read atomicity exactly when the read set is
    /// fetched as one batch (sequential reads can only repair forward).
    ///
    /// An empty batch completes immediately with no reads recorded.
    ///
    /// # Panics
    /// Panics if the protocol is not RAMP-Small (frontends fall back to
    /// sequential reads for every other engine).
    pub fn issue_read_many(&mut self, ctx: &mut Ctx<'_, Msg>, keys: Vec<Key>) {
        assert_eq!(
            self.config.protocol,
            ProtocolKind::RampSmall,
            "batch reads are the RAMP-Small read path"
        );
        if keys.is_empty() {
            return;
        }
        self.trace_ev(
            ctx.now(),
            TraceEventKind::OpStart {
                txn: self.trace_txn(),
                kind: OpKind::GetMany,
            },
        );
        let txn = self.current.as_mut().expect("no active txn");
        assert!(txn.pending.is_none(), "one op at a time");
        // Resolve buffer/cache hits locally; the rest fan out.
        let mut acc: BTreeMap<Key, SharedRecord> = BTreeMap::new();
        let mut remote: Vec<Key> = Vec::new();
        let cache_ok = matches!(
            self.session.level,
            SessionLevel::ItemCut | SessionLevel::Monotonic | SessionLevel::Causal
        );
        for key in &keys {
            if acc.contains_key(key) || remote.contains(key) {
                continue;
            }
            if let Some((_, v)) = txn.write_buffer.iter().rev().find(|(k, _)| k == key) {
                acc.insert(key.clone(), Record::new(txn.id, v.clone()).into());
            } else if cache_ok && txn.txn_cache.contains_key(key) {
                acc.insert(key.clone(), txn.txn_cache[key].clone());
            } else {
                remote.push(key.clone());
            }
        }
        if remote.is_empty() {
            let issued = ctx.now();
            self.record_batch_reads(ctx, keys, acc, issued);
            return;
        }
        let first_op = self.current.as_ref().unwrap().op_seq;
        let mut pending_ts = BTreeMap::new();
        let mut targets = BTreeMap::new();
        let mut to_send = Vec::new();
        for key in remote {
            let txn = self.current.as_mut().unwrap();
            let op = txn.op_seq;
            txn.op_seq += 1;
            let target = self.pick_replica(ctx, &key);
            pending_ts.insert(op, key.clone());
            targets.insert(key.clone(), target);
            to_send.push((op, key, target));
        }
        let issue_id = self.next_issue(ctx, 0);
        self.metrics.msg_rounds += 1;
        let txn = self.current.as_mut().unwrap();
        let id = txn.id;
        txn.pending = Some(PendingOp {
            kind: PendingKind::RampBatch {
                keys,
                pending_ts,
                stamps: BTreeMap::new(),
                pending_val: BTreeMap::new(),
                acc,
                targets,
                ts_set: Vec::new(),
            },
            op: first_op,
            target: to_send[0].2,
            issued: ctx.now(),
            issue_id,
            attempts: 0,
            write_value: None,
            timeout_issue: 0,
        });
        for (op, key, target) in to_send {
            ctx.send(target, Msg::GetTs { txn: id, op, key });
        }
    }

    /// Completes a batch read: folds stamps, fills the caches and
    /// records one read per requested key, in request order.
    fn record_batch_reads(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        keys: Vec<Key>,
        acc: BTreeMap<Key, SharedRecord>,
        issued: SimTime,
    ) {
        self.trace_ev(
            ctx.now(),
            TraceEventKind::OpEnd {
                txn: self.trace_txn(),
                kind: OpKind::GetMany,
            },
        );
        for key in &keys {
            let mut record = acc
                .get(key)
                .cloned()
                .unwrap_or_else(|| Record::new(Timestamp::INITIAL, Bytes::new()).into());
            self.session_clamp(key, &mut record);
            self.metrics
                .record_op(OpKind::GetMany, ctx.now().since(issued));
            self.tsgen.observe(record.stamp);
            let txn = self.current.as_mut().unwrap();
            if !record.stamp.is_initial() && record.stamp != txn.id {
                txn.ramp_ts_set.insert(record.stamp);
            }
            txn.txn_cache.insert(key.clone(), record.clone());
            txn.ops_done.push(OpRecord::Read {
                key: key.clone(),
                observed: record.stamp,
                value: record.value.clone(),
            });
        }
        self.step_plan(ctx);
    }

    /// Issues a predicate read over `prefix`, scatter-gathered over all
    /// servers of the chosen cluster (the keyspace is hash-partitioned,
    /// so any server holds only part of the prefix).
    pub fn issue_scan(&mut self, ctx: &mut Ctx<'_, Msg>, prefix: Key) {
        self.trace_ev(
            ctx.now(),
            TraceEventKind::OpStart {
                txn: self.trace_txn(),
                kind: OpKind::Scan,
            },
        );
        let txn = self.current.as_mut().expect("no active txn");
        assert!(txn.pending.is_none(), "one op at a time");
        let op = txn.op_seq;
        txn.op_seq += 1;
        let cluster = if self.session.sticky || !self.config.protocol.is_hat() {
            self.home
        } else {
            ctx.rng().gen_range(0..self.layout.num_clusters())
        };
        let servers: Vec<NodeId> = self.layout.servers[cluster].clone();
        let issue_id = self.next_issue(ctx, 0);
        self.metrics.msg_rounds += 1;
        let txn_state = self.current.as_mut().unwrap();
        txn_state.pending = Some(PendingOp {
            kind: PendingKind::Scan {
                prefix: prefix.clone(),
                waiting: servers.clone(),
                acc: Vec::new(),
            },
            op,
            target: servers[0],
            issued: ctx.now(),
            issue_id,
            attempts: 0,
            write_value: None,
            timeout_issue: 0,
        });
        let id = txn_state.id;
        for s in servers {
            ctx.send(
                s,
                Msg::Scan {
                    txn: id,
                    op,
                    prefix: prefix.clone(),
                },
            );
        }
    }

    /// Issues a write. Buffering protocols complete immediately;
    /// eventual/master send the write now; 2PL acquires the lock first.
    pub fn issue_write(&mut self, ctx: &mut Ctx<'_, Msg>, key: Key, value: Bytes) {
        let tid = self.trace_txn();
        self.trace_ev(
            ctx.now(),
            TraceEventKind::OpStart {
                txn: tid,
                kind: OpKind::Put,
            },
        );
        let trace = self.trace.clone();
        let node = self.id;
        let txn = self.current.as_mut().expect("no active txn");
        assert!(txn.pending.is_none(), "one op at a time");
        match self.config.protocol {
            ProtocolKind::ReadCommitted
            | ProtocolKind::Mav
            | ProtocolKind::RampFast
            | ProtocolKind::RampSmall => {
                // Buffer until commit (Read Committed write buffering;
                // the RAMP engines flush the buffer as their prepare
                // phase). Completes locally — the span is instantaneous.
                Self::buffer_write(txn, key, value);
                trace.record(
                    ctx.now().as_micros(),
                    node,
                    TraceEventKind::OpEnd {
                        txn: tid,
                        kind: OpKind::Put,
                    },
                );
            }
            ProtocolKind::Eventual | ProtocolKind::Master => {
                // Visible before commit: Read Uncommitted semantics for
                // `eventual`; master applies at the key's master.
                let op = txn.op_seq;
                txn.op_seq += 1;
                let stamp = self.write_stamp();
                let record: SharedRecord = Record::new(stamp, value.clone()).into();
                let target = if self.config.protocol == ProtocolKind::Master {
                    self.route_master(&key)
                } else {
                    self.pick_replica(ctx, &key)
                };
                let issue_id = self.next_issue(ctx, 0);
                self.metrics.msg_rounds += 1;
                let txn = self.current.as_mut().unwrap();
                Self::buffer_write(txn, key.clone(), value.clone());
                txn.pending = Some(PendingOp {
                    kind: PendingKind::WriteNow {
                        key: key.clone(),
                        value,
                    },
                    op,
                    target,
                    issued: ctx.now(),
                    issue_id,
                    attempts: 0,
                    write_value: None,
                    timeout_issue: 0,
                });
                ctx.send(
                    target,
                    Msg::Put {
                        txn: txn.id,
                        op,
                        key,
                        record,
                    },
                );
            }
            ProtocolKind::TwoPhaseLocking => {
                self.issue_lock(ctx, key, true, LockFollowup::BufferWrite, Some(value));
            }
        }
    }

    /// Starts commit. Buffering protocols flush the write buffer; 2PL
    /// flushes then unlocks; others finish immediately.
    pub fn start_commit(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.trace_ev(
            ctx.now(),
            TraceEventKind::OpStart {
                txn: self.trace_txn(),
                kind: OpKind::Commit,
            },
        );
        let txn = self.current.as_mut().expect("no active txn");
        assert!(txn.pending.is_none(), "outstanding op at commit");
        txn.phase = Phase::Committing;
        match self.config.protocol {
            ProtocolKind::Eventual | ProtocolKind::Master => {
                self.finish_txn(ctx, TxnOutcome::Committed);
            }
            ProtocolKind::ReadCommitted
            | ProtocolKind::Mav
            | ProtocolKind::RampFast
            | ProtocolKind::RampSmall => {
                let protocol = self.config.protocol;
                let txn = self.current.as_mut().unwrap();
                if txn.write_buffer.is_empty() {
                    self.finish_txn(ctx, TxnOutcome::Committed);
                    return;
                }
                // Deduplicate: last value per key, preserving first-write
                // order. MAV and RAMP-Fast attach the write-set as
                // sibling metadata; RAMP-Small's whole point is *not*
                // attaching it (constant-size metadata: the stamp).
                let mut keys: Vec<Key> = Vec::new();
                let mut values: BTreeMap<Key, Bytes> = BTreeMap::new();
                for (k, v) in &txn.write_buffer {
                    if !keys.contains(k) {
                        keys.push(k.clone());
                    }
                    values.insert(k.clone(), v.clone());
                }
                let siblings = if matches!(protocol, ProtocolKind::Mav | ProtocolKind::RampFast) {
                    keys.clone()
                } else {
                    Vec::new()
                };
                let id = self.write_stamp();
                let txn = self.current.as_mut().unwrap();
                let mut to_send = Vec::new();
                for k in &keys {
                    // The one allocation this write will ever get: the
                    // retry buffer, the wire message, the server's store
                    // and its replication log all share it.
                    let record: SharedRecord =
                        Record::with_siblings(id, values.remove(k).unwrap(), siblings.clone())
                            .into();
                    let op = txn.op_seq;
                    txn.op_seq += 1;
                    to_send.push((op, k.clone(), record));
                }
                let issue_id = self.next_issue(ctx, 0);
                self.current.as_mut().unwrap().commit_issue = issue_id;
                self.metrics.msg_rounds += 1;
                // RAMP writes are two-phase and the phases must land on
                // the *same* replicas, so a non-sticky RAMP commit picks
                // one cluster for the whole transaction instead of one
                // per key.
                let ramp_cluster = if protocol.is_ramp() && !self.session.sticky {
                    ctx.rng().gen_range(0..self.layout.num_clusters())
                } else {
                    self.home
                };
                for (op, k, record) in to_send {
                    let target = if protocol.is_ramp() {
                        self.route_in_cluster(&k, ramp_cluster)
                    } else {
                        self.pick_replica(ctx, &k)
                    };
                    self.metrics.metadata_bytes += sibling_bytes(&record);
                    let txn = self.current.as_mut().unwrap();
                    if protocol.is_ramp() {
                        txn.ramp_commit_keys.push((k.clone(), target));
                    }
                    txn.commit_waiting
                        .insert(op, (k.clone(), record.clone(), target));
                    ctx.send(
                        target,
                        Msg::Put {
                            txn: txn.id,
                            op,
                            key: k,
                            record,
                        },
                    );
                }
            }
            ProtocolKind::TwoPhaseLocking => {
                let txn = self.current.as_ref().unwrap();
                // Keys locked for reading only. Their locks back the
                // serializability of the read set, but nothing on the
                // write path ever re-checks them: a crashed master
                // rebuilds an empty lock table, a conflicting writer
                // gets the key, and this transaction would commit write
                // skew. Validate them before publishing anything.
                let read_only: Vec<(Key, NodeId)> = txn
                    .locks_held
                    .iter()
                    .filter(|(k, _)| !txn.write_buffer.iter().any(|(wk, _)| wk == k))
                    .cloned()
                    .collect();
                // A single-lock read-only transaction is trivially
                // serializable at its read point; skip the round.
                if read_only.is_empty()
                    || (txn.write_buffer.is_empty() && txn.locks_held.len() <= 1)
                {
                    self.flush_twopl_writes(ctx);
                    return;
                }
                let issue_id = self.next_issue(ctx, 0);
                self.metrics.msg_rounds += 1;
                let txn = self.current.as_mut().unwrap();
                txn.locks_validating = true;
                txn.commit_issue = issue_id;
                let id = txn.id;
                let mut to_send = Vec::new();
                for (k, master) in read_only {
                    let op = txn.op_seq;
                    txn.op_seq += 1;
                    // Placeholder record: validation entries ride the
                    // commit-wait machinery (drain + retry) but are
                    // never installed anywhere.
                    txn.commit_waiting.insert(
                        op,
                        (k.clone(), Record::new(id, Bytes::new()).into(), master),
                    );
                    to_send.push((op, k, master));
                }
                for (op, key, master) in to_send {
                    ctx.send(master, Msg::LockCheck { txn: id, op, key });
                }
            }
        }
    }

    /// Flushes the 2PL write buffer as stamped `Put`s to each key's
    /// lock master (read-only transactions just unlock and finish).
    /// Runs after commit-time lock validation when the transaction
    /// holds read locks, immediately otherwise.
    fn flush_twopl_writes(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let txn = self.current.as_mut().unwrap();
        if txn.write_buffer.is_empty() {
            self.unlock_and_finish(ctx, TxnOutcome::Committed);
            return;
        }
        let id = self.write_stamp();
        let txn = self.current.as_mut().unwrap();
        let mut to_send = Vec::new();
        let mut keys: Vec<Key> = Vec::new();
        let mut values: BTreeMap<Key, Bytes> = BTreeMap::new();
        for (k, v) in &txn.write_buffer {
            if !keys.contains(k) {
                keys.push(k.clone());
            }
            values.insert(k.clone(), v.clone());
        }
        for k in &keys {
            let record: SharedRecord = Record::new(id, values.remove(k).unwrap()).into();
            let op = txn.op_seq;
            txn.op_seq += 1;
            to_send.push((op, k.clone(), record));
        }
        let issue_id = self.next_issue(ctx, 0);
        self.metrics.msg_rounds += 1;
        self.current.as_mut().unwrap().commit_issue = issue_id;
        for (op, k, record) in to_send {
            let target = self.layout.master(&k);
            let txn = self.current.as_mut().unwrap();
            txn.commit_waiting
                .insert(op, (k.clone(), record.clone(), target));
            ctx.send(
                target,
                Msg::Put {
                    txn: txn.id,
                    op,
                    key: k,
                    record,
                },
            );
        }
    }

    /// Aborts the current transaction (internal abort): drops the buffer,
    /// releases any 2PL locks.
    pub fn abort(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let txn = self.current.as_mut().expect("no active txn");
        txn.pending = None;
        txn.commit_waiting.clear();
        self.release_locks(ctx);
        self.finish_txn(ctx, TxnOutcome::AbortedInternal);
    }

    // ---------------------------------------------------------------
    // Internals
    // ---------------------------------------------------------------

    fn buffer_write(txn: &mut ActiveTxn, key: Key, value: Bytes) {
        txn.write_buffer.push((key.clone(), value.clone()));
        txn.ops_done.push(OpRecord::Write { key, value });
    }

    /// The stamp this transaction's writes carry, assigned on first use
    /// from the Lamport-advancing generator.
    fn write_stamp(&mut self) -> Timestamp {
        let txn = self.current.as_mut().expect("no active txn");
        if let Some(ts) = txn.write_stamp {
            return ts;
        }
        let ts = self.tsgen.next();
        self.current.as_mut().unwrap().write_stamp = Some(ts);
        ts
    }

    /// Allocates an issue id and schedules its retry timer according to
    /// the configured [`crate::RetryPolicy`] (exponential backoff by
    /// default — without backoff, a saturated server turns slow commits
    /// into a retry storm).
    fn next_issue(&mut self, ctx: &mut Ctx<'_, Msg>, attempts: u32) -> u64 {
        self.issue_counter += 1;
        let id = self.issue_counter;
        ctx.set_timer(self.config.retry.backoff(attempts), id);
        id
    }

    /// The `required` lower bound a `Get` for `key` must carry: the
    /// transaction's MAV `required` entry joined with the session's
    /// cross-transaction causal floor. Both the initial send and every
    /// retry must go through this — a retry that forgets the session
    /// floor can observe a causally stale version.
    fn required_floor(&self, key: &Key) -> Timestamp {
        let mut required = self
            .current
            .as_ref()
            .and_then(|t| t.required.get(key).copied())
            .unwrap_or(Timestamp::INITIAL);
        if self.session.level == SessionLevel::Causal {
            if let Some(&floor) = self.causal_required.get(key) {
                required = required.max(floor);
            }
        }
        required
    }

    /// Resolves `key` to a server of `cluster`, honouring shard
    /// overrides learnt from [`Msg::WrongShard`] NACKs: a token
    /// mid-handoff routes to its new owner position, everything else
    /// follows the layout ring.
    fn route_in_cluster(&self, key: &Key, cluster: usize) -> NodeId {
        if !self.shard_overrides.is_empty() {
            if let Some(&pos) = self.shard_overrides.get(&self.layout.ring().token_of(key)) {
                return self.layout.servers[cluster][pos as usize];
            }
        }
        self.layout.replica_in_cluster(key, cluster)
    }

    /// The master replica of `key`, honouring shard overrides.
    fn route_master(&self, key: &Key) -> NodeId {
        self.route_in_cluster(key, self.layout.master_cluster(key))
    }

    /// Chooses the replica to contact for `key`.
    fn pick_replica(&mut self, ctx: &mut Ctx<'_, Msg>, key: &Key) -> NodeId {
        match self.config.protocol {
            ProtocolKind::Master => self.route_master(key),
            // 2PL is exempt from shard cutover (lock tables stay pinned
            // to the ring owner), so its routing ignores overrides.
            ProtocolKind::TwoPhaseLocking => self.layout.master(key),
            _ if self.session.sticky => self.route_in_cluster(key, self.home),
            _ => {
                let c = ctx.rng().gen_range(0..self.layout.num_clusters());
                self.route_in_cluster(key, c)
            }
        }
    }

    fn send_get(&mut self, ctx: &mut Ctx<'_, Msg>, key: Key) {
        let target = self.pick_replica(ctx, &key);
        let issue_id = self.next_issue(ctx, 0);
        let required = self.required_floor(&key);
        self.metrics.msg_rounds += 1;
        let txn = self.current.as_mut().unwrap();
        let op = txn.op_seq;
        txn.op_seq += 1;
        txn.pending = Some(PendingOp {
            kind: PendingKind::Read { key: key.clone() },
            op,
            target,
            issued: ctx.now(),
            issue_id,
            attempts: 0,
            write_value: None,
            timeout_issue: 0,
        });
        ctx.send(
            target,
            Msg::Get {
                txn: txn.id,
                op,
                key,
                required,
            },
        );
    }

    /// RAMP-Small round 1: a timestamp-only read.
    fn send_get_ts(&mut self, ctx: &mut Ctx<'_, Msg>, key: Key) {
        let target = self.pick_replica(ctx, &key);
        let issue_id = self.next_issue(ctx, 0);
        self.metrics.msg_rounds += 1;
        let txn = self.current.as_mut().unwrap();
        let op = txn.op_seq;
        txn.op_seq += 1;
        txn.pending = Some(PendingOp {
            kind: PendingKind::RampTs { key: key.clone() },
            op,
            target,
            issued: ctx.now(),
            issue_id,
            attempts: 0,
            write_value: None,
            timeout_issue: 0,
        });
        ctx.send(
            target,
            Msg::GetTs {
                txn: txn.id,
                op,
                key,
            },
        );
    }

    /// Issues a RAMP second-round version fetch for an in-progress read
    /// (same op id — the fetch *is* the read's continuation). Pinned to
    /// the round-1 replica: both rounds must see one server's state.
    #[allow(clippy::too_many_arguments)]
    fn issue_ramp_fetch(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        req: VersionReq,
        repairs: u32,
        op: u32,
        target: NodeId,
        issued: SimTime,
    ) {
        let issue_id = self.next_issue(ctx, 0);
        self.metrics.msg_rounds += 1;
        if let VersionReq::Among(set) = &req {
            self.metrics.metadata_bytes += TS_WIRE_BYTES * set.len() as u64;
        }
        let txn = self.current.as_mut().unwrap();
        txn.pending = Some(PendingOp {
            kind: PendingKind::RampVersion {
                key: key.clone(),
                req: req.clone(),
                repairs,
            },
            op,
            target,
            issued,
            issue_id,
            attempts: 0,
            write_value: None,
            timeout_issue: 0,
        });
        ctx.send(
            target,
            Msg::GetVersion {
                txn: txn.id,
                op,
                key,
                req,
            },
        );
    }

    /// The repair a RAMP-Fast read of `key` needs after observing
    /// `record`, if any:
    ///
    /// * below the key's floor (metadata of an earlier read names a
    ///   newer write of this key by an observed transaction) → fetch
    ///   that exact version;
    /// * above a ceiling (this record's write-set includes a key this
    ///   transaction already read *older* — returning it would expose a
    ///   fractured write-set) → fetch the newest visible version at or
    ///   below the oldest such observation.
    fn ramp_fast_repair(&self, key: &Key, record: &Record) -> Option<VersionReq> {
        let txn = self.current.as_ref()?;
        let floor = txn
            .ramp_floor
            .get(key)
            .copied()
            .unwrap_or(Timestamp::INITIAL);
        if record.stamp < floor {
            return Some(VersionReq::Exact(floor));
        }
        let mut ceiling: Option<Timestamp> = None;
        for sib in &record.siblings {
            if sib == key {
                continue;
            }
            if let Some(prior) = txn.txn_cache.get(sib) {
                if prior.stamp < record.stamp {
                    ceiling = Some(match ceiling {
                        Some(c) => c.min(prior.stamp),
                        None => prior.stamp,
                    });
                }
            }
        }
        ceiling.map(VersionReq::AtOrBelow)
    }

    /// Monotonic/Causal sessions never observe something older than the
    /// session cache (the client "acts as a server itself"). Applied on
    /// *every* read path — including RAMP second rounds and batch reads
    /// — so a repair fetch cannot step a session backwards. When a
    /// repair and the session guarantee conflict, the session guarantee
    /// wins (it is the stronger, stickier contract).
    fn session_clamp(&self, key: &Key, record: &mut SharedRecord) {
        if matches!(
            self.session.level,
            SessionLevel::Monotonic | SessionLevel::Causal
        ) {
            if let Some(cached) = self.session_cache.get(key) {
                if cached.stamp > record.stamp {
                    *record = cached.clone();
                }
            }
        }
    }

    /// Completes an item read: metrics, Lamport/session/metadata folds,
    /// the transaction cache and the op record. Every read path (plain
    /// `GetResp`, RAMP second rounds, metadata-only RAMP-Small reads of
    /// `⊥`) funnels through here.
    fn finish_read(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        mut record: SharedRecord,
        issued: SimTime,
    ) {
        self.session_clamp(&key, &mut record);
        self.metrics.record_op(OpKind::Get, ctx.now().since(issued));
        self.trace_ev(
            ctx.now(),
            TraceEventKind::OpEnd {
                txn: self.trace_txn(),
                kind: OpKind::Get,
            },
        );
        self.tsgen.observe(record.stamp);
        let protocol = self.config.protocol;
        let txn = self.current.as_mut().unwrap();
        match protocol {
            // MAV: fold the response's sibling list into the required
            // vector (Appendix B client GET).
            ProtocolKind::Mav => {
                for sib in &record.siblings {
                    let e = txn.required.entry(sib.clone()).or_insert(record.stamp);
                    *e = (*e).max(record.stamp);
                }
            }
            // RAMP-Fast: the sibling list raises per-key floors instead
            // — later reads repair themselves against them.
            ProtocolKind::RampFast => {
                self.metrics.metadata_bytes += sibling_bytes(&record);
                for sib in &record.siblings {
                    let e = txn.ramp_floor.entry(sib.clone()).or_insert(record.stamp);
                    *e = (*e).max(record.stamp);
                }
            }
            // RAMP-Small: only the stamp is metadata.
            ProtocolKind::RampSmall if !record.stamp.is_initial() => {
                txn.ramp_ts_set.insert(record.stamp);
            }
            _ => {}
        }
        txn.txn_cache.insert(key.clone(), record.clone());
        txn.ops_done.push(OpRecord::Read {
            key,
            observed: record.stamp,
            value: record.value.clone(),
        });
        self.step_plan(ctx);
    }

    /// RAMP commit phase 2: sends a commit marker to every replica the
    /// prepare phase wrote, reusing the commit-retry machinery (the
    /// placeholder records carry the write stamp for resends). With
    /// group commit enabled ([`SystemConfig::commit_batch_size`] > 1),
    /// every marker bound for one replica coalesces into a single
    /// [`Msg::CommitBatch`].
    fn start_ramp_commit_phase(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let issue_id = self.next_issue(ctx, 0);
        self.metrics.msg_rounds += 1;
        let txn = self.current.as_mut().unwrap();
        txn.ramp_committing = true;
        txn.commit_attempts = 0;
        txn.commit_issue = issue_id;
        let ts = txn.write_stamp.expect("ramp commit without writes");
        let id = txn.id;
        let targets = std::mem::take(&mut txn.ramp_commit_keys);
        // Every retry placeholder shares one empty record allocation.
        let placeholder: SharedRecord = Record::new(ts, Bytes::new()).into();
        let mut marks = Vec::with_capacity(targets.len());
        for (key, target) in targets {
            let op = txn.op_seq;
            txn.op_seq += 1;
            txn.commit_waiting
                .insert(op, (key.clone(), placeholder.clone(), target));
            marks.push((op, key, target));
        }
        self.send_commit_marks(ctx, id, ts, marks);
    }

    /// Sends phase-2 commit marks, grouped per destination replica into
    /// [`Msg::CommitBatch`] chunks of at most
    /// [`SystemConfig::commit_batch_size`] marks. A batch size of 1 (or
    /// 0) disables group commit and falls back to one [`Msg::Commit`]
    /// per key. Both the initial send and commit-phase retries funnel
    /// through here, so a resend coalesces exactly like the original.
    fn send_commit_marks(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        id: Timestamp,
        ts: Timestamp,
        marks: Vec<(u32, Key, NodeId)>,
    ) {
        let batch = self.config.commit_batch_size;
        if batch <= 1 {
            for (op, key, target) in marks {
                ctx.send(
                    target,
                    Msg::Commit {
                        txn: id,
                        op,
                        key,
                        ts,
                    },
                );
            }
            return;
        }
        // Ordered by destination so send order is deterministic.
        let mut per_dest: BTreeMap<NodeId, Vec<(u32, Key)>> = BTreeMap::new();
        for (op, key, target) in marks {
            per_dest.entry(target).or_default().push((op, key));
        }
        for (target, dest_marks) in per_dest {
            for chunk in dest_marks.chunks(batch) {
                self.metrics.commit_batches += 1;
                self.metrics.commit_batch_marks += chunk.len() as u64;
                ctx.send(
                    target,
                    Msg::CommitBatch {
                        txn: id,
                        ts,
                        marks: chunk.to_vec(),
                    },
                );
            }
        }
    }

    fn issue_lock(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        exclusive: bool,
        then: LockFollowup,
        value: Option<Bytes>,
    ) {
        let target = self.layout.master(&key);
        self.trace_ev(
            ctx.now(),
            TraceEventKind::LockWait {
                txn: self.trace_txn(),
                key: String::from_utf8_lossy(&key).into_owned(),
            },
        );
        let issue_id = self.next_issue(ctx, 0);
        self.metrics.msg_rounds += 1;
        // Lock timeout (deadlock breaker / unavailability bound).
        ctx.set_timer(self.config.lock_timeout, issue_id | LOCK_TIMEOUT_BIT);
        let txn = self.current.as_mut().unwrap();
        let op = txn.op_seq;
        txn.op_seq += 1;
        txn.pending = Some(PendingOp {
            kind: PendingKind::Lock {
                key: key.clone(),
                exclusive,
                then,
            },
            op,
            target,
            issued: ctx.now(),
            issue_id,
            attempts: 0,
            write_value: value,
            timeout_issue: issue_id,
        });
        ctx.send(
            target,
            Msg::Lock {
                txn: txn.id,
                op,
                key,
                exclusive,
            },
        );
    }

    fn release_locks(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(txn) = self.current.as_mut() else {
            return;
        };
        if txn.locks_held.is_empty() {
            return;
        }
        // Group keys per lock master (ordered: unlock send order must
        // not depend on hash seeds).
        let mut per_master: BTreeMap<NodeId, Vec<Key>> = BTreeMap::new();
        for (k, master) in txn.locks_held.drain(..) {
            per_master.entry(master).or_default().push(k);
        }
        let id = txn.id;
        for (master, keys) in per_master {
            ctx.send(master, Msg::Unlock { txn: id, keys });
        }
    }

    /// Completes the transaction: metrics, history, session state, and —
    /// in driver mode — the next plan.
    fn finish_txn(&mut self, ctx: &mut Ctx<'_, Msg>, outcome: TxnOutcome) {
        let tid = self.trace_txn();
        self.trace_ev(
            ctx.now(),
            match outcome {
                TxnOutcome::Committed => TraceEventKind::TxnCommit { txn: tid },
                TxnOutcome::AbortedInternal => TraceEventKind::TxnAbort {
                    txn: tid,
                    internal: true,
                },
                TxnOutcome::AbortedExternal | TxnOutcome::Indeterminate => {
                    TraceEventKind::TxnAbort {
                        txn: tid,
                        internal: false,
                    }
                }
            },
        );
        let mut txn = self.current.take().expect("no active txn");
        txn.phase = Phase::Done(outcome);
        // The stamp this txn's writes actually carried (read-only txns
        // keep their begin-time id).
        let stamp = txn.write_stamp.unwrap_or(txn.id);
        match outcome {
            TxnOutcome::Committed => {
                self.metrics.record_commit(txn.started, ctx.now());
                // Fold the transaction's observations into session state.
                if matches!(
                    self.session.level,
                    SessionLevel::Monotonic | SessionLevel::Causal
                ) {
                    for (k, r) in std::mem::take(&mut txn.txn_cache) {
                        let newer = self
                            .session_cache
                            .get(&k)
                            .map(|old| r.stamp > old.stamp)
                            .unwrap_or(true);
                        if newer {
                            self.session_cache.insert(k, r);
                        }
                    }
                    // Own writes become cached reads (read-your-writes).
                    for (k, v) in &txn.write_buffer {
                        self.session_cache
                            .insert(k.clone(), Record::new(stamp, v.clone()).into());
                    }
                }
                if self.session.level == SessionLevel::Causal {
                    for (k, ts) in std::mem::take(&mut txn.required) {
                        let e = self.causal_required.entry(k).or_insert(ts);
                        *e = (*e).max(ts);
                    }
                    for (k, _) in &txn.write_buffer {
                        let e = self.causal_required.entry(k.clone()).or_insert(stamp);
                        *e = (*e).max(stamp);
                    }
                }
            }
            // Indeterminate outcomes are minted in `abandon`, never
            // here; counted with external aborts if that ever changes.
            TxnOutcome::AbortedExternal | TxnOutcome::Indeterminate => {
                self.metrics.aborted_external += 1
            }
            TxnOutcome::AbortedInternal => self.metrics.aborted_internal += 1,
        }
        // Reads served from the write buffer were recorded with the
        // begin-time id; rewrite them to the actual write stamp.
        for op in &mut txn.ops_done {
            if let OpRecord::Read { observed, .. } = op {
                if *observed == txn.id {
                    *observed = stamp;
                }
            }
        }
        if outcome == TxnOutcome::Committed && self.obs.is_enabled() {
            self.feed_obs(ctx.now(), stamp, &txn.ops_done, tid);
        }
        if self.config.record_history {
            self.records.push(TxnRecord {
                id: stamp,
                session: self.client_idx,
                session_seq: self.session_seq,
                ops: std::mem::take(&mut txn.ops_done),
                outcome,
            });
        }
        self.session_seq += 1;
        // Keep the finished txn visible to the facade via txn_outcome();
        // driver mode immediately moves on.
        self.current = Some(txn);
        if self.driver.is_some() {
            self.current = None;
            self.drive_next(ctx);
        }
    }

    /// Feeds a committed transaction to the live-telemetry sink: its
    /// reads (for the streaming checker) and its writes with each key's
    /// replica set (for the t-visibility probe). Observation only — the
    /// sink is fed from state the commit already produced and draws
    /// nothing from the rng. On the sink's *first* violation the PR-8
    /// trace window around the offending transaction is dumped (once
    /// per run).
    fn feed_obs(&self, now: SimTime, stamp: Timestamp, ops: &[OpRecord], tid: TxnId) {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for op in ops {
            match op {
                OpRecord::Read { key, observed, .. } => {
                    reads.push((key.to_vec(), (observed.seq, observed.writer)));
                }
                OpRecord::Write { key, .. } => {
                    writes.push((key.to_vec(), self.layout.replicas(key)));
                }
                OpRecord::PredicateRead { .. } => {}
            }
        }
        let commit = hat_obs::CommitObs {
            at_us: now.as_micros(),
            session: self.client_idx,
            session_seq: self.session_seq,
            stamp: (stamp.seq, stamp.writer),
            reads,
            writes,
        };
        if let Some(v) = self.obs.observe_commit(&commit) {
            eprintln!(
                "hat-obs: first streaming violation {v:?}\n{}",
                hat_trace::format_txn_window(&self.trace.events(), tid, 5_000)
            );
        }
    }

    /// Clears a finished transaction (facade calls this after reading the
    /// outcome).
    pub fn clear_finished(&mut self) {
        if matches!(self.current.as_ref().map(|t| t.phase), Some(Phase::Done(_))) {
            self.current = None;
        }
    }

    /// Force-abandons the current transaction after the facade observed
    /// unavailability: outstanding requests are forgotten and the
    /// transaction counts as externally aborted. Responses that straggle
    /// in later are ignored (they no longer match a pending op).
    pub fn abandon(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.current.is_none() {
            return;
        }
        if matches!(self.current.as_ref().map(|t| t.phase), Some(Phase::Done(_))) {
            // already finished (and any locks released); nothing to record
            self.current = None;
            return;
        }
        // Release any 2PL locks still held before forgetting the
        // transaction — leaking them would wedge those keys for every
        // other session until the run ends.
        self.release_locks(ctx);
        let mut txn = self.current.take().expect("checked above");
        // Abandoning mid-commit is not an abort: some replicas may have
        // durably installed the writes before the round stalled, so the
        // transaction's effects are indeterminate and later reads of
        // them are legitimate. Abandoning mid-execution (writes still in
        // the client buffer for commit-time engines) stays an abort.
        let commit_in_flight = txn.phase == Phase::Committing || !txn.commit_waiting.is_empty();
        txn.pending = None;
        txn.commit_waiting.clear();
        self.trace_ev(
            ctx.now(),
            TraceEventKind::TxnAbandon {
                txn: self.trace_txn(),
                indeterminate: commit_in_flight,
            },
        );
        self.metrics.aborted_external += 1;
        if self.config.record_history {
            self.records.push(TxnRecord {
                id: txn.write_stamp.unwrap_or(txn.id),
                session: self.client_idx,
                session_seq: self.session_seq,
                ops: std::mem::take(&mut txn.ops_done),
                outcome: if commit_in_flight {
                    TxnOutcome::Indeterminate
                } else {
                    TxnOutcome::AbortedExternal
                },
            });
        }
        self.session_seq += 1;
    }

    // ---------------------------------------------------------------
    // Driver (closed-loop) mode
    // ---------------------------------------------------------------

    /// Starts the closed loop (no-op unless a driver is installed).
    pub fn drive_next(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(driver) = self.driver.as_mut() else {
            return;
        };
        let Some(spec) = driver.next_txn(ctx.rng()) else {
            return;
        };
        self.begin(ctx.now());
        self.current.as_mut().unwrap().plan = Some((spec, 0));
        self.step_plan(ctx);
    }

    /// Executes plan operations until one goes async or the plan ends.
    fn step_plan(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            let Some(txn) = self.current.as_mut() else {
                return;
            };
            if txn.pending.is_some() || !txn.commit_waiting.is_empty() {
                return;
            }
            let Some((spec, idx)) = txn.plan.as_mut() else {
                return;
            };
            if *idx >= spec.ops.len() {
                if txn.phase == Phase::Executing {
                    self.start_commit(ctx);
                    // eventual/master finish synchronously; others wait
                    if self.current.is_none()
                        || self.current.as_ref().unwrap().phase == Phase::Executing
                    {
                        continue;
                    }
                }
                return;
            }
            let op = spec.ops[*idx].clone();
            *idx += 1;
            match op {
                Op::Read(k) => self.issue_read(ctx, k),
                Op::Write(k, v) => self.issue_write(ctx, k, v),
                Op::PredicateRead(p) => self.issue_scan(ctx, p),
            }
        }
    }

    // ---------------------------------------------------------------
    // Message handling
    // ---------------------------------------------------------------

    /// Handles a message addressed to this client.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::GetResp { txn, op, found } => self.on_get_resp(ctx, txn, op, found),
            Msg::GetTsResp { txn, op, ts } => self.on_get_ts_resp(ctx, txn, op, ts),
            Msg::GetVersionResp { txn, op, found } => self.on_get_version_resp(ctx, txn, op, found),
            Msg::ScanResp { txn, op, matches } => self.on_scan_resp(ctx, from, txn, op, matches),
            Msg::PutResp { txn, op } => self.on_put_resp(ctx, txn, op),
            Msg::CommitBatchResp { txn, ops } => self.on_commit_batch_resp(ctx, txn, ops),
            Msg::LockResp { txn, op, floor } => self.on_lock_resp(ctx, txn, op, floor),
            Msg::LockCheckResp { txn, op, ok } => self.on_lock_check_resp(ctx, txn, op, ok),
            Msg::WrongShard {
                txn,
                op,
                key,
                owner,
            } => self.on_wrong_shard(ctx, txn, op, key, owner),
            _ => {} // stray server traffic: ignore
        }
    }

    /// A server NACKed an op because the key's shard token was handed
    /// off to a new owner. Learn the override — every future route of
    /// that token (in any cluster) follows it — then resend the NACKed
    /// request to the owner. A stale NACK (the op already completed or
    /// was retried elsewhere) still teaches the route but resends
    /// nothing.
    fn on_wrong_shard(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn_id: Timestamp,
        op: u32,
        key: Key,
        owner: NodeId,
    ) {
        if let Some(pos) = self.layout.position_of(owner) {
            self.shard_overrides
                .insert(self.layout.ring().token_of(&key), pos);
        }
        self.metrics.shard_redirects += 1;
        self.trace_ev(
            ctx.now(),
            TraceEventKind::ShardRedirect {
                txn: self.trace_txn(),
                owner,
            },
        );
        // Redirect the matching single pending op.
        if self.matches_pending(txn_id, op) {
            let required = self.required_floor(&key);
            let txn = self.current.as_mut().unwrap();
            let id = txn.id;
            let write_stamp = txn.write_stamp;
            let pending = txn.pending.as_mut().unwrap();
            let msg = match &mut pending.kind {
                PendingKind::Read { key } => Some(Msg::Get {
                    txn: id,
                    op,
                    key: key.clone(),
                    required,
                }),
                PendingKind::WriteNow { key, value } => Some(Msg::Put {
                    txn: id,
                    op,
                    key: key.clone(),
                    record: Record::new(write_stamp.unwrap_or(id), value.clone()).into(),
                }),
                PendingKind::RampTs { key } => Some(Msg::GetTs {
                    txn: id,
                    op,
                    key: key.clone(),
                }),
                // Only round-1 sub-requests are NACKed (round 2 is
                // pinned to where round 1 answered); repoint this key's
                // replica and resend its timestamp probe.
                PendingKind::RampBatch {
                    pending_ts,
                    targets,
                    ..
                } => pending_ts.get(&op).cloned().map(|k| {
                    targets.insert(k.clone(), owner);
                    Msg::GetTs {
                        txn: id,
                        op,
                        key: k,
                    }
                }),
                // Scans are scatter-gather (old and new owner both
                // answer), RAMP round 2 and 2PL locks are pinned:
                // servers never NACK them.
                _ => None,
            };
            if let Some(msg) = msg {
                if !matches!(pending.kind, PendingKind::RampBatch { .. }) {
                    pending.target = owner;
                }
                ctx.send(owner, msg);
            }
            return;
        }
        // Commit-phase put (RC/MAV flush or a RAMP prepare): repoint
        // the stored target and resend. RAMP phase 2 must land where
        // phase 1 prepared, so the pinned `ramp_commit_keys` entry
        // moves with it. Once phase 2 has started the prepare already
        // landed somewhere — a late NACK only teaches the route.
        let Some(txn) = self.current.as_mut() else {
            return;
        };
        if txn.id != txn_id || txn.ramp_committing {
            return;
        }
        let Some(entry) = txn.commit_waiting.get_mut(&op) else {
            return;
        };
        entry.2 = owner;
        let (k, record) = (entry.0.clone(), entry.1.clone());
        for t in txn.ramp_commit_keys.iter_mut() {
            if t.0 == k {
                t.1 = owner;
            }
        }
        ctx.send(
            owner,
            Msg::Put {
                txn: txn_id,
                op,
                key: k,
                record,
            },
        );
    }

    fn matches_pending(&self, txn: Timestamp, op: u32) -> bool {
        let Some(t) = self.current.as_ref() else {
            return false;
        };
        let Some(p) = t.pending.as_ref() else {
            return false;
        };
        if t.id != txn {
            return false;
        }
        match &p.kind {
            // Batch reads fan out sub-requests under their own op ids.
            PendingKind::RampBatch {
                pending_ts,
                pending_val,
                ..
            } => pending_ts.contains_key(&op) || pending_val.contains_key(&op),
            _ => p.op == op,
        }
    }

    fn on_get_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn_id: Timestamp,
        op: u32,
        found: Option<SharedRecord>,
    ) {
        if !self.matches_pending(txn_id, op) {
            return; // stale (retried or finished)
        }
        let txn = self.current.as_mut().unwrap();
        let pending = txn.pending.take().unwrap();
        let PendingKind::Read { key } = pending.kind else {
            txn.pending = Some(pending);
            return;
        };

        let mut record =
            found.unwrap_or_else(|| Record::new(Timestamp::INITIAL, Bytes::new()).into());
        // Clamp before the repair decision so the fracture check runs
        // on what the session will actually observe (finish_read clamps
        // again; the clamp is idempotent).
        self.session_clamp(&key, &mut record);
        // RAMP-Fast: a fractured read is repaired with a second round
        // before anything is returned (the one-round fast path stays
        // one round when no fracture is detected).
        if self.config.protocol == ProtocolKind::RampFast {
            if let Some(req) = self.ramp_fast_repair(&key, &record) {
                self.metrics.repair_rounds += 1;
                self.issue_ramp_fetch(ctx, key, req, 0, pending.op, pending.target, pending.issued);
                return;
            }
        }
        self.finish_read(ctx, key, record, pending.issued);
    }

    /// RAMP-Small round-1 response: always continue into round 2 with
    /// the transaction's observed-stamp set (plus this key's latest
    /// committed stamp). With nothing to fetch — no observed stamps and
    /// a `⊥` key — the read completes as `⊥` without a value round.
    fn on_get_ts_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn_id: Timestamp,
        op: u32,
        ts: Timestamp,
    ) {
        if !self.matches_pending(txn_id, op) {
            return;
        }
        let txn = self.current.as_mut().unwrap();
        if matches!(
            txn.pending.as_ref().map(|p| &p.kind),
            Some(PendingKind::RampBatch { .. })
        ) {
            self.on_batch_ts(ctx, op, ts);
            return;
        }
        let pending = txn.pending.take().unwrap();
        let PendingKind::RampTs { key } = pending.kind else {
            // A stale duplicate (e.g. the op already advanced to its
            // second round): no metric, no state change.
            txn.pending = Some(pending);
            return;
        };
        self.metrics.metadata_bytes += TS_WIRE_BYTES;
        let mut set: Vec<Timestamp> = txn.ramp_ts_set.iter().copied().collect();
        if !ts.is_initial() && !txn.ramp_ts_set.contains(&ts) {
            set.push(ts);
        }
        if set.is_empty() {
            let record = Record::new(Timestamp::INITIAL, Bytes::new()).into();
            self.finish_read(ctx, key, record, pending.issued);
            return;
        }
        self.issue_ramp_fetch(
            ctx,
            key,
            VersionReq::Among(set),
            0,
            pending.op,
            pending.target,
            pending.issued,
        );
    }

    /// Batch round-1 bookkeeping: collect the stamp; once the last one
    /// arrives, fan out round 2 with the union timestamp set.
    fn on_batch_ts(&mut self, ctx: &mut Ctx<'_, Msg>, op: u32, ts: Timestamp) {
        let txn = self.current.as_mut().unwrap();
        let pending = txn.pending.as_mut().unwrap();
        let PendingKind::RampBatch {
            pending_ts, stamps, ..
        } = &mut pending.kind
        else {
            return;
        };
        let Some(key) = pending_ts.remove(&op) else {
            return;
        };
        self.metrics.metadata_bytes += TS_WIRE_BYTES;
        stamps.insert(key, ts);
        if !pending_ts.is_empty() {
            return;
        }
        // Round 1 complete: the Among set is the union of everything
        // this transaction has observed plus every round-1 stamp.
        let set: BTreeSet<Timestamp> = txn
            .ramp_ts_set
            .iter()
            .copied()
            .chain(stamps.values().copied().filter(|t| !t.is_initial()))
            .collect();
        if set.is_empty() {
            // Nothing committed anywhere in sight: every remote key is ⊥.
            let pending = txn.pending.take().unwrap();
            let PendingKind::RampBatch { keys, acc, .. } = pending.kind else {
                unreachable!("checked above");
            };
            self.record_batch_reads(ctx, keys, acc, pending.issued);
            return;
        }
        let set_vec: Vec<Timestamp> = set.into_iter().collect();
        let issue_id = self.next_issue(ctx, 0);
        let txn = self.current.as_mut().unwrap();
        let id = txn.id;
        let pending = txn.pending.as_mut().unwrap();
        pending.issue_id = issue_id;
        let PendingKind::RampBatch {
            pending_val,
            stamps,
            targets,
            ts_set,
            ..
        } = &mut pending.kind
        else {
            unreachable!("checked above");
        };
        *ts_set = set_vec.clone();
        let round2: Vec<Key> = stamps.keys().cloned().collect();
        let mut to_send = Vec::with_capacity(round2.len());
        for key in round2 {
            let op = txn.op_seq;
            txn.op_seq += 1;
            pending_val.insert(op, key.clone());
            to_send.push((op, targets[&key], key));
        }
        self.metrics.msg_rounds += 1;
        self.metrics.metadata_bytes += TS_WIRE_BYTES * set_vec.len() as u64 * to_send.len() as u64;
        for (op, target, key) in to_send {
            ctx.send(
                target,
                Msg::GetVersion {
                    txn: id,
                    op,
                    key,
                    req: VersionReq::Among(set_vec.clone()),
                },
            );
        }
    }

    /// Batch round-2 bookkeeping: collect the version; once the last
    /// one arrives, record the whole batch.
    fn on_batch_version(&mut self, ctx: &mut Ctx<'_, Msg>, op: u32, found: Option<SharedRecord>) {
        let txn = self.current.as_mut().unwrap();
        let pending = txn.pending.as_mut().unwrap();
        let PendingKind::RampBatch {
            pending_val, acc, ..
        } = &mut pending.kind
        else {
            return;
        };
        let Some(key) = pending_val.remove(&op) else {
            return;
        };
        if let Some(rec) = found {
            acc.insert(key, rec);
        }
        if !pending_val.is_empty() {
            return;
        }
        let pending = txn.pending.take().unwrap();
        let PendingKind::RampBatch { keys, acc, .. } = pending.kind else {
            unreachable!("checked above");
        };
        self.record_batch_reads(ctx, keys, acc, pending.issued);
    }

    /// RAMP second-round response: for RAMP-Fast, re-check the repaired
    /// version (a ceiling fetch can land on a version that fractures an
    /// even older observation) and chain bounded further repairs; then
    /// complete the read.
    fn on_get_version_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn_id: Timestamp,
        op: u32,
        found: Option<SharedRecord>,
    ) {
        if !self.matches_pending(txn_id, op) {
            return;
        }
        let txn = self.current.as_mut().unwrap();
        if matches!(
            txn.pending.as_ref().map(|p| &p.kind),
            Some(PendingKind::RampBatch { .. })
        ) {
            self.on_batch_version(ctx, op, found);
            return;
        }
        let pending = txn.pending.take().unwrap();
        let PendingKind::RampVersion { key, repairs, .. } = pending.kind.clone() else {
            txn.pending = Some(pending);
            return;
        };
        let record = found.unwrap_or_else(|| Record::new(Timestamp::INITIAL, Bytes::new()).into());
        if self.config.protocol == ProtocolKind::RampFast {
            if let Some(req) = self.ramp_fast_repair(&key, &record) {
                if repairs < MAX_RAMP_REPAIRS {
                    self.metrics.repair_rounds += 1;
                    self.issue_ramp_fetch(
                        ctx,
                        key,
                        req,
                        repairs + 1,
                        pending.op,
                        pending.target,
                        pending.issued,
                    );
                    return;
                }
                self.metrics.unrepaired_reads += 1;
            }
        }
        self.finish_read(ctx, key, record, pending.issued);
    }

    fn on_scan_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn_id: Timestamp,
        op: u32,
        matches: Vec<(Key, SharedRecord)>,
    ) {
        if !self.matches_pending(txn_id, op) {
            return;
        }
        let txn = self.current.as_mut().unwrap();
        let pending = txn.pending.as_mut().unwrap();
        let PendingKind::Scan { waiting, acc, .. } = &mut pending.kind else {
            return;
        };
        // One response per server; ignore duplicates from retries.
        let Some(pos) = waiting.iter().position(|&s| s == from) else {
            return;
        };
        waiting.swap_remove(pos);
        acc.extend(matches);
        if !waiting.is_empty() {
            return; // gather continues
        }
        let pending = txn.pending.take().unwrap();
        let PendingKind::Scan {
            prefix, mut acc, ..
        } = pending.kind
        else {
            unreachable!("checked above");
        };
        // Mid-handoff the old and new owner of a token both answer the
        // scatter with the token's keys: keep the freshest version of
        // each key.
        acc.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.stamp.cmp(&a.1.stamp)));
        acc.dedup_by(|a, b| a.0 == b.0);
        self.metrics
            .record_op(OpKind::Scan, ctx.now().since(pending.issued));
        self.trace_ev(
            ctx.now(),
            TraceEventKind::OpEnd {
                txn: self.trace_txn(),
                kind: OpKind::Scan,
            },
        );
        for (_, r) in &acc {
            self.tsgen.observe(r.stamp);
        }
        self.last_scan = acc
            .iter()
            .map(|(k, r)| (k.clone(), r.value.clone()))
            .collect();
        let txn = self.current.as_mut().unwrap();
        for (k, r) in &acc {
            txn.txn_cache.insert(k.clone(), r.clone());
        }
        txn.ops_done.push(OpRecord::PredicateRead {
            prefix,
            matches: acc.iter().map(|(k, r)| (k.clone(), r.stamp)).collect(),
        });
        self.step_plan(ctx);
    }

    fn on_put_resp(&mut self, ctx: &mut Ctx<'_, Msg>, txn_id: Timestamp, op: u32) {
        // Commit-phase ack?
        let is_commit_ack = self
            .current
            .as_ref()
            .map(|t| t.id == txn_id && t.commit_waiting.contains_key(&op))
            .unwrap_or(false);
        if is_commit_ack {
            let txn = self.current.as_mut().unwrap();
            txn.commit_waiting.remove(&op);
            self.after_commit_acks(ctx);
            return;
        }
        // Operation-time write ack (eventual / master).
        if self.matches_pending(txn_id, op) {
            let txn = self.current.as_mut().unwrap();
            let pending = txn.pending.take().unwrap();
            if !matches!(pending.kind, PendingKind::WriteNow { .. }) {
                txn.pending = Some(pending);
                return;
            }
            self.metrics
                .record_op(OpKind::Put, ctx.now().since(pending.issued));
            self.trace_ev(
                ctx.now(),
                TraceEventKind::OpEnd {
                    txn: self.trace_txn(),
                    kind: OpKind::Put,
                },
            );
            self.step_plan(ctx);
        }
    }

    /// Acknowledgement of a [`Msg::CommitBatch`]: every mark the batch
    /// carried is acked at once.
    fn on_commit_batch_resp(&mut self, ctx: &mut Ctx<'_, Msg>, txn_id: Timestamp, ops: Vec<u32>) {
        let Some(txn) = self.current.as_mut() else {
            return;
        };
        if txn.id != txn_id {
            return;
        }
        let mut any = false;
        for op in ops {
            any |= txn.commit_waiting.remove(&op).is_some();
        }
        // A duplicate ack (batch retransmission) removes nothing and
        // must not re-run the phase transition.
        if any {
            self.after_commit_acks(ctx);
        }
    }

    /// Phase transition once the commit-wait set drains: RAMP moves from
    /// prepare to commit markers, 2PL unlocks, everyone else finishes.
    fn after_commit_acks(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let txn = self.current.as_mut().unwrap();
        if !txn.commit_waiting.is_empty() {
            return;
        }
        if self.config.protocol.is_ramp() && !txn.ramp_committing {
            // RAMP phase 2: every prepare is acknowledged; send the
            // commit markers that make the writes visible.
            self.start_ramp_commit_phase(ctx);
        } else if self.config.protocol == ProtocolKind::TwoPhaseLocking {
            if txn.locks_validating {
                // Every read lock is confirmed still on its master's
                // table; now the writes may be published.
                txn.locks_validating = false;
                self.flush_twopl_writes(ctx);
            } else {
                self.unlock_and_finish(ctx, TxnOutcome::Committed);
            }
        } else {
            self.finish_txn(ctx, TxnOutcome::Committed);
        }
        // driver mode continues inside finish_txn
    }

    fn on_lock_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn_id: Timestamp,
        op: u32,
        floor: Timestamp,
    ) {
        if !self.matches_pending(txn_id, op) {
            return;
        }
        // Lamport-advance past the granted key's current version even if
        // this transaction never reads it: the commit stamp must dominate
        // every locked key's version, or a *blind* write could carry a
        // stamp that last-writer-wins orders behind the version it
        // overwrote, inverting the lock serialization order.
        self.tsgen.observe(floor);
        let txn = self.current.as_mut().unwrap();
        let pending = txn.pending.take().unwrap();
        let PendingKind::Lock {
            key,
            exclusive: _,
            then,
        } = pending.kind.clone()
        else {
            txn.pending = Some(pending);
            return;
        };
        txn.locks_held.push((key.clone(), pending.target));
        self.metrics
            .lock_latency_ms
            .record(ctx.now().since(pending.issued).as_millis_f64());
        self.trace_ev(
            ctx.now(),
            TraceEventKind::LockGrant {
                txn: self.trace_txn(),
                key: String::from_utf8_lossy(&key).into_owned(),
            },
        );
        match then {
            LockFollowup::Read => {
                // Read at the lock master (it has the authoritative copy).
                let issue_id = self.next_issue(ctx, 0);
                self.metrics.msg_rounds += 1;
                let txn = self.current.as_mut().unwrap();
                let op = txn.op_seq;
                txn.op_seq += 1;
                txn.pending = Some(PendingOp {
                    kind: PendingKind::Read { key: key.clone() },
                    op,
                    target: pending.target,
                    issued: ctx.now(),
                    issue_id,
                    attempts: 0,
                    write_value: None,
                    timeout_issue: 0,
                });
                ctx.send(
                    pending.target,
                    Msg::Get {
                        txn: txn.id,
                        op,
                        key,
                        required: Timestamp::INITIAL,
                    },
                );
            }
            LockFollowup::BufferWrite => {
                let value = pending
                    .write_value
                    .clone()
                    .expect("write lock carries value");
                let txn = self.current.as_mut().unwrap();
                Self::buffer_write(txn, key, value);
                self.metrics
                    .record_op(OpKind::Put, ctx.now().since(pending.issued));
                self.trace_ev(
                    ctx.now(),
                    TraceEventKind::OpEnd {
                        txn: self.trace_txn(),
                        kind: OpKind::Put,
                    },
                );
                self.step_plan(ctx);
            }
        }
    }

    /// Answer to a commit-time [`Msg::LockCheck`]. `ok` drains the
    /// validation set like a commit ack; `!ok` means the lock master
    /// crashed and lost this transaction's lock — the read set may
    /// already be overwritten by a freshly granted writer, so the
    /// transaction aborts instead of publishing write skew.
    fn on_lock_check_resp(&mut self, ctx: &mut Ctx<'_, Msg>, txn_id: Timestamp, op: u32, ok: bool) {
        let valid = self
            .current
            .as_ref()
            .map(|t| t.id == txn_id && t.locks_validating && t.commit_waiting.contains_key(&op))
            .unwrap_or(false);
        if !valid {
            return;
        }
        let txn = self.current.as_mut().unwrap();
        if !ok {
            txn.locks_validating = false;
            txn.commit_waiting.clear();
            txn.pending = None;
            self.release_locks(ctx);
            self.finish_txn(ctx, TxnOutcome::AbortedExternal);
            return;
        }
        txn.commit_waiting.remove(&op);
        self.after_commit_acks(ctx);
    }

    fn unlock_and_finish(&mut self, ctx: &mut Ctx<'_, Msg>, outcome: TxnOutcome) {
        self.release_locks(ctx);
        self.finish_txn(ctx, outcome);
    }

    // ---------------------------------------------------------------
    // Timers: retries, lock timeouts
    // ---------------------------------------------------------------

    /// Handles a timer (retry or lock timeout).
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if tag & LOCK_TIMEOUT_BIT != 0 {
            self.on_lock_timeout(ctx, tag & !LOCK_TIMEOUT_BIT);
        } else {
            self.on_retry_timer(ctx, tag);
        }
    }

    fn on_lock_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, issue_id: u64) {
        let waiting = self
            .current
            .as_ref()
            .and_then(|t| t.pending.as_ref())
            .map(|p| p.timeout_issue == issue_id && matches!(p.kind, PendingKind::Lock { .. }))
            .unwrap_or(false);
        if !waiting {
            return;
        }
        // External abort: give up the transaction, release held locks.
        let txn = self.current.as_mut().unwrap();
        txn.pending = None;
        self.release_locks(ctx);
        self.finish_txn(ctx, TxnOutcome::AbortedExternal);
    }

    fn on_retry_timer(&mut self, ctx: &mut Ctx<'_, Msg>, issue_id: u64) {
        let Some(txn) = self.current.as_mut() else {
            return;
        };
        // Retry the single pending op if it matches.
        let retry_pending = txn
            .pending
            .as_ref()
            .map(|p| p.issue_id == issue_id)
            .unwrap_or(false);
        if retry_pending {
            self.metrics.retries += 1;
            self.trace_ev(
                ctx.now(),
                TraceEventKind::OpRetry {
                    txn: self.trace_txn(),
                },
            );
            let txn = self.current.as_mut().unwrap();
            let mut pending = txn.pending.take().unwrap();
            let id = txn.id;
            // Scan retry: re-poll the servers that have not responded.
            if let PendingKind::Scan {
                prefix, waiting, ..
            } = &pending.kind
            {
                pending.attempts += 1;
                let issue_id = self.next_issue(ctx, pending.attempts);
                let (prefix, waiting) = (prefix.clone(), waiting.clone());
                let op = pending.op;
                let txn = self.current.as_mut().unwrap();
                pending.issue_id = issue_id;
                txn.pending = Some(pending);
                for s in waiting {
                    ctx.send(
                        s,
                        Msg::Scan {
                            txn: id,
                            op,
                            prefix: prefix.clone(),
                        },
                    );
                }
                return;
            }
            // Batch-read retry: re-send every outstanding sub-request
            // (both rounds), pinned to the original per-key replicas.
            if let PendingKind::RampBatch {
                pending_ts,
                pending_val,
                targets,
                ts_set,
                ..
            } = &pending.kind
            {
                pending.attempts += 1;
                let resend_ts: Vec<(u32, Key, NodeId)> = pending_ts
                    .iter()
                    .map(|(op, k)| (*op, k.clone(), targets[k]))
                    .collect();
                let resend_val: Vec<(u32, Key, NodeId)> = pending_val
                    .iter()
                    .map(|(op, k)| (*op, k.clone(), targets[k]))
                    .collect();
                let set = ts_set.clone();
                let issue_id = self.next_issue(ctx, pending.attempts);
                let txn = self.current.as_mut().unwrap();
                pending.issue_id = issue_id;
                txn.pending = Some(pending);
                for (op, key, target) in resend_ts {
                    ctx.send(target, Msg::GetTs { txn: id, op, key });
                }
                for (op, key, target) in resend_val {
                    ctx.send(
                        target,
                        Msg::GetVersion {
                            txn: id,
                            op,
                            key,
                            req: VersionReq::Among(set.clone()),
                        },
                    );
                }
                return;
            }
            // Non-sticky HAT clients retry elsewhere; sticky/master/2PL
            // retry the same target (and block under partition — §5.2).
            // RAMP second rounds stay pinned to the round-1 replica:
            // the repair names state that server exposed.
            let key_for_routing = match &pending.kind {
                PendingKind::Read { key }
                | PendingKind::WriteNow { key, .. }
                | PendingKind::RampTs { key }
                | PendingKind::RampVersion { key, .. }
                | PendingKind::Lock { key, .. } => key.clone(),
                PendingKind::Scan { prefix, .. } => prefix.clone(),
                PendingKind::RampBatch { .. } => unreachable!("handled above"),
            };
            let pinned = matches!(pending.kind, PendingKind::RampVersion { .. });
            if self.config.protocol.is_hat() && !self.session.sticky && !pinned {
                pending.target = self.pick_replica(ctx, &key_for_routing);
            }
            pending.attempts += 1;
            let issue_id = self.next_issue(ctx, pending.attempts);
            let target = pending.target;
            // Same helper as the initial send: the retried Get must
            // carry the full floor (txn `required` ∨ causal session
            // floor), or a Causal-session retry can read stale data.
            let retry_required = match &pending.kind {
                PendingKind::Read { key } => self.required_floor(key),
                _ => Timestamp::INITIAL,
            };
            let txn = self.current.as_mut().unwrap();
            pending.issue_id = issue_id;
            let msg = match &pending.kind {
                PendingKind::Read { key } => Msg::Get {
                    txn: id,
                    op: pending.op,
                    key: key.clone(),
                    required: retry_required,
                },
                PendingKind::Scan { .. } | PendingKind::RampBatch { .. } => {
                    unreachable!("handled above")
                }
                PendingKind::WriteNow { key, value } => Msg::Put {
                    txn: id,
                    op: pending.op,
                    key: key.clone(),
                    record: Record::new(txn.write_stamp.unwrap_or(id), value.clone()).into(),
                },
                PendingKind::RampTs { key } => Msg::GetTs {
                    txn: id,
                    op: pending.op,
                    key: key.clone(),
                },
                PendingKind::RampVersion { key, req, .. } => Msg::GetVersion {
                    txn: id,
                    op: pending.op,
                    key: key.clone(),
                    req: req.clone(),
                },
                PendingKind::Lock { key, exclusive, .. } => Msg::Lock {
                    txn: id,
                    op: pending.op,
                    key: key.clone(),
                    exclusive: *exclusive,
                },
            };
            txn.pending = Some(pending);
            ctx.send(target, msg);
            return;
        }
        // Commit-phase retry: resend all unacknowledged puts. Only the
        // live commit timer triggers this (stale per-op timers firing
        // during commit must not).
        if !txn.commit_waiting.is_empty() && txn.commit_issue == issue_id {
            self.metrics.retries += 1;
            let tid = self.trace_txn();
            self.trace_ev(ctx.now(), TraceEventKind::OpRetry { txn: tid });
            let txn = self.current.as_mut().unwrap();
            let id = txn.id;
            let ramp_phase2 = txn.ramp_committing;
            let validating = txn.locks_validating;
            txn.commit_attempts += 1;
            let attempts = txn.commit_attempts;
            let resend: Vec<(u32, Key, SharedRecord, NodeId)> = txn
                .commit_waiting
                .iter()
                .map(|(op, (k, r, target))| (*op, k.clone(), r.clone(), *target))
                .collect();
            let new_issue = self.next_issue(ctx, attempts);
            self.current.as_mut().unwrap().commit_issue = new_issue;
            if ramp_phase2 {
                // Phase-2 targets are pinned to where phase 1 prepared,
                // so a resend just re-groups the outstanding marks —
                // coalescing into batches exactly like the first send.
                let ts = resend
                    .first()
                    .map(|(_, _, r, _)| r.stamp)
                    .expect("non-empty commit_waiting");
                let marks = resend
                    .into_iter()
                    .map(|(op, key, _, target)| (op, key, target))
                    .collect();
                self.send_commit_marks(ctx, id, ts, marks);
                return;
            }
            if validating {
                // 2PL lock-validation phase: re-ask the lock masters,
                // never re-send writes (nothing is published yet).
                for (op, key, _, target) in resend {
                    ctx.send(target, Msg::LockCheck { txn: id, op, key });
                }
                return;
            }
            for (op, key, record, mut target) in resend {
                // RAMP commits are two-phase against fixed replicas
                // (phase 2 must land where phase 1 prepared), so they
                // never retry elsewhere — they block under partition,
                // like any sticky commit.
                if self.config.protocol.is_hat()
                    && !self.session.sticky
                    && !self.config.protocol.is_ramp()
                {
                    target = self.pick_replica(ctx, &key);
                    self.current
                        .as_mut()
                        .unwrap()
                        .commit_waiting
                        .insert(op, (key.clone(), record.clone(), target));
                }
                ctx.send(
                    target,
                    Msg::Put {
                        txn: id,
                        op,
                        key,
                        record,
                    },
                );
            }
        }
    }

    /// Driver-mode bootstrap, called by the node wrapper's `on_start`.
    pub fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.driver.is_some() {
            self.drive_next(ctx);
        }
    }
}

/// Wire bytes of a record's sibling (write-set) metadata — the quantity
/// Figure 4 plots and `exp_ramp` compares across engines.
fn sibling_bytes(record: &Record) -> u64 {
    record.siblings.iter().map(|s| 4 + s.len() as u64).sum()
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.id)
            .field("client_idx", &self.client_idx)
            .field("home", &self.home)
            .field("session", &self.session)
            .finish_non_exhaustive()
    }
}
