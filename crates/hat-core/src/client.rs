//! The HAT client: transaction execution, session guarantees, buffering.
//!
//! Clients implement the client-side algorithms of §5.1 and Appendix B:
//!
//! * **Write buffering** (Read Committed, §5.1.1): writes stay in a
//!   client-side buffer until commit, so no transaction ever reads
//!   another's uncommitted data.
//! * **Item cut isolation** (§5.1.1): a per-transaction read cache makes
//!   repeated reads of an item return the same value.
//! * **MAV `required` vectors** (§5.1.2): reads collect sibling
//!   timestamps and attach them as lower bounds on subsequent reads.
//! * **Session guarantees** (§5.1.3): a cross-transaction read/write
//!   cache plus stickiness yield read-your-writes and monotonic reads;
//!   with the MAV substrate this extends to causal-style sessions.
//! * **Stickiness** (§4.1): sticky clients always contact their home
//!   cluster's replica; non-sticky clients pick a random cluster per
//!   attempt (and retry elsewhere on failure — which is exactly how the
//!   read-your-writes impossibility of §5.1.3 manifests).
//!
//! A client is either driven externally (a [`crate::Frontend`] backend) or by
//! a [`TxnSource`] in a closed loop (one transaction completes, the next
//! begins — the YCSB harness of §6.3).

use crate::cluster::ClusterLayout;
use crate::config::{ProtocolKind, SystemConfig};
use crate::messages::Msg;
use crate::metrics::ClientMetrics;
use crate::timestamp::{Timestamp, TimestampGen};
use crate::txn::{Op, OpRecord, TxnOutcome, TxnRecord, TxnSpec};
use bytes::Bytes;
use hat_sim::{Ctx, NodeId, SimTime};
use hat_storage::{Key, Record};
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Supplies transaction plans to a closed-loop client.
pub trait TxnSource: Send {
    /// The next transaction to run, or `None` to stop.
    fn next_txn(&mut self, rng: &mut rand::rngs::StdRng) -> Option<TxnSpec>;
}

/// Client-side session guarantee level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SessionLevel {
    /// No client-side caching beyond per-transaction read-your-writes.
    #[default]
    None,
    /// Item cut isolation: repeated reads in a transaction return the
    /// same value (per-transaction cache, discarded at commit).
    ItemCut,
    /// Monotonic sessions: a cross-transaction cache of the newest
    /// version observed or written per item gives monotonic reads and
    /// read-your-writes (the client "acts as a server itself", §4.1).
    Monotonic,
    /// Causal sessions: [`SessionLevel::Monotonic`] plus a cross-
    /// transaction `required` vector over the MAV substrate; requires a
    /// sticky configuration (§5.1.3 proves stickiness is necessary).
    Causal,
}

/// Session configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOptions {
    /// Client-side guarantee level.
    pub level: SessionLevel,
    /// Sticky (home-cluster) routing vs any-replica routing.
    pub sticky: bool,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            level: SessionLevel::None,
            sticky: true,
        }
    }
}

/// What the single outstanding network round is waiting for.
#[derive(Debug, Clone, PartialEq)]
enum PendingKind {
    /// A `Get` for an item read.
    Read { key: Key },
    /// A `Scan` for a predicate read. Scans scatter-gather: data is
    /// hash-partitioned within a cluster, so every server of the target
    /// cluster is queried and the responses merged.
    Scan {
        prefix: Key,
        /// Servers that have not responded yet.
        waiting: Vec<NodeId>,
        /// Accumulated matches from servers that responded.
        acc: Vec<(Key, Record)>,
    },
    /// A `Put` issued at operation time (eventual / master / 2PL data
    /// writes at commit are tracked via `commit_waiting` instead).
    WriteNow { key: Key, value: Bytes },
    /// A 2PL `Lock`; on grant, `then` decides the follow-up.
    Lock {
        key: Key,
        exclusive: bool,
        then: LockFollowup,
    },
}

/// What to do once a 2PL lock is granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockFollowup {
    /// Issue the read at the lock master.
    Read,
    /// Just buffer the write (data moves at commit).
    BufferWrite,
}

#[derive(Debug, Clone, PartialEq)]
struct PendingOp {
    kind: PendingKind,
    op: u32,
    target: NodeId,
    issued: SimTime,
    issue_id: u64,
    /// Retries so far (drives exponential backoff).
    attempts: u32,
    /// Value carried for `Lock{then: BufferWrite}`.
    write_value: Option<Bytes>,
    /// Key of the 2PL lock-timeout timer (the deadlock breaker),
    /// fixed at first issue. Kept separate from `issue_id`, which
    /// rotates on every retry — keying the timeout to `issue_id`
    /// would silently disarm it after the first retry.
    timeout_issue: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Executing,
    Committing,
    Done(TxnOutcome),
}

#[derive(Debug)]
struct ActiveTxn {
    id: Timestamp,
    /// Stamp all of this transaction's writes carry. Assigned lazily at
    /// the first write so it Lamport-dominates every version the
    /// transaction has read by then (under locking this makes the
    /// last-writer-wins order agree with the serial order).
    write_stamp: Option<Timestamp>,
    started: SimTime,
    ops_done: Vec<OpRecord>,
    /// Buffered writes in program order (last write per key wins).
    write_buffer: Vec<(Key, Bytes)>,
    /// Per-transaction read cache (item cut isolation + per-txn RYW).
    /// Ordered map: iteration order must not depend on hash seeds, or
    /// fixed-seed runs diverge across processes.
    txn_cache: BTreeMap<Key, Record>,
    /// MAV `required` vector (Appendix B). Ordered for determinism.
    required: BTreeMap<Key, Timestamp>,
    phase: Phase,
    /// Remaining plan when driver-driven: `(spec, next_op_index)`.
    plan: Option<(TxnSpec, usize)>,
    op_seq: u32,
    pending: Option<PendingOp>,
    /// Commit phase: op ids of unacknowledged `Put`s and their payloads
    /// for retry. Ordered so commit-retry resend order is deterministic.
    commit_waiting: BTreeMap<u32, (Key, Record, NodeId)>,
    /// Commit-phase retries so far (drives exponential backoff).
    commit_attempts: u32,
    /// Issue id of the live commit retry timer (stale timers are
    /// ignored).
    commit_issue: u64,
    /// 2PL: lock masters holding our locks (for unlock).
    locks_held: Vec<(Key, NodeId)>,
}

/// The client actor.
pub struct Client {
    id: NodeId,
    client_idx: u32,
    home: usize,
    layout: Arc<ClusterLayout>,
    config: Arc<SystemConfig>,
    session: SessionOptions,
    tsgen: TimestampGen,
    session_seq: u64,
    /// Cross-transaction cache for Monotonic/Causal sessions. Ordered
    /// for deterministic folds.
    session_cache: BTreeMap<Key, Record>,
    /// Cross-transaction `required` floor for Causal sessions.
    causal_required: BTreeMap<Key, Timestamp>,
    current: Option<ActiveTxn>,
    /// Key/value pairs of the most recent scan response (facade access).
    last_scan: Vec<(Key, Bytes)>,
    /// Performance counters.
    pub metrics: ClientMetrics,
    records: Vec<TxnRecord>,
    driver: Option<Box<dyn TxnSource>>,
    issue_counter: u64,
}

/// Timer tag bit marking a 2PL lock timeout (vs a retry timer).
const LOCK_TIMEOUT_BIT: u64 = 1 << 63;

impl Client {
    /// Builds a client. `client_idx` is the unique writer id used in
    /// timestamps; `home` is the sticky home cluster.
    pub fn new(
        id: NodeId,
        client_idx: u32,
        home: usize,
        layout: Arc<ClusterLayout>,
        config: Arc<SystemConfig>,
        session: SessionOptions,
    ) -> Self {
        Client {
            id,
            client_idx,
            home,
            layout,
            config,
            session,
            tsgen: TimestampGen::new(client_idx),
            session_seq: 0,
            session_cache: BTreeMap::new(),
            causal_required: BTreeMap::new(),
            current: None,
            last_scan: Vec::new(),
            metrics: ClientMetrics::default(),
            records: Vec::new(),
            driver: None,
            issue_counter: 0,
        }
    }

    /// Installs a closed-loop transaction source (driver mode).
    pub fn with_driver(mut self, driver: Box<dyn TxnSource>) -> Self {
        self.driver = Some(driver);
        self
    }

    /// The session options this client currently runs with.
    pub fn session_options(&self) -> SessionOptions {
        self.session
    }

    /// Replaces the session options. Frontends call this when a
    /// [`crate::Session`] is opened over this client, so each session
    /// carries its own guarantee level and stickiness.
    ///
    /// # Panics
    /// Panics if a transaction is active (options may not change
    /// mid-transaction).
    pub fn set_session_options(&mut self, opts: SessionOptions) {
        assert!(
            self.current.is_none(),
            "cannot change session options mid-transaction"
        );
        self.session = opts;
    }

    /// The node id of this client.
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    /// The writer id used in this client's timestamps.
    pub fn client_idx(&self) -> u32 {
        self.client_idx
    }

    /// Recorded transaction histories (empty unless
    /// `config.record_history`).
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }

    /// Takes the recorded histories out of the client.
    pub fn take_records(&mut self) -> Vec<TxnRecord> {
        std::mem::take(&mut self.records)
    }

    // ---------------------------------------------------------------
    // Facade-facing state inspection
    // ---------------------------------------------------------------

    /// True while a network round (or commit) is outstanding.
    pub fn busy(&self) -> bool {
        match &self.current {
            None => false,
            Some(t) => t.pending.is_some() || !t.commit_waiting.is_empty(),
        }
    }

    /// The outcome of the current transaction once it finished.
    pub fn txn_outcome(&self) -> Option<TxnOutcome> {
        match &self.current {
            Some(ActiveTxn {
                phase: Phase::Done(o),
                ..
            }) => Some(*o),
            _ => None,
        }
    }

    /// The result of the last completed read/scan, as recorded ops.
    pub fn last_op(&self) -> Option<&OpRecord> {
        self.current.as_ref().and_then(|t| t.ops_done.last())
    }

    /// The last completed item read as the frontend-facing value
    /// (`None` for the initial `⊥` version or if the last op was not a
    /// read). Shared by every backend so the read mapping cannot
    /// diverge between them.
    pub fn last_read_value(&self) -> Option<Bytes> {
        match self.last_op() {
            Some(OpRecord::Read {
                observed, value, ..
            }) if !observed.is_initial() => Some(value.clone()),
            _ => None,
        }
    }

    /// Maps the finished transaction's outcome to the frontend-facing
    /// commit result. A missing outcome (the commit never resolved)
    /// abandons the transaction and reports unavailability. Shared by
    /// every backend so outcome reporting cannot diverge between them.
    pub fn commit_result(&mut self, ctx: &mut Ctx<'_, Msg>) -> Result<(), crate::error::HatError> {
        use crate::error::HatError;
        match self.txn_outcome() {
            Some(TxnOutcome::Committed) => Ok(()),
            Some(TxnOutcome::AbortedExternal) => Err(HatError::ExternalAbort {
                reason: "system abort during commit".into(),
            }),
            Some(TxnOutcome::AbortedInternal) => Err(HatError::InternalAbort {
                reason: "transaction aborted".into(),
            }),
            None => {
                self.abandon(ctx);
                Err(HatError::Unavailable { key: None })
            }
        }
    }

    /// If the transaction finished *during* an operation — a 2PL lock
    /// timeout externally aborts mid-op, for instance — the operation
    /// itself must fail, per the typed-API contract that aborts surface
    /// at the failing operation. `None` while the transaction is still
    /// executing (or after it committed).
    pub fn op_interrupted(&self) -> Option<crate::error::HatError> {
        use crate::error::HatError;
        match self.txn_outcome() {
            Some(TxnOutcome::AbortedExternal) => Some(HatError::ExternalAbort {
                reason: "system abort mid-operation".into(),
            }),
            Some(TxnOutcome::AbortedInternal) => Some(HatError::InternalAbort {
                reason: "transaction aborted".into(),
            }),
            _ => None,
        }
    }

    /// Key/value pairs of the most recent scan response.
    pub fn last_scan(&self) -> &[(Key, Bytes)] {
        &self.last_scan
    }

    // ---------------------------------------------------------------
    // Transaction lifecycle (called by the facade or the driver loop)
    // ---------------------------------------------------------------

    /// Begins a transaction.
    ///
    /// # Panics
    /// Panics if one is already active.
    pub fn begin(&mut self, now: SimTime) -> Timestamp {
        assert!(
            self.current.is_none(),
            "client {} already has an active transaction",
            self.id
        );
        let id = self.tsgen.next();
        self.current = Some(ActiveTxn {
            id,
            write_stamp: None,
            started: now,
            ops_done: Vec::new(),
            write_buffer: Vec::new(),
            txn_cache: BTreeMap::new(),
            required: BTreeMap::new(),
            phase: Phase::Executing,
            plan: None,
            op_seq: 0,
            pending: None,
            commit_waiting: BTreeMap::new(),
            commit_attempts: 0,
            commit_issue: 0,
            locks_held: Vec::new(),
        });
        id
    }

    /// Issues an item read. May complete immediately (buffered write /
    /// cache hit), in which case no network round happens.
    pub fn issue_read(&mut self, ctx: &mut Ctx<'_, Msg>, key: Key) {
        let txn = self.current.as_mut().expect("no active txn");
        assert!(txn.pending.is_none(), "one op at a time");
        // Per-transaction read-your-writes from the write buffer
        // (Appendix B client GET pseudocode).
        if let Some((_, v)) = txn.write_buffer.iter().rev().find(|(k, _)| *k == key) {
            let rec = OpRecord::Read {
                key,
                observed: txn.id,
                value: v.clone(),
            };
            txn.ops_done.push(rec);
            return;
        }
        // Item cut isolation: same-transaction repeat reads hit the cache.
        if matches!(
            self.session.level,
            SessionLevel::ItemCut | SessionLevel::Monotonic | SessionLevel::Causal
        ) {
            if let Some(cached) = txn.txn_cache.get(&key) {
                let rec = OpRecord::Read {
                    key,
                    observed: cached.stamp,
                    value: cached.value.clone(),
                };
                txn.ops_done.push(rec);
                return;
            }
        }
        if self.config.protocol == ProtocolKind::TwoPhaseLocking {
            self.issue_lock(ctx, key, false, LockFollowup::Read, None);
            return;
        }
        self.send_get(ctx, key);
    }

    /// Issues a predicate read over `prefix`, scatter-gathered over all
    /// servers of the chosen cluster (the keyspace is hash-partitioned,
    /// so any server holds only part of the prefix).
    pub fn issue_scan(&mut self, ctx: &mut Ctx<'_, Msg>, prefix: Key) {
        let txn = self.current.as_mut().expect("no active txn");
        assert!(txn.pending.is_none(), "one op at a time");
        let op = txn.op_seq;
        txn.op_seq += 1;
        let cluster = if self.session.sticky || !self.config.protocol.is_hat() {
            self.home
        } else {
            ctx.rng().gen_range(0..self.layout.num_clusters())
        };
        let servers: Vec<NodeId> = self.layout.servers[cluster].clone();
        let issue_id = self.next_issue(ctx, 0);
        let txn_state = self.current.as_mut().unwrap();
        txn_state.pending = Some(PendingOp {
            kind: PendingKind::Scan {
                prefix: prefix.clone(),
                waiting: servers.clone(),
                acc: Vec::new(),
            },
            op,
            target: servers[0],
            issued: ctx.now(),
            issue_id,
            attempts: 0,
            write_value: None,
            timeout_issue: 0,
        });
        let id = txn_state.id;
        for s in servers {
            ctx.send(
                s,
                Msg::Scan {
                    txn: id,
                    op,
                    prefix: prefix.clone(),
                },
            );
        }
    }

    /// Issues a write. Buffering protocols complete immediately;
    /// eventual/master send the write now; 2PL acquires the lock first.
    pub fn issue_write(&mut self, ctx: &mut Ctx<'_, Msg>, key: Key, value: Bytes) {
        let txn = self.current.as_mut().expect("no active txn");
        assert!(txn.pending.is_none(), "one op at a time");
        match self.config.protocol {
            ProtocolKind::ReadCommitted | ProtocolKind::Mav => {
                // Buffer until commit (Read Committed write buffering).
                Self::buffer_write(txn, key, value);
            }
            ProtocolKind::Eventual | ProtocolKind::Master => {
                // Visible before commit: Read Uncommitted semantics for
                // `eventual`; master applies at the key's master.
                let op = txn.op_seq;
                txn.op_seq += 1;
                let stamp = self.write_stamp();
                let record = Record::new(stamp, value.clone());
                let target = if self.config.protocol == ProtocolKind::Master {
                    self.layout.master(&key)
                } else {
                    self.pick_replica(ctx, &key)
                };
                let issue_id = self.next_issue(ctx, 0);
                let txn = self.current.as_mut().unwrap();
                Self::buffer_write(txn, key.clone(), value.clone());
                txn.pending = Some(PendingOp {
                    kind: PendingKind::WriteNow {
                        key: key.clone(),
                        value,
                    },
                    op,
                    target,
                    issued: ctx.now(),
                    issue_id,
                    attempts: 0,
                    write_value: None,
                    timeout_issue: 0,
                });
                ctx.send(
                    target,
                    Msg::Put {
                        txn: txn.id,
                        op,
                        key,
                        record,
                    },
                );
            }
            ProtocolKind::TwoPhaseLocking => {
                self.issue_lock(ctx, key, true, LockFollowup::BufferWrite, Some(value));
            }
        }
    }

    /// Starts commit. Buffering protocols flush the write buffer; 2PL
    /// flushes then unlocks; others finish immediately.
    pub fn start_commit(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let txn = self.current.as_mut().expect("no active txn");
        assert!(txn.pending.is_none(), "outstanding op at commit");
        txn.phase = Phase::Committing;
        match self.config.protocol {
            ProtocolKind::Eventual | ProtocolKind::Master => {
                self.finish_txn(ctx, TxnOutcome::Committed);
            }
            ProtocolKind::ReadCommitted | ProtocolKind::Mav => {
                let is_mav = self.config.protocol == ProtocolKind::Mav;
                let txn = self.current.as_mut().unwrap();
                if txn.write_buffer.is_empty() {
                    self.finish_txn(ctx, TxnOutcome::Committed);
                    return;
                }
                // Deduplicate: last value per key, preserving first-write
                // order; attach the sibling list for MAV.
                let mut keys: Vec<Key> = Vec::new();
                let mut values: BTreeMap<Key, Bytes> = BTreeMap::new();
                for (k, v) in &txn.write_buffer {
                    if !keys.contains(k) {
                        keys.push(k.clone());
                    }
                    values.insert(k.clone(), v.clone());
                }
                let siblings = if is_mav { keys.clone() } else { Vec::new() };
                let id = self.write_stamp();
                let txn = self.current.as_mut().unwrap();
                let mut to_send = Vec::new();
                for k in &keys {
                    let record =
                        Record::with_siblings(id, values.remove(k).unwrap(), siblings.clone());
                    let op = txn.op_seq;
                    txn.op_seq += 1;
                    to_send.push((op, k.clone(), record));
                }
                let issue_id = self.next_issue(ctx, 0);
                self.current.as_mut().unwrap().commit_issue = issue_id;
                for (op, k, record) in to_send {
                    let target = self.pick_replica(ctx, &k);
                    let txn = self.current.as_mut().unwrap();
                    txn.commit_waiting
                        .insert(op, (k.clone(), record.clone(), target));
                    ctx.send(
                        target,
                        Msg::Put {
                            txn: txn.id,
                            op,
                            key: k,
                            record,
                        },
                    );
                }
                let _ = issue_id;
            }
            ProtocolKind::TwoPhaseLocking => {
                let txn = self.current.as_mut().unwrap();
                if txn.write_buffer.is_empty() {
                    self.unlock_and_finish(ctx, TxnOutcome::Committed);
                    return;
                }
                let id = self.write_stamp();
                let txn = self.current.as_mut().unwrap();
                let mut to_send = Vec::new();
                let mut keys: Vec<Key> = Vec::new();
                let mut values: BTreeMap<Key, Bytes> = BTreeMap::new();
                for (k, v) in &txn.write_buffer {
                    if !keys.contains(k) {
                        keys.push(k.clone());
                    }
                    values.insert(k.clone(), v.clone());
                }
                for k in &keys {
                    let record = Record::new(id, values.remove(k).unwrap());
                    let op = txn.op_seq;
                    txn.op_seq += 1;
                    to_send.push((op, k.clone(), record));
                }
                let issue_id = self.next_issue(ctx, 0);
                self.current.as_mut().unwrap().commit_issue = issue_id;
                for (op, k, record) in to_send {
                    let target = self.layout.master(&k);
                    let txn = self.current.as_mut().unwrap();
                    txn.commit_waiting
                        .insert(op, (k.clone(), record.clone(), target));
                    ctx.send(
                        target,
                        Msg::Put {
                            txn: txn.id,
                            op,
                            key: k,
                            record,
                        },
                    );
                }
            }
        }
    }

    /// Aborts the current transaction (internal abort): drops the buffer,
    /// releases any 2PL locks.
    pub fn abort(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let txn = self.current.as_mut().expect("no active txn");
        txn.pending = None;
        txn.commit_waiting.clear();
        self.release_locks(ctx);
        self.finish_txn(ctx, TxnOutcome::AbortedInternal);
    }

    // ---------------------------------------------------------------
    // Internals
    // ---------------------------------------------------------------

    fn buffer_write(txn: &mut ActiveTxn, key: Key, value: Bytes) {
        txn.write_buffer.push((key.clone(), value.clone()));
        txn.ops_done.push(OpRecord::Write { key, value });
    }

    /// The stamp this transaction's writes carry, assigned on first use
    /// from the Lamport-advancing generator.
    fn write_stamp(&mut self) -> Timestamp {
        let txn = self.current.as_mut().expect("no active txn");
        if let Some(ts) = txn.write_stamp {
            return ts;
        }
        let ts = self.tsgen.next();
        self.current.as_mut().unwrap().write_stamp = Some(ts);
        ts
    }

    /// Allocates an issue id and schedules its retry timer according to
    /// the configured [`crate::RetryPolicy`] (exponential backoff by
    /// default — without backoff, a saturated server turns slow commits
    /// into a retry storm).
    fn next_issue(&mut self, ctx: &mut Ctx<'_, Msg>, attempts: u32) -> u64 {
        self.issue_counter += 1;
        let id = self.issue_counter;
        ctx.set_timer(self.config.retry.backoff(attempts), id);
        id
    }

    /// The `required` lower bound a `Get` for `key` must carry: the
    /// transaction's MAV `required` entry joined with the session's
    /// cross-transaction causal floor. Both the initial send and every
    /// retry must go through this — a retry that forgets the session
    /// floor can observe a causally stale version.
    fn required_floor(&self, key: &Key) -> Timestamp {
        let mut required = self
            .current
            .as_ref()
            .and_then(|t| t.required.get(key).copied())
            .unwrap_or(Timestamp::INITIAL);
        if self.session.level == SessionLevel::Causal {
            if let Some(&floor) = self.causal_required.get(key) {
                required = required.max(floor);
            }
        }
        required
    }

    /// Chooses the replica to contact for `key`.
    fn pick_replica(&mut self, ctx: &mut Ctx<'_, Msg>, key: &Key) -> NodeId {
        match self.config.protocol {
            ProtocolKind::Master => self.layout.master(key),
            ProtocolKind::TwoPhaseLocking => self.layout.master(key),
            _ if self.session.sticky => self.layout.replica_in_cluster(key, self.home),
            _ => {
                let c = ctx.rng().gen_range(0..self.layout.num_clusters());
                self.layout.replica_in_cluster(key, c)
            }
        }
    }

    fn send_get(&mut self, ctx: &mut Ctx<'_, Msg>, key: Key) {
        let target = self.pick_replica(ctx, &key);
        let issue_id = self.next_issue(ctx, 0);
        let required = self.required_floor(&key);
        let txn = self.current.as_mut().unwrap();
        let op = txn.op_seq;
        txn.op_seq += 1;
        txn.pending = Some(PendingOp {
            kind: PendingKind::Read { key: key.clone() },
            op,
            target,
            issued: ctx.now(),
            issue_id,
            attempts: 0,
            write_value: None,
            timeout_issue: 0,
        });
        ctx.send(
            target,
            Msg::Get {
                txn: txn.id,
                op,
                key,
                required,
            },
        );
    }

    fn issue_lock(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        exclusive: bool,
        then: LockFollowup,
        value: Option<Bytes>,
    ) {
        let target = self.layout.master(&key);
        let issue_id = self.next_issue(ctx, 0);
        // Lock timeout (deadlock breaker / unavailability bound).
        ctx.set_timer(self.config.lock_timeout, issue_id | LOCK_TIMEOUT_BIT);
        let txn = self.current.as_mut().unwrap();
        let op = txn.op_seq;
        txn.op_seq += 1;
        txn.pending = Some(PendingOp {
            kind: PendingKind::Lock {
                key: key.clone(),
                exclusive,
                then,
            },
            op,
            target,
            issued: ctx.now(),
            issue_id,
            attempts: 0,
            write_value: value,
            timeout_issue: issue_id,
        });
        ctx.send(
            target,
            Msg::Lock {
                txn: txn.id,
                op,
                key,
                exclusive,
            },
        );
    }

    fn release_locks(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(txn) = self.current.as_mut() else {
            return;
        };
        if txn.locks_held.is_empty() {
            return;
        }
        // Group keys per lock master (ordered: unlock send order must
        // not depend on hash seeds).
        let mut per_master: BTreeMap<NodeId, Vec<Key>> = BTreeMap::new();
        for (k, master) in txn.locks_held.drain(..) {
            per_master.entry(master).or_default().push(k);
        }
        let id = txn.id;
        for (master, keys) in per_master {
            ctx.send(master, Msg::Unlock { txn: id, keys });
        }
    }

    /// Completes the transaction: metrics, history, session state, and —
    /// in driver mode — the next plan.
    fn finish_txn(&mut self, ctx: &mut Ctx<'_, Msg>, outcome: TxnOutcome) {
        let mut txn = self.current.take().expect("no active txn");
        txn.phase = Phase::Done(outcome);
        // The stamp this txn's writes actually carried (read-only txns
        // keep their begin-time id).
        let stamp = txn.write_stamp.unwrap_or(txn.id);
        match outcome {
            TxnOutcome::Committed => {
                self.metrics.record_commit(txn.started, ctx.now());
                // Fold the transaction's observations into session state.
                if matches!(
                    self.session.level,
                    SessionLevel::Monotonic | SessionLevel::Causal
                ) {
                    for (k, r) in std::mem::take(&mut txn.txn_cache) {
                        let newer = self
                            .session_cache
                            .get(&k)
                            .map(|old| r.stamp > old.stamp)
                            .unwrap_or(true);
                        if newer {
                            self.session_cache.insert(k, r);
                        }
                    }
                    // Own writes become cached reads (read-your-writes).
                    for (k, v) in &txn.write_buffer {
                        self.session_cache
                            .insert(k.clone(), Record::new(stamp, v.clone()));
                    }
                }
                if self.session.level == SessionLevel::Causal {
                    for (k, ts) in std::mem::take(&mut txn.required) {
                        let e = self.causal_required.entry(k).or_insert(ts);
                        *e = (*e).max(ts);
                    }
                    for (k, _) in &txn.write_buffer {
                        let e = self.causal_required.entry(k.clone()).or_insert(stamp);
                        *e = (*e).max(stamp);
                    }
                }
            }
            TxnOutcome::AbortedExternal => self.metrics.aborted_external += 1,
            TxnOutcome::AbortedInternal => self.metrics.aborted_internal += 1,
        }
        if self.config.record_history {
            // Reads served from the write buffer were recorded with the
            // begin-time id; rewrite them to the actual write stamp.
            for op in &mut txn.ops_done {
                if let OpRecord::Read { observed, .. } = op {
                    if *observed == txn.id {
                        *observed = stamp;
                    }
                }
            }
            self.records.push(TxnRecord {
                id: stamp,
                session: self.client_idx,
                session_seq: self.session_seq,
                ops: std::mem::take(&mut txn.ops_done),
                outcome,
            });
        }
        self.session_seq += 1;
        // Keep the finished txn visible to the facade via txn_outcome();
        // driver mode immediately moves on.
        self.current = Some(txn);
        if self.driver.is_some() {
            self.current = None;
            self.drive_next(ctx);
        }
    }

    /// Clears a finished transaction (facade calls this after reading the
    /// outcome).
    pub fn clear_finished(&mut self) {
        if matches!(self.current.as_ref().map(|t| t.phase), Some(Phase::Done(_))) {
            self.current = None;
        }
    }

    /// Force-abandons the current transaction after the facade observed
    /// unavailability: outstanding requests are forgotten and the
    /// transaction counts as externally aborted. Responses that straggle
    /// in later are ignored (they no longer match a pending op).
    pub fn abandon(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.current.is_none() {
            return;
        }
        if matches!(self.current.as_ref().map(|t| t.phase), Some(Phase::Done(_))) {
            // already finished (and any locks released); nothing to record
            self.current = None;
            return;
        }
        // Release any 2PL locks still held before forgetting the
        // transaction — leaking them would wedge those keys for every
        // other session until the run ends.
        self.release_locks(ctx);
        let mut txn = self.current.take().expect("checked above");
        txn.pending = None;
        txn.commit_waiting.clear();
        self.metrics.aborted_external += 1;
        if self.config.record_history {
            self.records.push(TxnRecord {
                id: txn.write_stamp.unwrap_or(txn.id),
                session: self.client_idx,
                session_seq: self.session_seq,
                ops: std::mem::take(&mut txn.ops_done),
                outcome: TxnOutcome::AbortedExternal,
            });
        }
        self.session_seq += 1;
    }

    // ---------------------------------------------------------------
    // Driver (closed-loop) mode
    // ---------------------------------------------------------------

    /// Starts the closed loop (no-op unless a driver is installed).
    pub fn drive_next(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(driver) = self.driver.as_mut() else {
            return;
        };
        let Some(spec) = driver.next_txn(ctx.rng()) else {
            return;
        };
        self.begin(ctx.now());
        self.current.as_mut().unwrap().plan = Some((spec, 0));
        self.step_plan(ctx);
    }

    /// Executes plan operations until one goes async or the plan ends.
    fn step_plan(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            let Some(txn) = self.current.as_mut() else {
                return;
            };
            if txn.pending.is_some() || !txn.commit_waiting.is_empty() {
                return;
            }
            let Some((spec, idx)) = txn.plan.as_mut() else {
                return;
            };
            if *idx >= spec.ops.len() {
                if txn.phase == Phase::Executing {
                    self.start_commit(ctx);
                    // eventual/master finish synchronously; others wait
                    if self.current.is_none()
                        || self.current.as_ref().unwrap().phase == Phase::Executing
                    {
                        continue;
                    }
                }
                return;
            }
            let op = spec.ops[*idx].clone();
            *idx += 1;
            match op {
                Op::Read(k) => self.issue_read(ctx, k),
                Op::Write(k, v) => self.issue_write(ctx, k, v),
                Op::PredicateRead(p) => self.issue_scan(ctx, p),
            }
        }
    }

    // ---------------------------------------------------------------
    // Message handling
    // ---------------------------------------------------------------

    /// Handles a message addressed to this client.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::GetResp { txn, op, found } => self.on_get_resp(ctx, txn, op, found),
            Msg::ScanResp { txn, op, matches } => self.on_scan_resp(ctx, from, txn, op, matches),
            Msg::PutResp { txn, op } => self.on_put_resp(ctx, txn, op),
            Msg::LockResp { txn, op } => self.on_lock_resp(ctx, txn, op),
            _ => {} // stray server traffic: ignore
        }
    }

    fn matches_pending(&self, txn: Timestamp, op: u32) -> bool {
        self.current
            .as_ref()
            .and_then(|t| t.pending.as_ref().map(|p| (t.id, p.op)))
            .map(|(id, pop)| id == txn && pop == op)
            .unwrap_or(false)
    }

    fn on_get_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn_id: Timestamp,
        op: u32,
        found: Option<Record>,
    ) {
        if !self.matches_pending(txn_id, op) {
            return; // stale (retried or finished)
        }
        let level = self.session.level;
        let txn = self.current.as_mut().unwrap();
        let pending = txn.pending.take().unwrap();
        let PendingKind::Read { key } = pending.kind else {
            txn.pending = Some(pending);
            return;
        };
        self.metrics.record_op(ctx.now().since(pending.issued));
        let txn = self.current.as_mut().unwrap();

        let mut record = found.unwrap_or_else(|| Record::new(Timestamp::INITIAL, Bytes::new()));
        // Lamport: later writes must dominate what we observed.
        self.tsgen.observe(record.stamp);
        // Monotonic/Causal sessions: never observe something older than
        // the session cache (the client "acts as a server itself").
        if matches!(level, SessionLevel::Monotonic | SessionLevel::Causal) {
            if let Some(cached) = self.session_cache.get(&key) {
                if cached.stamp > record.stamp {
                    record = cached.clone();
                }
            }
        }
        // MAV: fold the response's sibling list into the required vector
        // (Appendix B client GET).
        if self.config.protocol == ProtocolKind::Mav {
            for sib in &record.siblings {
                let e = txn.required.entry(sib.clone()).or_insert(record.stamp);
                *e = (*e).max(record.stamp);
            }
        }
        txn.txn_cache.insert(key.clone(), record.clone());
        txn.ops_done.push(OpRecord::Read {
            key,
            observed: record.stamp,
            value: record.value,
        });
        self.step_plan(ctx);
    }

    fn on_scan_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn_id: Timestamp,
        op: u32,
        matches: Vec<(Key, Record)>,
    ) {
        if !self.matches_pending(txn_id, op) {
            return;
        }
        let txn = self.current.as_mut().unwrap();
        let pending = txn.pending.as_mut().unwrap();
        let PendingKind::Scan { waiting, acc, .. } = &mut pending.kind else {
            return;
        };
        // One response per server; ignore duplicates from retries.
        let Some(pos) = waiting.iter().position(|&s| s == from) else {
            return;
        };
        waiting.swap_remove(pos);
        acc.extend(matches);
        if !waiting.is_empty() {
            return; // gather continues
        }
        let pending = txn.pending.take().unwrap();
        let PendingKind::Scan {
            prefix, mut acc, ..
        } = pending.kind
        else {
            unreachable!("checked above");
        };
        acc.sort_by(|a, b| a.0.cmp(&b.0));
        self.metrics.record_op(ctx.now().since(pending.issued));
        for (_, r) in &acc {
            self.tsgen.observe(r.stamp);
        }
        self.last_scan = acc
            .iter()
            .map(|(k, r)| (k.clone(), r.value.clone()))
            .collect();
        let txn = self.current.as_mut().unwrap();
        for (k, r) in &acc {
            txn.txn_cache.insert(k.clone(), r.clone());
        }
        txn.ops_done.push(OpRecord::PredicateRead {
            prefix,
            matches: acc.iter().map(|(k, r)| (k.clone(), r.stamp)).collect(),
        });
        self.step_plan(ctx);
    }

    fn on_put_resp(&mut self, ctx: &mut Ctx<'_, Msg>, txn_id: Timestamp, op: u32) {
        // Commit-phase ack?
        let is_commit_ack = self
            .current
            .as_ref()
            .map(|t| t.id == txn_id && t.commit_waiting.contains_key(&op))
            .unwrap_or(false);
        if is_commit_ack {
            let txn = self.current.as_mut().unwrap();
            txn.commit_waiting.remove(&op);
            if txn.commit_waiting.is_empty() {
                if self.config.protocol == ProtocolKind::TwoPhaseLocking {
                    self.unlock_and_finish(ctx, TxnOutcome::Committed);
                } else {
                    self.finish_txn(ctx, TxnOutcome::Committed);
                }
                // driver mode continues inside finish_txn
            }
            return;
        }
        // Operation-time write ack (eventual / master).
        if self.matches_pending(txn_id, op) {
            let txn = self.current.as_mut().unwrap();
            let pending = txn.pending.take().unwrap();
            if !matches!(pending.kind, PendingKind::WriteNow { .. }) {
                txn.pending = Some(pending);
                return;
            }
            self.metrics.record_op(ctx.now().since(pending.issued));
            self.step_plan(ctx);
        }
    }

    fn on_lock_resp(&mut self, ctx: &mut Ctx<'_, Msg>, txn_id: Timestamp, op: u32) {
        if !self.matches_pending(txn_id, op) {
            return;
        }
        let txn = self.current.as_mut().unwrap();
        let pending = txn.pending.take().unwrap();
        let PendingKind::Lock {
            key,
            exclusive: _,
            then,
        } = pending.kind.clone()
        else {
            txn.pending = Some(pending);
            return;
        };
        txn.locks_held.push((key.clone(), pending.target));
        match then {
            LockFollowup::Read => {
                // Read at the lock master (it has the authoritative copy).
                let issue_id = self.next_issue(ctx, 0);
                let txn = self.current.as_mut().unwrap();
                let op = txn.op_seq;
                txn.op_seq += 1;
                txn.pending = Some(PendingOp {
                    kind: PendingKind::Read { key: key.clone() },
                    op,
                    target: pending.target,
                    issued: ctx.now(),
                    issue_id,
                    attempts: 0,
                    write_value: None,
                    timeout_issue: 0,
                });
                ctx.send(
                    pending.target,
                    Msg::Get {
                        txn: txn.id,
                        op,
                        key,
                        required: Timestamp::INITIAL,
                    },
                );
            }
            LockFollowup::BufferWrite => {
                let value = pending
                    .write_value
                    .clone()
                    .expect("write lock carries value");
                let txn = self.current.as_mut().unwrap();
                Self::buffer_write(txn, key, value);
                self.metrics.record_op(ctx.now().since(pending.issued));
                self.step_plan(ctx);
            }
        }
    }

    fn unlock_and_finish(&mut self, ctx: &mut Ctx<'_, Msg>, outcome: TxnOutcome) {
        self.release_locks(ctx);
        self.finish_txn(ctx, outcome);
    }

    // ---------------------------------------------------------------
    // Timers: retries, lock timeouts
    // ---------------------------------------------------------------

    /// Handles a timer (retry or lock timeout).
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if tag & LOCK_TIMEOUT_BIT != 0 {
            self.on_lock_timeout(ctx, tag & !LOCK_TIMEOUT_BIT);
        } else {
            self.on_retry_timer(ctx, tag);
        }
    }

    fn on_lock_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, issue_id: u64) {
        let waiting = self
            .current
            .as_ref()
            .and_then(|t| t.pending.as_ref())
            .map(|p| p.timeout_issue == issue_id && matches!(p.kind, PendingKind::Lock { .. }))
            .unwrap_or(false);
        if !waiting {
            return;
        }
        // External abort: give up the transaction, release held locks.
        let txn = self.current.as_mut().unwrap();
        txn.pending = None;
        self.release_locks(ctx);
        self.finish_txn(ctx, TxnOutcome::AbortedExternal);
    }

    fn on_retry_timer(&mut self, ctx: &mut Ctx<'_, Msg>, issue_id: u64) {
        let Some(txn) = self.current.as_mut() else {
            return;
        };
        // Retry the single pending op if it matches.
        let retry_pending = txn
            .pending
            .as_ref()
            .map(|p| p.issue_id == issue_id)
            .unwrap_or(false);
        if retry_pending {
            self.metrics.retries += 1;
            let txn = self.current.as_mut().unwrap();
            let mut pending = txn.pending.take().unwrap();
            let id = txn.id;
            // Scan retry: re-poll the servers that have not responded.
            if let PendingKind::Scan {
                prefix, waiting, ..
            } = &pending.kind
            {
                pending.attempts += 1;
                let issue_id = self.next_issue(ctx, pending.attempts);
                let (prefix, waiting) = (prefix.clone(), waiting.clone());
                let op = pending.op;
                let txn = self.current.as_mut().unwrap();
                pending.issue_id = issue_id;
                txn.pending = Some(pending);
                for s in waiting {
                    ctx.send(
                        s,
                        Msg::Scan {
                            txn: id,
                            op,
                            prefix: prefix.clone(),
                        },
                    );
                }
                return;
            }
            // Non-sticky HAT clients retry elsewhere; sticky/master/2PL
            // retry the same target (and block under partition — §5.2).
            let key_for_routing = match &pending.kind {
                PendingKind::Read { key }
                | PendingKind::WriteNow { key, .. }
                | PendingKind::Lock { key, .. } => key.clone(),
                PendingKind::Scan { prefix, .. } => prefix.clone(),
            };
            if self.config.protocol.is_hat() && !self.session.sticky {
                pending.target = self.pick_replica(ctx, &key_for_routing);
            }
            pending.attempts += 1;
            let issue_id = self.next_issue(ctx, pending.attempts);
            let target = pending.target;
            // Same helper as the initial send: the retried Get must
            // carry the full floor (txn `required` ∨ causal session
            // floor), or a Causal-session retry can read stale data.
            let retry_required = match &pending.kind {
                PendingKind::Read { key } => self.required_floor(key),
                _ => Timestamp::INITIAL,
            };
            let txn = self.current.as_mut().unwrap();
            pending.issue_id = issue_id;
            let msg = match &pending.kind {
                PendingKind::Read { key } => Msg::Get {
                    txn: id,
                    op: pending.op,
                    key: key.clone(),
                    required: retry_required,
                },
                PendingKind::Scan { .. } => unreachable!("handled above"),
                PendingKind::WriteNow { key, value } => Msg::Put {
                    txn: id,
                    op: pending.op,
                    key: key.clone(),
                    record: Record::new(txn.write_stamp.unwrap_or(id), value.clone()),
                },
                PendingKind::Lock { key, exclusive, .. } => Msg::Lock {
                    txn: id,
                    op: pending.op,
                    key: key.clone(),
                    exclusive: *exclusive,
                },
            };
            txn.pending = Some(pending);
            ctx.send(target, msg);
            return;
        }
        // Commit-phase retry: resend all unacknowledged puts. Only the
        // live commit timer triggers this (stale per-op timers firing
        // during commit must not).
        if !txn.commit_waiting.is_empty() && txn.commit_issue == issue_id {
            self.metrics.retries += 1;
            let id = txn.id;
            txn.commit_attempts += 1;
            let attempts = txn.commit_attempts;
            let resend: Vec<(u32, Key, Record, NodeId)> = txn
                .commit_waiting
                .iter()
                .map(|(op, (k, r, target))| (*op, k.clone(), r.clone(), *target))
                .collect();
            let new_issue = self.next_issue(ctx, attempts);
            self.current.as_mut().unwrap().commit_issue = new_issue;
            for (op, key, record, mut target) in resend {
                if self.config.protocol.is_hat() && !self.session.sticky {
                    target = self.pick_replica(ctx, &key);
                    self.current
                        .as_mut()
                        .unwrap()
                        .commit_waiting
                        .insert(op, (key.clone(), record.clone(), target));
                }
                ctx.send(
                    target,
                    Msg::Put {
                        txn: id,
                        op,
                        key,
                        record,
                    },
                );
            }
        }
    }

    /// Driver-mode bootstrap, called by the node wrapper's `on_start`.
    pub fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.driver.is_some() {
            self.drive_next(ctx);
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.id)
            .field("client_idx", &self.client_idx)
            .field("home", &self.home)
            .field("session", &self.session)
            .finish_non_exhaustive()
    }
}
