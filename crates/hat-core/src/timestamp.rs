//! Transaction timestamps.
//!
//! §5.1.1: Read Uncommitted "is easily achieved by marking each of a
//! transaction's writes with the same timestamp (unique across
//! transactions; e.g., combining a client's ID with a sequence number)".
//! The storage layer's [`VersionStamp`](hat_storage::VersionStamp) is exactly that encoding, so we
//! reuse it as the transaction timestamp type.

pub use hat_storage::VersionStamp as Timestamp;

/// Per-client timestamp generator: a monotonically increasing sequence
/// number paired with the client's id.
#[derive(Debug, Clone)]
pub struct TimestampGen {
    client: u32,
    next_seq: u64,
}

impl TimestampGen {
    /// A generator for client `client`. Sequence numbers start at 1
    /// because `seq == 0` is reserved for the initial `⊥` version.
    pub fn new(client: u32) -> Self {
        TimestampGen {
            client,
            next_seq: 1,
        }
    }

    /// Issues the next timestamp.
    // Not an Iterator: the generator is infinite and `observe` mutates
    // the sequence, so the familiar generator-style name stays.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Timestamp {
        let ts = Timestamp::new(self.next_seq, self.client);
        self.next_seq += 1;
        ts
    }

    /// Lamport-advances the generator past an observed stamp, so that
    /// versions written after a read sort above the version read. This
    /// is what makes the last-writer-wins order agree with the serial
    /// order under locking protocols, and respect read-from causality
    /// under the HAT protocols.
    pub fn observe(&mut self, observed: Timestamp) {
        if observed.seq >= self.next_seq {
            self.next_seq = observed.seq + 1;
        }
    }

    /// The client id this generator stamps with.
    pub fn client(&self) -> u32 {
        self.client
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_unique_per_client() {
        let mut g = TimestampGen::new(3);
        let a = g.next();
        let b = g.next();
        assert!(a < b);
        assert_eq!(a.writer, 3);
        assert!(a.seq >= 1, "seq 0 is reserved for the initial version");
    }

    #[test]
    fn observe_advances_past_seen_stamps() {
        let mut g = TimestampGen::new(1);
        g.observe(Timestamp::new(10, 2));
        let t = g.next();
        assert!(t > Timestamp::new(10, 2), "writes after reads sort later");
        // observing something older is a no-op
        g.observe(Timestamp::new(3, 7));
        assert!(g.next() > t);
    }

    #[test]
    fn cross_client_uniqueness() {
        let mut g1 = TimestampGen::new(1);
        let mut g2 = TimestampGen::new(2);
        let a = g1.next();
        let b = g2.next();
        assert_ne!(a, b, "same seq, different writer");
        assert!(a < b, "writer id breaks the tie deterministically");
    }
}
