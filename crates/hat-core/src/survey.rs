//! The ACID-in-the-wild isolation survey (Table 2).
//!
//! §3: "we recently surveyed the default and maximum isolation guarantees
//! provided by 18 databases, often claiming to provide 'ACID' or
//! 'NewSQL' functionality ... only three out of 18 databases provided
//! serializability by default, and eight did not provide serializability
//! as an option at all." The dataset is reproduced verbatim (as of
//! January 2013, from the paper's reference \[8\]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Isolation levels appearing in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsolationLevel {
    /// RC — read committed.
    ReadCommitted,
    /// RR — repeatable read.
    RepeatableRead,
    /// SI — snapshot isolation.
    SnapshotIsolation,
    /// S — serializability.
    Serializability,
    /// CS — cursor stability.
    CursorStability,
    /// CR — consistent read.
    ConsistentRead,
    /// The level depends on configuration ("Depends" in the paper).
    Depends,
}

impl IsolationLevel {
    /// Table 2's abbreviation.
    pub fn code(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "RC",
            IsolationLevel::RepeatableRead => "RR",
            IsolationLevel::SnapshotIsolation => "SI",
            IsolationLevel::Serializability => "S",
            IsolationLevel::CursorStability => "CS",
            IsolationLevel::ConsistentRead => "CR",
            IsolationLevel::Depends => "Depends",
        }
    }
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One surveyed database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurveyEntry {
    /// Product name and version as printed in Table 2.
    pub database: &'static str,
    /// Default isolation level.
    pub default: IsolationLevel,
    /// Maximum available isolation level.
    pub maximum: IsolationLevel,
}

use IsolationLevel::*;

/// Table 2, verbatim.
pub const SURVEY: [SurveyEntry; 18] = [
    SurveyEntry {
        database: "Actian Ingres 10.0/10S",
        default: Serializability,
        maximum: Serializability,
    },
    SurveyEntry {
        database: "Aerospike",
        default: ReadCommitted,
        maximum: ReadCommitted,
    },
    SurveyEntry {
        database: "Akiban Persistit",
        default: SnapshotIsolation,
        maximum: SnapshotIsolation,
    },
    SurveyEntry {
        database: "Clustrix CLX 4100",
        default: RepeatableRead,
        maximum: RepeatableRead,
    },
    SurveyEntry {
        database: "Greenplum 4.1",
        default: ReadCommitted,
        maximum: Serializability,
    },
    SurveyEntry {
        database: "IBM DB2 10 for z/OS",
        default: CursorStability,
        maximum: Serializability,
    },
    SurveyEntry {
        database: "IBM Informix 11.50",
        default: Depends,
        maximum: Serializability,
    },
    SurveyEntry {
        database: "MySQL 5.6",
        default: RepeatableRead,
        maximum: Serializability,
    },
    SurveyEntry {
        database: "MemSQL 1b",
        default: ReadCommitted,
        maximum: ReadCommitted,
    },
    SurveyEntry {
        database: "MS SQL Server 2012",
        default: ReadCommitted,
        maximum: Serializability,
    },
    SurveyEntry {
        database: "NuoDB",
        default: ConsistentRead,
        maximum: ConsistentRead,
    },
    SurveyEntry {
        database: "Oracle 11g",
        default: ReadCommitted,
        maximum: SnapshotIsolation,
    },
    SurveyEntry {
        database: "Oracle Berkeley DB",
        default: Serializability,
        maximum: Serializability,
    },
    SurveyEntry {
        database: "Oracle Berkeley DB JE",
        default: RepeatableRead,
        maximum: Serializability,
    },
    SurveyEntry {
        database: "Postgres 9.2.2",
        default: ReadCommitted,
        maximum: Serializability,
    },
    SurveyEntry {
        database: "SAP HANA",
        default: ReadCommitted,
        maximum: SnapshotIsolation,
    },
    SurveyEntry {
        database: "ScaleDB 1.02",
        default: ReadCommitted,
        maximum: ReadCommitted,
    },
    SurveyEntry {
        database: "VoltDB",
        default: Serializability,
        maximum: Serializability,
    },
];

/// Summary statistics over the survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurveyStats {
    /// Databases surveyed.
    pub total: usize,
    /// Serializable by default.
    pub serializable_by_default: usize,
    /// Serializability not offered at all.
    pub no_serializability_option: usize,
    /// Read Committed (or weaker) by default.
    pub weak_default: usize,
}

/// Computes the headline numbers quoted in §3.
pub fn stats() -> SurveyStats {
    let serializable_by_default = SURVEY
        .iter()
        .filter(|e| e.default == Serializability)
        .count();
    let no_serializability_option = SURVEY
        .iter()
        .filter(|e| e.maximum != Serializability)
        .count();
    let weak_default = SURVEY
        .iter()
        .filter(|e| matches!(e.default, ReadCommitted | CursorStability | ConsistentRead))
        .count();
    SurveyStats {
        total: SURVEY.len(),
        serializable_by_default,
        no_serializability_option,
        weak_default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_match_the_paper() {
        let s = stats();
        assert_eq!(s.total, 18);
        assert_eq!(
            s.serializable_by_default, 3,
            "three of 18 serializable by default"
        );
        assert_eq!(
            s.no_serializability_option, 8,
            "eight did not provide serializability as an option at all"
        );
    }

    #[test]
    fn specific_rows() {
        let oracle = SURVEY.iter().find(|e| e.database == "Oracle 11g").unwrap();
        assert_eq!(oracle.default, IsolationLevel::ReadCommitted);
        assert_eq!(oracle.maximum, IsolationLevel::SnapshotIsolation);
        let mysql = SURVEY.iter().find(|e| e.database == "MySQL 5.6").unwrap();
        assert_eq!(mysql.default, IsolationLevel::RepeatableRead);
    }

    #[test]
    fn codes_round_trip() {
        assert_eq!(IsolationLevel::SnapshotIsolation.to_string(), "SI");
        assert_eq!(IsolationLevel::Depends.code(), "Depends");
    }
}
