//! The backend-agnostic transaction surface: [`Frontend`], [`Session`]
//! and the typed [`TxnCtx`].
//!
//! The paper's central claim is that HAT guarantees are *client-side*
//! properties: they come from write buffering, `required` vectors and
//! session caches (§5.1), not from any particular deployment substrate.
//! This module makes that claim structural. One [`Frontend`] trait is the
//! whole interactive API — open sessions, run transactions, let time
//! pass, quiesce replication, collect metrics and histories — and it is
//! implemented by two interchangeable backends:
//!
//! * [`crate::SimFrontend`] — the deterministic discrete-event simulator
//!   (built by [`crate::DeploymentBuilder::build`]);
//! * `hat_runtime::RuntimeFrontend` — one OS thread per node with real
//!   channels (built by `build_threaded` from `hat-runtime`).
//!
//! The conformance suite runs the *same* scripts through both.
//!
//! ## Sessions and their knobs (§4.1, §5.1.3)
//!
//! A [`Session`] owns its own [`SessionOptions`], so a single deployment
//! can mix, say, a sticky causal client with a non-sticky
//! no-guarantee client — the exact contrast §5.1.3 draws when proving
//! read-your-writes requires stickiness:
//!
//! | knob | paper section | effect |
//! |---|---|---|
//! | [`SessionOptions::sticky`] | §4.1 sticky availability | route every request to the home cluster vs any replica |
//! | [`SessionLevel::ItemCut`](crate::SessionLevel::ItemCut) | §5.1.1 Item Cut Isolation | per-transaction read cache (repeat reads identical) |
//! | [`SessionLevel::Monotonic`](crate::SessionLevel::Monotonic) | §5.1.3 session guarantees | cross-transaction cache: monotonic reads + read-your-writes |
//! | [`SessionLevel::Causal`](crate::SessionLevel::Causal) | §5.1.3 / §5.1.2 | monotonic plus a cross-transaction `required` floor over MAV |
//!
//! ## Typed operations
//!
//! [`TxnCtx::get`]/[`TxnCtx::put`]/[`TxnCtx::scan`] return
//! `Result<_, HatError>`: an unavailable replica or a system abort
//! surfaces at the failing operation (usable with `?`), instead of the
//! old facade's silent no-ops after failure. The closure's own `Err`
//! return aborts the transaction.

use crate::client::SessionOptions;
use crate::error::HatError;
use crate::metrics::ClientMetrics;
use crate::txn::TxnRecord;
use bytes::Bytes;
use hat_sim::{NodeId, SimDuration};
use hat_storage::Key;

/// A handle to one client session of a deployment, carrying its own
/// [`SessionOptions`] (per-session, not per-deployment). Obtained from
/// [`Frontend::open_session`]; pass it back to the same frontend's
/// transaction methods.
#[derive(Debug, Clone)]
pub struct Session {
    idx: u32,
    node: NodeId,
    opts: SessionOptions,
}

impl Session {
    /// Builds a handle; crate-internal — sessions are minted by
    /// frontends.
    pub(crate) fn new(idx: u32, node: NodeId, opts: SessionOptions) -> Self {
        Session { idx, node, opts }
    }

    /// Builds a handle from raw parts, for external [`Frontend`]
    /// implementations (e.g. the threaded runtime).
    pub fn from_parts(idx: u32, node: NodeId, opts: SessionOptions) -> Self {
        Session { idx, node, opts }
    }

    /// The session's index within its deployment (0-based open order).
    pub fn index(&self) -> u32 {
        self.idx
    }

    /// The node id of the client actor backing this session.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The options this session was opened with.
    pub fn options(&self) -> SessionOptions {
        self.opts
    }

    /// Sugar for [`Frontend::txn`]: `session.txn(&mut front, |t| …)`.
    pub fn txn<F, R>(
        &self,
        front: &mut F,
        f: impl FnOnce(&mut TxnCtx<'_>) -> Result<R, HatError>,
    ) -> R
    where
        F: Frontend,
    {
        front.txn(self, f)
    }
}

/// The low-level per-operation SPI a backend implements so the shared
/// transaction driver ([`drive_txn`]) can run closures against it. Kept
/// object-safe: [`TxnCtx`] holds it as `&mut dyn TxnBackend`.
///
/// Implementations: the simulator steps virtual time until the client
/// actor's network round resolves; the threaded runtime sends a command
/// into the client's event loop and blocks on the reply channel.
pub trait TxnBackend {
    /// Starts a transaction on `session` (clears any finished one).
    fn begin(&mut self, session: &Session) -> Result<(), HatError>;
    /// Executes an item read. `Ok(None)` is the initial `⊥` version.
    fn exec_get(&mut self, session: &Session, key: Key) -> Result<Option<Bytes>, HatError>;
    /// Executes a one-shot multi-key read, returning one value per key
    /// in request order. The default runs the keys sequentially;
    /// backends override it for protocols with a native batch read
    /// (RAMP-Small's `GET_ALL`, whose atomicity guarantee holds exactly
    /// when the read set is fetched as one batch).
    #[allow(clippy::type_complexity)]
    fn exec_get_many(
        &mut self,
        session: &Session,
        keys: Vec<Key>,
    ) -> Result<Vec<Option<Bytes>>, HatError> {
        keys.into_iter()
            .map(|k| self.exec_get(session, k))
            .collect()
    }
    /// Executes (or buffers, per protocol) a write.
    fn exec_put(&mut self, session: &Session, key: Key, value: Bytes) -> Result<(), HatError>;
    /// Executes a predicate read over `prefix`.
    #[allow(clippy::type_complexity)]
    fn exec_scan(&mut self, session: &Session, prefix: Key) -> Result<Vec<(Key, Bytes)>, HatError>;
    /// Internally aborts the open transaction.
    fn exec_abort(&mut self, session: &Session);
    /// Commits the open transaction and reports the outcome.
    fn commit(&mut self, session: &Session) -> Result<(), HatError>;
    /// Abandons the open transaction after an operation failure
    /// (counts as an external abort; straggler responses are ignored).
    fn abandon(&mut self, session: &Session);
}

/// The backend-agnostic deployment surface. Everything interactive goes
/// through this trait, so workloads (the TPC-C runner, the conformance
/// scripts, the examples) run unchanged against the simulator and the
/// threaded runtime.
pub trait Frontend: TxnBackend {
    /// Opens the next session with its own `opts`.
    ///
    /// # Panics
    /// Panics if the deployment's provisioned sessions are exhausted
    /// (see `DeploymentBuilder::sessions_per_cluster`).
    fn open_session(&mut self, opts: SessionOptions) -> Session;

    /// Lets the deployment run for `d` with no injected work: simulated
    /// time under the simulator, (unscaled) wall-clock time under the
    /// threaded runtime.
    fn run_for(&mut self, d: SimDuration);

    /// How long [`Frontend::quiesce`] waits, derived from the deployment
    /// configuration (anti-entropy interval and WAN RTT bound).
    fn quiesce_duration(&self) -> SimDuration;

    /// Lets replication quiesce: runs with no new mutations long enough
    /// for anti-entropy, WAN propagation and MAV promotion to settle.
    fn quiesce(&mut self) {
        let d = self.quiesce_duration();
        self.run_for(d);
    }

    /// Metrics of one session (cloned snapshot).
    fn session_metrics(&self, session: &Session) -> ClientMetrics;

    /// Aggregated metrics across every client of the deployment.
    fn aggregate_metrics(&self) -> ClientMetrics;

    /// Drains recorded transaction histories from every client, sorted
    /// by `(session, session_seq)`.
    fn take_records(&mut self) -> Vec<TxnRecord>;

    /// Runs one interactive transaction on `session`, reporting
    /// unavailability and aborts as errors. Operations inside the
    /// closure return typed results, so `?` propagates a failing
    /// operation straight out (the transaction is then abandoned); a
    /// closure returning its own `Err` aborts internally.
    fn try_txn<R>(
        &mut self,
        session: &Session,
        f: impl FnOnce(&mut TxnCtx<'_>) -> Result<R, HatError>,
    ) -> Result<R, HatError>
    where
        Self: Sized,
    {
        drive_txn(self, session, f)
    }

    /// Runs one interactive transaction, panicking on failure (use
    /// [`Frontend::try_txn`] to observe errors).
    fn txn<R>(
        &mut self,
        session: &Session,
        f: impl FnOnce(&mut TxnCtx<'_>) -> Result<R, HatError>,
    ) -> R
    where
        Self: Sized,
    {
        match self.try_txn(session, f) {
            Ok(r) => r,
            Err(e) => panic!("transaction failed: {e}"),
        }
    }
}

/// Shared transaction driver: begin, run the closure against a typed
/// [`TxnCtx`], then commit / abort / abandon according to what happened.
/// Both frontends (and any future backend) funnel through this, so the
/// transaction lifecycle semantics cannot drift between them.
pub fn drive_txn<R>(
    backend: &mut dyn TxnBackend,
    session: &Session,
    f: impl FnOnce(&mut TxnCtx<'_>) -> Result<R, HatError>,
) -> Result<R, HatError> {
    backend.begin(session)?;
    let mut ctx = TxnCtx {
        backend,
        session,
        failed: None,
        aborted: false,
    };
    let out = f(&mut ctx);
    let failed = ctx.failed.take();
    let aborted = ctx.aborted;
    if let Some(e) = failed {
        // An operation failed (unavailability / system abort): the
        // transaction cannot commit; forget its outstanding requests.
        backend.abandon(session);
        return Err(e);
    }
    match out {
        Err(e) => {
            // The closure bailed out with its own error: internal abort.
            if !aborted {
                backend.exec_abort(session);
            }
            Err(e)
        }
        Ok(r) => {
            if aborted {
                return Err(HatError::InternalAbort {
                    reason: "aborted by transaction".into(),
                });
            }
            backend.commit(session)?;
            Ok(r)
        }
    }
}

/// Handle passed to transaction closures. Backend-neutral: it only
/// talks to a `dyn` [`TxnBackend`], so the same closure runs under the
/// simulator and the threaded runtime.
pub struct TxnCtx<'a> {
    backend: &'a mut dyn TxnBackend,
    session: &'a Session,
    failed: Option<HatError>,
    aborted: bool,
}

impl TxnCtx<'_> {
    fn run_op<T>(
        &mut self,
        f: impl FnOnce(&mut dyn TxnBackend, &Session) -> Result<T, HatError>,
    ) -> Result<T, HatError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if self.aborted {
            return Err(HatError::InternalAbort {
                reason: "operation after abort".into(),
            });
        }
        match f(self.backend, self.session) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.failed = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Reads `key` as a UTF-8 string. `Ok(None)` for the initial `⊥`
    /// value or non-UTF-8 data.
    pub fn get(&mut self, key: &str) -> Result<Option<String>, HatError> {
        Ok(self
            .get_bytes(key)?
            .and_then(|b| String::from_utf8(b.to_vec()).ok()))
    }

    /// Reads `key` raw. `Ok(None)` for the initial `⊥` value.
    pub fn get_bytes(&mut self, key: &str) -> Result<Option<Bytes>, HatError> {
        let k = Key::from(key.to_owned());
        self.run_op(|b, s| b.exec_get(s, k))
    }

    /// One-shot multi-key read as UTF-8 strings, one entry per key in
    /// request order (`None` for `⊥` or non-UTF-8 data). Under
    /// RAMP-Small this is the paper's `GET_ALL`: both metadata and
    /// value rounds are issued in parallel over the whole read set, the
    /// mode in which its constant-size metadata guarantees read
    /// atomicity. Other engines read the keys sequentially.
    pub fn get_many(&mut self, keys: &[&str]) -> Result<Vec<Option<String>>, HatError> {
        Ok(self
            .get_many_bytes(keys)?
            .into_iter()
            .map(|v| v.and_then(|b| String::from_utf8(b.to_vec()).ok()))
            .collect())
    }

    /// One-shot multi-key read, raw. An empty key list is a no-op.
    pub fn get_many_bytes(&mut self, keys: &[&str]) -> Result<Vec<Option<Bytes>>, HatError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let ks: Vec<Key> = keys.iter().map(|k| Key::from((*k).to_owned())).collect();
        self.run_op(|b, s| b.exec_get_many(s, ks))
    }

    /// Writes a UTF-8 value.
    pub fn put(&mut self, key: &str, value: &str) -> Result<(), HatError> {
        self.put_bytes(key, Bytes::from(value.to_owned()))
    }

    /// Writes raw bytes.
    pub fn put_bytes(&mut self, key: &str, value: Bytes) -> Result<(), HatError> {
        let k = Key::from(key.to_owned());
        self.run_op(|b, s| b.exec_put(s, k, value))
    }

    /// Predicate read: all `(key, value)` pairs under `prefix`, as
    /// UTF-8 (non-UTF-8 pairs are skipped).
    pub fn scan(&mut self, prefix: &str) -> Result<Vec<(String, String)>, HatError> {
        Ok(self
            .scan_bytes(prefix)?
            .into_iter()
            .filter_map(|(k, v)| {
                let ks = String::from_utf8(k.to_vec()).ok()?;
                let vs = String::from_utf8(v.to_vec()).ok()?;
                Some((ks, vs))
            })
            .collect())
    }

    /// Predicate read, raw.
    pub fn scan_bytes(&mut self, prefix: &str) -> Result<Vec<(Key, Bytes)>, HatError> {
        let p = Key::from(prefix.to_owned());
        self.run_op(|b, s| b.exec_scan(s, p))
    }

    /// Marks the transaction internally aborted; subsequent operations
    /// fail and the transaction reports [`HatError::InternalAbort`].
    pub fn abort(&mut self) {
        if self.aborted || self.failed.is_some() {
            return;
        }
        self.aborted = true;
        self.backend.exec_abort(self.session);
    }

    /// The error recorded so far, if any (inspection before txn end).
    pub fn error(&self) -> Option<&HatError> {
        self.failed.as_ref()
    }
}
