//! Cluster layout: partitioning, replica placement and master assignment.
//!
//! §6.3: "We deploy the database in clusters — disjoint sets of database
//! servers that each contain a single, fully replicated copy of the data
//! — typically across datacenters and stick all clients within a
//! datacenter to their respective cluster." Within a cluster, data is
//! hash-partitioned across servers — here via the consistent-hash
//! [`ShardRing`], so every key has exactly one replica per cluster, its
//! replica set has one server (the same position) in each cluster, and
//! resizing a cluster remaps only ~1/N of the keyspace.

use crate::shard::ShardRing;
use hat_sim::{NodeId, Region, Site};
use hat_storage::Key;
use serde::{Deserialize, Serialize};

/// FNV-1a 64-bit hash — the deterministic key partitioner.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Declarative deployment: one entry per cluster, giving its site and
/// server count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// `(site, servers)` per cluster.
    pub clusters: Vec<(Site, usize)>,
}

impl ClusterSpec {
    /// `n_clusters` clusters of `servers_each` servers, all in one
    /// datacenter (distinct AZ indices would model Figure 3A exactly;
    /// the paper's 3A deployment keeps both clusters within us-east, so
    /// we place each cluster in its own AZ of Virginia).
    pub fn single_dc(n_clusters: usize, servers_each: usize) -> Self {
        ClusterSpec {
            clusters: (0..n_clusters)
                .map(|i| (Site::new(Region::Virginia, i as u8), servers_each))
                .collect(),
        }
    }

    /// One cluster per region, `servers_each` servers each (Figures
    /// 3B/3C: clusters in distinct regions).
    pub fn regions(regions: &[Region], servers_each: usize) -> Self {
        ClusterSpec {
            clusters: regions
                .iter()
                .map(|&r| (Site::new(r, 0), servers_each))
                .collect(),
        }
    }

    /// The Virginia + Oregon deployment used by Figures 3B, 4, 5 and 6.
    pub fn va_or(servers_each: usize) -> Self {
        Self::regions(&[Region::Virginia, Region::Oregon], servers_each)
    }

    /// Total servers across clusters.
    pub fn total_servers(&self) -> usize {
        self.clusters.iter().map(|(_, n)| n).sum()
    }
}

/// Concrete node placement: which node ids are servers of which cluster,
/// which are clients, and how keys map to replicas.
#[derive(Debug, Clone)]
pub struct ClusterLayout {
    /// Server node ids, per cluster.
    pub servers: Vec<Vec<NodeId>>,
    /// Client node ids (dense, after all servers).
    pub clients: Vec<NodeId>,
    /// Home cluster index of each client (parallel to `clients`).
    pub client_home: Vec<usize>,
    /// The consistent-hash ring mapping keys to server positions.
    /// Shared by every cluster (clusters are equal-sized), which keeps
    /// replica sets and anti-entropy peering positional.
    ring: ShardRing,
    /// Dense `NodeId → cluster index` (None for clients): message paths
    /// resolve the receiving cluster on every dispatch, so this must be
    /// O(1) rather than a scan over every server list.
    cluster_by_node: Vec<Option<u32>>,
    /// Dense `NodeId → position within its cluster` (None for clients).
    position_by_node: Vec<Option<u32>>,
}

impl ClusterLayout {
    /// Builds a layout, computing the shard ring and the O(1) node
    /// lookup tables. Callers validate the spec first
    /// ([`crate::DeploymentBuilder::try_build`] reports a typed error);
    /// these asserts are the backstop for hand-built layouts.
    pub fn new(servers: Vec<Vec<NodeId>>, clients: Vec<NodeId>, client_home: Vec<usize>) -> Self {
        assert!(!servers.is_empty(), "need at least one cluster");
        let per_cluster = servers[0].len();
        assert!(
            per_cluster > 0 && servers.iter().all(|c| c.len() == per_cluster),
            "clusters must be equal-sized and non-empty"
        );
        assert_eq!(clients.len(), client_home.len(), "one home per client");
        let max_id = servers
            .iter()
            .flatten()
            .chain(clients.iter())
            .copied()
            .max()
            .unwrap_or(0) as usize;
        let mut cluster_by_node = vec![None; max_id + 1];
        let mut position_by_node = vec![None; max_id + 1];
        for (c, cluster) in servers.iter().enumerate() {
            for (pos, &id) in cluster.iter().enumerate() {
                cluster_by_node[id as usize] = Some(c as u32);
                position_by_node[id as usize] = Some(pos as u32);
            }
        }
        ClusterLayout {
            ring: ShardRing::new(per_cluster),
            servers,
            clients,
            client_home,
            cluster_by_node,
            position_by_node,
        }
    }

    /// Number of clusters (= replicas per key).
    pub fn num_clusters(&self) -> usize {
        self.servers.len()
    }

    /// Total number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.iter().map(|c| c.len()).sum()
    }

    /// Servers (= shards) per cluster.
    pub fn shards_per_cluster(&self) -> usize {
        self.servers[0].len()
    }

    /// The shard ring (base token placement, before handoff overrides).
    pub fn ring(&self) -> &ShardRing {
        &self.ring
    }

    /// The replica of `key` within `cluster` (consistent-hash
    /// partitioning over server positions).
    pub fn replica_in_cluster(&self, key: &Key, cluster: usize) -> NodeId {
        self.servers[cluster][self.ring.owner_position(key) as usize]
    }

    /// All replicas of `key`: one server (the same position) per
    /// cluster.
    pub fn replicas(&self, key: &Key) -> Vec<NodeId> {
        (0..self.num_clusters())
            .map(|c| self.replica_in_cluster(key, c))
            .collect()
    }

    /// The cluster holding `key`'s designated master (deterministic
    /// pseudo-random choice, as in the prototype's "randomly designated
    /// master replica for each key").
    pub fn master_cluster(&self, key: &Key) -> usize {
        // A second, independent hash picks the master cluster so masters
        // spread across clusters rather than all landing in cluster 0.
        let h = fnv1a(key).rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15;
        (h % self.num_clusters() as u64) as usize
    }

    /// The designated master replica of `key`.
    pub fn master(&self, key: &Key) -> NodeId {
        self.replica_in_cluster(key, self.master_cluster(key))
    }

    /// Cluster index of server `id`, if it is a server. O(1).
    pub fn cluster_of(&self, id: NodeId) -> Option<usize> {
        self.cluster_by_node
            .get(id as usize)
            .copied()
            .flatten()
            .map(|c| c as usize)
    }

    /// Position of server `id` within its cluster, if it is a server.
    pub fn position_of(&self, id: NodeId) -> Option<u32> {
        self.position_by_node.get(id as usize).copied().flatten()
    }

    /// The home cluster of client node `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a client node.
    pub fn home_of(&self, id: NodeId) -> usize {
        let idx = self
            .clients
            .iter()
            .position(|&c| c == id)
            .expect("not a client node");
        self.client_home[idx]
    }

    /// Sibling replicas of the partition that `server` owns in its
    /// cluster — the anti-entropy peers. Returns the same-partition
    /// server in every *other* cluster, given a representative key is not
    /// needed: peers are positional (server index within cluster).
    pub fn anti_entropy_peers(&self, server: NodeId) -> Vec<NodeId> {
        let (Some(cluster), Some(pos)) = (self.cluster_of(server), self.position_of(server)) else {
            return Vec::new();
        };
        self.servers
            .iter()
            .enumerate()
            .filter(|(c, _)| *c != cluster)
            .filter_map(|(_, servers)| servers.get(pos as usize).copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_with_clients(
        clusters: usize,
        servers_each: usize,
        n_clients: usize,
    ) -> ClusterLayout {
        let mut next = 0u32;
        let servers: Vec<Vec<NodeId>> = (0..clusters)
            .map(|_| {
                (0..servers_each)
                    .map(|_| {
                        let id = next;
                        next += 1;
                        id
                    })
                    .collect()
            })
            .collect();
        let clients: Vec<NodeId> = (0..n_clients as u32).map(|i| next + i).collect();
        // Homes are derived for any client count (round-robin over
        // clusters), not hardcoded for exactly two clients.
        let client_home = (0..n_clients).map(|i| i % clusters).collect();
        ClusterLayout::new(servers, clients, client_home)
    }

    fn layout(clusters: usize, servers_each: usize) -> ClusterLayout {
        layout_with_clients(clusters, servers_each, 2)
    }

    #[test]
    fn one_replica_per_cluster() {
        let l = layout(3, 5);
        let key = Key::from("some-key");
        let reps = l.replicas(&key);
        assert_eq!(reps.len(), 3);
        for (c, &r) in reps.iter().enumerate() {
            assert!(l.servers[c].contains(&r));
        }
    }

    #[test]
    fn replica_choice_is_deterministic_and_spread() {
        let l = layout(2, 5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            let key = Key::from(format!("key-{i}"));
            assert_eq!(l.replica_in_cluster(&key, 0), l.replica_in_cluster(&key, 0));
            seen.insert(l.replica_in_cluster(&key, 0));
        }
        assert_eq!(seen.len(), 5, "hash partitioning should use all servers");
    }

    #[test]
    fn masters_spread_across_clusters() {
        let l = layout(2, 5);
        let mut per_cluster = [0usize; 2];
        for i in 0..200 {
            let key = Key::from(format!("key-{i}"));
            let m = l.master(&key);
            per_cluster[l.cluster_of(m).unwrap()] += 1;
        }
        assert!(
            per_cluster[0] > 50 && per_cluster[1] > 50,
            "{per_cluster:?}"
        );
    }

    #[test]
    fn master_is_one_of_the_replicas() {
        let l = layout(3, 4);
        for i in 0..50 {
            let key = Key::from(format!("k{i}"));
            assert!(l.replicas(&key).contains(&l.master(&key)));
        }
    }

    #[test]
    fn anti_entropy_peers_are_positional() {
        let l = layout(3, 4);
        let server = l.servers[1][2];
        let peers = l.anti_entropy_peers(server);
        assert_eq!(peers, vec![l.servers[0][2], l.servers[2][2]]);
        // a client has no peers
        assert!(l.anti_entropy_peers(l.clients[0]).is_empty());
    }

    #[test]
    fn home_of_clients() {
        let l = layout(2, 2);
        assert_eq!(l.home_of(l.clients[0]), 0);
        assert_eq!(l.home_of(l.clients[1]), 1);
    }

    #[test]
    fn spec_totals() {
        assert_eq!(ClusterSpec::single_dc(2, 5).total_servers(), 10);
        assert_eq!(ClusterSpec::va_or(5).clusters.len(), 2);
    }

    #[test]
    fn fnv_is_stable() {
        // lock in the hash so partitioning never silently changes
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn cluster_and_position_lookups_are_consistent() {
        let l = layout(3, 4);
        for (c, cluster) in l.servers.iter().enumerate() {
            for (pos, &id) in cluster.iter().enumerate() {
                assert_eq!(l.cluster_of(id), Some(c));
                assert_eq!(l.position_of(id), Some(pos as u32));
            }
        }
        for &client in &l.clients {
            assert_eq!(l.cluster_of(client), None);
            assert_eq!(l.position_of(client), None);
        }
        // ids beyond the dense table are not servers either
        assert_eq!(l.cluster_of(10_000), None);
    }

    #[test]
    fn homes_derived_for_any_client_count() {
        let l = layout_with_clients(3, 2, 7);
        assert_eq!(l.clients.len(), 7);
        for (i, &client) in l.clients.iter().enumerate() {
            assert_eq!(l.home_of(client), i % 3);
        }
    }

    #[test]
    fn replicas_are_positional_across_clusters() {
        // The shared ring places a key at the same position in every
        // cluster, which is what keeps anti-entropy peering positional.
        let l = layout(3, 5);
        for i in 0..50 {
            let key = Key::from(format!("pos-{i}"));
            let reps = l.replicas(&key);
            let positions: Vec<u32> = reps.iter().map(|&r| l.position_of(r).unwrap()).collect();
            assert!(positions.windows(2).all(|w| w[0] == w[1]), "{positions:?}");
        }
    }

    #[test]
    fn resize_remaps_a_bounded_fraction() {
        // The consistent-hash contract at the layout level: growing a
        // cluster from n to n+1 servers moves ~1/(n+1) of the keyspace,
        // where modulo placement moved ~all of it.
        let small = layout(1, 8);
        let grown = layout(1, 9);
        let samples = 2000;
        let moved = (0..samples)
            .filter(|i| {
                let key = Key::from(format!("resize-{i}"));
                small.ring().owner_position(&key) != grown.ring().owner_position(&key)
            })
            .count();
        assert!(moved <= 2 * samples / 8, "moved {moved}/{samples}");
        assert!(moved > 0);
    }
}
