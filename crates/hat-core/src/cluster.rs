//! Cluster layout: partitioning, replica placement and master assignment.
//!
//! §6.3: "We deploy the database in clusters — disjoint sets of database
//! servers that each contain a single, fully replicated copy of the data
//! — typically across datacenters and stick all clients within a
//! datacenter to their respective cluster." Within a cluster, data is
//! hash-partitioned across servers. So every key has exactly one replica
//! per cluster, and its replica set has one server in each cluster.

use hat_sim::{NodeId, Region, Site};
use hat_storage::Key;
use serde::{Deserialize, Serialize};

/// FNV-1a 64-bit hash — the deterministic key partitioner.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Declarative deployment: one entry per cluster, giving its site and
/// server count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// `(site, servers)` per cluster.
    pub clusters: Vec<(Site, usize)>,
}

impl ClusterSpec {
    /// `n_clusters` clusters of `servers_each` servers, all in one
    /// datacenter (distinct AZ indices would model Figure 3A exactly;
    /// the paper's 3A deployment keeps both clusters within us-east, so
    /// we place each cluster in its own AZ of Virginia).
    pub fn single_dc(n_clusters: usize, servers_each: usize) -> Self {
        ClusterSpec {
            clusters: (0..n_clusters)
                .map(|i| (Site::new(Region::Virginia, i as u8), servers_each))
                .collect(),
        }
    }

    /// One cluster per region, `servers_each` servers each (Figures
    /// 3B/3C: clusters in distinct regions).
    pub fn regions(regions: &[Region], servers_each: usize) -> Self {
        ClusterSpec {
            clusters: regions
                .iter()
                .map(|&r| (Site::new(r, 0), servers_each))
                .collect(),
        }
    }

    /// The Virginia + Oregon deployment used by Figures 3B, 4, 5 and 6.
    pub fn va_or(servers_each: usize) -> Self {
        Self::regions(&[Region::Virginia, Region::Oregon], servers_each)
    }

    /// Total servers across clusters.
    pub fn total_servers(&self) -> usize {
        self.clusters.iter().map(|(_, n)| n).sum()
    }
}

/// Concrete node placement: which node ids are servers of which cluster,
/// which are clients, and how keys map to replicas.
#[derive(Debug, Clone)]
pub struct ClusterLayout {
    /// Server node ids, per cluster.
    pub servers: Vec<Vec<NodeId>>,
    /// Client node ids (dense, after all servers).
    pub clients: Vec<NodeId>,
    /// Home cluster index of each client (parallel to `clients`).
    pub client_home: Vec<usize>,
}

impl ClusterLayout {
    /// Number of clusters (= replicas per key).
    pub fn num_clusters(&self) -> usize {
        self.servers.len()
    }

    /// Total number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.iter().map(|c| c.len()).sum()
    }

    /// The replica of `key` within `cluster` (hash partitioning).
    pub fn replica_in_cluster(&self, key: &Key, cluster: usize) -> NodeId {
        let servers = &self.servers[cluster];
        servers[(fnv1a(key) % servers.len() as u64) as usize]
    }

    /// All replicas of `key`: one server per cluster.
    pub fn replicas(&self, key: &Key) -> Vec<NodeId> {
        (0..self.num_clusters())
            .map(|c| self.replica_in_cluster(key, c))
            .collect()
    }

    /// The designated master replica of `key` (deterministic
    /// pseudo-random cluster choice, as in the prototype's "randomly
    /// designated master replica for each key").
    pub fn master(&self, key: &Key) -> NodeId {
        // A second, independent hash picks the master cluster so masters
        // spread across clusters rather than all landing in cluster 0.
        let h = fnv1a(key).rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15;
        let cluster = (h % self.num_clusters() as u64) as usize;
        self.replica_in_cluster(key, cluster)
    }

    /// Cluster index of server `id`, if it is a server.
    pub fn cluster_of(&self, id: NodeId) -> Option<usize> {
        self.servers
            .iter()
            .position(|servers| servers.contains(&id))
    }

    /// The home cluster of client node `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a client node.
    pub fn home_of(&self, id: NodeId) -> usize {
        let idx = self
            .clients
            .iter()
            .position(|&c| c == id)
            .expect("not a client node");
        self.client_home[idx]
    }

    /// Sibling replicas of the partition that `server` owns in its
    /// cluster — the anti-entropy peers. Returns the same-partition
    /// server in every *other* cluster, given a representative key is not
    /// needed: peers are positional (server index within cluster).
    pub fn anti_entropy_peers(&self, server: NodeId) -> Vec<NodeId> {
        let Some(cluster) = self.cluster_of(server) else {
            return Vec::new();
        };
        let pos = self.servers[cluster]
            .iter()
            .position(|&s| s == server)
            .unwrap();
        self.servers
            .iter()
            .enumerate()
            .filter(|(c, _)| *c != cluster)
            .filter_map(|(_, servers)| servers.get(pos).copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(clusters: usize, servers_each: usize) -> ClusterLayout {
        let mut next = 0u32;
        let servers: Vec<Vec<NodeId>> = (0..clusters)
            .map(|_| {
                (0..servers_each)
                    .map(|_| {
                        let id = next;
                        next += 1;
                        id
                    })
                    .collect()
            })
            .collect();
        ClusterLayout {
            servers,
            clients: vec![next, next + 1],
            client_home: vec![0, 1 % clusters],
        }
    }

    #[test]
    fn one_replica_per_cluster() {
        let l = layout(3, 5);
        let key = Key::from("some-key");
        let reps = l.replicas(&key);
        assert_eq!(reps.len(), 3);
        for (c, &r) in reps.iter().enumerate() {
            assert!(l.servers[c].contains(&r));
        }
    }

    #[test]
    fn replica_choice_is_deterministic_and_spread() {
        let l = layout(2, 5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            let key = Key::from(format!("key-{i}"));
            assert_eq!(l.replica_in_cluster(&key, 0), l.replica_in_cluster(&key, 0));
            seen.insert(l.replica_in_cluster(&key, 0));
        }
        assert_eq!(seen.len(), 5, "hash partitioning should use all servers");
    }

    #[test]
    fn masters_spread_across_clusters() {
        let l = layout(2, 5);
        let mut per_cluster = [0usize; 2];
        for i in 0..200 {
            let key = Key::from(format!("key-{i}"));
            let m = l.master(&key);
            per_cluster[l.cluster_of(m).unwrap()] += 1;
        }
        assert!(
            per_cluster[0] > 50 && per_cluster[1] > 50,
            "{per_cluster:?}"
        );
    }

    #[test]
    fn master_is_one_of_the_replicas() {
        let l = layout(3, 4);
        for i in 0..50 {
            let key = Key::from(format!("k{i}"));
            assert!(l.replicas(&key).contains(&l.master(&key)));
        }
    }

    #[test]
    fn anti_entropy_peers_are_positional() {
        let l = layout(3, 4);
        let server = l.servers[1][2];
        let peers = l.anti_entropy_peers(server);
        assert_eq!(peers, vec![l.servers[0][2], l.servers[2][2]]);
        // a client has no peers
        assert!(l.anti_entropy_peers(l.clients[0]).is_empty());
    }

    #[test]
    fn home_of_clients() {
        let l = layout(2, 2);
        assert_eq!(l.home_of(l.clients[0]), 0);
        assert_eq!(l.home_of(l.clients[1]), 1);
    }

    #[test]
    fn spec_totals() {
        assert_eq!(ClusterSpec::single_dc(2, 5).total_servers(), 10);
        assert_eq!(ClusterSpec::va_or(5).clusters.len(), 2);
    }

    #[test]
    fn fnv_is_stable() {
        // lock in the hash so partitioning never silently changes
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
