//! Transactions: specifications, operations and recorded histories.
//!
//! A [`TxnSpec`] is the *plan* of a transaction (the ops to run); a
//! [`TxnRecord`] is what actually happened — which versions each read
//! observed, which versions the writes installed, and how the transaction
//! ended. Records are the input to `hat-history`'s Adya-style anomaly
//! checker (Appendix A formalism).

use crate::timestamp::Timestamp;
use bytes::Bytes;
use hat_storage::Key;
use serde::{Deserialize, Serialize};

/// One operation in a transaction plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Read a single item.
    Read(Key),
    /// Write `value` to an item.
    Write(Key, Bytes),
    /// Predicate read: all items whose key starts with the prefix
    /// (`SELECT WHERE key LIKE 'p%'`).
    PredicateRead(Key),
}

impl Op {
    /// Convenience constructor for a read of a string key.
    pub fn read(key: &str) -> Op {
        Op::Read(Key::from(key.to_owned()))
    }

    /// Convenience constructor for a write of string key/value.
    pub fn write(key: &str, value: &str) -> Op {
        Op::Write(Key::from(key.to_owned()), Bytes::from(value.to_owned()))
    }

    /// Convenience constructor for a predicate read over a string prefix.
    pub fn predicate(prefix: &str) -> Op {
        Op::PredicateRead(Key::from(prefix.to_owned()))
    }

    /// The key (or prefix) this operation touches.
    pub fn key(&self) -> &Key {
        match self {
            Op::Read(k) | Op::Write(k, _) | Op::PredicateRead(k) => k,
        }
    }

    /// True for writes.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write(..))
    }
}

/// A transaction plan: ordered operations to execute.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnSpec {
    /// Operations in program order.
    pub ops: Vec<Op>,
}

impl TxnSpec {
    /// A plan from a list of ops.
    pub fn new(ops: Vec<Op>) -> Self {
        TxnSpec { ops }
    }

    /// Keys written by this plan, deduplicated, in first-write order.
    /// This is the MAV algorithm's `tx_keys` sibling list.
    pub fn write_set(&self) -> Vec<Key> {
        let mut keys = Vec::new();
        for op in &self.ops {
            if let Op::Write(k, _) = op {
                if !keys.contains(k) {
                    keys.push(k.clone());
                }
            }
        }
        keys
    }

    /// Keys read by this plan (item reads only), deduplicated.
    pub fn read_set(&self) -> Vec<Key> {
        let mut keys = Vec::new();
        for op in &self.ops {
            if let Op::Read(k) = op {
                if !keys.contains(k) {
                    keys.push(k.clone());
                }
            }
        }
        keys
    }
}

/// How a transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnOutcome {
    /// All effects installed.
    Committed,
    /// Aborted by the application (internal).
    AbortedInternal,
    /// Aborted by the system (external: timeout, deadlock victim...).
    AbortedExternal,
    /// The commit round never resolved (timeout, partition, server
    /// crash): the writes may or may not be durably installed. Neither
    /// committed nor aborted — anomaly checkers must not treat reads of
    /// an indeterminate transaction's writes as aborted reads.
    Indeterminate,
}

/// What one executed operation observed or installed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpRecord {
    /// A read of `key` that observed the version written at
    /// `observed` (the initial `⊥` version when `observed.seq == 0`).
    Read {
        /// Key read.
        key: Key,
        /// Stamp of the version observed.
        observed: Timestamp,
        /// The value observed (empty for `⊥`).
        value: Bytes,
    },
    /// A write of `key` installed at the transaction's timestamp.
    Write {
        /// Key written.
        key: Key,
        /// Installed value.
        value: Bytes,
    },
    /// A predicate read over `prefix` observing a version set.
    PredicateRead {
        /// Prefix scanned.
        prefix: Key,
        /// `(key, stamp)` pairs of the matched versions.
        matches: Vec<(Key, Timestamp)>,
    },
}

/// The execution record of one transaction — a history fragment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnRecord {
    /// The transaction's timestamp (unique id; also the stamp of all its
    /// writes).
    pub id: Timestamp,
    /// Session (client) that ran the transaction.
    pub session: u32,
    /// Position of this transaction within its session (commit order).
    pub session_seq: u64,
    /// Executed operations in program order.
    pub ops: Vec<OpRecord>,
    /// Final outcome.
    pub outcome: TxnOutcome,
}

impl TxnRecord {
    /// Keys this transaction wrote.
    pub fn write_keys(&self) -> impl Iterator<Item = &Key> {
        self.ops.iter().filter_map(|op| match op {
            OpRecord::Write { key, .. } => Some(key),
            _ => None,
        })
    }

    /// True if the transaction committed.
    pub fn committed(&self) -> bool {
        self.outcome == TxnOutcome::Committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_set_dedupes_preserving_order() {
        let spec = TxnSpec::new(vec![
            Op::write("b", "1"),
            Op::read("x"),
            Op::write("a", "2"),
            Op::write("b", "3"),
        ]);
        let ws = spec.write_set();
        assert_eq!(ws, vec![Key::from("b"), Key::from("a")]);
        assert_eq!(spec.read_set(), vec![Key::from("x")]);
    }

    #[test]
    fn op_accessors() {
        let w = Op::write("k", "v");
        assert!(w.is_write());
        assert_eq!(w.key(), &Key::from("k"));
        let r = Op::read("k");
        assert!(!r.is_write());
        let p = Op::predicate("pre");
        assert_eq!(p.key(), &Key::from("pre"));
    }

    #[test]
    fn record_write_keys() {
        let rec = TxnRecord {
            id: Timestamp::new(1, 1),
            session: 1,
            session_seq: 0,
            ops: vec![
                OpRecord::Write {
                    key: Key::from("x"),
                    value: Bytes::from("1"),
                },
                OpRecord::Read {
                    key: Key::from("y"),
                    observed: Timestamp::INITIAL,
                    value: Bytes::new(),
                },
            ],
            outcome: TxnOutcome::Committed,
        };
        assert_eq!(rec.write_keys().count(), 1);
        assert!(rec.committed());
    }
}
