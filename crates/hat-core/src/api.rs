//! High-level simulation facade: build a deployment, run transactions.
//!
//! [`SimulationBuilder`] assembles clusters, clients, latency and
//! partition schedules into a [`Sim`]. Transactions run synchronously
//! from the caller's point of view: each operation injects work into the
//! client actor and steps the simulation until the response arrives (or
//! the operation deadline passes — which is how unavailability surfaces,
//! as [`HatError::Unavailable`]).

use crate::client::{Client, SessionOptions, TxnSource};
use crate::cluster::{ClusterLayout, ClusterSpec};
use crate::config::{ProtocolKind, SystemConfig};
use crate::error::HatError;
use crate::metrics::ClientMetrics;
use crate::node::Node;
use crate::protocol::ProtocolEngine;
use crate::server::Server;
use crate::txn::{OpRecord, TxnOutcome, TxnRecord};
use bytes::Bytes;
use hat_sim::{
    Engine, EngineConfig, LatencyModel, NodeId, PartitionSchedule, SimDuration, SimTime, Topology,
};
use hat_storage::{Key, MemStore};
use std::sync::Arc;

/// Builder for a simulated HAT deployment.
pub struct SimulationBuilder {
    protocol: ProtocolKind,
    seed: u64,
    spec: ClusterSpec,
    clients_per_cluster: usize,
    session: SessionOptions,
    config: SystemConfig,
    latency: LatencyModel,
    partitions: PartitionSchedule,
    drivers: Vec<Box<dyn TxnSource>>,
    engine_factory: Option<Arc<dyn Fn() -> Box<dyn ProtocolEngine> + Send + Sync>>,
}

impl SimulationBuilder {
    /// Starts a builder for `protocol` with a default two-cluster,
    /// single-datacenter deployment.
    pub fn new(protocol: ProtocolKind) -> Self {
        SimulationBuilder {
            protocol,
            seed: DEFAULT_SEED,
            spec: ClusterSpec::single_dc(2, 1),
            clients_per_cluster: 1,
            session: SessionOptions::default(),
            config: SystemConfig::new(protocol),
            latency: LatencyModel::default(),
            partitions: PartitionSchedule::none(),
            drivers: Vec::new(),
            engine_factory: None,
        }
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cluster deployment.
    pub fn clusters(mut self, spec: ClusterSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Number of clients attached to each cluster (facade mode).
    pub fn clients_per_cluster(mut self, n: usize) -> Self {
        self.clients_per_cluster = n;
        self
    }

    /// Session options for every client.
    pub fn session(mut self, session: SessionOptions) -> Self {
        self.session = session;
        self
    }

    /// Overrides the system configuration (service model, intervals).
    /// The protocol field is forced to the builder's protocol.
    pub fn config(mut self, mut config: SystemConfig) -> Self {
        config.protocol = self.protocol;
        self.config = config;
        self
    }

    /// Overrides the latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Installs a partition schedule.
    pub fn partitions(mut self, partitions: PartitionSchedule) -> Self {
        self.partitions = partitions;
        self
    }

    /// Closed-loop mode: one driver per client. The number of clients
    /// becomes `drivers.len()`, assigned to clusters round-robin.
    pub fn drivers(mut self, drivers: Vec<Box<dyn TxnSource>>) -> Self {
        self.drivers = drivers;
        self
    }

    /// Installs a custom [`ProtocolEngine`] factory used for every
    /// server, instead of the registry engine for the builder's
    /// protocol kind. This is how engines outside
    /// [`crate::protocol::engine_for`] plug into the simulator, the
    /// threaded runtime and the benchmark harness without any
    /// server-side changes. Client-side behavior (buffering, routing)
    /// still follows the builder's [`ProtocolKind`].
    pub fn engine_factory(
        mut self,
        factory: impl Fn() -> Box<dyn ProtocolEngine> + Send + Sync + 'static,
    ) -> Self {
        self.engine_factory = Some(Arc::new(factory));
        self
    }

    /// Builds the [`Sim`].
    ///
    /// # Panics
    /// Panics if clusters have unequal sizes (positional anti-entropy
    /// peering requires equal partition counts) or no servers/clients.
    pub fn build(self) -> Sim {
        let (engine_config, topology, actors, layout, config) = self.build_parts();
        let engine = Engine::new(engine_config, topology, actors);
        Sim {
            engine,
            layout,
            config,
        }
    }

    /// Builds the deployment pieces without an engine — used by external
    /// runtimes (e.g. `hat-runtime`'s threaded executor) that drive the
    /// same actors themselves.
    #[allow(clippy::type_complexity)]
    pub fn build_parts(
        self,
    ) -> (
        EngineConfig,
        Topology,
        Vec<Node>,
        Arc<ClusterLayout>,
        Arc<SystemConfig>,
    ) {
        let sizes: Vec<usize> = self.spec.clusters.iter().map(|(_, n)| *n).collect();
        assert!(!sizes.is_empty(), "need at least one cluster");
        assert!(
            sizes.iter().all(|&n| n == sizes[0] && n > 0),
            "clusters must be equal-sized and non-empty, got {sizes:?}"
        );
        let n_clusters = sizes.len();

        let mut topology = Topology::new();
        let mut servers: Vec<Vec<NodeId>> = Vec::with_capacity(n_clusters);
        for (site, n) in &self.spec.clusters {
            servers.push(topology.add_nodes(*site, *n));
        }
        let n_clients = if self.drivers.is_empty() {
            self.clients_per_cluster * n_clusters
        } else {
            self.drivers.len()
        };
        assert!(n_clients > 0, "need at least one client");
        let mut clients = Vec::with_capacity(n_clients);
        let mut client_home = Vec::with_capacity(n_clients);
        for i in 0..n_clients {
            let home = i % n_clusters;
            let site = self.spec.clusters[home].0;
            clients.push(topology.add_node(site));
            client_home.push(home);
        }
        let layout = Arc::new(ClusterLayout {
            servers,
            clients: clients.clone(),
            client_home,
        });
        let config = Arc::new(self.config);

        let mut drivers: Vec<Option<Box<dyn TxnSource>>> =
            self.drivers.into_iter().map(Some).collect();
        drivers.resize_with(n_clients, || None);

        let mut actors: Vec<Node> = Vec::with_capacity(topology.len());
        for cluster in 0..n_clusters {
            for &id in &layout.servers[cluster] {
                let server = match &self.engine_factory {
                    Some(factory) => Server::with_engine(
                        id,
                        cluster,
                        Arc::clone(&layout),
                        Arc::clone(&config),
                        Box::new(MemStore::new()),
                        factory(),
                    ),
                    None => Server::new(
                        id,
                        cluster,
                        Arc::clone(&layout),
                        Arc::clone(&config),
                        Box::new(MemStore::new()),
                    ),
                };
                actors.push(Node::Server(server));
            }
        }
        for (i, &id) in clients.iter().enumerate() {
            // writer id 0 is reserved for the initial version's writer
            let mut c = Client::new(
                id,
                i as u32 + 1,
                layout.client_home[i],
                Arc::clone(&layout),
                Arc::clone(&config),
                self.session,
            );
            if let Some(d) = drivers[i].take() {
                c = c.with_driver(d);
            }
            actors.push(Node::Client(c));
        }

        (
            EngineConfig {
                seed: self.seed,
                latency: self.latency,
                partitions: self.partitions,
            },
            topology,
            actors,
            layout,
            config,
        )
    }
}

/// Default engine seed when the builder is not given one.
const DEFAULT_SEED: u64 = 0x4A7_5EED;

/// A running simulated deployment.
pub struct Sim {
    engine: Engine<Node>,
    layout: Arc<ClusterLayout>,
    config: Arc<SystemConfig>,
}

impl Sim {
    /// The node id of client number `idx` (0-based).
    pub fn client(&self, idx: usize) -> NodeId {
        self.layout.clients[idx]
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.layout.clients.len()
    }

    /// The cluster layout.
    pub fn layout(&self) -> &ClusterLayout {
        &self.layout
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Advances simulated time by `d`, processing due events.
    pub fn run_for(&mut self, d: SimDuration) {
        self.engine.run_for(d);
    }

    /// Lets replication quiesce: runs long enough for anti-entropy and
    /// WAN propagation (2 simulated seconds).
    pub fn settle(&mut self) {
        self.run_for(SimDuration::from_secs(2));
    }

    /// Direct engine access (tests, experiments).
    pub fn engine_mut(&mut self) -> &mut Engine<Node> {
        &mut self.engine
    }

    /// Immutable engine access.
    pub fn engine(&self) -> &Engine<Node> {
        &self.engine
    }

    /// Metrics of client `node` (cloned snapshot).
    pub fn metrics(&self, client: NodeId) -> ClientMetrics {
        self.engine
            .actor(client)
            .as_client()
            .expect("not a client")
            .metrics
            .clone()
    }

    /// Aggregated metrics across all clients.
    pub fn aggregate_metrics(&self) -> ClientMetrics {
        let mut total = ClientMetrics::default();
        for &c in &self.layout.clients {
            total.merge(&self.engine.actor(c).as_client().unwrap().metrics);
        }
        total
    }

    /// Drains recorded transaction histories from every client.
    pub fn take_records(&mut self) -> Vec<TxnRecord> {
        let mut all = Vec::new();
        for &c in &self.layout.clients.clone() {
            let client = self
                .engine
                .actor_mut(c)
                .as_client_mut()
                .expect("not a client");
            all.extend(client.take_records());
        }
        all.sort_by_key(|r| (r.session, r.session_seq));
        all
    }

    /// Total MAV `required` misses across servers (0 in a correct run).
    pub fn mav_required_misses(&self) -> u64 {
        self.layout
            .servers
            .iter()
            .flatten()
            .map(|&s| {
                self.engine
                    .actor(s)
                    .as_server()
                    .map(|srv| srv.mav_required_misses())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Runs a transaction on `client`, panicking on unavailability or
    /// system aborts (use [`Sim::try_txn`] to observe those).
    pub fn txn<R>(&mut self, client: NodeId, f: impl FnOnce(&mut TxnCtx<'_>) -> R) -> R {
        match self.try_txn(client, f) {
            Ok(r) => r,
            Err(e) => panic!("transaction failed: {e}"),
        }
    }

    /// Runs a transaction on `client`, reporting unavailability and
    /// aborts as errors. Operations after a failure become no-ops
    /// (reads return `None`).
    pub fn try_txn<R>(
        &mut self,
        client: NodeId,
        f: impl FnOnce(&mut TxnCtx<'_>) -> R,
    ) -> Result<R, HatError> {
        self.engine.with_actor_ctx(client, |node, ctx| {
            let c = node.as_client_mut().expect("not a client");
            c.clear_finished();
            c.begin(ctx.now());
        });
        let mut tc = TxnCtx {
            sim: self,
            client,
            failed: None,
            aborted: false,
        };
        let result = f(&mut tc);
        let failed = tc.failed.take();
        let aborted = tc.aborted;
        if let Some(e) = failed {
            self.abandon(client);
            return Err(e);
        }
        if aborted {
            return Err(HatError::InternalAbort {
                reason: "aborted by transaction".into(),
            });
        }
        self.engine.with_actor_ctx(client, |node, ctx| {
            node.as_client_mut().unwrap().start_commit(ctx)
        });
        if let Err(e) = self.wait_idle(client) {
            self.abandon(client);
            return Err(e);
        }
        let outcome = self.engine.actor(client).as_client().unwrap().txn_outcome();
        match outcome {
            Some(TxnOutcome::Committed) => Ok(result),
            Some(TxnOutcome::AbortedExternal) => Err(HatError::ExternalAbort {
                reason: "system abort during commit".into(),
            }),
            Some(TxnOutcome::AbortedInternal) => Err(HatError::InternalAbort {
                reason: "transaction aborted".into(),
            }),
            None => Err(HatError::Unavailable { key: None }),
        }
    }

    fn abandon(&mut self, client: NodeId) {
        if let Some(c) = self.engine.actor_mut(client).as_client_mut() {
            c.abandon();
        }
    }

    /// Steps the engine until `client` has no outstanding network round,
    /// or the operation deadline passes.
    fn wait_idle(&mut self, client: NodeId) -> Result<(), HatError> {
        let deadline = self.engine.now() + self.config.op_deadline;
        loop {
            let busy = self
                .engine
                .actor(client)
                .as_client()
                .expect("not a client")
                .busy();
            if !busy {
                return Ok(());
            }
            match self.engine.peek_time() {
                Some(t) if t <= deadline => {
                    self.engine.step();
                }
                _ => return Err(HatError::Unavailable { key: None }),
            }
        }
    }
}

/// Handle passed to transaction closures.
pub struct TxnCtx<'a> {
    sim: &'a mut Sim,
    client: NodeId,
    failed: Option<HatError>,
    aborted: bool,
}

impl TxnCtx<'_> {
    /// Reads `key` as a UTF-8 string. Returns `None` for the initial `⊥`
    /// value, non-UTF-8 data, or after a failure.
    pub fn get(&mut self, key: &str) -> Option<String> {
        self.get_bytes(key)
            .and_then(|b| String::from_utf8(b.to_vec()).ok())
    }

    /// Reads `key` raw. Returns `None` for `⊥` or after a failure.
    pub fn get_bytes(&mut self, key: &str) -> Option<Bytes> {
        if self.failed.is_some() || self.aborted {
            return None;
        }
        let k = Key::from(key.to_owned());
        self.sim.engine.with_actor_ctx(self.client, |node, ctx| {
            node.as_client_mut().unwrap().issue_read(ctx, k)
        });
        if let Err(e) = self.sim.wait_idle(self.client) {
            self.failed = Some(e);
            return None;
        }
        match self
            .sim
            .engine
            .actor(self.client)
            .as_client()
            .unwrap()
            .last_op()
        {
            Some(OpRecord::Read {
                observed, value, ..
            }) => {
                if observed.is_initial() {
                    None
                } else {
                    Some(value.clone())
                }
            }
            _ => None,
        }
    }

    /// Writes a UTF-8 value.
    pub fn put(&mut self, key: &str, value: &str) {
        self.put_bytes(key, Bytes::from(value.to_owned()));
    }

    /// Writes raw bytes.
    pub fn put_bytes(&mut self, key: &str, value: Bytes) {
        if self.failed.is_some() || self.aborted {
            return;
        }
        let k = Key::from(key.to_owned());
        self.sim.engine.with_actor_ctx(self.client, |node, ctx| {
            node.as_client_mut().unwrap().issue_write(ctx, k, value)
        });
        if let Err(e) = self.sim.wait_idle(self.client) {
            self.failed = Some(e);
        }
    }

    /// Predicate read: all `(key, value)` pairs under `prefix`, as UTF-8.
    pub fn scan(&mut self, prefix: &str) -> Vec<(String, String)> {
        if self.failed.is_some() || self.aborted {
            return Vec::new();
        }
        let p = Key::from(prefix.to_owned());
        self.sim.engine.with_actor_ctx(self.client, |node, ctx| {
            node.as_client_mut().unwrap().issue_scan(ctx, p)
        });
        if let Err(e) = self.sim.wait_idle(self.client) {
            self.failed = Some(e);
            return Vec::new();
        }
        self.sim
            .engine
            .actor(self.client)
            .as_client()
            .unwrap()
            .last_scan()
            .iter()
            .filter_map(|(k, v)| {
                let ks = String::from_utf8(k.to_vec()).ok()?;
                let vs = String::from_utf8(v.to_vec()).ok()?;
                Some((ks, vs))
            })
            .collect()
    }

    /// Marks the transaction internally aborted; subsequent ops are
    /// no-ops and [`Sim::try_txn`] returns
    /// [`HatError::InternalAbort`].
    pub fn abort(&mut self) {
        if self.aborted || self.failed.is_some() {
            return;
        }
        self.aborted = true;
        self.sim.engine.with_actor_ctx(self.client, |node, ctx| {
            node.as_client_mut().unwrap().abort(ctx)
        });
    }

    /// The error recorded so far, if any (inspection before txn end).
    pub fn error(&self) -> Option<&HatError> {
        self.failed.as_ref()
    }
}
