//! Deployment assembly and the simulator-backed frontend.
//!
//! [`DeploymentBuilder`] assembles clusters, session slots, latency and
//! partition schedules — everything about a deployment that is *not* the
//! execution substrate. `build()` yields a [`SimFrontend`] (discrete-event
//! simulator); `build_threaded()` from `hat-runtime` consumes the same
//! builder and yields a `RuntimeFrontend` (one OS thread per node). Both
//! implement [`Frontend`], so workloads are written once.
//!
//! Under the simulator, transactions run synchronously from the caller's
//! point of view: each operation injects work into the client actor and
//! steps the simulation until the response arrives (or the operation
//! deadline passes — which is how unavailability surfaces, as
//! [`HatError::Unavailable`]).

use crate::client::{Client, SessionOptions, TxnSource};
use crate::cluster::{ClusterLayout, ClusterSpec};
use crate::config::{ProtocolKind, RetryPolicy, SystemConfig};
use crate::error::HatError;
use crate::frontend::{Frontend, Session, TxnBackend};
use crate::messages::Msg;
use crate::metrics::ClientMetrics;
use crate::node::Node;
use crate::protocol::ProtocolEngine;
use crate::server::Server;
use crate::txn::TxnRecord;
use bytes::Bytes;
use hat_obs::ObsSink;
use hat_sim::{
    Engine, EngineConfig, LatencyModel, NodeId, PartitionSchedule, SimDuration, SimTime, Topology,
};
use hat_storage::{DurableStore, Key, MemStore, Store, SyncPolicy, VersionStamp, Wal};
use hat_trace::{DropReason, TraceEvent, TraceEventKind, TraceSink};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Builder for a HAT deployment, parameterized by protocol and — at
/// `build` time — by execution backend.
pub struct DeploymentBuilder {
    protocol: ProtocolKind,
    seed: u64,
    spec: ClusterSpec,
    sessions_per_cluster: usize,
    default_session: SessionOptions,
    config: SystemConfig,
    retry: Option<RetryPolicy>,
    latency: LatencyModel,
    partitions: PartitionSchedule,
    drivers: Vec<Box<dyn TxnSource>>,
    engine_factory: Option<Arc<dyn Fn() -> Box<dyn ProtocolEngine> + Send + Sync>>,
    durable: Option<(PathBuf, SyncPolicy)>,
}

impl DeploymentBuilder {
    /// Starts a builder for `protocol` with a default two-cluster,
    /// single-datacenter deployment.
    pub fn new(protocol: ProtocolKind) -> Self {
        DeploymentBuilder {
            protocol,
            seed: DEFAULT_SEED,
            spec: ClusterSpec::single_dc(2, 1),
            sessions_per_cluster: 1,
            default_session: SessionOptions::default(),
            config: SystemConfig::new(protocol),
            retry: None,
            latency: LatencyModel::default(),
            partitions: PartitionSchedule::none(),
            drivers: Vec::new(),
            engine_factory: None,
            durable: None,
        }
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cluster deployment.
    pub fn clusters(mut self, spec: ClusterSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Number of interactive session slots provisioned per cluster
    /// (claimed, in round-robin cluster order, by
    /// [`Frontend::open_session`]).
    pub fn sessions_per_cluster(mut self, n: usize) -> Self {
        self.sessions_per_cluster = n;
        self
    }

    /// Default session options: used by driver-mode clients and by any
    /// session slot never explicitly opened. Interactive sessions pick
    /// their own options at [`Frontend::open_session`] time.
    pub fn default_session(mut self, session: SessionOptions) -> Self {
        self.default_session = session;
        self
    }

    /// Overrides the system configuration (service model, intervals).
    /// The protocol field is forced to the builder's protocol.
    pub fn config(mut self, mut config: SystemConfig) -> Self {
        config.protocol = self.protocol;
        self.config = config;
        self
    }

    /// Overrides the client retry/backoff policy. Applied at build
    /// time over the final configuration, so it composes with
    /// [`DeploymentBuilder::config`] in either order.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Overrides the latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Installs a partition schedule.
    pub fn partitions(mut self, partitions: PartitionSchedule) -> Self {
        self.partitions = partitions;
        self
    }

    /// Closed-loop mode: one driver per client. The number of clients
    /// becomes `drivers.len()`, assigned to clusters round-robin.
    pub fn drivers(mut self, drivers: Vec<Box<dyn TxnSource>>) -> Self {
        self.drivers = drivers;
        self
    }

    /// Installs a custom [`ProtocolEngine`] factory used for every
    /// server, instead of the registry engine for the builder's
    /// protocol kind. This is how engines outside
    /// [`crate::protocol::engine_for`] plug into the simulator, the
    /// threaded runtime and the benchmark harness without any
    /// server-side changes. Client-side behavior (buffering, routing)
    /// still follows the builder's [`ProtocolKind`].
    pub fn engine_factory(
        mut self,
        factory: impl Fn() -> Box<dyn ProtocolEngine> + Send + Sync + 'static,
    ) -> Self {
        self.engine_factory = Some(Arc::new(factory));
        self
    }

    /// Backs every server with a [`DurableStore`] rooted at
    /// `dir/server-<id>` instead of a volatile [`MemStore`]: writes are
    /// WAL-logged before they are acknowledged, and a server rebuilt by
    /// [`SimFrontend::restart_server`] recovers its memtable from the
    /// log (including deliberately-torn tails). This is the paper's
    /// durable configuration, and the substrate crash-restart nemesis
    /// schedules require.
    pub fn durable(mut self, dir: impl Into<PathBuf>, policy: SyncPolicy) -> Self {
        self.durable = Some((dir.into(), policy));
        self
    }

    /// Builds the deployment on the discrete-event simulator backend.
    ///
    /// # Panics
    /// Panics if the spec is rejected by [`DeploymentBuilder::try_build`]
    /// (unequal cluster sizes, a zero-server cluster, no session slots).
    pub fn build(self) -> SimFrontend {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the deployment on the simulator backend, rejecting an
    /// unusable spec with [`HatError::InvalidDeployment`] instead of
    /// panicking — a zero-server cluster, say, would otherwise only
    /// surface as a routing panic on the first key touched.
    pub fn try_build(self) -> Result<SimFrontend, HatError> {
        let engine_factory = self.engine_factory.clone();
        let durable = self.durable.clone();
        let (engine_config, topology, actors, layout, config, trace, obs) =
            self.try_build_parts()?;
        let mut engine = Engine::new(engine_config, topology, actors);
        if trace.is_enabled() {
            // Network-level events come from the substrate, not the
            // actors: the engine reports every send/deliver/drop and the
            // closure translates them into trace vocabulary. The hook is
            // rng-neutral, so enabling it cannot perturb a seeded run.
            let sink = trace.clone();
            engine.set_net_tracer(move |t, from, to, msg: &Msg, hop| {
                let kind = match hop {
                    hat_sim::NetHop::Send => TraceEventKind::MsgSend {
                        from,
                        to,
                        label: msg.label(),
                        bytes: msg.approx_bytes(),
                    },
                    hat_sim::NetHop::Deliver => TraceEventKind::MsgRecv {
                        from,
                        to,
                        label: msg.label(),
                        bytes: msg.approx_bytes(),
                    },
                    hat_sim::NetHop::DropPartition => TraceEventKind::MsgDrop {
                        from,
                        to,
                        label: msg.label(),
                        reason: DropReason::Partition,
                    },
                    hat_sim::NetHop::DropCrash => TraceEventKind::MsgDrop {
                        from,
                        to,
                        label: msg.label(),
                        reason: DropReason::Crashed,
                    },
                };
                let node = match hop {
                    hat_sim::NetHop::Deliver | hat_sim::NetHop::DropCrash => to,
                    _ => from,
                };
                sink.record(t.as_micros(), node, kind);
            });
        }
        Ok(SimFrontend {
            engine,
            layout,
            config,
            opened: 0,
            engine_factory,
            durable,
            trace,
            obs,
        })
    }

    /// Builds the deployment pieces without an engine — used by external
    /// runtimes (e.g. `hat-runtime`'s threaded executor) that drive the
    /// same actors themselves. The returned [`TraceSink`] and
    /// [`ObsSink`] are the deployment-wide sinks already installed on
    /// every actor: no-op handles unless [`SystemConfig::trace`] /
    /// [`SystemConfig::obs`] are set.
    ///
    /// # Panics
    /// Panics on a spec [`DeploymentBuilder::try_build_parts`] rejects.
    #[allow(clippy::type_complexity)]
    pub fn build_parts(
        self,
    ) -> (
        EngineConfig,
        Topology,
        Vec<Node>,
        Arc<ClusterLayout>,
        Arc<SystemConfig>,
        TraceSink,
        ObsSink,
    ) {
        self.try_build_parts().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`DeploymentBuilder::build_parts`]: validates the
    /// deployment spec and returns [`HatError::InvalidDeployment`] for a
    /// spec the layout cannot route over (no clusters, a zero-server
    /// cluster, unequal cluster sizes — positional anti-entropy peering
    /// requires equal partition counts — or zero session slots).
    #[allow(clippy::type_complexity)]
    pub fn try_build_parts(
        self,
    ) -> Result<
        (
            EngineConfig,
            Topology,
            Vec<Node>,
            Arc<ClusterLayout>,
            Arc<SystemConfig>,
            TraceSink,
            ObsSink,
        ),
        HatError,
    > {
        let sizes: Vec<usize> = self.spec.clusters.iter().map(|(_, n)| *n).collect();
        if sizes.is_empty() {
            return Err(HatError::InvalidDeployment {
                reason: "spec declares no clusters".into(),
            });
        }
        if sizes.contains(&0) {
            return Err(HatError::InvalidDeployment {
                reason: format!("spec declares a zero-server cluster: {sizes:?}"),
            });
        }
        if sizes.iter().any(|&n| n != sizes[0]) {
            return Err(HatError::InvalidDeployment {
                reason: format!(
                    "clusters must be equal-sized (positional anti-entropy \
                     peering pairs replicas by index), got {sizes:?}"
                ),
            });
        }
        let n_clusters = sizes.len();

        let mut topology = Topology::new();
        let mut servers: Vec<Vec<NodeId>> = Vec::with_capacity(n_clusters);
        for (site, n) in &self.spec.clusters {
            servers.push(topology.add_nodes(*site, *n));
        }
        let n_clients = if self.drivers.is_empty() {
            self.sessions_per_cluster * n_clusters
        } else {
            self.drivers.len()
        };
        if n_clients == 0 {
            return Err(HatError::InvalidDeployment {
                reason: "deployment provisions no session slots".into(),
            });
        }
        // Homes derived for any client count: round-robin over clusters.
        let mut clients = Vec::with_capacity(n_clients);
        let mut client_home = Vec::with_capacity(n_clients);
        for i in 0..n_clients {
            let home = i % n_clusters;
            let site = self.spec.clusters[home].0;
            clients.push(topology.add_node(site));
            client_home.push(home);
        }
        let layout = Arc::new(ClusterLayout::new(servers, clients.clone(), client_home));
        let mut config = self.config;
        if let Some(retry) = self.retry {
            config.retry = retry;
        }
        let config = Arc::new(config);

        let mut drivers: Vec<Option<Box<dyn TxnSource>>> =
            self.drivers.into_iter().map(Some).collect();
        drivers.resize_with(n_clients, || None);

        let trace = if config.trace {
            TraceSink::enabled()
        } else {
            TraceSink::disabled()
        };
        let obs = if config.obs.enabled {
            ObsSink::enabled(config.obs.options(config.protocol))
        } else {
            ObsSink::disabled()
        };

        let mut actors: Vec<Node> = Vec::with_capacity(topology.len());
        for cluster in 0..n_clusters {
            for &id in &layout.servers[cluster] {
                let store = make_store(&self.durable, id, config.version_chain_limit);
                let mut server = match &self.engine_factory {
                    Some(factory) => Server::with_engine(
                        id,
                        cluster,
                        Arc::clone(&layout),
                        Arc::clone(&config),
                        store,
                        factory(),
                    ),
                    None => {
                        Server::new(id, cluster, Arc::clone(&layout), Arc::clone(&config), store)
                    }
                };
                server.set_trace_sink(trace.clone());
                actors.push(Node::Server(server));
            }
        }
        for (i, &id) in clients.iter().enumerate() {
            // writer id 0 is reserved for the initial version's writer
            let mut c = Client::new(
                id,
                i as u32 + 1,
                layout.client_home[i],
                Arc::clone(&layout),
                Arc::clone(&config),
                self.default_session,
            );
            if let Some(d) = drivers[i].take() {
                c = c.with_driver(d);
            }
            c.set_trace_sink(trace.clone());
            c.set_obs_sink(obs.clone());
            actors.push(Node::Client(c));
        }

        Ok((
            EngineConfig {
                seed: self.seed,
                latency: self.latency,
                partitions: self.partitions,
            },
            topology,
            actors,
            layout,
            config,
            trace,
            obs,
        ))
    }
}

/// Default engine seed when the builder is not given one.
const DEFAULT_SEED: u64 = 0x4A7_5EED;

/// Builds the store for server `id`: WAL-backed when the deployment is
/// durable, otherwise a plain memtable. Each server logs into its own
/// subdirectory so crash-restart can recover one replica independently.
fn make_store(
    durable: &Option<(PathBuf, SyncPolicy)>,
    id: NodeId,
    version_cap: usize,
) -> Box<dyn Store + Send> {
    match durable {
        Some((dir, policy)) => Box::new(
            DurableStore::open(server_store_dir(dir, id), *policy)
                .expect("open durable server store"),
        ),
        None => Box::new(MemStore::with_version_cap(version_cap)),
    }
}

/// Per-server durable-store directory under the deployment root.
fn server_store_dir(dir: &Path, id: NodeId) -> PathBuf {
    dir.join(format!("server-{id}"))
}

/// The simulator-backed [`Frontend`]: a running deployment on the
/// deterministic discrete-event engine.
pub struct SimFrontend {
    engine: Engine<Node>,
    layout: Arc<ClusterLayout>,
    config: Arc<SystemConfig>,
    opened: usize,
    engine_factory: Option<Arc<dyn Fn() -> Box<dyn ProtocolEngine> + Send + Sync>>,
    durable: Option<(PathBuf, SyncPolicy)>,
    trace: TraceSink,
    obs: ObsSink,
}

impl SimFrontend {
    /// The node id of client slot `idx` (0-based). Used to address
    /// clients in partition schedules and layout probes.
    pub fn client(&self, idx: usize) -> NodeId {
        self.layout.clients[idx]
    }

    /// Number of provisioned client/session slots.
    pub fn num_clients(&self) -> usize {
        self.layout.clients.len()
    }

    /// The cluster layout.
    pub fn layout(&self) -> &ClusterLayout {
        &self.layout
    }

    /// The deployment configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The deployment-wide trace sink (no-op unless the configuration
    /// enabled [`SystemConfig::trace`]).
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// Snapshot of the structured trace so far, ordered by
    /// `(time, sequence)`. Empty when tracing is disabled.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.events()
    }

    /// The deployment-wide live-telemetry sink (no-op unless the
    /// configuration enabled [`crate::config::ObsConfig`]).
    pub fn obs_sink(&self) -> &ObsSink {
        &self.obs
    }

    /// Snapshot of the live time series (None when telemetry is off).
    pub fn obs_series(&self) -> Option<hat_obs::TimeSeries> {
        self.obs.series()
    }

    /// Snapshot of the live metrics registry with the deployment's
    /// end-of-run exposition folded in: client metrics (per engine),
    /// server stats, and the probe/checker-derived metrics. None when
    /// telemetry is off.
    pub fn obs_registry(&self) -> Option<hat_obs::MetricsRegistry> {
        let mut reg = self.obs.registry()?;
        let engine = self.config.protocol.label();
        self.aggregate_metrics()
            .export_into(&mut reg, &[("engine", engine)]);
        self.server_stats()
            .export_into(&mut reg, &[("engine", engine)]);
        Some(reg)
    }

    /// Live-telemetry tick, called after every engine step while
    /// telemetry is on: at each sample boundary it first resolves
    /// pending t-visibility probes against the replica stores
    /// (read-only `latest_at_or_above` lookups; crashed replicas count
    /// as not-yet-visible), then closes the series window from a purely
    /// observational snapshot of client/server counters. Does nothing
    /// — not even taking the sink lock — when telemetry is off.
    fn obs_pump(&mut self) {
        let now_us = self.engine.now().as_micros();
        if !self.obs.sample_due(now_us) {
            return;
        }
        let engine = &self.engine;
        self.obs.drive_probes(now_us, |key, stamp, node| {
            if engine.is_crashed(node) {
                return false;
            }
            engine
                .actor(node)
                .as_server()
                .map(|s| {
                    s.store()
                        .latest_at_or_above(key, VersionStamp::new(stamp.0, stamp.1))
                        .is_some()
                })
                .unwrap_or(false)
        });
        let cum = self.collect_cumulative();
        self.obs.sample(now_us, cum);
    }

    /// Cumulative counter snapshot for one series window boundary.
    /// Strictly read-only over engine state.
    fn collect_cumulative(&self) -> hat_obs::Cumulative {
        let mut c = hat_obs::Cumulative::default();
        let mut lat = hat_obs::Histogram::for_latency_ms();
        for &cl in &self.layout.clients {
            let m = &self.engine.actor(cl).as_client().expect("client").metrics;
            c.committed += m.committed;
            c.aborted += m.aborted_external + m.aborted_internal;
            c.retries += m.retries;
            c.redirects += m.shard_redirects;
            lat.merge(&m.txn_latency_ms);
        }
        c.commit_lat = Some(lat);
        for &s in self.layout.servers.iter().flatten() {
            if let Some(srv) = self.engine.actor(s).as_server() {
                c.wal_bytes += srv.store().wal_bytes();
                c.repl_lag = c.repl_lag.max(srv.replication_lag());
            }
            c.dropped += self.engine.fault_stats(s).dropped_by_partition;
        }
        c
    }

    /// Direct engine access (tests, experiments).
    pub fn engine_mut(&mut self) -> &mut Engine<Node> {
        &mut self.engine
    }

    /// Immutable engine access.
    pub fn engine(&self) -> &Engine<Node> {
        &self.engine
    }

    /// Metrics of the client at `node` (cloned snapshot). Prefer
    /// [`Frontend::session_metrics`] for opened sessions.
    pub fn client_metrics(&self, client: NodeId) -> ClientMetrics {
        self.engine
            .actor(client)
            .as_client()
            .expect("not a client")
            .metrics
            .clone()
    }

    /// Total MAV `required` misses across servers (0 in a correct run).
    pub fn mav_required_misses(&self) -> u64 {
        self.layout
            .servers
            .iter()
            .flatten()
            .map(|&s| {
                self.engine
                    .actor(s)
                    .as_server()
                    .map(|srv| srv.mav_required_misses())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Aggregated replication and group-commit counters across every
    /// server of the deployment.
    pub fn server_stats(&self) -> crate::server::ServerStats {
        let mut total = crate::server::ServerStats::default();
        for &s in self.layout.servers.iter().flatten() {
            if let Some(srv) = self.engine.actor(s).as_server() {
                total.merge(&srv.stats);
            }
            // Partition drops and crash counts live in the engine's fault
            // ledger, not the actor: they survive actor replacement.
            let faults = self.engine.fault_stats(s);
            total.msgs_dropped_by_partition += faults.dropped_by_partition;
            total.crashes += faults.crashes;
        }
        total
    }

    /// Hard-crashes server `node`: in-flight deliveries and armed timers
    /// die with it. Volatile state (memtables, RAMP prepared sets, locks)
    /// is lost; only the WAL of a durable deployment survives.
    ///
    /// Panics if `node` is not a server or is already crashed.
    pub fn crash_server(&mut self, node: NodeId) {
        assert!(
            self.engine.actor(node).as_server().is_some(),
            "crash_server: node {node} is not a server"
        );
        self.trace
            .record(self.engine.now().as_micros(), node, TraceEventKind::Crash);
        self.engine.crash(node);
    }

    /// Leaves `bytes` of a torn partial frame at the tail of a crashed
    /// server's WAL — the write that was in flight when the crash hit.
    /// Recovery detects and discards it. Synced (acknowledged) records
    /// are never touched: destroying those would be disk corruption, a
    /// fault outside what crash recovery promises to mask. Only valid on
    /// durable deployments while the server is down.
    pub fn tear_wal_tail(&mut self, node: NodeId, bytes: u64) {
        assert!(
            self.engine.is_crashed(node),
            "tear_wal_tail: server {node} must be crashed first"
        );
        let (dir, _) = self
            .durable
            .as_ref()
            .expect("tear_wal_tail: deployment is not durable");
        Wal::tear_tail(DurableStore::wal_path(server_store_dir(dir, node)), bytes)
            .expect("tear WAL tail");
    }

    /// Rebuilds a crashed server from its recovered store and boots it.
    ///
    /// On a durable deployment the new incarnation replays its WAL
    /// (checkpoint + valid log prefix; a torn tail is detected and
    /// discarded) and re-seeds its replication log from the recovered
    /// versions so surviving records re-gossip. Peers rewind their
    /// cursors for this node, re-sending everything they still retain:
    /// records the torn tail lost are the newest, so they sit above every
    /// peer's compaction horizon. Application is idempotent.
    pub fn restart_server(&mut self, node: NodeId) {
        assert!(
            self.engine.is_crashed(node),
            "restart_server: server {node} is not crashed"
        );
        let cluster = self
            .layout
            .cluster_of(node)
            .expect("restart_server: node has no cluster");
        // Cumulative replay count across incarnations: the fresh server's
        // stats start from this crash's recovery, add prior lifetimes.
        let prior_replayed = self
            .engine
            .actor(node)
            .as_server()
            .map(|s| s.stats.wal_records_replayed)
            .unwrap_or(0);
        let store = make_store(&self.durable, node, self.config.version_chain_limit);
        let mut server = match &self.engine_factory {
            Some(factory) => Server::with_engine(
                node,
                cluster,
                Arc::clone(&self.layout),
                Arc::clone(&self.config),
                store,
                factory(),
            ),
            None => Server::new(
                node,
                cluster,
                Arc::clone(&self.layout),
                Arc::clone(&self.config),
                store,
            ),
        };
        server.stats.wal_records_replayed += prior_replayed;
        server.mark_restarted();
        server.set_trace_sink(self.trace.clone());
        self.trace
            .record(self.engine.now().as_micros(), node, TraceEventKind::Restart);
        for peer in self.layout.anti_entropy_peers(node) {
            if let Some(srv) = self.engine.actor_mut(peer).as_server_mut() {
                srv.reset_peer_cursor(node);
            }
        }
        self.engine.restart_with(node, Node::Server(server));
    }

    /// Starts a live handoff of ring token `token` to the replica at
    /// `to_position`, in every cluster simultaneously (handoffs are
    /// symmetric so replicas of a key stay positional across clusters).
    /// The `BeginHandoff` is broadcast to every server of each cluster;
    /// only the token's *current* owner acts on it — which makes chained
    /// handoffs (A→B, later B→C or B→A) work without the caller
    /// tracking who owns what. A no-op when the owner already is at
    /// `to_position` or a handoff for the token is in flight.
    ///
    /// # Panics
    /// Panics if `to_position` is not a valid position in the ring.
    pub fn begin_handoff(&mut self, token: u32, to_position: u32) {
        assert!(
            (to_position as usize) < self.layout.shards_per_cluster(),
            "begin_handoff: position {to_position} out of range"
        );
        for cluster in 0..self.layout.num_clusters() {
            let to = self.layout.servers[cluster][to_position as usize];
            for &server in &self.layout.servers[cluster].clone() {
                if self.engine.is_crashed(server) {
                    continue;
                }
                self.engine.with_actor_ctx(server, |node, ctx| {
                    if let Some(s) = node.as_server_mut() {
                        s.begin_handoff(ctx, token, to);
                    }
                });
            }
        }
    }

    fn abandon_client(&mut self, client: NodeId) {
        // Needs a full Ctx: abandoning releases any held 2PL locks.
        self.engine.with_actor_ctx(client, |node, ctx| {
            if let Some(c) = node.as_client_mut() {
                c.abandon(ctx);
            }
        });
    }

    /// Post-`wait_idle` check shared by the operation executors: if the
    /// transaction finished mid-operation (2PL lock timeout → external
    /// abort), the operation must report that instead of succeeding.
    fn check_interrupted(&self, client: NodeId) -> Result<(), HatError> {
        match self
            .engine
            .actor(client)
            .as_client()
            .unwrap()
            .op_interrupted()
        {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Steps the engine until `client` has no outstanding network round,
    /// or the operation deadline passes. On deadline the error names the
    /// key being operated on (when the caller knows one), so a sticky
    /// client whose home cluster has crashed every replica surfaces
    /// *which* item was unreachable instead of a bare timeout.
    fn wait_idle(&mut self, client: NodeId, key: Option<&Key>) -> Result<(), HatError> {
        let deadline = self.engine.now() + self.config.op_deadline;
        loop {
            let busy = self
                .engine
                .actor(client)
                .as_client()
                .expect("not a client")
                .busy();
            if !busy {
                return Ok(());
            }
            match self.engine.peek_time() {
                Some(t) if t <= deadline => {
                    self.engine.step();
                    if self.obs.is_enabled() {
                        self.obs_pump();
                    }
                }
                _ => {
                    return Err(HatError::Unavailable {
                        key: key.map(|k| String::from_utf8_lossy(k).into_owned()),
                    })
                }
            }
        }
    }
}

impl TxnBackend for SimFrontend {
    fn begin(&mut self, session: &Session) -> Result<(), HatError> {
        self.engine.with_actor_ctx(session.node(), |node, ctx| {
            let c = node.as_client_mut().expect("not a client");
            c.clear_finished();
            c.begin(ctx.now());
        });
        Ok(())
    }

    fn exec_get(&mut self, session: &Session, key: Key) -> Result<Option<Bytes>, HatError> {
        let client = session.node();
        let attributed = key.clone();
        self.engine.with_actor_ctx(client, |node, ctx| {
            node.as_client_mut().unwrap().issue_read(ctx, key)
        });
        self.wait_idle(client, Some(&attributed))?;
        self.check_interrupted(client)?;
        Ok(self
            .engine
            .actor(client)
            .as_client()
            .unwrap()
            .last_read_value())
    }

    fn exec_get_many(
        &mut self,
        session: &Session,
        keys: Vec<Key>,
    ) -> Result<Vec<Option<Bytes>>, HatError> {
        // Only RAMP-Small has a native one-shot batch read; everything
        // else reads sequentially (the trait default).
        if self.config.protocol != ProtocolKind::RampSmall {
            return keys
                .into_iter()
                .map(|k| self.exec_get(session, k))
                .collect();
        }
        let n = keys.len();
        let client = session.node();
        let attributed = keys.first().cloned();
        self.engine.with_actor_ctx(client, |node, ctx| {
            node.as_client_mut().unwrap().issue_read_many(ctx, keys)
        });
        self.wait_idle(client, attributed.as_ref())?;
        self.check_interrupted(client)?;
        Ok(self
            .engine
            .actor(client)
            .as_client()
            .unwrap()
            .last_read_values(n))
    }

    fn exec_put(&mut self, session: &Session, key: Key, value: Bytes) -> Result<(), HatError> {
        let client = session.node();
        let attributed = key.clone();
        self.engine.with_actor_ctx(client, |node, ctx| {
            node.as_client_mut().unwrap().issue_write(ctx, key, value)
        });
        self.wait_idle(client, Some(&attributed))?;
        self.check_interrupted(client)
    }

    fn exec_scan(&mut self, session: &Session, prefix: Key) -> Result<Vec<(Key, Bytes)>, HatError> {
        let client = session.node();
        let attributed = prefix.clone();
        self.engine.with_actor_ctx(client, |node, ctx| {
            node.as_client_mut().unwrap().issue_scan(ctx, prefix)
        });
        self.wait_idle(client, Some(&attributed))?;
        self.check_interrupted(client)?;
        Ok(self
            .engine
            .actor(client)
            .as_client()
            .unwrap()
            .last_scan()
            .to_vec())
    }

    fn exec_abort(&mut self, session: &Session) {
        self.engine.with_actor_ctx(session.node(), |node, ctx| {
            node.as_client_mut().unwrap().abort(ctx)
        });
    }

    fn commit(&mut self, session: &Session) -> Result<(), HatError> {
        let client = session.node();
        self.engine.with_actor_ctx(client, |node, ctx| {
            node.as_client_mut().unwrap().start_commit(ctx)
        });
        if let Err(e) = self.wait_idle(client, None) {
            self.abandon_client(client);
            return Err(e);
        }
        self.engine.with_actor_ctx(client, |node, ctx| {
            node.as_client_mut().unwrap().commit_result(ctx)
        })
    }

    fn abandon(&mut self, session: &Session) {
        self.abandon_client(session.node());
    }
}

impl Frontend for SimFrontend {
    fn open_session(&mut self, opts: SessionOptions) -> Session {
        assert!(
            self.opened < self.layout.clients.len(),
            "deployment provisions {} session slot(s); raise \
             DeploymentBuilder::sessions_per_cluster",
            self.layout.clients.len()
        );
        let idx = self.opened;
        self.opened += 1;
        let node = self.layout.clients[idx];
        self.engine
            .actor_mut(node)
            .as_client_mut()
            .expect("session slot is a client")
            .set_session_options(opts);
        Session::new(idx as u32, node, opts)
    }

    fn run_for(&mut self, d: SimDuration) {
        if !self.obs.is_enabled() {
            self.engine.run_for(d);
            return;
        }
        // Step-by-step with a telemetry pump between events — the same
        // schedule `Engine::run_for` executes (step while the next event
        // is within the deadline, then advance the clock), so enabling
        // telemetry cannot change what runs or when.
        let deadline = self.engine.now() + d;
        while let Some(t) = self.engine.peek_time() {
            if t > deadline {
                break;
            }
            self.engine.step();
            self.obs_pump();
        }
        self.engine.run_until(deadline);
        self.obs_pump();
    }

    fn quiesce_duration(&self) -> SimDuration {
        self.config.quiesce_duration()
    }

    fn session_metrics(&self, session: &Session) -> ClientMetrics {
        self.client_metrics(session.node())
    }

    fn aggregate_metrics(&self) -> ClientMetrics {
        let mut total = ClientMetrics::default();
        for &c in &self.layout.clients {
            total.merge(&self.engine.actor(c).as_client().unwrap().metrics);
        }
        total
    }

    fn take_records(&mut self) -> Vec<TxnRecord> {
        let mut all = Vec::new();
        for &c in &self.layout.clients.clone() {
            let client = self
                .engine
                .actor_mut(c)
                .as_client_mut()
                .expect("not a client");
            all.extend(client.take_records());
        }
        all.sort_by_key(|r| (r.session, r.session_seq));
        all
    }
}
