//! The `eventual` engine: last-writer-wins Read Uncommitted with
//! all-to-all anti-entropy (§5.1.1, the paper's most available
//! configuration).
//!
//! Server-side this is the pure default behavior of
//! [`crate::protocol::ProtocolEngine`]: LWW installs, LWW reads, gossip
//! on change. Everything Read Uncommitted needs — a total per-item
//! version order — is provided by the storage layer's stamp ordering.

use crate::protocol::engine::ProtocolEngine;

/// Engine for [`crate::ProtocolKind::Eventual`].
#[derive(Debug, Default, Clone, Copy)]
pub struct EventualEngine;

impl ProtocolEngine for EventualEngine {
    fn name(&self) -> &'static str {
        "eventual"
    }
}
