//! The pluggable protocol layer: one [`ProtocolEngine`] per
//! isolation/consistency level.
//!
//! The server actor ([`crate::Server`]) owns everything protocol-agnostic
//! — the service queue, the anti-entropy gossip loop, the replication log
//! and the backing store — and delegates every protocol-specific decision
//! to a boxed `ProtocolEngine`:
//!
//! * how a read at a `required` bound is answered,
//! * what a write costs and what happens when it is installed (plain
//!   last-writer-wins vs MAV's pending/good two-phase visibility),
//! * how anti-entropy copies, sibling notifications and lock traffic are
//!   handled,
//! * what extra work the anti-entropy timer performs.
//!
//! Adding a new level is therefore local: implement the trait (most hooks
//! have last-writer-wins defaults), register it in [`engine_for`], and
//! every driver — the discrete-event simulator, the threaded runtime and
//! the benchmark harness — picks it up without touching `server.rs`.

use crate::cluster::ClusterLayout;
use crate::config::{ProtocolKind, ServiceModel, SystemConfig};
use crate::messages::{Msg, VersionReq};
use crate::protocol::replication::ReplicationLog;
use crate::protocol::twopl::Grant;
use crate::timestamp::Timestamp;
use hat_sim::{Ctx, NodeId, SimDuration};
use hat_storage::{Key, Record, SharedRecord, Store};

/// What a [`ProtocolEngine::read_version`] produced.
#[derive(Debug, Clone, PartialEq)]
pub enum VersionAnswer {
    /// Answer now (`None` = nothing satisfies the request).
    Ready(Option<SharedRecord>),
    /// Hold the reply: the requested version is guaranteed to be in
    /// flight (RAMP exact-stamp fetches); the engine replies itself,
    /// through `ctx`, when the version arrives.
    Parked,
}

/// Mutable view over the protocol-agnostic server state, handed to every
/// engine hook. Borrowing a view (rather than the whole server) keeps the
/// engine and the server state disjoint, so an engine can never reach the
/// service queue or timers except through its declared hooks.
pub struct ServerView<'a> {
    /// The replica's good/visible version store.
    pub store: &'a mut dyn Store,
    /// The anti-entropy buffer gossiped to positional peers.
    pub repl: &'a mut ReplicationLog,
    /// Cluster layout (replica placement, masters).
    pub layout: &'a ClusterLayout,
    /// Deployment configuration.
    pub config: &'a SystemConfig,
    /// The owning server's cluster index.
    pub cluster: usize,
}

/// A protocol state machine plugged into the server.
///
/// Every hook has a sensible last-writer-wins default, so a minimal
/// engine (e.g. the `eventual` level, or a stub for a new level) is an
/// empty struct plus a [`ProtocolEngine::name`].
pub trait ProtocolEngine: Send + std::fmt::Debug {
    /// Short label used in experiment output and `Debug` formatting.
    fn name(&self) -> &'static str;

    /// Serves an item read. `required` is the client's lower bound
    /// (Appendix B); engines without the concept ignore it and answer
    /// with the last-writer-wins winner.
    fn read(
        &mut self,
        view: &mut ServerView<'_>,
        key: &Key,
        required: Timestamp,
    ) -> Option<SharedRecord> {
        let _ = required;
        view.store.latest(key)
    }

    /// Service cost charged for installing `record`.
    fn write_cost(&self, service: &ServiceModel, record: &Record) -> SimDuration {
        let _ = record;
        service.write()
    }

    /// Serves a timestamp-only read (RAMP-Small round 1): the stamp of
    /// the latest *visible* version, [`Timestamp::INITIAL`] when the key
    /// has none. The default answers from the ordinary store.
    fn read_ts(&mut self, view: &mut ServerView<'_>, key: &Key) -> Timestamp {
        view.store
            .latest(key)
            .map(|r| r.stamp)
            .unwrap_or(Timestamp::INITIAL)
    }

    /// Serves a second-round version fetch (RAMP repair reads). The
    /// default resolves against the visible store and never parks;
    /// engines with a prepared/pending set overlay it and may park
    /// exact-stamp fetches until the version arrives. `from`/`txn`/`op`
    /// identify the requester so a parking engine can reply later.
    fn read_version(
        &mut self,
        view: &mut ServerView<'_>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: &Key,
        req: &VersionReq,
    ) -> VersionAnswer {
        let _ = (from, txn, op);
        VersionAnswer::Ready(resolve_version(view.store, key, req))
    }

    /// Applies a RAMP commit marker: promote the prepared version of
    /// `key` stamped `ts` to visible. No-op for engines whose writes are
    /// visible on install.
    fn on_commit_mark(
        &mut self,
        view: &mut ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        ts: Timestamp,
    ) {
        let _ = (view, ctx, key, ts);
    }

    /// Installs a client write, emitting any protocol traffic through
    /// `ctx` (e.g. MAV sibling notifications).
    fn apply_client_write(
        &mut self,
        view: &mut ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        record: SharedRecord,
    ) {
        let _ = ctx;
        lww_apply(view, key, record);
    }

    /// Installs an anti-entropy copy received from a peer replica.
    /// Engines must apply these idempotently (delivery is at-least-once)
    /// and must *not* re-gossip (peers form a clique; the origin gossips
    /// to everyone).
    fn apply_replicated_write(
        &mut self,
        view: &mut ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        record: SharedRecord,
    ) {
        let _ = ctx;
        let _ = view.store.put(key, record);
    }

    /// Handles a sibling notification (MAV's `notify(ts)`).
    fn on_notify(
        &mut self,
        view: &mut ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        ts: Timestamp,
        key: Key,
    ) {
        let _ = (view, ctx, from, ts, key);
    }

    /// True if a client write of `key` by `txn` may be installed now.
    /// Locking engines fence here: a commit write whose exclusive lock
    /// is no longer on the table (the server crashed and rebuilt an
    /// empty table) must not install, because the lock may already have
    /// been re-granted to a younger transaction. Lock-free engines admit
    /// everything.
    fn write_admissible(&self, txn: Timestamp, key: &Key) -> bool {
        let _ = (txn, key);
        true
    }

    /// True if `txn` still holds a lock (any mode) on `key`. The
    /// read-path counterpart of [`ProtocolEngine::write_admissible`]:
    /// at commit time a 2PL client validates every read-locked key with
    /// a [`Msg::LockCheck`], because a crashed-and-restarted master has
    /// an empty lock table and may have re-granted the key to a
    /// conflicting writer while this transaction still believes it
    /// holds the read lock. Lock-free engines vacuously say yes.
    fn lock_valid(&self, txn: Timestamp, key: &Key) -> bool {
        let _ = (txn, key);
        true
    }

    /// Handles a peer's complete acknowledgement set for a transaction
    /// it already promoted (MAV's answer to a duplicate notification —
    /// the recovery path for notifications lost to one-way partitions).
    fn on_notify_summary(
        &mut self,
        view: &mut ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        ts: Timestamp,
        acks: Vec<(NodeId, Key)>,
    ) {
        let _ = (view, ctx, from, ts, acks);
    }

    /// Handles a lock request, returning the grants to acknowledge now
    /// (empty means queued — the grant is returned by a later
    /// [`ProtocolEngine::on_unlock`]). Engines without locking ignore
    /// the request: their clients never send one.
    fn on_lock(
        &mut self,
        view: &mut ServerView<'_>,
        client: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        exclusive: bool,
    ) -> Vec<Grant> {
        let _ = (view, client, txn, op, key, exclusive);
        Vec::new()
    }

    /// Releases `txn`'s locks on `keys` (all of them when `keys` is
    /// empty), returning grants for promoted waiters.
    fn on_unlock(
        &mut self,
        view: &mut ServerView<'_>,
        txn: Timestamp,
        keys: Vec<Key>,
    ) -> Vec<Grant> {
        let _ = (view, txn, keys);
        Vec::new()
    }

    /// Invoked on every anti-entropy tick, after the gossip batches have
    /// been sent — the hook MAV uses to replay notifications lost to
    /// partitions.
    fn on_anti_entropy_tick(&mut self, view: &mut ServerView<'_>, ctx: &mut Ctx<'_, Msg>) {
        let _ = (view, ctx);
    }

    /// Reads that missed their `required` bound (0 for engines without
    /// the concept; must stay 0 in a correct MAV run).
    fn required_misses(&self) -> u64 {
        0
    }
}

/// Shared last-writer-wins install + gossip, used by every engine whose
/// server-side write path is plain LWW (eventual, RC, master, 2PL).
///
/// Gossips when the version is new *or* its value changed (a
/// transaction's later write of the same key carries the same stamp but
/// supersedes the value).
pub fn lww_apply(view: &mut ServerView<'_>, key: Key, record: SharedRecord) {
    let changed = view
        .store
        .exact(&key, record.stamp)
        .map(|prior| prior.value != record.value)
        .unwrap_or(true);
    view.store
        .put(key.clone(), record.clone())
        .expect("in-memory put cannot fail");
    if changed {
        view.repl.push(key, record);
    }
}

/// Shared resolution of a [`VersionReq`] against a plain visible store —
/// the default [`ProtocolEngine::read_version`] behavior, also used by
/// the RAMP engines for the committed part of their lookup.
pub fn resolve_version(store: &dyn Store, key: &Key, req: &VersionReq) -> Option<SharedRecord> {
    match req {
        VersionReq::Exact(ts) => store.get_at(key, *ts),
        VersionReq::AtOrBelow(ts) => store.latest_at_or_below(key, *ts),
        VersionReq::Among(set) => set
            .iter()
            .filter_map(|ts| store.get_at(key, *ts))
            .max_by_key(|r| r.stamp),
    }
}

/// Builds the engine for a built-in protocol kind. This registry is the
/// single place a new engine is wired up; custom engines can instead be
/// injected through [`crate::Server::with_engine`] or
/// [`crate::DeploymentBuilder::engine_factory`].
pub fn engine_for(kind: ProtocolKind) -> Box<dyn ProtocolEngine> {
    match kind {
        ProtocolKind::Eventual => Box::new(crate::protocol::eventual::EventualEngine),
        ProtocolKind::ReadCommitted => {
            Box::new(crate::protocol::read_committed::ReadCommittedEngine)
        }
        ProtocolKind::Mav => Box::new(crate::protocol::mav::MavEngine::default()),
        ProtocolKind::RampFast => Box::new(crate::protocol::ramp::RampFastEngine::default()),
        ProtocolKind::RampSmall => Box::new(crate::protocol::ramp::RampSmallEngine::default()),
        ProtocolKind::Master => Box::new(crate::protocol::master::MasterEngine),
        ProtocolKind::TwoPhaseLocking => Box::new(crate::protocol::twopl::TwoPlEngine::default()),
    }
}
