//! Distributed two-phase locking (the unavailable baseline).
//!
//! §6.1: "traditional two-phase locking for a transaction of length T may
//! require T lock operations and will require at least one lock and one
//! unlock operation. In a distributed environment, each of these lock
//! operations requires coordination ... If this coordination mechanism is
//! unavailable, transactions cannot safely commit."
//!
//! Each key's lock lives at its master replica. Locks are shared (reads)
//! or exclusive (writes), granted FIFO with the standard compatibility
//! matrix plus upgrade of a solely-held shared lock. Deadlocks are broken
//! by client-side lock timeouts (external aborts).

use crate::protocol::engine::{ProtocolEngine, ServerView};
use crate::timestamp::Timestamp;
use hat_sim::NodeId;
use hat_storage::Key;
use std::collections::{HashMap, VecDeque};

/// A lock grant to report back to a waiting client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// Client node to notify.
    pub client: NodeId,
    /// Transaction granted.
    pub txn: Timestamp,
    /// Op index echoed back.
    pub op: u32,
    /// Key granted — the server looks up its current version stamp so
    /// the [`crate::messages::Msg::LockResp`] can carry a Lamport floor
    /// (see the `floor` field there for why blind writes need it).
    pub key: Key,
}

#[derive(Debug, Clone)]
struct Waiter {
    client: NodeId,
    txn: Timestamp,
    op: u32,
    exclusive: bool,
}

#[derive(Debug, Default)]
struct LockState {
    /// Current holders; if any holder is exclusive it is the only one.
    holders: Vec<(Timestamp, bool)>,
    /// FIFO wait queue.
    queue: VecDeque<Waiter>,
}

impl LockState {
    fn holds(&self, txn: Timestamp) -> Option<bool> {
        self.holders
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, x)| *x)
    }

    fn compatible(&self, exclusive: bool) -> bool {
        if exclusive {
            self.holders.is_empty()
        } else {
            self.holders.iter().all(|(_, x)| !x)
        }
    }
}

/// Outcome of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// Granted immediately — reply now.
    Granted,
    /// Queued behind incompatible holders — reply when granted.
    Queued,
}

/// The per-server lock table.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: HashMap<Key, LockState>,
    /// Keys held per transaction (for release-all on abort).
    held: HashMap<Timestamp, Vec<Key>>,
}

impl LockTable {
    /// Fresh table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a lock on `key` for `txn`.
    pub fn acquire(
        &mut self,
        key: Key,
        txn: Timestamp,
        op: u32,
        exclusive: bool,
        client: NodeId,
    ) -> Acquire {
        let state = self.locks.entry(key.clone()).or_default();
        match state.holds(txn) {
            // Re-entrant: already exclusive, or shared request on a held
            // lock — grant.
            Some(true) => return Acquire::Granted,
            Some(false) if !exclusive => return Acquire::Granted,
            // Upgrade shared→exclusive: allowed when sole holder.
            Some(false) => {
                if state.holders.len() == 1 {
                    state.holders[0].1 = true;
                    return Acquire::Granted;
                }
                // Wait for other sharers to drain.
                state.queue.push_back(Waiter {
                    client,
                    txn,
                    op,
                    exclusive,
                });
                return Acquire::Queued;
            }
            None => {}
        }
        if state.compatible(exclusive) && state.queue.is_empty() {
            state.holders.push((txn, exclusive));
            self.held.entry(txn).or_default().push(key);
            Acquire::Granted
        } else {
            state.queue.push_back(Waiter {
                client,
                txn,
                op,
                exclusive,
            });
            Acquire::Queued
        }
    }

    /// Releases `txn`'s locks on `keys`, returning the grants to send.
    pub fn release(&mut self, txn: Timestamp, keys: &[Key]) -> Vec<Grant> {
        let mut grants = Vec::new();
        for key in keys {
            grants.extend(self.release_one(txn, key));
        }
        if let Some(held) = self.held.get_mut(&txn) {
            held.retain(|k| !keys.contains(k));
            if held.is_empty() {
                self.held.remove(&txn);
            }
        }
        grants
    }

    /// Releases everything `txn` holds (abort path).
    pub fn release_all(&mut self, txn: Timestamp) -> Vec<Grant> {
        let keys = self.held.remove(&txn).unwrap_or_default();
        let mut grants = Vec::new();
        for key in &keys {
            grants.extend(self.release_one(txn, key));
        }
        // The txn may also be sitting in wait queues; purge it.
        for state in self.locks.values_mut() {
            state.queue.retain(|w| w.txn != txn);
        }
        grants
    }

    fn release_one(&mut self, txn: Timestamp, key: &Key) -> Vec<Grant> {
        let Some(state) = self.locks.get_mut(key) else {
            return Vec::new();
        };
        state.holders.retain(|(t, _)| *t != txn);
        let mut grants = Vec::new();
        // Promote waiters FIFO while compatible.
        while let Some(front) = state.queue.front() {
            // Upgrade case: waiter already holds shared and wants exclusive.
            let is_upgrade = front.exclusive && state.holders == vec![(front.txn, false)];
            if is_upgrade {
                state.holders[0].1 = true;
            } else if state.compatible(front.exclusive) {
                state.holders.push((front.txn, front.exclusive));
                self.held.entry(front.txn).or_default().push(key.clone());
            } else {
                break;
            }
            let w = state.queue.pop_front().unwrap();
            grants.push(Grant {
                client: w.client,
                txn: w.txn,
                op: w.op,
                key: key.clone(),
            });
            if w.exclusive {
                break;
            }
        }
        if state.holders.is_empty() && state.queue.is_empty() {
            self.locks.remove(key);
        }
        grants
    }

    /// True if `txn` currently holds `key` exclusively. The write-path
    /// fence: a commit write arriving without its exclusive lock on the
    /// table means the lock was lost — the server crashed and rebuilt an
    /// empty table — and the key may since have been re-granted.
    pub fn holds_exclusive(&self, key: &Key, txn: Timestamp) -> bool {
        self.locks
            .get(key)
            .and_then(|s| s.holds(txn))
            .unwrap_or(false)
    }

    /// True if `txn` holds `key` in any mode. The read-path fence: at
    /// commit time the client validates every read-locked key, because
    /// a crash wipes this (volatile) table and a vanished shared lock
    /// lets a conflicting writer in mid-transaction — write skew the
    /// exclusive-lock fence cannot catch.
    pub fn holds_any(&self, key: &Key, txn: Timestamp) -> bool {
        self.locks
            .get(key)
            .map(|s| s.holds(txn).is_some())
            .unwrap_or(false)
    }

    /// Number of keys with active lock state.
    pub fn active_locks(&self) -> usize {
        self.locks.len()
    }
}

/// The distributed two-phase-locking protocol as a
/// [`ProtocolEngine`]: a lock table at each key's master replica, plain
/// last-writer-wins data movement (write stamps agree with the serial
/// order because clients Lamport-advance past everything they read while
/// holding locks).
#[derive(Debug, Default)]
pub struct TwoPlEngine {
    locks: LockTable,
}

impl TwoPlEngine {
    /// Read access to the lock table (tests, invariant checks).
    pub fn lock_table(&self) -> &LockTable {
        &self.locks
    }
}

impl ProtocolEngine for TwoPlEngine {
    fn name(&self) -> &'static str {
        "2PL"
    }

    fn write_admissible(&self, txn: Timestamp, key: &Key) -> bool {
        self.locks.holds_exclusive(key, txn)
    }

    fn lock_valid(&self, txn: Timestamp, key: &Key) -> bool {
        self.locks.holds_any(key, txn)
    }

    fn on_lock(
        &mut self,
        _view: &mut ServerView<'_>,
        client: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        exclusive: bool,
    ) -> Vec<Grant> {
        match self.locks.acquire(key.clone(), txn, op, exclusive, client) {
            Acquire::Granted => vec![Grant {
                client,
                txn,
                op,
                key,
            }],
            Acquire::Queued => Vec::new(), // grant arrives at release time
        }
    }

    fn on_unlock(
        &mut self,
        _view: &mut ServerView<'_>,
        txn: Timestamp,
        keys: Vec<Key>,
    ) -> Vec<Grant> {
        if keys.is_empty() {
            self.locks.release_all(txn)
        } else {
            self.locks.release(txn, &keys)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(n: u64) -> Timestamp {
        Timestamp::new(n, 1)
    }
    fn k(s: &str) -> Key {
        Key::from(s.to_owned())
    }

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let mut t = LockTable::new();
        assert_eq!(t.acquire(k("x"), ts(1), 0, false, 10), Acquire::Granted);
        assert_eq!(t.acquire(k("x"), ts(2), 0, false, 11), Acquire::Granted);
        assert_eq!(t.acquire(k("x"), ts(3), 0, true, 12), Acquire::Queued);
    }

    #[test]
    fn exclusive_blocks_everyone() {
        let mut t = LockTable::new();
        assert_eq!(t.acquire(k("x"), ts(1), 0, true, 10), Acquire::Granted);
        assert_eq!(t.acquire(k("x"), ts(2), 0, false, 11), Acquire::Queued);
        assert_eq!(t.acquire(k("x"), ts(3), 0, true, 12), Acquire::Queued);
        let grants = t.release(ts(1), &[k("x")]);
        // FIFO: the shared waiter is granted first, then stops at the
        // exclusive waiter.
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, ts(2));
        let grants = t.release(ts(2), &[k("x")]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, ts(3));
    }

    #[test]
    fn reentrant_grants() {
        let mut t = LockTable::new();
        assert_eq!(t.acquire(k("x"), ts(1), 0, true, 10), Acquire::Granted);
        assert_eq!(t.acquire(k("x"), ts(1), 1, true, 10), Acquire::Granted);
        assert_eq!(t.acquire(k("x"), ts(1), 2, false, 10), Acquire::Granted);
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let mut t = LockTable::new();
        assert_eq!(t.acquire(k("x"), ts(1), 0, false, 10), Acquire::Granted);
        assert_eq!(t.acquire(k("x"), ts(1), 1, true, 10), Acquire::Granted);
        // now exclusive: others queue
        assert_eq!(t.acquire(k("x"), ts(2), 0, false, 11), Acquire::Queued);
    }

    #[test]
    fn upgrade_waits_for_other_sharers() {
        let mut t = LockTable::new();
        t.acquire(k("x"), ts(1), 0, false, 10);
        t.acquire(k("x"), ts(2), 0, false, 11);
        assert_eq!(t.acquire(k("x"), ts(1), 1, true, 10), Acquire::Queued);
        let grants = t.release(ts(2), &[k("x")]);
        assert_eq!(grants.len(), 1, "upgrade granted once sharers drain");
        assert_eq!(grants[0].txn, ts(1));
    }

    #[test]
    fn release_all_purges_queue_entries() {
        let mut t = LockTable::new();
        t.acquire(k("x"), ts(1), 0, true, 10);
        t.acquire(k("x"), ts(2), 0, true, 11); // queued
        t.acquire(k("y"), ts(2), 1, true, 11); // granted
        let grants = t.release_all(ts(2));
        assert!(grants.is_empty(), "nobody waits on y");
        // ts(2) no longer queued on x
        let grants = t.release_all(ts(1));
        assert!(grants.is_empty());
        assert_eq!(t.active_locks(), 0);
    }

    #[test]
    fn fifo_prevents_writer_starvation() {
        let mut t = LockTable::new();
        t.acquire(k("x"), ts(1), 0, false, 10);
        assert_eq!(t.acquire(k("x"), ts(2), 0, true, 11), Acquire::Queued);
        // a later shared request queues behind the exclusive waiter
        assert_eq!(t.acquire(k("x"), ts(3), 0, false, 12), Acquire::Queued);
        let grants = t.release(ts(1), &[k("x")]);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].txn, ts(2), "writer first (FIFO)");
    }
}
