//! Protocol-specific server state machines, behind the pluggable
//! [`ProtocolEngine`] layer.
//!
//! * [`engine`] — the [`ProtocolEngine`] trait every isolation /
//!   consistency level implements, the [`ServerView`] handed to its
//!   hooks, and the [`engine_for`] registry.
//! * [`eventual`] / [`read_committed`] / [`master`] — the last-writer-
//!   wins engines (the isolation differences live client-side or in the
//!   routing).
//! * [`mav`] — the two-phase Monotonic Atomic View algorithm of §5.1.2 /
//!   Appendix B (pending/good sets, sibling acknowledgements).
//! * [`ramp`] — the Read Atomic (RAMP) family: atomic visibility by
//!   reader-side repair from per-write metadata instead of MAV's
//!   server-side notification fan-in.
//! * [`twopl`] — the distributed two-phase-locking lock table (the
//!   unavailable serializable baseline of §6.1/§6.3).
//! * [`replication`] — the anti-entropy buffer shared by all
//!   configurations (§5.1.4 convergence).

pub mod engine;
pub mod eventual;
pub mod master;
pub mod mav;
pub mod ramp;
pub mod read_committed;
pub mod replication;
pub mod twopl;

pub use engine::{
    engine_for, lww_apply, resolve_version, ProtocolEngine, ServerView, VersionAnswer,
};
pub use eventual::EventualEngine;
pub use master::MasterEngine;
pub use mav::MavEngine;
pub use ramp::{RampCore, RampFastEngine, RampSmallEngine};
pub use read_committed::ReadCommittedEngine;
pub use twopl::TwoPlEngine;
