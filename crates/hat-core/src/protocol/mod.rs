//! Protocol-specific server state machines.
//!
//! * [`replication`] — the anti-entropy buffer shared by all highly
//!   available configurations (§5.1.4 convergence).
//! * [`mav`] — the two-phase Monotonic Atomic View algorithm of §5.1.2 /
//!   Appendix B (pending/good sets, sibling acknowledgements).
//! * [`twopl`] — the distributed two-phase-locking lock table (the
//!   unavailable serializable baseline of §6.1/§6.3).

pub mod mav;
pub mod replication;
pub mod twopl;
