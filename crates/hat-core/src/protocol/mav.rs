//! The Monotonic Atomic View algorithm (§5.1.2, Appendix B).
//!
//! Replicas keep two sets of writes per item: `good` (pending stable —
//! every replica of every sibling key has received its respective write)
//! and `pending` (not yet known stable). Every receipt of a write of
//! transaction `ts` makes the receiving replica notify each *distinct
//! server* hosting a replica of any sibling key, tagging the
//! notification with the received key. A write becomes pending-stable
//! once `|siblings| × |clusters|` distinct `(origin, key)` notifications
//! for `ts` have been collected — one per (sibling key, replica copy)
//! pair. Keying makes retransmissions idempotent: notifications lost to
//! a partition are replayed on the anti-entropy timer for writes still
//! pending, without ever double-counting.
//!
//! Reads carry a `required` timestamp per item (the client's lower
//! bound): the replica answers with a `good` version at or above the
//! bound, or, failing that, the `pending` write stamped exactly
//! `required` — which is guaranteed present, because a client only learns
//! a bound from a version that was already `good` somewhere, and `good`
//! anywhere implies every sibling replica holds its write at least in
//! `pending`. This is the "entirely master-less and operations never
//! block due to replica coordination" property the paper claims.
//!
//! Durability boundary: a client write is acknowledged while it sits in
//! the volatile `pending` set — only promotion to the good set goes
//! through the (possibly WAL-backed) store. A crash in the window
//! between ack and promotion can therefore lose the write, which is
//! faithful to the paper's in-memory protocol but weaker than the LWW
//! engines, whose installs hit the log before the ack. The crash-restart
//! end-to-end test pins this boundary down explicitly.

use crate::config::ServiceModel;
use crate::messages::Msg;
use crate::protocol::engine::{ProtocolEngine, ServerView};
use crate::timestamp::Timestamp;
use hat_sim::{Ctx, NodeId, SimDuration};
use hat_storage::{Key, Memtable, Record, SharedRecord, Store};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of receiving a write at a MAV replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiveOutcome {
    /// True if this is the first time this replica saw this (key, stamp)
    /// version — the caller must then send notifications for `record.stamp`
    /// to all replicas of all siblings (including this replica itself).
    pub first_receipt: bool,
    /// Versions promoted to `good` by this receipt (the receipt may have
    /// completed the acknowledgement count).
    pub promoted: Vec<(Key, SharedRecord)>,
}

/// Per-replica MAV state (Appendix B's `pending`, `good` lives in the
/// ordinary store, plus the `acks` map).
#[derive(Debug, Default)]
pub struct MavState {
    /// Writes not yet pending-stable.
    pending: Memtable,
    /// Keys held in `pending` per transaction timestamp. Ordered: the
    /// anti-entropy replay loop iterates this map, and with a hashed map
    /// the notification send order (hence the whole event schedule)
    /// would vary across processes even at a fixed seed.
    pending_by_ts: BTreeMap<Timestamp, Vec<Key>>,
    /// Distinct notifications per transaction: `(origin server, key)`
    /// pairs. Keyed so retransmitted notifications are idempotent —
    /// necessary because notifications dropped by a partition are re-sent
    /// on the anti-entropy timer for writes still pending.
    acks: BTreeMap<Timestamp, BTreeSet<(NodeId, Key)>>,
    /// Required notification counts (`siblings × clusters`), learned from
    /// the first write of the transaction that arrives here.
    expected: BTreeMap<Timestamp, u32>,
    /// Reads that had to fall back because neither `good` nor `pending`
    /// satisfied the `required` bound. Must stay 0 in a correct run; the
    /// test suite asserts on it.
    pub required_misses: u64,
}

impl MavState {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of writes currently pending.
    pub fn pending_len(&self) -> usize {
        self.pending.version_count()
    }

    /// Handles receipt of a write (client `PUT` or anti-entropy copy).
    ///
    /// `store` is the replica's `good` set. `clusters` is the number of
    /// replicas per key (one per cluster).
    pub fn receive_write(
        &mut self,
        store: &mut dyn Store,
        key: Key,
        record: impl Into<SharedRecord>,
        clusters: u32,
    ) -> ReceiveOutcome {
        let record = record.into();
        let ts = record.stamp;
        // Dedup: already good or already pending → not a first receipt.
        if store.exact(&key, ts).is_some() || self.pending.exact(&key, ts).is_some() {
            return ReceiveOutcome {
                first_receipt: false,
                promoted: Vec::new(),
            };
        }
        let expected = (record.siblings.len().max(1) as u32) * clusters;
        self.expected.insert(ts, expected);
        self.pending.insert(key.clone(), record);
        self.pending_by_ts.entry(ts).or_default().push(key);
        let promoted = self.try_promote(store, ts);
        ReceiveOutcome {
            first_receipt: true,
            promoted,
        }
    }

    /// Handles a `notify(ts)` from some replica (possibly ourselves).
    /// Returns versions promoted to `good`.
    pub fn receive_notify(
        &mut self,
        store: &mut dyn Store,
        ts: Timestamp,
        origin: NodeId,
        key: Key,
    ) -> Vec<(Key, SharedRecord)> {
        self.acks.entry(ts).or_default().insert((origin, key));
        self.try_promote(store, ts)
    }

    fn try_promote(&mut self, store: &mut dyn Store, ts: Timestamp) -> Vec<(Key, SharedRecord)> {
        let (Some(&expected), Some(acks)) = (self.expected.get(&ts), self.acks.get(&ts)) else {
            return Vec::new();
        };
        if (acks.len() as u32) < expected {
            return Vec::new();
        }
        // Pending-stable: move every local pending write of ts to good.
        let keys = self.pending_by_ts.remove(&ts).unwrap_or_default();
        let mut promoted = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(record) = self.pending.remove(&key, ts) {
                store
                    .put(key.clone(), record.clone())
                    .expect("good-set put cannot fail in memory stores");
                promoted.push((key, record));
            }
        }
        // Keep the counters: late notifies for ts must not re-create
        // state; we retain expected/acks so dedup stays cheap. They are
        // garbage-collected by `gc_acks`.
        promoted
    }

    /// True if `ts` has already been notified for `origin`/`key` — a
    /// duplicate notification. Duplicates arriving for an already
    /// promoted transaction identify a sender stuck replaying
    /// notifications it never got answered for (see
    /// [`Msg::NotifySummary`]).
    pub fn has_ack(&self, ts: Timestamp, origin: NodeId, key: &Key) -> bool {
        self.acks
            .get(&ts)
            .is_some_and(|s| s.contains(&(origin, key.clone())))
    }

    /// True once `ts` reached its notification quorum here: the counters
    /// are retained after promotion precisely so this stays answerable.
    pub fn is_promoted(&self, ts: Timestamp) -> bool {
        match (self.expected.get(&ts), self.acks.get(&ts)) {
            (Some(&expected), Some(acks)) => {
                (acks.len() as u32) >= expected && !self.pending_by_ts.contains_key(&ts)
            }
            _ => false,
        }
    }

    /// The complete acknowledgement set collected for `ts` (empty if
    /// unknown or garbage-collected).
    pub fn ack_set(&self, ts: Timestamp) -> Vec<(NodeId, Key)> {
        self.acks
            .get(&ts)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Writes still pending, with their sibling lists — the server
    /// re-notifies these periodically so notifications lost to a
    /// partition are eventually replayed (liveness of promotion).
    pub fn pending_writes(&self) -> Vec<(Timestamp, Key, Vec<Key>)> {
        let mut out = Vec::new();
        for (&ts, keys) in &self.pending_by_ts {
            for key in keys {
                let siblings = self
                    .pending
                    .exact(key, ts)
                    .map(|r| r.siblings.clone())
                    .unwrap_or_default();
                out.push((ts, key.clone(), siblings));
            }
        }
        out
    }

    /// Serves a read at `required` (Appendix B `GET`).
    pub fn read(
        &mut self,
        store: &dyn Store,
        key: &Key,
        required: Timestamp,
    ) -> Option<SharedRecord> {
        if required == Timestamp::INITIAL {
            return store.latest(key);
        }
        if let Some(good) = store.latest_at_or_above(key, required) {
            return Some(good);
        }
        if let Some(pending) = self.pending.exact(key, required) {
            return Some(pending.clone());
        }
        // Should be unreachable in a correct execution (see module docs);
        // fall back to the best good version so the system stays
        // available, and count the anomaly.
        self.required_misses += 1;
        store.latest(key)
    }

    /// Drops acknowledgement bookkeeping for transactions already
    /// promoted whose timestamps sort below `bound` (long-run memory
    /// bound). Pending (unpromoted) transactions are retained.
    pub fn gc_acks(&mut self, bound: Timestamp) {
        let retained: BTreeSet<Timestamp> = self.pending_by_ts.keys().copied().collect();
        self.acks
            .retain(|ts, _| *ts >= bound || retained.contains(ts));
        self.expected
            .retain(|ts, _| *ts >= bound || retained.contains(ts));
    }
}

/// The pluggable-engine wrapper around [`MavState`]: the Monotonic
/// Atomic View protocol as a [`ProtocolEngine`].
#[derive(Debug, Default)]
pub struct MavEngine {
    state: MavState,
}

impl MavEngine {
    /// All distinct servers hosting a replica of any sibling key (the
    /// notification fan-out of Appendix B). Falls back to the written
    /// key's own replicas when the record carries no sibling list.
    fn notify_targets(view: &ServerView<'_>, key: &Key, siblings: &[Key]) -> Vec<NodeId> {
        let mut targets: Vec<NodeId> = siblings
            .iter()
            .flat_map(|s| view.layout.replicas(s))
            .collect();
        if targets.is_empty() {
            targets = view.layout.replicas(key);
        }
        targets.sort_unstable();
        targets.dedup();
        targets
    }

    /// Receives a write (client put or anti-entropy copy): dedup,
    /// pend, and — on first receipt — notify every sibling replica
    /// exactly once, so the expected count (|sibs| × |clusters|) is
    /// matched by the |sibs × clusters| receipt events.
    fn receive(
        &mut self,
        view: &mut ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        record: SharedRecord,
        gossip: bool,
    ) {
        let ts = record.stamp;
        let siblings = record.siblings.clone();
        // The gossip path shares the same allocation with the pending
        // set — cloning the handle is a refcount bump.
        let gossip_copy = if gossip { Some(record.clone()) } else { None };
        let outcome = self.state.receive_write(
            view.store,
            key.clone(),
            record,
            view.layout.num_clusters() as u32,
        );
        if outcome.first_receipt {
            for t in Self::notify_targets(view, &key, &siblings) {
                ctx.send(
                    t,
                    Msg::Notify {
                        ts,
                        key: key.clone(),
                    },
                );
            }
            if let Some(copy) = gossip_copy {
                view.repl.push(key, copy);
            }
        }
    }
}

impl ProtocolEngine for MavEngine {
    fn name(&self) -> &'static str {
        "MAV"
    }

    fn read(
        &mut self,
        view: &mut ServerView<'_>,
        key: &Key,
        required: Timestamp,
    ) -> Option<SharedRecord> {
        self.state.read(view.store, key, required)
    }

    fn write_cost(&self, service: &ServiceModel, record: &Record) -> SimDuration {
        let meta_bytes = record.encoded_len().saturating_sub(4 + record.value.len());
        service.mav_write(meta_bytes)
    }

    fn apply_client_write(
        &mut self,
        view: &mut ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        record: SharedRecord,
    ) {
        self.receive(view, ctx, key, record, true);
    }

    fn apply_replicated_write(
        &mut self,
        view: &mut ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        record: SharedRecord,
    ) {
        // Do not re-gossip: peers form a clique, the origin gossips to
        // everyone.
        self.receive(view, ctx, key, record, false);
    }

    fn on_notify(
        &mut self,
        view: &mut ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        ts: Timestamp,
        key: Key,
    ) {
        let duplicate = self.state.has_ack(ts, from, &key);
        let _promoted = self.state.receive_notify(view.store, ts, from, key);
        // A duplicate notification for a transaction we already promoted
        // means the sender is replaying on its anti-entropy timer — it
        // is still pending, and the replicas whose notifications it lost
        // (to a one-way partition, say) have promoted and gone quiet.
        // Answer with our complete acknowledgement set so it can finish
        // its count. First-time notifications never trigger this, so the
        // fault-free path sends nothing extra.
        if duplicate && self.state.is_promoted(ts) {
            let acks = self.state.ack_set(ts);
            ctx.send(from, Msg::NotifySummary { ts, acks });
        }
    }

    fn on_notify_summary(
        &mut self,
        view: &mut ServerView<'_>,
        _ctx: &mut Ctx<'_, Msg>,
        _from: NodeId,
        ts: Timestamp,
        acks: Vec<(NodeId, Key)>,
    ) {
        for (origin, key) in acks {
            let _ = self.state.receive_notify(view.store, ts, origin, key);
        }
    }

    fn on_anti_entropy_tick(&mut self, view: &mut ServerView<'_>, ctx: &mut Ctx<'_, Msg>) {
        // Liveness: notifications lost to partitions are replayed for
        // writes still pending (keyed notifications make the replay
        // idempotent). Bounded per tick.
        for (ts, key, siblings) in self.state.pending_writes().into_iter().take(256) {
            for t in Self::notify_targets(view, &key, &siblings) {
                ctx.send(
                    t,
                    Msg::Notify {
                        ts,
                        key: key.clone(),
                    },
                );
            }
        }
    }

    fn required_misses(&self) -> u64 {
        self.state.required_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use hat_storage::MemStore;

    fn rec(ts: Timestamp, val: &str, sibs: &[&str]) -> Record {
        Record::with_siblings(
            ts,
            Bytes::from(val.to_owned()),
            sibs.iter().map(|s| Key::from(s.to_string())).collect(),
        )
    }

    /// One replica per key, two keys, single cluster: expected acks = 2*1.
    #[test]
    fn write_promotes_after_all_sibling_acks() {
        let mut store = MemStore::new();
        let mut mav = MavState::new();
        let ts = Timestamp::new(1, 1);
        let out = mav.receive_write(&mut store, Key::from("x"), rec(ts, "1", &["x", "y"]), 1);
        assert!(out.first_receipt);
        assert!(out.promoted.is_empty());
        assert!(store.latest(b"x").is_none(), "not yet visible in good");

        // the x-replica's own notify (for receiving x) ...
        assert!(mav
            .receive_notify(&mut store, ts, 10, Key::from("x"))
            .is_empty());
        // a retransmission of the same notification is idempotent
        assert!(mav
            .receive_notify(&mut store, ts, 10, Key::from("x"))
            .is_empty());
        // ... and the y-replica's notify (for receiving y)
        let promoted = mav.receive_notify(&mut store, ts, 11, Key::from("y"));
        assert_eq!(promoted.len(), 1);
        assert_eq!(store.latest(b"x").unwrap().value, Bytes::from("1"));
        assert_eq!(mav.pending_len(), 0);
    }

    #[test]
    fn duplicate_write_is_not_first_receipt() {
        let mut store = MemStore::new();
        let mut mav = MavState::new();
        let ts = Timestamp::new(1, 1);
        let r = rec(ts, "1", &["x"]);
        assert!(
            mav.receive_write(&mut store, Key::from("x"), r.clone(), 1)
                .first_receipt
        );
        assert!(
            !mav.receive_write(&mut store, Key::from("x"), r.clone(), 1)
                .first_receipt,
            "anti-entropy redelivery must not re-notify"
        );
        // promote, then redeliver again: still deduped (now in good)
        mav.receive_notify(&mut store, ts, 10, Key::from("x"));
        assert!(
            !mav.receive_write(&mut store, Key::from("x"), r, 1)
                .first_receipt
        );
    }

    #[test]
    fn notify_before_write_arrival_counts() {
        let mut store = MemStore::new();
        let mut mav = MavState::new();
        let ts = Timestamp::new(2, 1);
        // notifications race ahead of the write copy
        assert!(mav
            .receive_notify(&mut store, ts, 10, Key::from("x"))
            .is_empty());
        assert!(mav
            .receive_notify(&mut store, ts, 11, Key::from("y"))
            .is_empty());
        // write arrives: expected = 2 sibs * 1 cluster = 2, acks already 2
        let out = mav.receive_write(&mut store, Key::from("x"), rec(ts, "1", &["x", "y"]), 1);
        assert_eq!(out.promoted.len(), 1, "promotion happens on arrival");
    }

    #[test]
    fn read_semantics_follow_appendix_b() {
        let mut store = MemStore::new();
        let mut mav = MavState::new();
        let t1 = Timestamp::new(1, 1);
        let t2 = Timestamp::new(2, 1);

        // t1 is good
        store
            .put(Key::from("x"), rec(t1, "good", &["x"]).into())
            .unwrap();
        // t2 still pending
        mav.receive_write(
            &mut store,
            Key::from("x"),
            rec(t2, "pending", &["x", "y"]),
            2,
        );

        // no bound: latest good
        assert_eq!(
            mav.read(&store, &Key::from("x"), Timestamp::INITIAL)
                .unwrap()
                .value,
            Bytes::from("good")
        );
        // bound below good: good satisfies (>= required)
        assert_eq!(
            mav.read(&store, &Key::from("x"), t1).unwrap().value,
            Bytes::from("good")
        );
        // bound at t2: served from pending
        assert_eq!(
            mav.read(&store, &Key::from("x"), t2).unwrap().value,
            Bytes::from("pending")
        );
        assert_eq!(mav.required_misses, 0);
    }

    #[test]
    fn required_miss_is_counted_and_falls_back() {
        let mut store = MemStore::new();
        let mut mav = MavState::new();
        let t1 = Timestamp::new(1, 1);
        store
            .put(Key::from("x"), rec(t1, "old", &["x"]).into())
            .unwrap();
        let got = mav.read(&store, &Key::from("x"), Timestamp::new(9, 9));
        assert_eq!(got.unwrap().value, Bytes::from("old"));
        assert_eq!(mav.required_misses, 1);
    }

    #[test]
    fn multi_replica_counting() {
        // 2 clusters: txn writes {x, y}; expected acks = 2 sibs * 2 clusters = 4.
        let mut store = MemStore::new();
        let mut mav = MavState::new();
        let ts = Timestamp::new(3, 1);
        mav.receive_write(&mut store, Key::from("x"), rec(ts, "1", &["x", "y"]), 2);
        let sources: [(NodeId, &str); 4] = [(10, "x"), (11, "x"), (12, "y"), (13, "y")];
        for (i, (origin, key)) in sources.into_iter().enumerate() {
            let promoted = mav.receive_notify(&mut store, ts, origin, Key::from(key));
            if i < 3 {
                assert!(promoted.is_empty(), "not stable after {} acks", i + 1);
            } else {
                assert_eq!(promoted.len(), 1, "stable after 4 acks");
            }
        }
    }

    #[test]
    fn same_server_holds_two_sibling_writes() {
        // both x and y hash to this server: promotion releases both
        let mut store = MemStore::new();
        let mut mav = MavState::new();
        let ts = Timestamp::new(4, 1);
        mav.receive_write(&mut store, Key::from("x"), rec(ts, "vx", &["x", "y"]), 1);
        mav.receive_write(&mut store, Key::from("y"), rec(ts, "vy", &["x", "y"]), 1);
        // expected = 2; each receive_write should have triggered one
        // self-notify by the server, simulated here:
        mav.receive_notify(&mut store, ts, 10, Key::from("x"));
        let promoted = mav.receive_notify(&mut store, ts, 10, Key::from("y"));
        assert_eq!(promoted.len(), 2);
        assert_eq!(store.latest(b"x").unwrap().value, Bytes::from("vx"));
        assert_eq!(store.latest(b"y").unwrap().value, Bytes::from("vy"));
    }

    #[test]
    fn gc_acks_retains_pending() {
        let mut store = MemStore::new();
        let mut mav = MavState::new();
        let old_done = Timestamp::new(1, 1);
        let old_pending = Timestamp::new(2, 1);
        mav.receive_write(&mut store, Key::from("x"), rec(old_done, "1", &["x"]), 1);
        mav.receive_notify(&mut store, old_done, 10, Key::from("x")); // promoted
        mav.receive_write(
            &mut store,
            Key::from("y"),
            rec(old_pending, "2", &["y", "z"]),
            1,
        );
        mav.gc_acks(Timestamp::new(10, 0));
        assert!(mav.expected.contains_key(&old_pending), "pending retained");
        assert!(!mav.expected.contains_key(&old_done), "done collected");
    }
}
