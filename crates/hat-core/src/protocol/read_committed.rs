//! The Read Committed engine (§5.1.1).
//!
//! RC is "essentially eventual with buffering": the isolation upgrade is
//! entirely client-side (writes stay in the client's buffer until
//! commit, so no transaction ever reads another's uncommitted data).
//! The server-side engine is therefore identical to `eventual` — it only
//! ever sees committed writes — and exists as its own type so the
//! protocol registry, experiment labels and conformance suite treat the
//! level as first-class.

use crate::protocol::engine::ProtocolEngine;

/// Engine for [`crate::ProtocolKind::ReadCommitted`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ReadCommittedEngine;

impl ProtocolEngine for ReadCommittedEngine {
    fn name(&self) -> &'static str {
        "RC"
    }
}
