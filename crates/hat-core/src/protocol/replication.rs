//! Anti-entropy replication buffer.
//!
//! §5.1.4: "Under arbitrary (but not infinite delays), HAT systems can
//! ensure convergence ... typically accomplished by any number of
//! anti-entropy protocols, which periodically update neighboring servers
//! with the latest value for each data item." Each server buffers the
//! writes it accepts in an append-only log; on a timer it pushes the
//! un-acknowledged suffix to its positional peer replica in every other
//! cluster. Peers acknowledge the log position they have applied, and a
//! peer's cursor only advances on acknowledgement — so a partition
//! (dropped batches *and* dropped acks) simply leaves the cursor in
//! place and the suffix is re-sent after healing. Delivery is therefore
//! at-least-once; receivers apply writes idempotently.

use hat_storage::{Key, SharedRecord};
use std::collections::{BTreeMap, BTreeSet};

/// Largest number of records shipped in one anti-entropy batch.
pub const MAX_BATCH: usize = 1024;

/// Buffer of writes awaiting gossip, with acknowledged per-peer cursors.
///
/// Entries share the record allocation made at write time: a batch is a
/// vector of `(key, handle)` pairs whose components are both refcounted,
/// so re-batching an unacknowledged suffix on every anti-entropy tick
/// (the common case under replication lag or partition) clones pointers,
/// not keys and values — and the log itself never deep-copies the record
/// it shares with the store.
#[derive(Debug, Clone)]
pub struct ReplicationLog {
    log: Vec<(Key, SharedRecord)>,
    /// Index of the first log slot (everything below was compacted).
    base: u64,
    /// Per-peer acknowledged position (absolute index).
    acked: Vec<u64>,
}

impl ReplicationLog {
    /// A log gossiping to `peers` peers.
    pub fn new(peers: usize) -> Self {
        ReplicationLog {
            log: Vec::new(),
            base: 0,
            acked: vec![0; peers],
        }
    }

    /// Records an accepted write for future gossip.
    pub fn push(&mut self, key: Key, record: SharedRecord) {
        self.log.push((key, record));
    }

    /// The batch to send to `peer` right now: everything past its
    /// acknowledged position, capped at [`MAX_BATCH`]. Returns
    /// `(start_index, records)`; empty when the peer is caught up.
    /// Does *not* advance the cursor — only [`ReplicationLog::ack`] does.
    /// The returned entries share the log's allocations (`Arc` clones).
    pub fn batch_for(&self, peer: usize) -> (u64, Vec<(Key, SharedRecord)>) {
        let start = self.acked[peer].max(self.base);
        let offset = (start - self.base) as usize;
        let end = (offset + MAX_BATCH).min(self.log.len());
        (start, self.log[offset..end].to_vec())
    }

    /// How far `peer` lags behind the head of the log.
    pub fn lag(&self, peer: usize) -> u64 {
        self.head() - self.acked[peer].max(self.base)
    }

    /// The worst per-peer lag (0 with no peers) — the replication-lag
    /// gauge the live-telemetry sampler reads.
    pub fn max_lag(&self) -> u64 {
        (0..self.acked.len())
            .map(|p| self.lag(p))
            .max()
            .unwrap_or(0)
    }

    /// Delta-compressed catch-up batch for a badly lagging `peer`: one
    /// compacted batch covering its *entire* lag window, instead of
    /// `lag / MAX_BATCH` round trips of per-record replay.
    ///
    /// Compaction keeps, for each key written in the window, its entry
    /// with the greatest stamp — and then *closes the survivor set over
    /// transaction timestamps*: every entry whose stamp survives for some
    /// key is kept, so a multi-key transaction always arrives whole even
    /// when another key it wrote was later overwritten. Without the
    /// closure, MAV's sibling ack counting would wait forever for a
    /// dropped sibling and RAMP's prepared-set promotion could strand a
    /// fractured read. Entries at or below the peer's acked watermark are
    /// never included (redelivery below the watermark is wasted work and
    /// masks ack bugs).
    ///
    /// Returns `(upto, entries)` in log order; the receiver applies the
    /// entries idempotently and acks `upto` directly.
    pub fn catchup_for(&self, peer: usize) -> (u64, Vec<(Key, SharedRecord)>) {
        let start = self.acked[peer].max(self.base);
        let offset = (start - self.base) as usize;
        let window = &self.log[offset..];
        // Latest stamp per key in the window.
        let mut best = BTreeMap::new();
        for (key, record) in window {
            let e = best.entry(key.clone()).or_insert(record.stamp);
            if record.stamp > *e {
                *e = record.stamp;
            }
        }
        // Timestamp closure: a stamp that owns any key's latest version
        // keeps all of its writes.
        let surviving: BTreeSet<_> = best.into_values().collect();
        // Last occurrence wins for duplicate (key, stamp) pairs — a
        // redelivered entry replaces the stored value, so only the final
        // occurrence matters.
        let mut last_idx: BTreeMap<(&Key, _), usize> = BTreeMap::new();
        for (i, (key, record)) in window.iter().enumerate() {
            if surviving.contains(&record.stamp) {
                last_idx.insert((key, record.stamp), i);
            }
        }
        let mut keep: Vec<usize> = last_idx.into_values().collect();
        keep.sort_unstable();
        let entries = keep.into_iter().map(|i| window[i].clone()).collect();
        (self.head(), entries)
    }

    /// Rewinds `peer`'s cursor to the oldest retained entry, forcing a
    /// full resend of the retained log. Used when a peer restarts after
    /// a crash: acknowledged records may have been lost with its torn
    /// WAL tail, and at-least-once redelivery is the repair.
    pub fn rewind(&mut self, peer: usize) {
        self.acked[peer] = self.base;
    }

    /// Acknowledges that `peer` has applied records up to absolute index
    /// `upto` (exclusive). Stale acks are ignored.
    pub fn ack(&mut self, peer: usize, upto: u64) {
        if upto > self.acked[peer] {
            self.acked[peer] = upto.min(self.base + self.log.len() as u64);
        }
    }

    /// Absolute index one past the newest record.
    pub fn head(&self) -> u64 {
        self.base + self.log.len() as u64
    }

    /// The retained entry at absolute index `i`, or `None` if it has
    /// been compacted away. Lets the server mirror newly pushed writes
    /// into an in-progress shard handoff stream without the engines
    /// knowing handoffs exist.
    pub fn entry(&self, i: u64) -> Option<&(Key, SharedRecord)> {
        i.checked_sub(self.base)
            .and_then(|o| self.log.get(o as usize))
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True if nothing has ever been pushed (or all was compacted).
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Drops records acknowledged by *every* peer, keeping at most
    /// `keep` of them for safety. Never drops unacknowledged records —
    /// a partitioned peer pins the log (the honest memory cost of
    /// convergence).
    pub fn compact(&mut self, keep: usize) {
        let min_acked = self.acked.iter().copied().min().unwrap_or(self.head());
        let cut_abs = min_acked.saturating_sub(keep as u64).max(self.base);
        let cut = (cut_abs - self.base) as usize;
        if cut > 0 {
            self.log.drain(..cut);
            self.base = cut_abs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::Timestamp;
    use bytes::Bytes;
    use hat_storage::Record;

    fn rec(seq: u64) -> SharedRecord {
        Record::new(Timestamp::new(seq, 1), Bytes::from("v")).into()
    }

    #[test]
    fn unacked_batches_are_resent() {
        let mut log = ReplicationLog::new(1);
        log.push(Key::from("a"), rec(1));
        log.push(Key::from("b"), rec(2));
        let (start, batch) = log.batch_for(0);
        assert_eq!((start, batch.len()), (0, 2));
        // no ack (partition dropped it): the same batch comes back
        let (start2, batch2) = log.batch_for(0);
        assert_eq!((start2, batch2.len()), (0, 2));
        // ack advances the cursor
        log.ack(0, 2);
        let (_, batch3) = log.batch_for(0);
        assert!(batch3.is_empty());
    }

    #[test]
    fn new_writes_after_ack_form_the_next_batch() {
        let mut log = ReplicationLog::new(2);
        log.push(Key::from("a"), rec(1));
        log.ack(0, 1);
        log.push(Key::from("b"), rec(2));
        let (start, batch) = log.batch_for(0);
        assert_eq!(start, 1);
        assert_eq!(batch.len(), 1);
        // peer 1 never acked: gets everything
        let (start1, batch1) = log.batch_for(1);
        assert_eq!((start1, batch1.len()), (0, 2));
    }

    #[test]
    fn stale_and_overshooting_acks_are_clamped() {
        let mut log = ReplicationLog::new(1);
        log.push(Key::from("a"), rec(1));
        log.ack(0, 1);
        log.ack(0, 0); // stale: ignored
        assert_eq!(log.batch_for(0).1.len(), 0);
        log.ack(0, 99); // overshoot: clamped to head
        assert_eq!(log.batch_for(0).0, 1);
    }

    #[test]
    fn batches_are_capped() {
        let mut log = ReplicationLog::new(1);
        for i in 0..(MAX_BATCH + 10) {
            log.push(Key::from(format!("k{i}")), rec(i as u64 + 1));
        }
        let (_, batch) = log.batch_for(0);
        assert_eq!(batch.len(), MAX_BATCH);
    }

    #[test]
    fn compact_respects_unacked_peers() {
        let mut log = ReplicationLog::new(2);
        for i in 0..100 {
            log.push(Key::from(format!("k{i}")), rec(i as u64 + 1));
        }
        log.ack(0, 100);
        // peer 1 has acked nothing: compaction must keep everything
        log.compact(0);
        assert_eq!(log.len(), 100);
        log.ack(1, 100);
        log.compact(10);
        assert_eq!(log.len(), 10, "keeps `keep` records below min ack");
        // batches still consistent after compaction
        let (start, batch) = log.batch_for(0);
        assert_eq!(start, 100);
        assert!(batch.is_empty());
    }

    #[test]
    fn rewind_forces_resend_of_retained_log() {
        let mut log = ReplicationLog::new(2);
        for i in 0..50u64 {
            log.push(Key::from(format!("k{i}")), rec(i + 1));
        }
        log.ack(0, 50);
        log.ack(1, 50);
        assert!(log.batch_for(0).1.is_empty());
        log.compact(10); // base moves to 40
        log.rewind(0);
        let (start, batch) = log.batch_for(0);
        assert_eq!(start, 40, "resend starts at the compaction base");
        assert_eq!(batch.len(), 10);
        // peer 1 unaffected
        assert!(log.batch_for(1).1.is_empty());
        // re-acks after rewind advance normally
        log.ack(0, 50);
        assert!(log.batch_for(0).1.is_empty());
    }

    #[test]
    fn catchup_compacts_to_latest_version_per_key() {
        let mut log = ReplicationLog::new(1);
        // 10 keys, 100 writes each: only the last write of each key (all
        // distinct stamps, so no closure growth) should survive.
        for round in 0..100u64 {
            for k in 0..10 {
                log.push(Key::from(format!("k{k}")), rec(round * 10 + k + 1));
            }
        }
        assert_eq!(log.lag(0), 1000);
        let (upto, entries) = log.catchup_for(0);
        assert_eq!(upto, 1000);
        assert_eq!(entries.len(), 10, "one surviving version per key");
        for (key, record) in &entries {
            let k: u64 = std::str::from_utf8(&key[1..]).unwrap().parse().unwrap();
            assert_eq!(record.stamp.seq, 99 * 10 + k + 1, "latest round survives");
        }
    }

    #[test]
    fn catchup_keeps_whole_transactions_via_stamp_closure() {
        let mut log = ReplicationLog::new(1);
        // txn A writes x and y at stamp 1; a later txn B overwrites x at
        // stamp 2. y's latest is stamp 1, so stamp 1 survives — and the
        // closure must keep A's write of x too (MAV counts both).
        log.push(Key::from("x"), rec(1));
        log.push(Key::from("y"), rec(1));
        log.push(Key::from("x"), rec(2));
        let (upto, entries) = log.catchup_for(0);
        assert_eq!(upto, 3);
        assert_eq!(entries.len(), 3, "stamp 1 fully retained, plus stamp 2");
    }

    #[test]
    fn catchup_never_resends_below_the_watermark() {
        let mut log = ReplicationLog::new(1);
        for i in 0..20u64 {
            log.push(Key::from(format!("k{i}")), rec(i + 1));
        }
        log.ack(0, 15);
        let (upto, entries) = log.catchup_for(0);
        assert_eq!(upto, 20);
        assert_eq!(entries.len(), 5);
        assert!(
            entries.iter().all(|(_, r)| r.stamp.seq > 15),
            "acked entries must not reappear: {entries:?}"
        );
    }

    #[test]
    fn catchup_last_duplicate_occurrence_wins() {
        let mut log = ReplicationLog::new(1);
        // same (key, stamp) delivered twice (redelivery): only one copy
        // in the compacted batch.
        log.push(Key::from("x"), rec(1));
        log.push(Key::from("x"), rec(1));
        let (_, entries) = log.catchup_for(0);
        assert_eq!(entries.len(), 1);
    }
}
