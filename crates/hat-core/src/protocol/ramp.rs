//! Read Atomic visibility, RAMP style: atomic visibility without MAV's
//! sibling-notification fan-in.
//!
//! The paper proves Read Atomic isolation is HAT-compliant and sketches
//! MAV (§5.1.2) as one implementation: servers gossip `notify(ts)`
//! messages until a write is *pending stable* everywhere. The RAMP
//! family inverts the responsibility — **readers repair fractured reads
//! from per-write metadata**, and servers never coordinate with each
//! other beyond ordinary anti-entropy:
//!
//! * Writes are two-phase but master-less: the client PREPAREs every
//!   written key at its replica (the version lands in a `prepared` set,
//!   invisible to ordinary reads but fetchable by exact stamp), then
//!   COMMITs each key with a constant-size marker that promotes the
//!   version to visible. Prepared versions never abort, so serving them
//!   to an exact-stamp fetch is safe.
//! * [`RampFastEngine`] — RAMP-Fast: each record carries its
//!   transaction's full write-set (`Record::siblings`). Reads are one
//!   round; the *client* detects a fractured read by comparing the
//!   metadata against what the transaction already observed and issues a
//!   second-round [`VersionReq`] fetch only then.
//! * [`RampSmallEngine`] — RAMP-Small: constant-size (timestamp-only)
//!   metadata. Reads always take two rounds: fetch the latest committed
//!   stamp, then fetch the newest version whose stamp is in the
//!   transaction's observed-stamp set.
//!
//! Server-side, both engines are the same state machine ([`RampCore`]);
//! the difference is entirely in what the client attaches to writes and
//! how it drives reads (see `client.rs`). An exact-stamp fetch that
//! arrives before its version does is **parked** and answered when the
//! prepare or anti-entropy copy lands — the reader-side analogue of
//! MAV's "pending guarantee", without any server→server notification
//! traffic.
//!
//! Geo-replication caveat (the RAMP paper is single-cluster): prepares
//! and commits are synchronous only within the writer's cluster; other
//! clusters converge by anti-entropy. RAMP-Fast metadata lets remote
//! readers repair (or park) across that lag too; RAMP-Small's
//! timestamp-only metadata cannot name what it is missing, so its
//! guarantee is exact within a cluster and best-effort across the WAN.

use crate::config::ServiceModel;
use crate::messages::{Msg, VersionReq};
use crate::protocol::engine::{resolve_version, ProtocolEngine, ServerView, VersionAnswer};
use crate::timestamp::Timestamp;
use hat_sim::{Ctx, NodeId, SimDuration};
use hat_storage::{Key, Memtable, Record, SharedRecord};
use std::collections::BTreeMap;

/// A reader waiting on a parked exact-stamp fetch.
type Waiter = (NodeId, Timestamp, u32);

/// Shared server-side RAMP state: the prepared set and the parked
/// exact-stamp fetches. The visible ("committed") set is the server's
/// ordinary store.
#[derive(Debug, Default)]
pub struct RampCore {
    /// Prepared-but-uncommitted versions, fetchable by exact stamp only.
    prepared: Memtable,
    /// Anti-entropy ticks each prepared `(key, stamp)` has survived.
    /// RAMP writes never abort once prepared, so a version whose commit
    /// marker was lost (client crashed/abandoned mid-commit) is
    /// promoted after [`COOPERATIVE_TERMINATION_TICKS`] — the
    /// simulation's stand-in for the RAMP paper's cooperative
    /// termination, and the bound on how long the prepared set and any
    /// parked fetches can outlive their writer.
    prepared_age: BTreeMap<(Key, Timestamp), u32>,
    /// Exact-stamp fetches whose version has not arrived yet, keyed by
    /// `(key, stamp)`. Ordered map: reply order must not depend on hash
    /// seeds or same-seed runs diverge.
    parked: BTreeMap<(Key, Timestamp), Vec<Waiter>>,
    /// Anti-entropy ticks each parked slot has waited; slots older than
    /// [`PARKED_GC_TICKS`] are dropped (their readers have long since
    /// hit the operation deadline and abandoned).
    parked_age: BTreeMap<(Key, Timestamp), u32>,
    /// Second-round fetches served (RAMP-Small round 2 + repairs).
    pub version_fetches: u64,
    /// Exact fetches that had to park (the version was still in flight).
    pub parked_fetches: u64,
    /// `Among` fetches that matched nothing in their set — routine for
    /// keys with no committed history; the answer is then `None` (`⊥`),
    /// never an out-of-set version (which could itself fracture).
    pub among_misses: u64,
}

/// Anti-entropy ticks a prepared version survives before the replica
/// promotes it on its own (cooperative termination: prepares never
/// abort, so a lost commit marker only *delays* visibility).
const COOPERATIVE_TERMINATION_TICKS: u32 = 8;

/// Anti-entropy ticks a parked exact-stamp fetch is held before being
/// dropped (the reader's operation deadline is long past).
const PARKED_GC_TICKS: u32 = 64;

impl RampCore {
    /// Installs a PREPARE: the version becomes fetchable by exact stamp
    /// but stays invisible to ordinary reads. Resolves parked fetches.
    /// Idempotent (commit retries and anti-entropy make redelivery
    /// routine).
    fn prepare(
        &mut self,
        view: &mut ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        rec: SharedRecord,
    ) {
        let ts = rec.stamp;
        if view.store.get_at(&key, ts).is_some() || self.prepared.exact(&key, ts).is_some() {
            return; // duplicate delivery
        }
        // The prepared set, any parked-reader replies, and the eventual
        // visible/gossip copies all share this one allocation.
        self.prepared.insert(key.clone(), rec.clone());
        self.prepared_age.insert((key.clone(), ts), 0);
        self.release_parked(view, ctx, &key, ts, &rec);
    }

    /// Applies a COMMIT marker: the prepared version becomes visible and
    /// is queued for anti-entropy gossip. Idempotent.
    fn commit_mark(&mut self, view: &mut ServerView<'_>, key: Key, ts: Timestamp) {
        let Some(rec) = self.prepared.remove(&key, ts) else {
            return; // already committed (retry) or never prepared here
        };
        self.prepared_age.remove(&(key.clone(), ts));
        view.store
            .put(key.clone(), rec.clone())
            .expect("in-memory put cannot fail");
        view.repl.push(key, rec);
    }

    /// Per anti-entropy tick: cooperative termination of orphaned
    /// prepares and garbage collection of stale parked fetches. Keeps
    /// both side tables bounded even when a writer abandons mid-commit.
    fn on_tick(&mut self, view: &mut ServerView<'_>) {
        let mut promote = Vec::new();
        for (slot, age) in self.prepared_age.iter_mut() {
            *age += 1;
            if *age >= COOPERATIVE_TERMINATION_TICKS {
                promote.push(slot.clone());
            }
        }
        // Bounded per tick, like MAV's notification replay.
        for (key, ts) in promote.into_iter().take(256) {
            self.commit_mark(view, key, ts);
        }
        let mut drop_slots = Vec::new();
        for (slot, age) in self.parked_age.iter_mut() {
            *age += 1;
            if *age >= PARKED_GC_TICKS {
                drop_slots.push(slot.clone());
            }
        }
        for slot in drop_slots {
            self.parked.remove(&slot);
            self.parked_age.remove(&slot);
        }
    }

    /// Installs an anti-entropy copy: gossip ships committed versions,
    /// so the record goes straight to the visible store (no re-gossip —
    /// peers form a clique). Resolves parked fetches.
    fn apply_replicated(
        &mut self,
        view: &mut ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        key: Key,
        rec: SharedRecord,
    ) {
        let ts = rec.stamp;
        // A gossiped commit supersedes a local prepare of the same
        // version (possible when a commit marker was lost to a
        // partition but the origin's gossip got through).
        let _ = self.prepared.remove(&key, ts);
        self.prepared_age.remove(&(key.clone(), ts));
        let _ = view.store.put(key.clone(), rec.clone());
        self.release_parked(view, ctx, &key, ts, &rec);
    }

    /// Answers every fetch parked on `(key, ts)`. The reply is held for
    /// one read's service time — the release happens inside another
    /// request's apply, but the read itself is not free (without the
    /// hold, repair latencies under contention would be understated in
    /// exactly the comparison `exp_ramp` makes).
    fn release_parked(
        &mut self,
        view: &ServerView<'_>,
        ctx: &mut Ctx<'_, Msg>,
        key: &Key,
        ts: Timestamp,
        rec: &SharedRecord,
    ) {
        let Some(waiters) = self.parked.remove(&(key.clone(), ts)) else {
            return;
        };
        self.parked_age.remove(&(key.clone(), ts));
        let hold = view.config.service.read();
        for (from, txn, op) in waiters {
            ctx.send_after(
                hold,
                from,
                Msg::GetVersionResp {
                    txn,
                    op,
                    found: Some(rec.clone()),
                },
            );
        }
    }

    /// Serves a second-round fetch against committed ∪ prepared.
    fn read_version(
        &mut self,
        view: &mut ServerView<'_>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: &Key,
        req: &VersionReq,
    ) -> VersionAnswer {
        self.version_fetches += 1;
        match req {
            VersionReq::Exact(ts) => {
                if let Some(r) = view.store.get_at(key, *ts) {
                    return VersionAnswer::Ready(Some(r));
                }
                if let Some(r) = self.prepared.exact(key, *ts) {
                    return VersionAnswer::Ready(Some(r.clone()));
                }
                // The requested stamp is a *floor*: any visible version
                // at or above it satisfies the reader (fracture checks
                // re-run client-side on whatever comes back). This also
                // keeps the fetch answerable when the exact version was
                // evicted by the bounded version chain — the newer
                // versions that evicted it are the proof it is stale.
                if let Some(r) = view.store.latest_at_or_above(key, *ts) {
                    return VersionAnswer::Ready(Some(r));
                }
                // The version is guaranteed in flight (the reader
                // learned the stamp from a committed sibling): park and
                // answer on arrival. Duplicate parks (request retries)
                // are deduplicated.
                self.parked_fetches += 1;
                let waiters = self.parked.entry((key.clone(), *ts)).or_default();
                if !waiters.contains(&(from, txn, op)) {
                    waiters.push((from, txn, op));
                }
                self.parked_age.entry((key.clone(), *ts)).or_insert(0);
                VersionAnswer::Parked
            }
            VersionReq::AtOrBelow(_) => {
                // Ceiling repairs want a *visible* version: committed
                // only.
                VersionAnswer::Ready(resolve_version(view.store, key, req))
            }
            VersionReq::Among(set) => {
                let committed = resolve_version(view.store, key, req);
                let prepared = set
                    .iter()
                    .filter_map(|ts| self.prepared.exact(key, *ts))
                    .max_by_key(|r| r.stamp)
                    .cloned();
                let best = match (committed, prepared) {
                    (Some(a), Some(b)) => Some(if a.stamp >= b.stamp { a } else { b }),
                    (a, b) => a.or(b),
                };
                if best.is_none() {
                    // Nothing in the set has a version here: the honest
                    // answer is `⊥`. An out-of-set fallback could hand
                    // back a version the reader's set membership cannot
                    // justify — itself a potential fractured read.
                    self.among_misses += 1;
                }
                VersionAnswer::Ready(best)
            }
        }
    }

    /// Number of prepared (not yet committed) versions held.
    pub fn prepared_len(&self) -> usize {
        self.prepared.version_count()
    }

    /// Number of `(key, stamp)` slots with parked readers.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }
}

/// Builds the two concrete engines from the shared [`RampCore`]. Both
/// are thin delegation shells; they exist as distinct types so the
/// registry, experiment labels and conformance suite treat each variant
/// as first-class.
macro_rules! ramp_engine {
    ($name:ident, $label:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Default)]
        pub struct $name {
            /// Shared RAMP server state.
            pub core: RampCore,
        }

        impl ProtocolEngine for $name {
            fn name(&self) -> &'static str {
                $label
            }

            fn read(
                &mut self,
                view: &mut ServerView<'_>,
                key: &Key,
                _required: Timestamp,
            ) -> Option<SharedRecord> {
                // Round 1 returns the latest *visible* version; repair
                // decisions are the client's (that is the RAMP
                // inversion). The `required` bound is unused — RAMP
                // clients always send INITIAL.
                view.store.latest(key)
            }

            fn write_cost(&self, service: &ServiceModel, record: &Record) -> SimDuration {
                let meta = record.encoded_len().saturating_sub(4 + record.value.len());
                service.ramp_prepare(meta)
            }

            fn apply_client_write(
                &mut self,
                view: &mut ServerView<'_>,
                ctx: &mut Ctx<'_, Msg>,
                key: Key,
                record: SharedRecord,
            ) {
                self.core.prepare(view, ctx, key, record);
            }

            fn apply_replicated_write(
                &mut self,
                view: &mut ServerView<'_>,
                ctx: &mut Ctx<'_, Msg>,
                key: Key,
                record: SharedRecord,
            ) {
                self.core.apply_replicated(view, ctx, key, record);
            }

            fn on_commit_mark(
                &mut self,
                view: &mut ServerView<'_>,
                _ctx: &mut Ctx<'_, Msg>,
                key: Key,
                ts: Timestamp,
            ) {
                self.core.commit_mark(view, key, ts);
            }

            fn read_version(
                &mut self,
                view: &mut ServerView<'_>,
                from: NodeId,
                txn: Timestamp,
                op: u32,
                key: &Key,
                req: &VersionReq,
            ) -> VersionAnswer {
                self.core.read_version(view, from, txn, op, key, req)
            }

            fn on_anti_entropy_tick(&mut self, view: &mut ServerView<'_>, _ctx: &mut Ctx<'_, Msg>) {
                // Cooperative termination of orphaned prepares + parked
                // fetch GC (liveness and memory bounds under writer
                // failure).
                self.core.on_tick(view);
            }
        }
    };
}

ramp_engine!(
    RampFastEngine,
    "RAMP-F",
    "RAMP-Fast: full write-set metadata on every record, one-round reads, \
     second round only on a detected fracture."
);
ramp_engine!(
    RampSmallEngine,
    "RAMP-S",
    "RAMP-Small: timestamp-only metadata, always two read rounds, \
     constant metadata size."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterLayout;
    use crate::config::{ProtocolKind, SystemConfig};
    use crate::protocol::replication::ReplicationLog;
    use bytes::Bytes;
    use hat_sim::SimTime;
    use hat_storage::MemStore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layout() -> ClusterLayout {
        ClusterLayout::new(vec![vec![0], vec![1]], vec![2], vec![0])
    }

    fn rec(ts: Timestamp, val: &str, sibs: &[&str]) -> Record {
        Record::with_siblings(
            ts,
            Bytes::from(val.to_owned()),
            sibs.iter().map(|s| Key::from(s.to_string())).collect(),
        )
    }

    /// Runs `f` with a fresh engine + view + ctx, returning the messages
    /// the engine sent.
    fn with_engine<R>(
        f: impl FnOnce(&mut RampFastEngine, &mut ServerView<'_>, &mut Ctx<'_, Msg>) -> R,
    ) -> (R, Vec<(hat_sim::SimDuration, NodeId, Msg)>) {
        let layout = layout();
        let config = SystemConfig::new(ProtocolKind::RampFast);
        let mut store = MemStore::new();
        let mut repl = ReplicationLog::new(1);
        let mut view = ServerView {
            store: &mut store,
            repl: &mut repl,
            layout: &layout,
            config: &config,
            cluster: 0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut ctx = Ctx::detached(0, SimTime::ZERO, &mut rng);
        let mut engine = RampFastEngine::default();
        let r = f(&mut engine, &mut view, &mut ctx);
        let (sends, _) = ctx.into_outputs();
        (r, sends)
    }

    #[test]
    fn prepared_versions_are_invisible_until_committed() {
        let ts = Timestamp::new(1, 1);
        with_engine(|e, view, ctx| {
            e.apply_client_write(view, ctx, Key::from("x"), rec(ts, "v", &["x", "y"]).into());
            assert!(view.store.latest(b"x").is_none(), "prepare is invisible");
            assert_eq!(e.core.prepared_len(), 1);
            // exact fetch sees the prepared version
            let ans = e.read_version(view, 2, ts, 0, &Key::from("x"), &VersionReq::Exact(ts));
            assert_eq!(
                ans,
                VersionAnswer::Ready(Some(rec(ts, "v", &["x", "y"]).into()))
            );
            // commit promotes it and queues gossip
            e.on_commit_mark(view, ctx, Key::from("x"), ts);
            assert_eq!(view.store.latest(b"x").unwrap().value, Bytes::from("v"));
            assert_eq!(e.core.prepared_len(), 0);
            assert_eq!(view.repl.len(), 1, "committed version gossips");
            // duplicate commit (retry) is idempotent
            e.on_commit_mark(view, ctx, Key::from("x"), ts);
            assert_eq!(view.repl.len(), 1);
        });
    }

    #[test]
    fn exact_fetch_parks_until_the_version_arrives() {
        let ts = Timestamp::new(3, 1);
        let ((), sends) = with_engine(|e, view, ctx| {
            let ans = e.read_version(view, 9, ts, 4, &Key::from("x"), &VersionReq::Exact(ts));
            assert_eq!(ans, VersionAnswer::Parked);
            // a retried fetch parks once
            let ans = e.read_version(view, 9, ts, 4, &Key::from("x"), &VersionReq::Exact(ts));
            assert_eq!(ans, VersionAnswer::Parked);
            assert_eq!(e.core.parked_len(), 1);
            // the anti-entropy copy lands: the parked reader is answered
            e.apply_replicated_write(view, ctx, Key::from("x"), rec(ts, "late", &["x"]).into());
            assert_eq!(e.core.parked_len(), 0);
        });
        let replies: Vec<_> = sends
            .iter()
            .filter(|(_, to, m)| *to == 9 && matches!(m, Msg::GetVersionResp { .. }))
            .collect();
        assert_eq!(replies.len(), 1, "deduplicated park answers once");
        let Msg::GetVersionResp { found, .. } = &replies[0].2 else {
            unreachable!()
        };
        assert_eq!(found.as_ref().unwrap().value, Bytes::from("late"));
    }

    #[test]
    fn among_picks_the_newest_in_set_across_committed_and_prepared() {
        let t1 = Timestamp::new(1, 1);
        let t2 = Timestamp::new(2, 1);
        let t3 = Timestamp::new(3, 1);
        with_engine(|e, view, ctx| {
            view.store
                .put(Key::from("x"), rec(t1, "old", &[]).into())
                .unwrap();
            e.apply_client_write(view, ctx, Key::from("x"), rec(t2, "prepped", &[]).into());
            // t3 has no version of x: ignored
            let ans = e.read_version(
                view,
                2,
                t3,
                0,
                &Key::from("x"),
                &VersionReq::Among(vec![t1, t2, t3]),
            );
            let VersionAnswer::Ready(Some(r)) = ans else {
                panic!("expected a version");
            };
            assert_eq!(r.value, Bytes::from("prepped"));
            // a set matching nothing answers ⊥ — never an out-of-set
            // version, which the reader's set membership couldn't
            // justify (and could itself fracture)
            let ans = e.read_version(
                view,
                2,
                t3,
                1,
                &Key::from("x"),
                &VersionReq::Among(vec![t3]),
            );
            assert_eq!(ans, VersionAnswer::Ready(None));
            assert_eq!(e.core.among_misses, 1);
        });
    }

    #[test]
    fn orphaned_prepares_are_cooperatively_terminated() {
        // A prepare whose commit marker never arrives (writer abandoned
        // mid-commit) is promoted by the replica itself after the
        // termination window — prepared versions never abort, a lost
        // marker only delays visibility — and any parked fetch for it
        // is answered at promotion-or-earlier, so nothing leaks.
        let ts = Timestamp::new(6, 1);
        let ((), sends) = with_engine(|e, view, ctx| {
            e.apply_client_write(
                view,
                ctx,
                Key::from("x"),
                rec(ts, "orphan", &["x", "y"]).into(),
            );
            // A remote reader parks on the sibling stamp meanwhile.
            let ans = e.read_version(view, 9, ts, 1, &Key::from("y"), &VersionReq::Exact(ts));
            assert_eq!(ans, VersionAnswer::Parked);
            for _ in 0..COOPERATIVE_TERMINATION_TICKS {
                assert!(view.store.latest(b"x").is_none() || e.core.prepared_len() == 0);
                e.on_anti_entropy_tick(view, ctx);
            }
            assert_eq!(e.core.prepared_len(), 0, "orphan promoted");
            assert_eq!(
                view.store.latest(b"x").unwrap().value,
                Bytes::from("orphan")
            );
            assert_eq!(view.repl.len(), 1, "promotion gossips");
            // The y-parked fetch outlives its reader: GC'd within bound.
            for _ in 0..PARKED_GC_TICKS {
                e.on_anti_entropy_tick(view, ctx);
            }
            assert_eq!(e.core.parked_len(), 0, "stale parked slot dropped");
        });
        let _ = sends;
    }

    #[test]
    fn round_one_read_sees_only_committed_versions() {
        let t1 = Timestamp::new(1, 1);
        let t2 = Timestamp::new(2, 1);
        with_engine(|e, view, ctx| {
            view.store
                .put(Key::from("x"), rec(t1, "good", &[]).into())
                .unwrap();
            e.apply_client_write(view, ctx, Key::from("x"), rec(t2, "prep", &[]).into());
            let r = e.read(view, &Key::from("x"), Timestamp::INITIAL).unwrap();
            assert_eq!(r.value, Bytes::from("good"));
            assert_eq!(e.read_ts(view, &Key::from("x")), t1);
            e.on_commit_mark(view, ctx, Key::from("x"), t2);
            assert_eq!(e.read_ts(view, &Key::from("x")), t2);
        });
    }
}
