//! The `master` engine: per-key linearizability via a designated master
//! replica (§6.3's unavailable recency baseline).
//!
//! Clients route every operation on a key to that key's master (see
//! [`crate::ClusterLayout::master`]), so the master's LWW state *is* the
//! linearization point; the server-side write/read path is plain LWW and
//! the anti-entropy gossip merely keeps the other replicas warm. The
//! unavailability under partition comes from the routing, not from any
//! server-side machinery — which is why this engine has none.

use crate::protocol::engine::ProtocolEngine;

/// Engine for [`crate::ProtocolKind::Master`].
#[derive(Debug, Default, Clone, Copy)]
pub struct MasterEngine;

impl ProtocolEngine for MasterEngine {
    fn name(&self) -> &'static str {
        "master"
    }
}
