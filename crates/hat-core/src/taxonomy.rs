//! The HAT taxonomy: Table 3 and the partial order of Figure 2.
//!
//! Every isolation / replica-consistency / session model discussed in the
//! paper is a [`Model`]; each has an [`Availability`] class (highly
//! available, sticky available, unavailable — Table 3) and the strength
//! edges of Figure 2 define a partial order. The paper notes the diagram
//! "depicts 144 possible HAT combinations": we compute that number
//! directly as the antichains of the HA + sticky sub-order (sets of
//! mutually incomparable achievable models).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Availability classification of a model (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Availability {
    /// Achievable with (non-sticky) high availability.
    HighlyAvailable,
    /// Achievable with sticky availability only.
    Sticky,
    /// Unachievable in a HAT system; the payload says why.
    Unavailable(Unavailability),
}

/// Why a model is unavailable (the †/‡/⊕ footnotes of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Unavailability {
    /// Requires preventing Lost Update (†).
    pub prevents_lost_update: bool,
    /// Requires preventing Write Skew (‡).
    pub prevents_write_skew: bool,
    /// Requires recency guarantees (⊕).
    pub requires_recency: bool,
}

/// The consistency / isolation models of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are the paper's own acronyms
pub enum Model {
    ReadUncommitted,
    ReadCommitted,
    ItemCutIsolation,
    PredicateCutIsolation,
    MonotonicAtomicView,
    ReadAtomic,
    MonotonicReads,
    MonotonicWrites,
    WritesFollowReads,
    ReadYourWrites,
    Pram,
    Causal,
    CursorStability,
    SnapshotIsolation,
    RepeatableRead,
    OneCopySerializability,
    Recency,
    Safe,
    Regular,
    Linearizability,
    StrongOneCopySerializability,
}

impl Model {
    /// All models, in Table 3 order (HA, then sticky, then unavailable).
    /// The Read Atomic row is the RAMP follow-up addition: RA is proven
    /// achievable with high availability (reader-side repair needs no
    /// blocking coordination), slotting strictly between MAV and the
    /// unavailable snapshot levels.
    pub const ALL: [Model; 21] = [
        Model::ReadUncommitted,
        Model::ReadCommitted,
        Model::ItemCutIsolation,
        Model::PredicateCutIsolation,
        Model::MonotonicAtomicView,
        Model::ReadAtomic,
        Model::MonotonicReads,
        Model::MonotonicWrites,
        Model::WritesFollowReads,
        Model::ReadYourWrites,
        Model::Pram,
        Model::Causal,
        Model::CursorStability,
        Model::SnapshotIsolation,
        Model::RepeatableRead,
        Model::OneCopySerializability,
        Model::Recency,
        Model::Safe,
        Model::Regular,
        Model::Linearizability,
        Model::StrongOneCopySerializability,
    ];

    /// The paper's acronym for the model.
    pub fn acronym(self) -> &'static str {
        match self {
            Model::ReadUncommitted => "RU",
            Model::ReadCommitted => "RC",
            Model::ItemCutIsolation => "I-CI",
            Model::PredicateCutIsolation => "P-CI",
            Model::MonotonicAtomicView => "MAV",
            Model::ReadAtomic => "RA",
            Model::MonotonicReads => "MR",
            Model::MonotonicWrites => "MW",
            Model::WritesFollowReads => "WFR",
            Model::ReadYourWrites => "RYW",
            Model::Pram => "PRAM",
            Model::Causal => "causal",
            Model::CursorStability => "CS",
            Model::SnapshotIsolation => "SI",
            Model::RepeatableRead => "RR",
            Model::OneCopySerializability => "1SR",
            Model::Recency => "recency",
            Model::Safe => "safe",
            Model::Regular => "regular",
            Model::Linearizability => "linearizable",
            Model::StrongOneCopySerializability => "Strong-1SR",
        }
    }

    /// Availability class (Table 3).
    pub fn availability(self) -> Availability {
        use Model::*;
        let unav = |lu, ws, rec| {
            Availability::Unavailable(Unavailability {
                prevents_lost_update: lu,
                prevents_write_skew: ws,
                requires_recency: rec,
            })
        };
        match self {
            ReadUncommitted
            | ReadCommitted
            | ItemCutIsolation
            | PredicateCutIsolation
            | MonotonicAtomicView
            | ReadAtomic
            | MonotonicReads
            | MonotonicWrites
            | WritesFollowReads => Availability::HighlyAvailable,
            ReadYourWrites | Pram | Causal => Availability::Sticky,
            CursorStability => unav(true, false, false),
            SnapshotIsolation => unav(true, false, false),
            RepeatableRead => unav(true, true, false),
            OneCopySerializability => unav(true, true, false),
            Recency | Safe | Regular | Linearizability => unav(false, false, true),
            StrongOneCopySerializability => unav(true, true, true),
        }
    }

    /// True if achievable in some HAT system (HA or sticky).
    pub fn hat_achievable(self) -> bool {
        !matches!(self.availability(), Availability::Unavailable(_))
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.acronym())
    }
}

/// Direct strength edges of Figure 2: `(stronger, weaker)` — the stronger
/// model implies the weaker.
pub const EDGES: &[(Model, Model)] = &[
    // isolation spine
    (Model::ReadCommitted, Model::ReadUncommitted),
    (Model::MonotonicAtomicView, Model::ReadCommitted),
    (Model::ItemCutIsolation, Model::ReadUncommitted),
    (Model::PredicateCutIsolation, Model::ItemCutIsolation),
    (Model::CursorStability, Model::MonotonicAtomicView),
    // RA (RAMP): no fractured reads — strictly stronger than MAV's
    // order-aware atomic view, still below SI/RR (no predicates, no
    // lost-update prevention).
    (Model::ReadAtomic, Model::MonotonicAtomicView),
    (Model::SnapshotIsolation, Model::ReadAtomic),
    (Model::RepeatableRead, Model::ReadAtomic),
    (Model::RepeatableRead, Model::PredicateCutIsolation),
    (Model::RepeatableRead, Model::MonotonicAtomicView),
    (Model::SnapshotIsolation, Model::MonotonicAtomicView),
    (Model::SnapshotIsolation, Model::PredicateCutIsolation),
    (Model::OneCopySerializability, Model::RepeatableRead),
    (Model::OneCopySerializability, Model::SnapshotIsolation),
    (Model::OneCopySerializability, Model::CursorStability),
    (Model::OneCopySerializability, Model::Causal),
    // session guarantees
    (Model::Pram, Model::MonotonicReads),
    (Model::Pram, Model::MonotonicWrites),
    (Model::Pram, Model::ReadYourWrites),
    (Model::Causal, Model::Pram),
    (Model::Causal, Model::WritesFollowReads),
    // §5.1.3/§5.1.2: causal consistency is Adya's PL-2L, and MAV sits
    // below PL-2L — so causal entails MAV.
    (Model::Causal, Model::MonotonicAtomicView),
    // register / recency spine
    (Model::Safe, Model::Recency),
    (Model::Regular, Model::Safe),
    (Model::Linearizability, Model::Regular),
    (Model::StrongOneCopySerializability, Model::Linearizability),
    (
        Model::StrongOneCopySerializability,
        Model::OneCopySerializability,
    ),
];

/// The Figure 2 lattice with reachability precomputed.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    /// `stronger_than[i][j]` — model `i` (by [`Model::ALL`] index) is
    /// strictly stronger than model `j`.
    stronger: Vec<Vec<bool>>,
}

impl Default for Taxonomy {
    fn default() -> Self {
        Self::new()
    }
}

impl Taxonomy {
    /// Builds the taxonomy (transitive closure of [`EDGES`]).
    pub fn new() -> Self {
        let n = Model::ALL.len();
        let idx = |m: Model| Model::ALL.iter().position(|x| *x == m).unwrap();
        let mut stronger = vec![vec![false; n]; n];
        for &(a, b) in EDGES {
            stronger[idx(a)][idx(b)] = true;
        }
        // Floyd–Warshall closure.
        for k in 0..n {
            for i in 0..n {
                if stronger[i][k] {
                    let row_k = stronger[k].clone();
                    for (dst, &via) in stronger[i].iter_mut().zip(row_k.iter()) {
                        if via {
                            *dst = true;
                        }
                    }
                }
            }
        }
        Taxonomy { stronger }
    }

    fn idx(m: Model) -> usize {
        Model::ALL.iter().position(|x| *x == m).unwrap()
    }

    /// True if `a` is strictly stronger than `b` (implies it).
    pub fn stronger_than(&self, a: Model, b: Model) -> bool {
        self.stronger[Self::idx(a)][Self::idx(b)]
    }

    /// True if the two models are incomparable (neither implies the
    /// other) — such models are simultaneously achievable.
    pub fn incomparable(&self, a: Model, b: Model) -> bool {
        a != b && !self.stronger_than(a, b) && !self.stronger_than(b, a)
    }

    /// All models implied by `m` (its downset, excluding `m`).
    pub fn implied_by(&self, m: Model) -> Vec<Model> {
        Model::ALL
            .iter()
            .copied()
            .filter(|&x| self.stronger_than(m, x))
            .collect()
    }

    /// The availability of a *combination* of models: "the availability
    /// of a combination of models has the availability of the least
    /// available individual model" (Figure 2 caption).
    pub fn combination_availability(&self, models: &[Model]) -> Availability {
        let mut worst = Availability::HighlyAvailable;
        for &m in models {
            worst = match (worst, m.availability()) {
                (_, u @ Availability::Unavailable(_)) => return u,
                (Availability::HighlyAvailable, a) => a,
                (w, _) => w,
            };
        }
        worst
    }

    /// Counts the antichains (sets of pairwise-incomparable models) of
    /// the achievable (HA + sticky) sub-order, *excluding* the empty set.
    ///
    /// The paper's Figure 2 caption says the diagram "depicts 144
    /// possible HAT combinations" without defining the counting
    /// convention; with our (semantically faithful) edge set the
    /// non-empty antichain count is 182. Both numbers are reported by
    /// the `exp_fig2` experiment; the discrepancy is discussed in
    /// EXPERIMENTS.md.
    pub fn count_hat_combinations(&self) -> usize {
        let achievable: Vec<Model> = Model::ALL
            .iter()
            .copied()
            .filter(|m| m.hat_achievable())
            .collect();
        let n = achievable.len();
        let mut count = 0usize;
        // 2^11 subsets: trivially enumerable.
        for mask in 1u32..(1 << n) {
            let members: Vec<Model> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| achievable[i])
                .collect();
            let antichain = members
                .iter()
                .enumerate()
                .all(|(i, &a)| members[i + 1..].iter().all(|&b| self.incomparable(a, b)));
            if antichain {
                count += 1;
            }
        }
        count
    }

    /// Strongest achievable combinations: maximal antichains of the
    /// achievable sub-order (e.g. causal + P-CI + MAV).
    pub fn maximal_hat_combinations(&self) -> Vec<Vec<Model>> {
        let achievable: Vec<Model> = Model::ALL
            .iter()
            .copied()
            .filter(|m| m.hat_achievable())
            .collect();
        let n = achievable.len();
        let mut antichains: Vec<HashSet<Model>> = Vec::new();
        for mask in 1u32..(1 << n) {
            let members: Vec<Model> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| achievable[i])
                .collect();
            let is_antichain = members
                .iter()
                .enumerate()
                .all(|(i, &a)| members[i + 1..].iter().all(|&b| self.incomparable(a, b)));
            if is_antichain {
                antichains.push(members.into_iter().collect());
            }
        }
        // Keep only maximal ones (not a subset of another antichain) and
        // drop those dominated pointwise.
        let maximal: Vec<Vec<Model>> = antichains
            .iter()
            .filter(|a| {
                !antichains
                    .iter()
                    .any(|b| a.len() < b.len() && a.is_subset(b))
            })
            .map(|a| {
                let mut v: Vec<Model> = a.iter().copied().collect();
                v.sort();
                v
            })
            .collect();
        let mut out = maximal;
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_classification_matches_paper() {
        use Availability::*;
        assert_eq!(Model::ReadCommitted.availability(), HighlyAvailable);
        assert_eq!(Model::MonotonicAtomicView.availability(), HighlyAvailable);
        assert_eq!(
            Model::ReadAtomic.availability(),
            HighlyAvailable,
            "Table 3 RA row: Read Atomic is achievable with high availability"
        );
        assert_eq!(Model::PredicateCutIsolation.availability(), HighlyAvailable);
        assert_eq!(Model::ReadYourWrites.availability(), Sticky);
        assert_eq!(Model::Pram.availability(), Sticky);
        assert_eq!(Model::Causal.availability(), Sticky);
        for m in [
            Model::CursorStability,
            Model::SnapshotIsolation,
            Model::RepeatableRead,
            Model::OneCopySerializability,
            Model::Linearizability,
            Model::StrongOneCopySerializability,
        ] {
            assert!(!m.hat_achievable(), "{m} must be unavailable");
        }
    }

    #[test]
    fn unavailability_reasons_match_footnotes() {
        // SI is † (lost update), RR is †‡, linearizability is ⊕,
        // Strong-1SR is †‡⊕.
        let Availability::Unavailable(si) = Model::SnapshotIsolation.availability() else {
            panic!()
        };
        assert!(si.prevents_lost_update && !si.prevents_write_skew && !si.requires_recency);
        let Availability::Unavailable(rr) = Model::RepeatableRead.availability() else {
            panic!()
        };
        assert!(rr.prevents_lost_update && rr.prevents_write_skew);
        let Availability::Unavailable(lin) = Model::Linearizability.availability() else {
            panic!()
        };
        assert!(lin.requires_recency && !lin.prevents_lost_update);
        let Availability::Unavailable(s1sr) = Model::StrongOneCopySerializability.availability()
        else {
            panic!()
        };
        assert!(s1sr.prevents_lost_update && s1sr.prevents_write_skew && s1sr.requires_recency);
    }

    #[test]
    fn strength_order_is_transitive_and_matches_figure2() {
        let t = Taxonomy::new();
        // direct edges
        assert!(t.stronger_than(Model::ReadCommitted, Model::ReadUncommitted));
        assert!(t.stronger_than(Model::Causal, Model::Pram));
        // transitive: Strong-1SR entails everything else
        for m in Model::ALL {
            if m != Model::StrongOneCopySerializability {
                assert!(
                    t.stronger_than(Model::StrongOneCopySerializability, m),
                    "Strong-1SR must entail {m}"
                );
            }
        }
        // causal implies all four session guarantees
        for g in [
            Model::MonotonicReads,
            Model::MonotonicWrites,
            Model::ReadYourWrites,
            Model::WritesFollowReads,
        ] {
            assert!(t.stronger_than(Model::Causal, g));
        }
    }

    #[test]
    fn incomparable_models_exist() {
        let t = Taxonomy::new();
        // MAV and P-CI are incomparable (combining them gives
        // "transactional snapshot reads", §5.3)
        assert!(t.incomparable(Model::MonotonicAtomicView, Model::PredicateCutIsolation));
        assert!(t.incomparable(Model::Pram, Model::MonotonicAtomicView));
        assert!(!t.incomparable(Model::Causal, Model::ReadYourWrites));
        // causal entails MAV (PL-2L), so they are comparable
        assert!(t.stronger_than(Model::Causal, Model::MonotonicAtomicView));
    }

    #[test]
    fn combination_availability_is_least_available() {
        let t = Taxonomy::new();
        assert_eq!(
            t.combination_availability(&[Model::ReadCommitted, Model::MonotonicReads]),
            Availability::HighlyAvailable
        );
        assert_eq!(
            t.combination_availability(&[Model::ReadCommitted, Model::ReadYourWrites]),
            Availability::Sticky
        );
        assert!(matches!(
            t.combination_availability(&[Model::Causal, Model::SnapshotIsolation]),
            Availability::Unavailable(_)
        ));
    }

    #[test]
    fn hat_combination_count_is_stable() {
        // Figure 2's caption counts "144 possible HAT combinations"
        // (convention unspecified); our non-empty antichain count over
        // the paper's 11 achievable models was 182. Adding the RAMP
        // follow-up's Read Atomic row (12 achievable models) grows the
        // count to 239 — locked in here so the lattice cannot silently
        // drift.
        let t = Taxonomy::new();
        assert_eq!(t.count_hat_combinations(), 239);
    }

    #[test]
    fn maximal_combinations_include_the_papers_favourites() {
        let t = Taxonomy::new();
        let maximal = t.maximal_hat_combinations();
        // §5.3: "If we combine all HAT and sticky guarantees, we have
        // transactional, causally consistent snapshot reads" — causal +
        // P-CI (causal already entails MAV via PL-2L). The RAMP
        // follow-up strengthens the combination with Read Atomic, which
        // is incomparable to both: RA + causal + P-CI is the new
        // strongest achievable point.
        let favourite = vec![
            Model::PredicateCutIsolation,
            Model::ReadAtomic,
            Model::Causal,
        ];
        let mut sorted = favourite.clone();
        sorted.sort();
        assert!(
            maximal.contains(&sorted),
            "expected {sorted:?} among maximal combinations {maximal:?}"
        );
    }
}
