//! Per-client performance metrics.

use hat_sim::{Histogram, LatencyPercentiles, SimDuration, SimTime};
use hat_trace::OpKind;

/// Latency/throughput counters maintained by each client. Latencies are
/// log-scale histograms (not means), so aggregation across clients is
/// lossless and the paper-style tail percentiles (p50/p90/p99/p999 +
/// max) survive a `merge`.
#[derive(Debug, Clone)]
pub struct ClientMetrics {
    /// Committed transactions.
    pub committed: u64,
    /// Externally aborted transactions (system-induced).
    pub aborted_external: u64,
    /// Internally aborted transactions (application-induced).
    pub aborted_internal: u64,
    /// Individual operations completed (reads + writes acked).
    pub ops_completed: u64,
    /// Request retries (resends after the retry interval elapsed).
    pub retries: u64,
    /// Client→server message rounds issued (every request round trip
    /// the client waits on: reads, timestamp reads, version fetches,
    /// write/commit phases, scans, locks). The coordination-cost
    /// denominator for comparing protocols in `exp_ramp`.
    pub msg_rounds: u64,
    /// Second-round repair fetches (RAMP-Fast fracture repairs; 0 for
    /// engines without reader-side repair). RAMP-Small's unconditional
    /// second round counts in `msg_rounds`, not here.
    pub repair_rounds: u64,
    /// Metadata bytes moved on behalf of atomic visibility: sibling
    /// write-set bytes attached to writes and returned with reads, and
    /// timestamp-set bytes in RAMP-Small second rounds.
    pub metadata_bytes: u64,
    /// Reads whose fracture repair gave up (ceiling loop exhausted) —
    /// must stay 0 in a correct RAMP-Fast run.
    pub unrepaired_reads: u64,
    /// `WrongShard` NACKs received: requests that raced a live shard
    /// handoff and were redirected to the token's new owner.
    pub shard_redirects: u64,
    /// Group-commit batches sent (`Msg::CommitBatch`), including
    /// retransmissions.
    pub commit_batches: u64,
    /// Total commit marks those batches carried; the mean batch size is
    /// `commit_batch_marks / commit_batches`.
    pub commit_batch_marks: u64,
    /// Transaction commit latency, milliseconds.
    pub txn_latency_ms: Histogram,
    /// Per-operation latency across all kinds, milliseconds.
    pub op_latency_ms: Histogram,
    /// Point-read (`get`) latency, milliseconds.
    pub get_latency_ms: Histogram,
    /// One-shot multi-read (`get_many`) per-key latency, milliseconds.
    pub get_many_latency_ms: Histogram,
    /// Predicate-scan latency, milliseconds.
    pub scan_latency_ms: Histogram,
    /// Write (`put`) latency, milliseconds.
    pub put_latency_ms: Histogram,
    /// 2PL lock-acquisition latency, milliseconds.
    pub lock_latency_ms: Histogram,
}

impl Default for ClientMetrics {
    fn default() -> Self {
        ClientMetrics {
            committed: 0,
            aborted_external: 0,
            aborted_internal: 0,
            ops_completed: 0,
            retries: 0,
            msg_rounds: 0,
            repair_rounds: 0,
            metadata_bytes: 0,
            unrepaired_reads: 0,
            shard_redirects: 0,
            commit_batches: 0,
            commit_batch_marks: 0,
            txn_latency_ms: Histogram::for_latency_ms(),
            op_latency_ms: Histogram::for_latency_ms(),
            get_latency_ms: Histogram::for_latency_ms(),
            get_many_latency_ms: Histogram::for_latency_ms(),
            scan_latency_ms: Histogram::for_latency_ms(),
            put_latency_ms: Histogram::for_latency_ms(),
            lock_latency_ms: Histogram::for_latency_ms(),
        }
    }
}

impl ClientMetrics {
    /// Records a committed transaction that started at `started` and
    /// finished at `finished`.
    pub fn record_commit(&mut self, started: SimTime, finished: SimTime) {
        self.committed += 1;
        self.txn_latency_ms
            .record(finished.since(started).as_millis_f64());
    }

    /// Records one completed operation of `kind` taking `latency`, into
    /// both the all-ops histogram and the per-kind one.
    pub fn record_op(&mut self, kind: OpKind, latency: SimDuration) {
        self.ops_completed += 1;
        let ms = latency.as_millis_f64();
        self.op_latency_ms.record(ms);
        if let Some(h) = self.op_hist_mut(kind) {
            h.record(ms);
        }
    }

    /// The per-kind latency histogram (`Commit` maps to the transaction
    /// latency histogram; `None` never happens today but keeps the match
    /// total if kinds grow).
    pub fn op_hist(&self, kind: OpKind) -> Option<&Histogram> {
        match kind {
            OpKind::Get => Some(&self.get_latency_ms),
            OpKind::GetMany => Some(&self.get_many_latency_ms),
            OpKind::Scan => Some(&self.scan_latency_ms),
            OpKind::Put => Some(&self.put_latency_ms),
            OpKind::Lock => Some(&self.lock_latency_ms),
            OpKind::Commit => Some(&self.txn_latency_ms),
        }
    }

    fn op_hist_mut(&mut self, kind: OpKind) -> Option<&mut Histogram> {
        match kind {
            OpKind::Get => Some(&mut self.get_latency_ms),
            OpKind::GetMany => Some(&mut self.get_many_latency_ms),
            OpKind::Scan => Some(&mut self.scan_latency_ms),
            OpKind::Put => Some(&mut self.put_latency_ms),
            OpKind::Lock => Some(&mut self.lock_latency_ms),
            // `record_op(Commit, …)` is never issued (commits go through
            // `record_commit`), but route it sensibly anyway.
            OpKind::Commit => None,
        }
    }

    /// Tail percentiles of transaction commit latency.
    pub fn commit_percentiles(&self) -> LatencyPercentiles {
        self.txn_latency_ms.percentiles()
    }

    /// Tail percentiles per operation kind, in [`OpKind::ALL`] order,
    /// skipping kinds with no samples.
    pub fn op_percentiles(&self) -> Vec<(OpKind, LatencyPercentiles)> {
        OpKind::ALL
            .iter()
            .filter_map(|&k| {
                let h = self.op_hist(k)?;
                (h.count() > 0).then(|| (k, h.percentiles()))
            })
            .collect()
    }

    /// Merges another client's metrics into this one (for aggregate
    /// reporting). Histogram merges are lossless: the merged percentiles
    /// equal those of recording every sample into one histogram.
    pub fn merge(&mut self, other: &ClientMetrics) {
        self.committed += other.committed;
        self.aborted_external += other.aborted_external;
        self.aborted_internal += other.aborted_internal;
        self.ops_completed += other.ops_completed;
        self.retries += other.retries;
        self.msg_rounds += other.msg_rounds;
        self.repair_rounds += other.repair_rounds;
        self.metadata_bytes += other.metadata_bytes;
        self.unrepaired_reads += other.unrepaired_reads;
        self.shard_redirects += other.shard_redirects;
        self.commit_batches += other.commit_batches;
        self.commit_batch_marks += other.commit_batch_marks;
        self.txn_latency_ms.merge(&other.txn_latency_ms);
        self.op_latency_ms.merge(&other.op_latency_ms);
        self.get_latency_ms.merge(&other.get_latency_ms);
        self.get_many_latency_ms.merge(&other.get_many_latency_ms);
        self.scan_latency_ms.merge(&other.scan_latency_ms);
        self.put_latency_ms.merge(&other.put_latency_ms);
        self.lock_latency_ms.merge(&other.lock_latency_ms);
    }

    /// Exports every counter and histogram into a metrics registry
    /// under `hat_client_*`/`hat_txn_*` names with the given labels —
    /// the client half of the unified Prometheus/JSON exposition.
    /// Histograms are folded in losslessly ([`hat_obs::MetricsRegistry`]
    /// bucket-merges), so exporting several clients under the same
    /// labels aggregates exactly like [`ClientMetrics::merge`].
    pub fn export_into(&self, reg: &mut hat_obs::MetricsRegistry, labels: &[(&str, &str)]) {
        reg.counter_add("hat_txn_committed_total", labels, self.committed);
        reg.counter_add(
            "hat_txn_aborted_external_total",
            labels,
            self.aborted_external,
        );
        reg.counter_add(
            "hat_txn_aborted_internal_total",
            labels,
            self.aborted_internal,
        );
        reg.counter_add("hat_client_ops_completed_total", labels, self.ops_completed);
        reg.counter_add("hat_client_retries_total", labels, self.retries);
        reg.counter_add("hat_client_msg_rounds_total", labels, self.msg_rounds);
        reg.counter_add("hat_client_repair_rounds_total", labels, self.repair_rounds);
        reg.counter_add(
            "hat_client_metadata_bytes_total",
            labels,
            self.metadata_bytes,
        );
        reg.counter_add(
            "hat_client_unrepaired_reads_total",
            labels,
            self.unrepaired_reads,
        );
        reg.counter_add(
            "hat_client_shard_redirects_total",
            labels,
            self.shard_redirects,
        );
        reg.counter_add(
            "hat_client_commit_batches_total",
            labels,
            self.commit_batches,
        );
        reg.counter_add(
            "hat_client_commit_batch_marks_total",
            labels,
            self.commit_batch_marks,
        );
        for (name, h) in [
            ("hat_txn_latency_ms", &self.txn_latency_ms),
            ("hat_op_latency_ms", &self.op_latency_ms),
            ("hat_get_latency_ms", &self.get_latency_ms),
            ("hat_get_many_latency_ms", &self.get_many_latency_ms),
            ("hat_scan_latency_ms", &self.scan_latency_ms),
            ("hat_put_latency_ms", &self.put_latency_ms),
            ("hat_lock_latency_ms", &self.lock_latency_ms),
        ] {
            if h.count() > 0 {
                reg.hist_merge(name, labels, h);
            }
        }
    }

    /// Committed transactions per second over a window of `elapsed`.
    pub fn throughput_tps(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.committed as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_throughput() {
        let mut m = ClientMetrics::default();
        m.record_commit(SimTime::ZERO, SimTime::from_millis(10));
        m.record_commit(SimTime::from_millis(10), SimTime::from_millis(30));
        assert_eq!(m.committed, 2);
        assert!((m.txn_latency_ms.mean() - 15.0).abs() < 0.5);
        assert!((m.throughput_tps(SimDuration::from_secs(2)) - 1.0).abs() < 1e-9);
        assert_eq!(m.throughput_tps(SimDuration::ZERO), 0.0);
        let p = m.commit_percentiles();
        assert_eq!(p.count, 2);
        assert!(p.p50 <= p.p999 && p.p999 <= p.max);
    }

    #[test]
    fn record_op_splits_by_kind() {
        let mut m = ClientMetrics::default();
        m.record_op(OpKind::Get, SimDuration::from_millis(1));
        m.record_op(OpKind::Get, SimDuration::from_millis(2));
        m.record_op(OpKind::Put, SimDuration::from_millis(10));
        m.record_op(OpKind::Scan, SimDuration::from_millis(5));
        m.record_op(OpKind::Lock, SimDuration::from_millis(3));
        m.record_op(OpKind::GetMany, SimDuration::from_millis(4));
        assert_eq!(m.ops_completed, 6);
        assert_eq!(m.op_latency_ms.count(), 6);
        assert_eq!(m.get_latency_ms.count(), 2);
        assert_eq!(m.put_latency_ms.count(), 1);
        assert_eq!(m.scan_latency_ms.count(), 1);
        assert_eq!(m.lock_latency_ms.count(), 1);
        assert_eq!(m.get_many_latency_ms.count(), 1);
        let kinds: Vec<OpKind> = m.op_percentiles().into_iter().map(|(k, _)| k).collect();
        assert!(kinds.contains(&OpKind::Get) && kinds.contains(&OpKind::Put));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ClientMetrics::default();
        let mut b = ClientMetrics::default();
        a.record_commit(SimTime::ZERO, SimTime::from_millis(5));
        b.record_commit(SimTime::ZERO, SimTime::from_millis(5));
        b.record_op(OpKind::Get, SimDuration::from_millis(1));
        b.retries = 3;
        b.msg_rounds = 7;
        b.repair_rounds = 2;
        b.metadata_bytes = 640;
        a.merge(&b);
        assert_eq!(a.committed, 2);
        assert_eq!(a.ops_completed, 1);
        assert_eq!(a.retries, 3);
        assert_eq!(a.msg_rounds, 7);
        assert_eq!(a.repair_rounds, 2);
        assert_eq!(a.metadata_bytes, 640);
        assert_eq!(a.unrepaired_reads, 0);
        assert_eq!(a.get_latency_ms.count(), 1);
    }

    #[test]
    fn merge_is_associative_and_empty_identity() {
        let mk = |ms: &[u64]| {
            let mut m = ClientMetrics::default();
            for &v in ms {
                m.record_commit(SimTime::ZERO, SimTime::from_millis(v));
                m.record_op(OpKind::Get, SimDuration::from_millis(v));
            }
            m
        };
        let a = mk(&[1, 50]);
        let b = mk(&[9]);
        let c = mk(&[400, 2]);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.committed, right.committed);
        assert_eq!(left.commit_percentiles(), right.commit_percentiles());
        assert_eq!(
            left.get_latency_ms.percentiles(),
            right.get_latency_ms.percentiles()
        );
        // Lossless: equal to single-histogram recording.
        let all = mk(&[1, 50, 9, 400, 2]);
        assert_eq!(left.commit_percentiles(), all.commit_percentiles());
        // Empty merge is an identity.
        let mut with_empty = a.clone();
        with_empty.merge(&ClientMetrics::default());
        assert_eq!(with_empty.commit_percentiles(), a.commit_percentiles());
        assert_eq!(with_empty.ops_completed, a.ops_completed);
    }
}
