//! Per-client performance metrics.

use hat_sim::{Histogram, SimDuration, SimTime};

/// Latency/throughput counters maintained by each client.
#[derive(Debug, Clone)]
pub struct ClientMetrics {
    /// Committed transactions.
    pub committed: u64,
    /// Externally aborted transactions (system-induced).
    pub aborted_external: u64,
    /// Internally aborted transactions (application-induced).
    pub aborted_internal: u64,
    /// Individual operations completed (reads + writes acked).
    pub ops_completed: u64,
    /// Request retries (resends after the retry interval elapsed).
    pub retries: u64,
    /// Client→server message rounds issued (every request round trip
    /// the client waits on: reads, timestamp reads, version fetches,
    /// write/commit phases, scans, locks). The coordination-cost
    /// denominator for comparing protocols in `exp_ramp`.
    pub msg_rounds: u64,
    /// Second-round repair fetches (RAMP-Fast fracture repairs; 0 for
    /// engines without reader-side repair). RAMP-Small's unconditional
    /// second round counts in `msg_rounds`, not here.
    pub repair_rounds: u64,
    /// Metadata bytes moved on behalf of atomic visibility: sibling
    /// write-set bytes attached to writes and returned with reads, and
    /// timestamp-set bytes in RAMP-Small second rounds.
    pub metadata_bytes: u64,
    /// Reads whose fracture repair gave up (ceiling loop exhausted) —
    /// must stay 0 in a correct RAMP-Fast run.
    pub unrepaired_reads: u64,
    /// Group-commit batches sent (`Msg::CommitBatch`), including
    /// retransmissions.
    pub commit_batches: u64,
    /// Total commit marks those batches carried; the mean batch size is
    /// `commit_batch_marks / commit_batches`.
    pub commit_batch_marks: u64,
    /// Transaction commit latency, milliseconds.
    pub txn_latency_ms: Histogram,
    /// Per-operation latency, milliseconds.
    pub op_latency_ms: Histogram,
}

impl Default for ClientMetrics {
    fn default() -> Self {
        ClientMetrics {
            committed: 0,
            aborted_external: 0,
            aborted_internal: 0,
            ops_completed: 0,
            retries: 0,
            msg_rounds: 0,
            repair_rounds: 0,
            metadata_bytes: 0,
            unrepaired_reads: 0,
            commit_batches: 0,
            commit_batch_marks: 0,
            txn_latency_ms: Histogram::for_latency_ms(),
            op_latency_ms: Histogram::for_latency_ms(),
        }
    }
}

impl ClientMetrics {
    /// Records a committed transaction that started at `started` and
    /// finished at `finished`.
    pub fn record_commit(&mut self, started: SimTime, finished: SimTime) {
        self.committed += 1;
        self.txn_latency_ms
            .record(finished.since(started).as_millis_f64());
    }

    /// Records one completed operation taking `latency`.
    pub fn record_op(&mut self, latency: SimDuration) {
        self.ops_completed += 1;
        self.op_latency_ms.record(latency.as_millis_f64());
    }

    /// Merges another client's metrics into this one (for aggregate
    /// reporting).
    pub fn merge(&mut self, other: &ClientMetrics) {
        self.committed += other.committed;
        self.aborted_external += other.aborted_external;
        self.aborted_internal += other.aborted_internal;
        self.ops_completed += other.ops_completed;
        self.retries += other.retries;
        self.msg_rounds += other.msg_rounds;
        self.repair_rounds += other.repair_rounds;
        self.metadata_bytes += other.metadata_bytes;
        self.unrepaired_reads += other.unrepaired_reads;
        self.commit_batches += other.commit_batches;
        self.commit_batch_marks += other.commit_batch_marks;
        self.txn_latency_ms.merge(&other.txn_latency_ms);
        self.op_latency_ms.merge(&other.op_latency_ms);
    }

    /// Committed transactions per second over a window of `elapsed`.
    pub fn throughput_tps(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.committed as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_throughput() {
        let mut m = ClientMetrics::default();
        m.record_commit(SimTime::ZERO, SimTime::from_millis(10));
        m.record_commit(SimTime::from_millis(10), SimTime::from_millis(30));
        assert_eq!(m.committed, 2);
        assert!((m.txn_latency_ms.mean() - 15.0).abs() < 0.5);
        assert!((m.throughput_tps(SimDuration::from_secs(2)) - 1.0).abs() < 1e-9);
        assert_eq!(m.throughput_tps(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ClientMetrics::default();
        let mut b = ClientMetrics::default();
        a.record_commit(SimTime::ZERO, SimTime::from_millis(5));
        b.record_commit(SimTime::ZERO, SimTime::from_millis(5));
        b.record_op(SimDuration::from_millis(1));
        b.retries = 3;
        b.msg_rounds = 7;
        b.repair_rounds = 2;
        b.metadata_bytes = 640;
        a.merge(&b);
        assert_eq!(a.committed, 2);
        assert_eq!(a.ops_completed, 1);
        assert_eq!(a.retries, 3);
        assert_eq!(a.msg_rounds, 7);
        assert_eq!(a.repair_rounds, 2);
        assert_eq!(a.metadata_bytes, 640);
        assert_eq!(a.unrepaired_reads, 0);
    }
}
