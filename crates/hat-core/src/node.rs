//! Node wrapper: a simulated node is either a server or a client.

use crate::client::Client;
use crate::messages::Msg;
use crate::server::Server;
use hat_sim::{Actor, Ctx, NodeId, TimerId};

/// A deployment node.
// Variant sizes differ, but nodes are allocated once per deployment and
// never moved; boxing would tax every event dispatch instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Node {
    /// A replica server.
    Server(Server),
    /// A client session.
    Client(Client),
}

impl Node {
    /// The server inside, if this is a server node.
    pub fn as_server(&self) -> Option<&Server> {
        match self {
            Node::Server(s) => Some(s),
            Node::Client(_) => None,
        }
    }

    /// Mutable server access.
    pub fn as_server_mut(&mut self) -> Option<&mut Server> {
        match self {
            Node::Server(s) => Some(s),
            Node::Client(_) => None,
        }
    }

    /// The client inside, if this is a client node.
    pub fn as_client(&self) -> Option<&Client> {
        match self {
            Node::Client(c) => Some(c),
            Node::Server(_) => None,
        }
    }

    /// Mutable client access.
    pub fn as_client_mut(&mut self) -> Option<&mut Client> {
        match self {
            Node::Client(c) => Some(c),
            Node::Server(_) => None,
        }
    }
}

impl Actor for Node {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        match self {
            Node::Server(s) => s.on_start(ctx),
            Node::Client(c) => c.on_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match self {
            Node::Server(s) => s.on_message(ctx, from, msg),
            Node::Client(c) => c.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: TimerId) {
        match self {
            Node::Server(s) => s.on_timer(ctx, timer),
            Node::Client(c) => c.on_timer(ctx, timer),
        }
    }
}
