//! The HAT server (replica) actor — protocol-agnostic dispatch.
//!
//! A server owns one hash partition of the keyspace within its cluster.
//! It is a single service queue: each request is charged a service time
//! from the [`crate::ServiceModel`] and the reply leaves once the queue
//! drains — this is what produces the latency-vs-load and saturation
//! shapes of Figures 3–6.
//!
//! All protocol-specific behavior lives behind the
//! [`ProtocolEngine`] plugged in at construction: the server itself only
//! knows about queueing, the anti-entropy gossip loop, and which message
//! maps to which engine hook. Adding a new isolation level requires no
//! change here — implement the trait and register it in
//! [`crate::protocol::engine_for`] (or inject it via
//! [`Server::with_engine`]).
//!
//! All accepted writes are buffered in a [`ReplicationLog`] and gossiped
//! to the positional peer replica in every other cluster on an
//! anti-entropy timer (§5.1.4 convergence).

use crate::cluster::ClusterLayout;
use crate::config::SystemConfig;
use crate::messages::Msg;
use crate::protocol::engine::{engine_for, ProtocolEngine, ServerView};
use crate::protocol::replication::ReplicationLog;
use crate::timestamp::Timestamp;
use hat_sim::{Ctx, NodeId, SimDuration, SimTime, TimerId};
use hat_storage::{Key, SharedRecord, Store};
use hat_trace::{TraceEventKind, TraceSink};
use std::sync::Arc;

/// Timer tag for the anti-entropy tick.
const TIMER_ANTI_ENTROPY: TimerId = 1;

/// Timer tag for the crash-recovery bootstrap retry loop.
const TIMER_RECOVERY: TimerId = 2;

/// Replication-side counters, kept alongside `requests_served` so
/// experiments can report the group-commit and delta-compression wins
/// numerically (messages and bytes actually put on the wire).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Anti-entropy batches sent (`Replicate` + `ReplicateDelta`).
    pub replication_msgs: u64,
    /// Approximate serialized bytes of those batches (keys + records).
    pub replication_bytes: u64,
    /// Records shipped in those batches.
    pub replication_records: u64,
    /// How many of the batches were delta-compressed catch-ups.
    pub catchup_batches: u64,
    /// `CommitBatch` messages received.
    pub commit_batches: u64,
    /// Total commit marks carried by those batches (mean batch size =
    /// `commit_batch_size / commit_batches`).
    pub commit_batch_size: u64,
    /// Messages destined to this server dropped by an active network
    /// partition (filled from the engine's per-node fault counters by
    /// [`crate::SimFrontend::server_stats`]).
    pub msgs_dropped_by_partition: u64,
    /// Times this server has been crashed by a fault injector.
    pub crashes: u64,
    /// WAL/checkpoint records replayed into this server's store at
    /// recovery, accumulated across restarts. Nonzero proves a restarted
    /// server is serving log-recovered state rather than an empty store.
    pub wal_records_replayed: u64,
}

impl ServerStats {
    /// Accumulates another server's counters (aggregate reporting).
    pub fn merge(&mut self, other: &ServerStats) {
        self.replication_msgs += other.replication_msgs;
        self.replication_bytes += other.replication_bytes;
        self.replication_records += other.replication_records;
        self.catchup_batches += other.catchup_batches;
        self.commit_batches += other.commit_batches;
        self.commit_batch_size += other.commit_batch_size;
        self.msgs_dropped_by_partition += other.msgs_dropped_by_partition;
        self.crashes += other.crashes;
        self.wal_records_replayed += other.wal_records_replayed;
    }
}

/// A replica server.
pub struct Server {
    id: NodeId,
    cluster: usize,
    layout: Arc<ClusterLayout>,
    config: Arc<SystemConfig>,
    store: Box<dyn Store + Send>,
    busy_until: SimTime,
    repl: ReplicationLog,
    peers: Vec<NodeId>,
    engine: Box<dyn ProtocolEngine>,
    /// Peers still owed a crash-recovery bootstrap dump (empty except
    /// right after a restart; see [`Server::mark_restarted`]).
    recovering: Vec<NodeId>,
    /// Requests served (for load accounting in experiments).
    pub requests_served: u64,
    /// Replication and group-commit counters.
    pub stats: ServerStats,
    /// Structured trace sink (no-op unless `SystemConfig::trace`).
    trace: TraceSink,
}

impl Server {
    /// Builds a server for `cluster` backed by `store`, running the
    /// engine registered for `config.protocol`.
    pub fn new(
        id: NodeId,
        cluster: usize,
        layout: Arc<ClusterLayout>,
        config: Arc<SystemConfig>,
        store: Box<dyn Store + Send>,
    ) -> Self {
        let engine = engine_for(config.protocol);
        Self::with_engine(id, cluster, layout, config, store, engine)
    }

    /// Builds a server running an explicit [`ProtocolEngine`] — the
    /// injection point for engines not (yet) in the registry.
    pub fn with_engine(
        id: NodeId,
        cluster: usize,
        layout: Arc<ClusterLayout>,
        config: Arc<SystemConfig>,
        store: Box<dyn Store + Send>,
        engine: Box<dyn ProtocolEngine>,
    ) -> Self {
        let peers = layout.anti_entropy_peers(id);
        let mut repl = ReplicationLog::new(peers.len());
        // Recovery wiring: a store opened over an existing WAL (a
        // restarted server) seeds the replication buffer with every
        // recovered version, so writes accepted before the crash but
        // never gossiped re-enter anti-entropy. Peers apply duplicates
        // idempotently; a fresh volatile store recovers nothing and this
        // is a no-op.
        let stats = ServerStats {
            wal_records_replayed: store.recovered_records(),
            ..ServerStats::default()
        };
        if stats.wal_records_replayed > 0 {
            for (key, record) in store.all_versions() {
                repl.push(key, record);
            }
        }
        Server {
            id,
            cluster,
            layout,
            config,
            store,
            busy_until: SimTime::ZERO,
            repl,
            peers,
            engine,
            recovering: Vec::new(),
            requests_served: 0,
            stats,
            trace: TraceSink::disabled(),
        }
    }

    /// Installs the deployment-wide trace sink (shared with clients).
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Flags this server as a post-crash incarnation: on start it
    /// requests a full bootstrap dump from every gossip peer (retried on
    /// a timer until each peer answers). The reseeded replication log
    /// and the peers' rewound cursors repair everything the *logs* still
    /// hold; the dump repairs the rest — records this server originated,
    /// gossiped out, and then lost to a torn WAL tail, which survive
    /// only in peers' stores.
    pub fn mark_restarted(&mut self) {
        self.recovering = self.peers.clone();
    }

    /// The node id.
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    /// The cluster index.
    pub fn cluster(&self) -> usize {
        self.cluster
    }

    /// Read access to the backing store (tests, invariant checks).
    pub fn store(&self) -> &dyn Store {
        self.store.as_ref()
    }

    /// The running engine's label.
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Reads that missed their `required` bound (must be 0 in a correct
    /// MAV run; 0 by definition for engines without the concept).
    pub fn mav_required_misses(&self) -> u64 {
        self.engine.required_misses()
    }

    /// Rewinds the replication cursor for `peer` to the oldest retained
    /// log entry. Called on every gossip neighbor of a just-restarted
    /// server: the restarted node may have lost its newest applied
    /// records to a torn WAL tail *after* acknowledging them, so
    /// previously-acked suffixes must be re-sent (application is
    /// idempotent; the delta catch-up path compacts the resend).
    pub fn reset_peer_cursor(&mut self, peer: NodeId) {
        if let Some(i) = self.peers.iter().position(|&p| p == peer) {
            self.repl.rewind(i);
        }
    }

    /// Splits the server into its engine and the [`ServerView`] the
    /// engine hooks receive — one place that knows which fields make up
    /// the view.
    fn engine_view(&mut self) -> (&mut dyn ProtocolEngine, ServerView<'_>) {
        let view = ServerView {
            store: self.store.as_mut(),
            repl: &mut self.repl,
            layout: &self.layout,
            config: &self.config,
            cluster: self.cluster,
        };
        (self.engine.as_mut(), view)
    }

    /// Charges `cost` of service time and returns how long the caller's
    /// reply is held (queueing + service).
    fn service(&mut self, now: SimTime, cost: SimDuration) -> SimDuration {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        self.busy_until = start + cost;
        self.busy_until - now
    }

    /// Invoked once at simulation start.
    pub fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.stats.wal_records_replayed > 0 {
            self.trace.record(
                ctx.now().as_micros(),
                self.id,
                TraceEventKind::WalReplay {
                    records: self.stats.wal_records_replayed,
                },
            );
        }
        // Stagger anti-entropy ticks so servers do not gossip in
        // lock-step. The offset is derived from the node id (a
        // multiplicative hash spread over the interval) instead of drawn
        // from the shared rng stream: the tick cadence is a fixed
        // property of the deployment, and startup must not perturb the
        // rng sequence the rest of the run consumes — adding a server
        // would otherwise reshuffle every seeded schedule.
        let interval = self.config.anti_entropy_interval.as_micros().max(1);
        let jitter = (self.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % interval;
        ctx.set_timer(
            self.config.anti_entropy_interval + SimDuration::from_micros(jitter),
            TIMER_ANTI_ENTROPY,
        );
        if !self.recovering.is_empty() {
            for &peer in &self.recovering {
                ctx.send(peer, Msg::RecoverReq);
            }
            ctx.set_timer(self.config.anti_entropy_interval, TIMER_RECOVERY);
        }
    }

    /// Invoked when a timer fires.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: TimerId) {
        if timer == TIMER_ANTI_ENTROPY {
            for (i, &peer) in self.peers.clone().iter().enumerate() {
                // A peer lagging more than the threshold (e.g. freshly
                // healed from a long partition) gets one compacted
                // catch-up batch instead of `lag / MAX_BATCH` rounds of
                // per-record replay.
                if self.repl.lag(i) > self.config.delta_catchup_threshold {
                    let (upto, writes) = self.repl.catchup_for(i);
                    if !writes.is_empty() {
                        self.stats.catchup_batches += 1;
                        self.note_replication_batch(&writes);
                        self.trace_anti_entropy(ctx.now(), peer, &writes, true);
                        ctx.send(peer, Msg::ReplicateDelta { upto, writes });
                    }
                } else {
                    let (from_index, writes) = self.repl.batch_for(i);
                    if !writes.is_empty() {
                        self.note_replication_batch(&writes);
                        self.trace_anti_entropy(ctx.now(), peer, &writes, false);
                        ctx.send(peer, Msg::Replicate { from_index, writes });
                    }
                }
            }
            self.repl.compact(1024);
            let (engine, mut view) = self.engine_view();
            engine.on_anti_entropy_tick(&mut view, ctx);
            ctx.set_timer(self.config.anti_entropy_interval, TIMER_ANTI_ENTROPY);
        } else if timer == TIMER_RECOVERY && !self.recovering.is_empty() {
            // A bootstrap request (or its response) may have been lost to
            // a concurrent partition; keep asking until each peer answers.
            for &peer in &self.recovering.clone() {
                ctx.send(peer, Msg::RecoverReq);
            }
            ctx.set_timer(self.config.anti_entropy_interval, TIMER_RECOVERY);
        }
    }

    /// Emits one `AntiEntropyRound` trace event for a push to `peer`,
    /// with the same byte accounting as [`Self::note_replication_batch`].
    fn trace_anti_entropy(
        &self,
        now: SimTime,
        peer: NodeId,
        writes: &[(Key, SharedRecord)],
        delta: bool,
    ) {
        if !self.trace.is_enabled() {
            return;
        }
        let bytes = writes
            .iter()
            .map(|(k, r)| 4 + k.len() as u64 + r.encoded_len() as u64)
            .sum::<u64>();
        self.trace.record(
            now.as_micros(),
            self.id,
            TraceEventKind::AntiEntropyRound {
                peer,
                records: writes.len() as u64,
                bytes,
                delta,
            },
        );
    }

    fn note_replication_batch(&mut self, writes: &[(Key, SharedRecord)]) {
        self.stats.replication_msgs += 1;
        self.stats.replication_records += writes.len() as u64;
        self.stats.replication_bytes += writes
            .iter()
            .map(|(k, r)| 4 + k.len() as u64 + r.encoded_len() as u64)
            .sum::<u64>();
    }

    /// Invoked when a message arrives. Thin dispatch: each message maps
    /// to one engine hook plus service-time accounting.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        // WAL growth is observed as a delta across the whole dispatch so
        // every write path (puts, commit marks, replication applies) is
        // covered in one place. Zero-cost when tracing is off.
        let wal_before = if self.trace.is_enabled() {
            self.store.wal_bytes()
        } else {
            0
        };
        self.dispatch(ctx, from, msg);
        if self.trace.is_enabled() {
            let appended = self.store.wal_bytes().saturating_sub(wal_before);
            if appended > 0 {
                self.trace.record(
                    ctx.now().as_micros(),
                    self.id,
                    TraceEventKind::WalAppend { bytes: appended },
                );
            }
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Get {
                txn,
                op,
                key,
                required,
            } => self.handle_get(ctx, from, txn, op, key, required),
            Msg::Scan { txn, op, prefix } => self.handle_scan(ctx, from, txn, op, prefix),
            Msg::Put {
                txn,
                op,
                key,
                record,
            } => self.handle_put(ctx, from, txn, op, key, record),
            Msg::GetTs { txn, op, key } => self.handle_get_ts(ctx, from, txn, op, key),
            Msg::GetVersion { txn, op, key, req } => {
                self.handle_get_version(ctx, from, txn, op, key, req)
            }
            Msg::Commit { txn, op, key, ts } => self.handle_commit(ctx, from, txn, op, key, ts),
            Msg::CommitBatch { txn, ts, marks } => {
                self.handle_commit_batch(ctx, from, txn, ts, marks)
            }
            Msg::Lock {
                txn,
                op,
                key,
                exclusive,
            } => self.handle_lock(ctx, from, txn, op, key, exclusive),
            Msg::Unlock { txn, keys } => self.handle_unlock(ctx, txn, keys),
            Msg::Replicate { from_index, writes } => {
                self.handle_replicate(ctx, from, from_index, writes)
            }
            Msg::ReplicateDelta { upto, writes } => {
                self.handle_replicate_delta(ctx, from, upto, writes)
            }
            Msg::ReplicateAck { upto } => {
                if let Some(i) = self.peers.iter().position(|&p| p == from) {
                    self.repl.ack(i, upto);
                }
            }
            Msg::RecoverReq => self.handle_recover_req(ctx, from),
            Msg::RecoverResp { writes } => self.handle_recover_resp(ctx, from, writes),
            Msg::Notify { ts, key } => self.handle_notify(ctx, from, ts, key),
            Msg::NotifySummary { ts, acks } => self.handle_notify_summary(ctx, from, ts, acks),
            // Responses are never addressed to servers.
            _ => {}
        }
    }

    fn handle_get(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        required: Timestamp,
    ) {
        self.requests_served += 1;
        let cost = self.config.service.read();
        let (engine, mut view) = self.engine_view();
        let found = engine.read(&mut view, &key, required);
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::GetResp { txn, op, found });
    }

    /// RAMP-Small round 1: latest committed stamp, constant-size reply.
    fn handle_get_ts(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
    ) {
        self.requests_served += 1;
        let cost = self.config.service.ts_read();
        let (engine, mut view) = self.engine_view();
        let ts = engine.read_ts(&mut view, &key);
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::GetTsResp { txn, op, ts });
    }

    /// RAMP second-round fetch. A parked answer sends no reply now — the
    /// engine answers through its own `ctx` when the version arrives.
    fn handle_get_version(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        req: crate::messages::VersionReq,
    ) {
        self.requests_served += 1;
        let cost = self.config.service.read();
        let (engine, mut view) = self.engine_view();
        let answer = engine.read_version(&mut view, from, txn, op, &key, &req);
        let hold = self.service(ctx.now(), cost);
        if let crate::protocol::engine::VersionAnswer::Ready(found) = answer {
            ctx.send_after(hold, from, Msg::GetVersionResp { txn, op, found });
        }
    }

    /// RAMP commit marker: promote prepared → visible, ack like a put.
    fn handle_commit(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        ts: Timestamp,
    ) {
        self.requests_served += 1;
        let cost = self.config.service.ramp_commit();
        let (engine, mut view) = self.engine_view();
        engine.on_commit_mark(&mut view, ctx, key, ts);
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::PutResp { txn, op });
    }

    /// Group commit: apply every mark in the batch, then ack them all
    /// with one message. Store work is unchanged (each mark is charged
    /// its full commit cost); the saving is the per-message round trips.
    fn handle_commit_batch(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        ts: Timestamp,
        marks: Vec<(u32, Key)>,
    ) {
        self.requests_served += 1;
        self.stats.commit_batches += 1;
        self.stats.commit_batch_size += marks.len() as u64;
        let cost = SimDuration::from_micros(
            (self.config.service.ramp_commit_us * marks.len() as f64) as u64,
        );
        let mut ops = Vec::with_capacity(marks.len());
        for (op, key) in marks {
            let (engine, mut view) = self.engine_view();
            engine.on_commit_mark(&mut view, ctx, key, ts);
            ops.push(op);
        }
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::CommitBatchResp { txn, ops });
    }

    fn handle_scan(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        prefix: Key,
    ) {
        self.requests_served += 1;
        let matches = self.store.scan_prefix(&prefix);
        let cost = SimDuration::from_micros(
            (self.config.service.read_us
                + self.config.service.scan_record_us * matches.len() as f64) as u64,
        );
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::ScanResp { txn, op, matches });
    }

    fn handle_put(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        record: SharedRecord,
    ) {
        self.requests_served += 1;
        if !self.engine.write_admissible(txn, &key) {
            // Lock fencing (2PL): the exclusive lock backing this commit
            // write is gone — this server crashed and lost its lock
            // table, and the key may since have been re-granted. Do not
            // install, and do not ack: the client's op deadline turns
            // the commit round into an indeterminate abandon, exactly
            // as if the server were unreachable.
            return;
        }
        let cost = self.engine.write_cost(&self.config.service, &record);
        let (engine, mut view) = self.engine_view();
        engine.apply_client_write(&mut view, ctx, key, record);
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::PutResp { txn, op });
    }

    fn handle_replicate(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        from_index: u64,
        writes: Vec<(Key, SharedRecord)>,
    ) {
        let upto = from_index + writes.len() as u64;
        let hold = self.apply_replicated_batch(ctx, writes);
        // Acknowledge once applied: the sender's cursor advances and the
        // batch is never re-sent (unless this ack is lost — then the
        // receiver just applies the duplicates idempotently).
        ctx.send_after(hold, from, Msg::ReplicateAck { upto });
    }

    /// Delta-compressed catch-up: the batch covers the sender's log up to
    /// `upto`, compacted to surviving versions. Application is the same
    /// idempotent path as [`Server::handle_replicate`]; only the ack
    /// position is explicit (the batch is shorter than the range it
    /// covers).
    fn handle_replicate_delta(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        upto: u64,
        writes: Vec<(Key, SharedRecord)>,
    ) {
        let hold = self.apply_replicated_batch(ctx, writes);
        ctx.send_after(hold, from, Msg::ReplicateAck { upto });
    }

    fn apply_replicated_batch(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        writes: Vec<(Key, SharedRecord)>,
    ) -> SimDuration {
        let cost = SimDuration::from_micros(
            (self.config.service.replicate_record_us * writes.len() as f64) as u64,
        );
        for (key, record) in writes {
            // The handle is shared with the sender's log and store; the
            // receiver installs the same allocation.
            let (engine, mut view) = self.engine_view();
            engine.apply_replicated_write(&mut view, ctx, key, record);
        }
        self.service(ctx.now(), cost)
    }

    /// Bootstrap dump for a restarted peer: ship the whole store. The
    /// service charge scales with the dump size, so recovery load shows
    /// up in the queueing model like any other replication traffic.
    fn handle_recover_req(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId) {
        let writes = self.store.all_versions();
        let cost = SimDuration::from_micros(
            (self.config.service.replicate_record_us * writes.len() as f64) as u64,
        );
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::RecoverResp { writes });
    }

    /// Applies a bootstrap dump. Versions already present are skipped
    /// outright; a version this store has never seen is installed through
    /// the normal replicated-write hook *and* pushed into the local
    /// replication log. The push is the one sanctioned exception to the
    /// never-re-gossip rule: a record this server originated and lost
    /// may also be missing from peers its pre-crash gossip never reached,
    /// and only a re-broadcast from here can heal them (duplicates apply
    /// idempotently everywhere).
    fn handle_recover_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        writes: Vec<(Key, SharedRecord)>,
    ) {
        self.recovering.retain(|&p| p != from);
        let cost = SimDuration::from_micros(
            (self.config.service.replicate_record_us * writes.len() as f64) as u64,
        );
        for (key, record) in writes {
            if self.store.exact(&key, record.stamp).is_some() {
                continue;
            }
            self.repl.push(key.clone(), record.clone());
            let (engine, mut view) = self.engine_view();
            engine.apply_replicated_write(&mut view, ctx, key, record);
        }
        let _ = self.service(ctx.now(), cost);
    }

    fn handle_notify(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, ts: Timestamp, key: Key) {
        let cost = SimDuration::from_micros(self.config.service.notify_us as u64);
        let _ = self.service(ctx.now(), cost);
        let (engine, mut view) = self.engine_view();
        engine.on_notify(&mut view, ctx, from, ts, key);
    }

    fn handle_notify_summary(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        ts: Timestamp,
        acks: Vec<(NodeId, Key)>,
    ) {
        let per = self.config.service.notify_us as u64;
        let cost = SimDuration::from_micros(per * acks.len().max(1) as u64);
        let _ = self.service(ctx.now(), cost);
        let (engine, mut view) = self.engine_view();
        engine.on_notify_summary(&mut view, ctx, from, ts, acks);
    }

    fn handle_lock(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        exclusive: bool,
    ) {
        self.requests_served += 1;
        let cost = SimDuration::from_micros(self.config.service.lock_us as u64);
        let hold = self.service(ctx.now(), cost);
        let (engine, mut view) = self.engine_view();
        for g in engine.on_lock(&mut view, from, txn, op, key, exclusive) {
            ctx.send_after(
                hold,
                g.client,
                Msg::LockResp {
                    txn: g.txn,
                    op: g.op,
                },
            );
        }
    }

    fn handle_unlock(&mut self, ctx: &mut Ctx<'_, Msg>, txn: Timestamp, keys: Vec<Key>) {
        let cost = SimDuration::from_micros(self.config.service.lock_us as u64);
        let hold = self.service(ctx.now(), cost);
        let (engine, mut view) = self.engine_view();
        for g in engine.on_unlock(&mut view, txn, keys) {
            ctx.send_after(
                hold,
                g.client,
                Msg::LockResp {
                    txn: g.txn,
                    op: g.op,
                },
            );
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("id", &self.id)
            .field("cluster", &self.cluster)
            .field("engine", &self.engine.name())
            .finish_non_exhaustive()
    }
}
