//! The HAT server (replica) actor.
//!
//! A server owns one hash partition of the keyspace within its cluster.
//! It is a single service queue: each request is charged a service time
//! from the [`crate::ServiceModel`] and the reply leaves once the queue
//! drains — this is what produces the latency-vs-load and saturation
//! shapes of Figures 3–6.
//!
//! Protocol behaviour:
//! * **Eventual / RC / master / 2PL data ops** — last-writer-wins puts
//!   into the store, gets of the latest version.
//! * **MAV** — the Appendix B algorithm via [`crate::protocol::mav`]: a
//!   `Put` lands in `pending`; on *first receipt* the server notifies
//!   every distinct server hosting a replica of any sibling key (itself
//!   included); `pending → good` promotion happens at
//!   `|siblings| × |clusters|` notifications.
//! * **2PL locks** — a lock table at each key's master replica.
//!
//! All accepted writes are buffered in a [`ReplicationLog`] and gossiped
//! to the positional peer replica in every other cluster on an
//! anti-entropy timer (§5.1.4 convergence).

use crate::cluster::ClusterLayout;
use crate::config::{ProtocolKind, SystemConfig};
use crate::messages::Msg;
use crate::protocol::mav::MavState;
use crate::protocol::replication::ReplicationLog;
use crate::protocol::twopl::{Acquire, LockTable};
use crate::timestamp::Timestamp;
use hat_sim::{Ctx, NodeId, SimDuration, SimTime, TimerId};
use hat_storage::{Key, Record, Store};
use std::sync::Arc;

/// Timer tag for the anti-entropy tick.
const TIMER_ANTI_ENTROPY: TimerId = 1;

/// A replica server.
pub struct Server {
    id: NodeId,
    cluster: usize,
    layout: Arc<ClusterLayout>,
    config: Arc<SystemConfig>,
    store: Box<dyn Store + Send>,
    busy_until: SimTime,
    repl: ReplicationLog,
    peers: Vec<NodeId>,
    mav: MavState,
    locks: LockTable,
    /// Requests served (for load accounting in experiments).
    pub requests_served: u64,
}

impl Server {
    /// Builds a server for `cluster` backed by `store`.
    pub fn new(
        id: NodeId,
        cluster: usize,
        layout: Arc<ClusterLayout>,
        config: Arc<SystemConfig>,
        store: Box<dyn Store + Send>,
    ) -> Self {
        let peers = layout.anti_entropy_peers(id);
        Server {
            id,
            cluster,
            layout,
            config,
            store,
            busy_until: SimTime::ZERO,
            repl: ReplicationLog::new(peers.len()),
            peers,
            mav: MavState::new(),
            locks: LockTable::new(),
            requests_served: 0,
        }
    }

    /// The node id.
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    /// The cluster index.
    pub fn cluster(&self) -> usize {
        self.cluster
    }

    /// Read access to the backing store (tests, invariant checks).
    pub fn store(&self) -> &dyn Store {
        self.store.as_ref()
    }

    /// MAV reads that missed their `required` bound (must be 0 in a
    /// correct run).
    pub fn mav_required_misses(&self) -> u64 {
        self.mav.required_misses
    }

    /// Charges `cost` of service time and returns how long the caller's
    /// reply is held (queueing + service).
    fn service(&mut self, now: SimTime, cost: SimDuration) -> SimDuration {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        self.busy_until = start + cost;
        self.busy_until - now
    }

    /// Invoked once at simulation start.
    pub fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Stagger anti-entropy ticks so servers do not gossip in
        // lock-step.
        let jitter = ctx.rng().gen_range(0..self.config.anti_entropy_interval.as_micros().max(1));
        ctx.set_timer(
            self.config.anti_entropy_interval + SimDuration::from_micros(jitter),
            TIMER_ANTI_ENTROPY,
        );
    }

    /// Invoked when a timer fires.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: TimerId) {
        if timer == TIMER_ANTI_ENTROPY {
            for (i, &peer) in self.peers.clone().iter().enumerate() {
                let (from_index, writes) = self.repl.batch_for(i);
                if !writes.is_empty() {
                    ctx.send(peer, Msg::Replicate { from_index, writes });
                }
            }
            self.repl.compact(1024);
            // MAV liveness: notifications lost to partitions are
            // replayed for writes still pending (keyed notifications
            // make the replay idempotent). Bounded per tick.
            if self.config.protocol == ProtocolKind::Mav {
                for (ts, key, siblings) in
                    self.mav.pending_writes().into_iter().take(256)
                {
                    let mut targets: Vec<NodeId> = siblings
                        .iter()
                        .flat_map(|s| self.layout.replicas(s))
                        .collect();
                    if targets.is_empty() {
                        targets = self.layout.replicas(&key);
                    }
                    targets.sort_unstable();
                    targets.dedup();
                    for t in targets {
                        ctx.send(
                            t,
                            Msg::Notify {
                                ts,
                                key: key.clone(),
                            },
                        );
                    }
                }
            }
            ctx.set_timer(self.config.anti_entropy_interval, TIMER_ANTI_ENTROPY);
        }
    }

    /// Invoked when a message arrives.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Get {
                txn,
                op,
                key,
                required,
            } => self.handle_get(ctx, from, txn, op, key, required),
            Msg::Scan { txn, op, prefix } => self.handle_scan(ctx, from, txn, op, prefix),
            Msg::Put {
                txn,
                op,
                key,
                record,
            } => self.handle_put(ctx, from, txn, op, key, record),
            Msg::Lock {
                txn,
                op,
                key,
                exclusive,
            } => self.handle_lock(ctx, from, txn, op, key, exclusive),
            Msg::Unlock { txn, keys } => self.handle_unlock(ctx, txn, keys),
            Msg::Replicate { from_index, writes } => {
                self.handle_replicate(ctx, from, from_index, writes)
            }
            Msg::ReplicateAck { upto } => {
                if let Some(i) = self.peers.iter().position(|&p| p == from) {
                    self.repl.ack(i, upto);
                }
            }
            Msg::Notify { ts, key } => self.handle_notify(ctx, from, ts, key),
            // Responses are never addressed to servers.
            _ => {}
        }
    }

    fn handle_get(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        required: Timestamp,
    ) {
        self.requests_served += 1;
        let cost = self.config.service.read();
        let found = match self.config.protocol {
            ProtocolKind::Mav => self.mav.read(self.store.as_ref(), &key, required),
            _ => self.store.latest(&key),
        };
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::GetResp { txn, op, found });
    }

    fn handle_scan(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        prefix: Key,
    ) {
        self.requests_served += 1;
        let matches = self.store.scan_prefix(&prefix);
        let cost = SimDuration::from_micros(
            (self.config.service.read_us
                + self.config.service.scan_record_us * matches.len() as f64) as u64,
        );
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::ScanResp { txn, op, matches });
    }

    fn handle_put(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        record: Record,
    ) {
        self.requests_served += 1;
        let cost = match self.config.protocol {
            ProtocolKind::Mav => {
                let meta_bytes = record.encoded_len().saturating_sub(4 + record.value.len());
                self.config.service.mav_write(meta_bytes)
            }
            _ => self.config.service.write(),
        };
        self.apply_write(ctx, key, record);
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::PutResp { txn, op });
    }

    /// Installs a write locally (client put or anti-entropy copy),
    /// running protocol-specific machinery.
    fn apply_write(&mut self, ctx: &mut Ctx<'_, Msg>, key: Key, record: Record) {
        match self.config.protocol {
            ProtocolKind::Mav => {
                let ts = record.stamp;
                let siblings = record.siblings.clone();
                let outcome = self.mav.receive_write(
                    self.store.as_mut(),
                    key.clone(),
                    record.clone(),
                    self.layout.num_clusters() as u32,
                );
                if outcome.first_receipt {
                    // Notify every distinct server hosting a replica of
                    // any sibling key — exactly once per receipt, so the
                    // expected count (|sibs| × |clusters|) is matched by
                    // the |sibs × clusters| receipt events.
                    let mut targets: Vec<NodeId> = siblings
                        .iter()
                        .flat_map(|s| self.layout.replicas(s))
                        .collect();
                    if targets.is_empty() {
                        targets = self.layout.replicas(&key);
                    }
                    targets.sort_unstable();
                    targets.dedup();
                    for t in targets {
                        ctx.send(
                            t,
                            Msg::Notify {
                                ts,
                                key: key.clone(),
                            },
                        );
                    }
                    self.repl.push(key, record);
                }
            }
            _ => {
                // Gossip when the version is new *or* its value changed
                // (a transaction's later write of the same key carries
                // the same stamp but supersedes the value).
                let changed = self
                    .store
                    .exact(&key, record.stamp)
                    .map(|prior| prior.value != record.value)
                    .unwrap_or(true);
                self.store
                    .put(key.clone(), record.clone())
                    .expect("in-memory put cannot fail");
                if changed {
                    self.repl.push(key, record);
                }
            }
        }
    }

    fn handle_replicate(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        from_index: u64,
        writes: Vec<(Key, Record)>,
    ) {
        let cost = SimDuration::from_micros(
            (self.config.service.replicate_record_us * writes.len() as f64) as u64,
        );
        let hold = self.service(ctx.now(), cost);
        let upto = from_index + writes.len() as u64;
        for (key, record) in writes {
            match self.config.protocol {
                ProtocolKind::Mav => {
                    let ts = record.stamp;
                    let siblings = record.siblings.clone();
                    let outcome = self.mav.receive_write(
                        self.store.as_mut(),
                        key.clone(),
                        record,
                        self.layout.num_clusters() as u32,
                    );
                    if outcome.first_receipt {
                        let mut targets: Vec<NodeId> = siblings
                            .iter()
                            .flat_map(|s| self.layout.replicas(s))
                            .collect();
                        if targets.is_empty() {
                            targets = self.layout.replicas(&key);
                        }
                        targets.sort_unstable();
                        targets.dedup();
                        for t in targets {
                            ctx.send(
                                t,
                                Msg::Notify {
                                    ts,
                                    key: key.clone(),
                                },
                            );
                        }
                        // do not re-gossip: peers form a clique, the
                        // origin gossips to everyone.
                    }
                }
                _ => {
                    let _ = self.store.put(key, record);
                }
            }
        }
        // Acknowledge once applied: the sender's cursor advances and the
        // batch is never re-sent (unless this ack is lost — then the
        // receiver just applies the duplicates idempotently).
        ctx.send_after(hold, from, Msg::ReplicateAck { upto });
    }

    fn handle_notify(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, ts: Timestamp, key: Key) {
        let cost = SimDuration::from_micros(self.config.service.notify_us as u64);
        let _ = self.service(ctx.now(), cost);
        let _promoted = self.mav.receive_notify(self.store.as_mut(), ts, from, key);
    }

    fn handle_lock(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        exclusive: bool,
    ) {
        self.requests_served += 1;
        let cost = SimDuration::from_micros(self.config.service.lock_us as u64);
        let hold = self.service(ctx.now(), cost);
        match self.locks.acquire(key, txn, op, exclusive, from) {
            Acquire::Granted => ctx.send_after(hold, from, Msg::LockResp { txn, op }),
            Acquire::Queued => {} // reply comes at grant time
        }
    }

    fn handle_unlock(&mut self, ctx: &mut Ctx<'_, Msg>, txn: Timestamp, keys: Vec<Key>) {
        let cost = SimDuration::from_micros(self.config.service.lock_us as u64);
        let hold = self.service(ctx.now(), cost);
        let grants = if keys.is_empty() {
            self.locks.release_all(txn)
        } else {
            self.locks.release(txn, &keys)
        };
        for g in grants {
            ctx.send_after(
                hold,
                g.client,
                Msg::LockResp {
                    txn: g.txn,
                    op: g.op,
                },
            );
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("id", &self.id)
            .field("cluster", &self.cluster)
            .field("protocol", &self.config.protocol)
            .finish_non_exhaustive()
    }
}

use rand::Rng as _;
