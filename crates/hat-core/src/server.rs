//! The HAT server (replica) actor — protocol-agnostic dispatch.
//!
//! A server owns one hash partition of the keyspace within its cluster.
//! It is a single service queue: each request is charged a service time
//! from the [`crate::ServiceModel`] and the reply leaves once the queue
//! drains — this is what produces the latency-vs-load and saturation
//! shapes of Figures 3–6.
//!
//! All protocol-specific behavior lives behind the
//! [`ProtocolEngine`] plugged in at construction: the server itself only
//! knows about queueing, the anti-entropy gossip loop, and which message
//! maps to which engine hook. Adding a new isolation level requires no
//! change here — implement the trait and register it in
//! [`crate::protocol::engine_for`] (or inject it via
//! [`Server::with_engine`]).
//!
//! All accepted writes are buffered in a [`ReplicationLog`] and gossiped
//! to the positional peer replica in every other cluster on an
//! anti-entropy timer (§5.1.4 convergence).
//!
//! ## Live shard handoff
//!
//! Within a cluster the keyspace is owned by ring position (see
//! [`crate::ShardRing`]). A handoff moves one ring token from this
//! server to another replica in the same cluster while traffic flows:
//! the old owner snapshots the token's records and streams them in
//! acknowledged chunks ([`Msg::ShardTransfer`]) off the anti-entropy
//! timer, mirroring every write it keeps accepting meanwhile into the
//! stream's tail. Only when the receiver has acknowledged *everything*
//! — snapshot and tail, in one atomic check at ack time — does the old
//! owner cut over: from then on it answers requests for the token with
//! [`Msg::WrongShard`] naming the new owner, so the receiver starts
//! with a byte-complete copy and no read can observe a gap. Two-phase
//! locking is exempt from the cutover (its lock tables are pinned to
//! the original placement; splitting one across a live flip would
//! forfeit serializability), so under 2PL handoffs stream copies but
//! never move request routing.

use crate::cluster::ClusterLayout;
use crate::config::{ProtocolKind, SystemConfig};
use crate::messages::Msg;
use crate::protocol::engine::{engine_for, ProtocolEngine, ServerView};
use crate::protocol::replication::ReplicationLog;
use crate::timestamp::Timestamp;
use hat_sim::{Ctx, NodeId, SimDuration, SimTime, TimerId};
use hat_storage::{Key, SharedRecord, Store};
use hat_trace::{TraceEventKind, TraceSink};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Timer tag for the anti-entropy tick.
const TIMER_ANTI_ENTROPY: TimerId = 1;

/// Timer tag for the crash-recovery bootstrap retry loop.
const TIMER_RECOVERY: TimerId = 2;

/// Records shipped per [`Msg::ShardTransfer`] chunk.
const HANDOFF_CHUNK: usize = 256;

/// Replication-side counters, kept alongside `requests_served` so
/// experiments can report the group-commit and delta-compression wins
/// numerically (messages and bytes actually put on the wire).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Anti-entropy batches sent (`Replicate` + `ReplicateDelta`).
    pub replication_msgs: u64,
    /// Approximate serialized bytes of those batches (keys + records).
    pub replication_bytes: u64,
    /// Records shipped in those batches.
    pub replication_records: u64,
    /// How many of the batches were delta-compressed catch-ups.
    pub catchup_batches: u64,
    /// `CommitBatch` messages received.
    pub commit_batches: u64,
    /// Total commit marks carried by those batches (mean batch size =
    /// `commit_batch_size / commit_batches`).
    pub commit_batch_size: u64,
    /// Messages destined to this server dropped by an active network
    /// partition (filled from the engine's per-node fault counters by
    /// [`crate::SimFrontend::server_stats`]).
    pub msgs_dropped_by_partition: u64,
    /// Times this server has been crashed by a fault injector.
    pub crashes: u64,
    /// WAL/checkpoint records replayed into this server's store at
    /// recovery, accumulated across restarts. Nonzero proves a restarted
    /// server is serving log-recovered state rather than an empty store.
    pub wal_records_replayed: u64,
    /// Shard handoffs this server has completed as the *sending* side
    /// (the receiver acknowledged the full stream and routing cut over).
    pub shard_handoffs: u64,
    /// Requests refused with [`Msg::WrongShard`] because the key's
    /// token had already been handed off.
    pub shard_nacks: u64,
}

impl ServerStats {
    /// Accumulates another server's counters (aggregate reporting).
    pub fn merge(&mut self, other: &ServerStats) {
        self.replication_msgs += other.replication_msgs;
        self.replication_bytes += other.replication_bytes;
        self.replication_records += other.replication_records;
        self.catchup_batches += other.catchup_batches;
        self.commit_batches += other.commit_batches;
        self.commit_batch_size += other.commit_batch_size;
        self.msgs_dropped_by_partition += other.msgs_dropped_by_partition;
        self.crashes += other.crashes;
        self.wal_records_replayed += other.wal_records_replayed;
        self.shard_handoffs += other.shard_handoffs;
        self.shard_nacks += other.shard_nacks;
    }

    /// Exports every counter into a metrics registry under `hat_server_*`
    /// names with the given labels — the server half of the unified
    /// Prometheus/JSON exposition.
    pub fn export_into(&self, reg: &mut hat_obs::MetricsRegistry, labels: &[(&str, &str)]) {
        reg.counter_add(
            "hat_server_replication_msgs_total",
            labels,
            self.replication_msgs,
        );
        reg.counter_add(
            "hat_server_replication_bytes_total",
            labels,
            self.replication_bytes,
        );
        reg.counter_add(
            "hat_server_replication_records_total",
            labels,
            self.replication_records,
        );
        reg.counter_add(
            "hat_server_catchup_batches_total",
            labels,
            self.catchup_batches,
        );
        reg.counter_add(
            "hat_server_commit_batches_total",
            labels,
            self.commit_batches,
        );
        reg.counter_add(
            "hat_server_commit_batch_marks_total",
            labels,
            self.commit_batch_size,
        );
        reg.counter_add(
            "hat_server_msgs_dropped_partition_total",
            labels,
            self.msgs_dropped_by_partition,
        );
        reg.counter_add("hat_server_crashes_total", labels, self.crashes);
        reg.counter_add(
            "hat_server_wal_records_replayed_total",
            labels,
            self.wal_records_replayed,
        );
        reg.counter_add(
            "hat_server_shard_handoffs_total",
            labels,
            self.shard_handoffs,
        );
        reg.counter_add("hat_server_shard_nacks_total", labels, self.shard_nacks);
    }
}

/// The sending side of one in-progress (or completed) shard handoff.
///
/// `queue` starts as a snapshot of every record the token owns and
/// grows at the tail with writes accepted while streaming. Chunks are
/// re-sent from `acked` on every anti-entropy tick, so delivery is
/// at-least-once and survives partitions; the receiver applies
/// idempotently and acks its high-water mark. `released` flips — once,
/// irrevocably — when an ack covers the *entire* queue, which is the
/// routing cutover point.
#[derive(Debug)]
struct HandoffOut {
    /// The replica receiving the token (same cluster, different position).
    to: NodeId,
    /// Snapshot + late-write tail, in send order.
    queue: Vec<(Key, SharedRecord)>,
    /// Records in the initial snapshot (prefix of `queue`).
    snapshot_len: u64,
    /// Receiver's acknowledged high-water mark into `queue`.
    acked: u64,
    /// True once the receiver has confirmed the whole queue: requests
    /// for the token are refused with [`Msg::WrongShard`] from then on.
    released: bool,
}

/// A replica server.
pub struct Server {
    id: NodeId,
    cluster: usize,
    layout: Arc<ClusterLayout>,
    config: Arc<SystemConfig>,
    store: Box<dyn Store + Send>,
    busy_until: SimTime,
    repl: ReplicationLog,
    peers: Vec<NodeId>,
    engine: Box<dyn ProtocolEngine>,
    /// Peers still owed a crash-recovery bootstrap dump (empty except
    /// right after a restart; see [`Server::mark_restarted`]).
    recovering: Vec<NodeId>,
    /// 2PL sync-replication gate: commit `Put`s held back until a
    /// replication peer confirms the write, as `(log index, client,
    /// txn, op)`. A serializable engine cannot ack a write whose only
    /// copy sits in a WAL tail a crash may tear off — the transaction
    /// would count as committed while a post-restart reader serializes
    /// against state that never includes it.
    pending_put_acks: Vec<(u64, NodeId, Timestamp, u32)>,
    /// Outbound shard handoffs by ring token (see [`HandoffOut`]).
    handoffs: BTreeMap<u32, HandoffOut>,
    /// Ring tokens this server serves *despite* its ring position,
    /// acquired through an inbound handoff.
    tokens_acquired: BTreeSet<u32>,
    /// Absolute replication-log index already mirrored into handoff
    /// queues — everything the engines push past this point gets
    /// appended to the matching in-progress handoff's tail.
    handoff_cursor: u64,
    /// Requests served (for load accounting in experiments).
    pub requests_served: u64,
    /// Replication and group-commit counters.
    pub stats: ServerStats,
    /// Structured trace sink (no-op unless `SystemConfig::trace`).
    trace: TraceSink,
}

impl Server {
    /// Builds a server for `cluster` backed by `store`, running the
    /// engine registered for `config.protocol`.
    pub fn new(
        id: NodeId,
        cluster: usize,
        layout: Arc<ClusterLayout>,
        config: Arc<SystemConfig>,
        store: Box<dyn Store + Send>,
    ) -> Self {
        let engine = engine_for(config.protocol);
        Self::with_engine(id, cluster, layout, config, store, engine)
    }

    /// Builds a server running an explicit [`ProtocolEngine`] — the
    /// injection point for engines not (yet) in the registry.
    pub fn with_engine(
        id: NodeId,
        cluster: usize,
        layout: Arc<ClusterLayout>,
        config: Arc<SystemConfig>,
        store: Box<dyn Store + Send>,
        engine: Box<dyn ProtocolEngine>,
    ) -> Self {
        let peers = layout.anti_entropy_peers(id);
        let mut repl = ReplicationLog::new(peers.len());
        // Recovery wiring: a store opened over an existing WAL (a
        // restarted server) seeds the replication buffer with every
        // recovered version, so writes accepted before the crash but
        // never gossiped re-enter anti-entropy. Peers apply duplicates
        // idempotently; a fresh volatile store recovers nothing and this
        // is a no-op.
        let stats = ServerStats {
            wal_records_replayed: store.recovered_records(),
            ..ServerStats::default()
        };
        if stats.wal_records_replayed > 0 {
            for (key, record) in store.all_versions() {
                repl.push(key, record);
            }
        }
        let handoff_cursor = repl.head();
        Server {
            id,
            cluster,
            layout,
            config,
            store,
            busy_until: SimTime::ZERO,
            repl,
            peers,
            engine,
            recovering: Vec::new(),
            pending_put_acks: Vec::new(),
            handoffs: BTreeMap::new(),
            tokens_acquired: BTreeSet::new(),
            handoff_cursor,
            requests_served: 0,
            stats,
            trace: TraceSink::disabled(),
        }
    }

    /// Installs the deployment-wide trace sink (shared with clients).
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Flags this server as a post-crash incarnation: on start it
    /// requests a full bootstrap dump from every gossip peer (retried on
    /// a timer until each peer answers). The reseeded replication log
    /// and the peers' rewound cursors repair everything the *logs* still
    /// hold; the dump repairs the rest — records this server originated,
    /// gossiped out, and then lost to a torn WAL tail, which survive
    /// only in peers' stores.
    pub fn mark_restarted(&mut self) {
        self.recovering = self.peers.clone();
    }

    /// The node id.
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    /// The cluster index.
    pub fn cluster(&self) -> usize {
        self.cluster
    }

    /// Read access to the backing store (tests, invariant checks).
    pub fn store(&self) -> &dyn Store {
        self.store.as_ref()
    }

    /// The running engine's label.
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Reads that missed their `required` bound (must be 0 in a correct
    /// MAV run; 0 by definition for engines without the concept).
    pub fn mav_required_misses(&self) -> u64 {
        self.engine.required_misses()
    }

    /// Worst per-peer anti-entropy backlog (log entries a gossip peer
    /// has not acknowledged) — the replication-lag gauge the live
    /// sampler reads. Read-only; never perturbs the run.
    pub fn replication_lag(&self) -> u64 {
        self.repl.max_lag()
    }

    /// Rewinds the replication cursor for `peer` to the oldest retained
    /// log entry. Called on every gossip neighbor of a just-restarted
    /// server: the restarted node may have lost its newest applied
    /// records to a torn WAL tail *after* acknowledging them, so
    /// previously-acked suffixes must be re-sent (application is
    /// idempotent; the delta catch-up path compacts the resend).
    pub fn reset_peer_cursor(&mut self, peer: NodeId) {
        if let Some(i) = self.peers.iter().position(|&p| p == peer) {
            self.repl.rewind(i);
        }
    }

    /// Splits the server into its engine and the [`ServerView`] the
    /// engine hooks receive — one place that knows which fields make up
    /// the view.
    fn engine_view(&mut self) -> (&mut dyn ProtocolEngine, ServerView<'_>) {
        let view = ServerView {
            store: self.store.as_mut(),
            repl: &mut self.repl,
            layout: &self.layout,
            config: &self.config,
            cluster: self.cluster,
        };
        (self.engine.as_mut(), view)
    }

    /// Charges `cost` of service time and returns how long the caller's
    /// reply is held (queueing + service).
    fn service(&mut self, now: SimTime, cost: SimDuration) -> SimDuration {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        self.busy_until = start + cost;
        self.busy_until - now
    }

    /// Invoked once at simulation start.
    pub fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.stats.wal_records_replayed > 0 {
            self.trace.record(
                ctx.now().as_micros(),
                self.id,
                TraceEventKind::WalReplay {
                    records: self.stats.wal_records_replayed,
                },
            );
        }
        // Stagger anti-entropy ticks so servers do not gossip in
        // lock-step. The offset is derived from the node id (a
        // multiplicative hash spread over the interval) instead of drawn
        // from the shared rng stream: the tick cadence is a fixed
        // property of the deployment, and startup must not perturb the
        // rng sequence the rest of the run consumes — adding a server
        // would otherwise reshuffle every seeded schedule.
        let interval = self.config.anti_entropy_interval.as_micros().max(1);
        let jitter = (self.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % interval;
        ctx.set_timer(
            self.config.anti_entropy_interval + SimDuration::from_micros(jitter),
            TIMER_ANTI_ENTROPY,
        );
        if !self.recovering.is_empty() {
            for &peer in &self.recovering {
                ctx.send(peer, Msg::RecoverReq);
            }
            ctx.set_timer(self.config.anti_entropy_interval, TIMER_RECOVERY);
        }
    }

    /// Invoked when a timer fires.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: TimerId) {
        if timer == TIMER_ANTI_ENTROPY {
            self.push_replication(ctx);
            self.mirror_repl_to_handoffs();
            self.repl.compact(1024);
            let (engine, mut view) = self.engine_view();
            engine.on_anti_entropy_tick(&mut view, ctx);
            self.pump_handoffs(ctx);
            ctx.set_timer(self.config.anti_entropy_interval, TIMER_ANTI_ENTROPY);
        } else if timer == TIMER_RECOVERY && !self.recovering.is_empty() {
            // A bootstrap request (or its response) may have been lost to
            // a concurrent partition; keep asking until each peer answers.
            for &peer in &self.recovering.clone() {
                ctx.send(peer, Msg::RecoverReq);
            }
            ctx.set_timer(self.config.anti_entropy_interval, TIMER_RECOVERY);
        }
    }

    /// Pushes each peer's unacknowledged replication suffix (one
    /// anti-entropy round). Runs on every anti-entropy tick, and
    /// immediately after a 2PL commit write so the sync-replication ack
    /// does not wait out a full tick.
    fn push_replication(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for (i, &peer) in self.peers.clone().iter().enumerate() {
            // A peer lagging more than the threshold (e.g. freshly
            // healed from a long partition) gets one compacted
            // catch-up batch instead of `lag / MAX_BATCH` rounds of
            // per-record replay.
            if self.repl.lag(i) > self.config.delta_catchup_threshold {
                let (upto, writes) = self.repl.catchup_for(i);
                if !writes.is_empty() {
                    self.stats.catchup_batches += 1;
                    self.note_replication_batch(&writes);
                    self.trace_anti_entropy(ctx.now(), peer, &writes, true);
                    ctx.send(peer, Msg::ReplicateDelta { upto, writes });
                }
            } else {
                let (from_index, writes) = self.repl.batch_for(i);
                if !writes.is_empty() {
                    self.note_replication_batch(&writes);
                    self.trace_anti_entropy(ctx.now(), peer, &writes, false);
                    ctx.send(peer, Msg::Replicate { from_index, writes });
                }
            }
        }
    }

    /// Emits one `AntiEntropyRound` trace event for a push to `peer`,
    /// with the same byte accounting as [`Self::note_replication_batch`].
    fn trace_anti_entropy(
        &self,
        now: SimTime,
        peer: NodeId,
        writes: &[(Key, SharedRecord)],
        delta: bool,
    ) {
        if !self.trace.is_enabled() {
            return;
        }
        let bytes = writes
            .iter()
            .map(|(k, r)| 4 + k.len() as u64 + r.encoded_len() as u64)
            .sum::<u64>();
        self.trace.record(
            now.as_micros(),
            self.id,
            TraceEventKind::AntiEntropyRound {
                peer,
                records: writes.len() as u64,
                bytes,
                delta,
            },
        );
    }

    fn note_replication_batch(&mut self, writes: &[(Key, SharedRecord)]) {
        self.stats.replication_msgs += 1;
        self.stats.replication_records += writes.len() as u64;
        self.stats.replication_bytes += writes
            .iter()
            .map(|(k, r)| 4 + k.len() as u64 + r.encoded_len() as u64)
            .sum::<u64>();
    }

    /// Invoked when a message arrives. Thin dispatch: each message maps
    /// to one engine hook plus service-time accounting.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        // WAL growth is observed as a delta across the whole dispatch so
        // every write path (puts, commit marks, replication applies) is
        // covered in one place. Zero-cost when tracing is off.
        let wal_before = if self.trace.is_enabled() {
            self.store.wal_bytes()
        } else {
            0
        };
        self.dispatch(ctx, from, msg);
        self.mirror_repl_to_handoffs();
        if self.trace.is_enabled() {
            let appended = self.store.wal_bytes().saturating_sub(wal_before);
            if appended > 0 {
                self.trace.record(
                    ctx.now().as_micros(),
                    self.id,
                    TraceEventKind::WalAppend { bytes: appended },
                );
            }
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Get {
                txn,
                op,
                key,
                required,
            } => self.handle_get(ctx, from, txn, op, key, required),
            Msg::Scan { txn, op, prefix } => self.handle_scan(ctx, from, txn, op, prefix),
            Msg::Put {
                txn,
                op,
                key,
                record,
            } => self.handle_put(ctx, from, txn, op, key, record),
            Msg::GetTs { txn, op, key } => self.handle_get_ts(ctx, from, txn, op, key),
            Msg::GetVersion { txn, op, key, req } => {
                self.handle_get_version(ctx, from, txn, op, key, req)
            }
            Msg::Commit { txn, op, key, ts } => self.handle_commit(ctx, from, txn, op, key, ts),
            Msg::CommitBatch { txn, ts, marks } => {
                self.handle_commit_batch(ctx, from, txn, ts, marks)
            }
            Msg::Lock {
                txn,
                op,
                key,
                exclusive,
            } => self.handle_lock(ctx, from, txn, op, key, exclusive),
            Msg::Unlock { txn, keys } => self.handle_unlock(ctx, txn, keys),
            Msg::LockCheck { txn, op, key } => self.handle_lock_check(ctx, from, txn, op, key),
            Msg::Replicate { from_index, writes } => {
                self.handle_replicate(ctx, from, from_index, writes)
            }
            Msg::ReplicateDelta { upto, writes } => {
                self.handle_replicate_delta(ctx, from, upto, writes)
            }
            Msg::ReplicateAck { upto } => {
                if let Some(i) = self.peers.iter().position(|&p| p == from) {
                    self.repl.ack(i, upto);
                    self.flush_pending_put_acks(ctx, upto);
                }
            }
            Msg::RecoverReq => self.handle_recover_req(ctx, from),
            Msg::RecoverResp { writes } => self.handle_recover_resp(ctx, from, writes),
            Msg::BeginHandoff { token, to } => self.begin_handoff(ctx, token, to),
            Msg::ShardTransfer {
                token,
                from_seq,
                writes,
            } => self.handle_shard_transfer(ctx, from, token, from_seq, writes),
            Msg::ShardTransferAck { token, upto } => {
                self.handle_shard_transfer_ack(ctx, token, upto)
            }
            Msg::Notify { ts, key } => self.handle_notify(ctx, from, ts, key),
            Msg::NotifySummary { ts, acks } => self.handle_notify_summary(ctx, from, ts, acks),
            // Responses are never addressed to servers.
            _ => {}
        }
    }

    fn handle_get(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        required: Timestamp,
    ) {
        self.requests_served += 1;
        if let Some(owner) = self.redirect_for(&key) {
            self.nack_wrong_shard(ctx, from, txn, op, key, owner);
            return;
        }
        let cost = self.config.service.read();
        let (engine, mut view) = self.engine_view();
        let found = engine.read(&mut view, &key, required);
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::GetResp { txn, op, found });
    }

    /// RAMP-Small round 1: latest committed stamp, constant-size reply.
    fn handle_get_ts(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
    ) {
        self.requests_served += 1;
        if let Some(owner) = self.redirect_for(&key) {
            self.nack_wrong_shard(ctx, from, txn, op, key, owner);
            return;
        }
        let cost = self.config.service.ts_read();
        let (engine, mut view) = self.engine_view();
        let ts = engine.read_ts(&mut view, &key);
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::GetTsResp { txn, op, ts });
    }

    /// RAMP second-round fetch. A parked answer sends no reply now — the
    /// engine answers through its own `ctx` when the version arrives.
    fn handle_get_version(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        req: crate::messages::VersionReq,
    ) {
        self.requests_served += 1;
        let cost = self.config.service.read();
        let (engine, mut view) = self.engine_view();
        let answer = engine.read_version(&mut view, from, txn, op, &key, &req);
        let hold = self.service(ctx.now(), cost);
        if let crate::protocol::engine::VersionAnswer::Ready(found) = answer {
            ctx.send_after(hold, from, Msg::GetVersionResp { txn, op, found });
        }
    }

    /// RAMP commit marker: promote prepared → visible, ack like a put.
    fn handle_commit(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        ts: Timestamp,
    ) {
        self.requests_served += 1;
        let cost = self.config.service.ramp_commit();
        let (engine, mut view) = self.engine_view();
        engine.on_commit_mark(&mut view, ctx, key, ts);
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::PutResp { txn, op });
    }

    /// Group commit: apply every mark in the batch, then ack them all
    /// with one message. Store work is unchanged (each mark is charged
    /// its full commit cost); the saving is the per-message round trips.
    fn handle_commit_batch(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        ts: Timestamp,
        marks: Vec<(u32, Key)>,
    ) {
        self.requests_served += 1;
        self.stats.commit_batches += 1;
        self.stats.commit_batch_size += marks.len() as u64;
        let cost = SimDuration::from_micros(
            (self.config.service.ramp_commit_us * marks.len() as f64) as u64,
        );
        let mut ops = Vec::with_capacity(marks.len());
        for (op, key) in marks {
            let (engine, mut view) = self.engine_view();
            engine.on_commit_mark(&mut view, ctx, key, ts);
            ops.push(op);
        }
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::CommitBatchResp { txn, ops });
    }

    fn handle_scan(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        prefix: Key,
    ) {
        self.requests_served += 1;
        let matches = self.store.scan_prefix(&prefix);
        let cost = SimDuration::from_micros(
            (self.config.service.read_us
                + self.config.service.scan_record_us * matches.len() as f64) as u64,
        );
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::ScanResp { txn, op, matches });
    }

    fn handle_put(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        record: SharedRecord,
    ) {
        self.requests_served += 1;
        if let Some(owner) = self.redirect_for(&key) {
            self.nack_wrong_shard(ctx, from, txn, op, key, owner);
            return;
        }
        if !self.engine.write_admissible(txn, &key) {
            // Lock fencing (2PL): the exclusive lock backing this commit
            // write is gone — this server crashed and lost its lock
            // table, and the key may since have been re-granted. Do not
            // install, and do not ack: the client's op deadline turns
            // the commit round into an indeterminate abandon, exactly
            // as if the server were unreachable.
            return;
        }
        let cost = self.engine.write_cost(&self.config.service, &record);
        let (engine, mut view) = self.engine_view();
        engine.apply_client_write(&mut view, ctx, key, record);
        let hold = self.service(ctx.now(), cost);
        if self.config.protocol == ProtocolKind::TwoPhaseLocking && !self.peers.is_empty() {
            // Serializable commits are acked only once a replication
            // peer holds the write: a local WAL append can be torn off
            // by a crash, and an acked-then-lost write turns into a
            // lost update the lock protocol can never detect. Push the
            // suffix now instead of waiting for the anti-entropy tick;
            // the ack itself is sent from the `ReplicateAck` handler.
            // (A crash drops this queue, so the client's commit round
            // deadline turns into an indeterminate abandon — never a
            // false commit.)
            self.pending_put_acks
                .push((self.repl.head(), from, txn, op));
            self.push_replication(ctx);
            return;
        }
        ctx.send_after(hold, from, Msg::PutResp { txn, op });
    }

    /// Releases 2PL commit acks whose writes a peer has now confirmed
    /// (absolute log index `<= upto`). Any single peer's confirmation
    /// suffices: the write then survives this server's WAL tail being
    /// torn — the restarted incarnation recovers it from that peer
    /// before granting locks again.
    fn flush_pending_put_acks(&mut self, ctx: &mut Ctx<'_, Msg>, upto: u64) {
        if self.pending_put_acks.is_empty() {
            return;
        }
        let mut ready = Vec::new();
        self.pending_put_acks.retain(|&(idx, client, txn, op)| {
            if idx <= upto {
                ready.push((client, txn, op));
                false
            } else {
                true
            }
        });
        for (client, txn, op) in ready {
            ctx.send(client, Msg::PutResp { txn, op });
        }
    }

    fn handle_replicate(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        from_index: u64,
        writes: Vec<(Key, SharedRecord)>,
    ) {
        let upto = from_index + writes.len() as u64;
        let hold = self.apply_replicated_batch(ctx, writes);
        // Acknowledge once applied: the sender's cursor advances and the
        // batch is never re-sent (unless this ack is lost — then the
        // receiver just applies the duplicates idempotently).
        ctx.send_after(hold, from, Msg::ReplicateAck { upto });
    }

    /// Delta-compressed catch-up: the batch covers the sender's log up to
    /// `upto`, compacted to surviving versions. Application is the same
    /// idempotent path as [`Server::handle_replicate`]; only the ack
    /// position is explicit (the batch is shorter than the range it
    /// covers).
    fn handle_replicate_delta(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        upto: u64,
        writes: Vec<(Key, SharedRecord)>,
    ) {
        let hold = self.apply_replicated_batch(ctx, writes);
        ctx.send_after(hold, from, Msg::ReplicateAck { upto });
    }

    fn apply_replicated_batch(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        writes: Vec<(Key, SharedRecord)>,
    ) -> SimDuration {
        let cost = SimDuration::from_micros(
            (self.config.service.replicate_record_us * writes.len() as f64) as u64,
        );
        for (key, record) in writes {
            // Gossip applies bypass the local replication log (the
            // never-re-gossip rule), so an in-progress handoff stream
            // must pick them up here.
            self.note_handoff_write(&key, &record);
            // The handle is shared with the sender's log and store; the
            // receiver installs the same allocation.
            let (engine, mut view) = self.engine_view();
            engine.apply_replicated_write(&mut view, ctx, key, record);
        }
        self.service(ctx.now(), cost)
    }

    /// Bootstrap dump for a restarted peer: ship the whole store. The
    /// service charge scales with the dump size, so recovery load shows
    /// up in the queueing model like any other replication traffic.
    fn handle_recover_req(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId) {
        let writes = self.store.all_versions();
        let cost = SimDuration::from_micros(
            (self.config.service.replicate_record_us * writes.len() as f64) as u64,
        );
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::RecoverResp { writes });
    }

    /// Applies a bootstrap dump. Versions already present are skipped
    /// outright; a version this store has never seen is installed through
    /// the normal replicated-write hook *and* pushed into the local
    /// replication log. The push is the one sanctioned exception to the
    /// never-re-gossip rule: a record this server originated and lost
    /// may also be missing from peers its pre-crash gossip never reached,
    /// and only a re-broadcast from here can heal them (duplicates apply
    /// idempotently everywhere).
    fn handle_recover_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        writes: Vec<(Key, SharedRecord)>,
    ) {
        self.recovering.retain(|&p| p != from);
        let cost = SimDuration::from_micros(
            (self.config.service.replicate_record_us * writes.len() as f64) as u64,
        );
        for (key, record) in writes {
            if self.store.exact(&key, record.stamp).is_some() {
                continue;
            }
            self.repl.push(key.clone(), record.clone());
            let (engine, mut view) = self.engine_view();
            engine.apply_replicated_write(&mut view, ctx, key, record);
        }
        let _ = self.service(ctx.now(), cost);
    }

    /// Starts handing the ring token `token` off to `to` (a replica in
    /// this cluster at a different position). Snapshots every record the
    /// token owns into the stream queue and sends the first chunk; the
    /// anti-entropy timer re-sends unacknowledged chunks from there.
    /// Ignored when this server does not currently own the token or a
    /// handoff for it is already in flight.
    pub fn begin_handoff(&mut self, ctx: &mut Ctx<'_, Msg>, token: u32, to: NodeId) {
        if to == self.id || self.handoffs.contains_key(&token) || !self.owns_token(token) {
            return;
        }
        let queue: Vec<(Key, SharedRecord)> = self
            .store
            .all_versions()
            .into_iter()
            .filter(|(key, _)| self.layout.ring().token_of(key) == token)
            .collect();
        let snapshot_len = queue.len() as u64;
        self.trace.record(
            ctx.now().as_micros(),
            self.id,
            TraceEventKind::ShardHandoffBegin {
                token,
                to,
                snapshot: snapshot_len,
            },
        );
        // First chunk goes out immediately — even when empty, so a token
        // with no records still reaches the receiver (which must learn it
        // owns the token) and elicits the ack that releases routing.
        let writes = queue[..queue.len().min(HANDOFF_CHUNK)].to_vec();
        ctx.send(
            to,
            Msg::ShardTransfer {
                token,
                from_seq: 0,
                writes,
            },
        );
        self.handoffs.insert(
            token,
            HandoffOut {
                to,
                queue,
                snapshot_len,
                acked: 0,
                released: false,
            },
        );
    }

    /// True if requests for `token` should be served here: the ring says
    /// so (and the token has not been handed off), or an inbound handoff
    /// granted it.
    fn owns_token(&self, token: u32) -> bool {
        if self.handoffs.get(&token).is_some_and(|h| h.released) {
            return false;
        }
        self.layout.position_of(self.id) == Some(self.layout.ring().position_of_token(token))
            || self.tokens_acquired.contains(&token)
    }

    /// If `key`'s token has been handed off (and routing cut over),
    /// returns the new owner to name in a [`Msg::WrongShard`] refusal.
    /// `None` means serve locally. 2PL is exempt (see module docs).
    fn redirect_for(&self, key: &Key) -> Option<NodeId> {
        if self.handoffs.is_empty() || self.config.protocol == ProtocolKind::TwoPhaseLocking {
            return None;
        }
        let token = self.layout.ring().token_of(key);
        let h = self.handoffs.get(&token)?;
        h.released.then_some(h.to)
    }

    /// Refuses an operation-starting request whose key now lives at
    /// `owner`. Sent without a service charge: the refusal is a routing
    /// hint, not store work.
    fn nack_wrong_shard(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        owner: NodeId,
    ) {
        self.stats.shard_nacks += 1;
        ctx.send(
            from,
            Msg::WrongShard {
                txn,
                op,
                key,
                owner,
            },
        );
    }

    /// Inbound handoff chunk: acquire the token, install the records
    /// through the normal replicated-write hook (idempotent, wakes any
    /// RAMP readers parked on an exact stamp), and ack the high-water
    /// mark so the sender's stream advances.
    fn handle_shard_transfer(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        token: u32,
        from_seq: u64,
        writes: Vec<(Key, SharedRecord)>,
    ) {
        // A token this server handed off earlier is coming back: drop
        // the stale outbound record so it serves again. An *unreleased*
        // outbound entry is left alone — that is a duplicate chunk from
        // the stream that granted us the token in the first place, and
        // removing the entry would kill our own in-flight handoff.
        if self.handoffs.get(&token).is_some_and(|h| h.released) {
            self.handoffs.remove(&token);
        }
        self.tokens_acquired.insert(token);
        let upto = from_seq + writes.len() as u64;
        let cost = SimDuration::from_micros(
            (self.config.service.replicate_record_us * writes.len() as f64) as u64,
        );
        for (key, record) in writes {
            self.note_handoff_write(&key, &record);
            let (engine, mut view) = self.engine_view();
            engine.apply_replicated_write(&mut view, ctx, key, record);
        }
        let hold = self.service(ctx.now(), cost);
        ctx.send_after(hold, from, Msg::ShardTransferAck { token, upto });
    }

    /// Ack from the handoff receiver. Routing cuts over atomically the
    /// first time an ack covers the whole queue (snapshot *and* every
    /// late write mirrored since): at that instant the receiver holds a
    /// complete copy and nothing new can land here, so no read at the
    /// new owner can miss a write the old owner accepted.
    fn handle_shard_transfer_ack(&mut self, ctx: &mut Ctx<'_, Msg>, token: u32, upto: u64) {
        let Some(h) = self.handoffs.get_mut(&token) else {
            return;
        };
        h.acked = h.acked.max(upto.min(h.queue.len() as u64));
        if !h.released && h.acked >= h.snapshot_len && h.acked >= h.queue.len() as u64 {
            h.released = true;
            let (to, streamed) = (h.to, h.queue.len() as u64);
            // If an earlier inbound handoff granted this token, the
            // grant is void now — it has been passed on.
            self.tokens_acquired.remove(&token);
            self.stats.shard_handoffs += 1;
            self.trace.record(
                ctx.now().as_micros(),
                self.id,
                TraceEventKind::ShardHandoffDone {
                    token,
                    to,
                    streamed,
                },
            );
        }
    }

    /// Re-sends the unacknowledged suffix of every in-flight handoff
    /// stream (at-least-once; chunks and acks lost to a partition are
    /// simply retried next tick). A released stream with a drained queue
    /// sends nothing.
    fn pump_handoffs(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.handoffs.is_empty() {
            return;
        }
        self.mirror_repl_to_handoffs();
        for (&token, h) in &self.handoffs {
            if h.released && h.acked >= h.queue.len() as u64 {
                continue;
            }
            let start = h.acked as usize;
            let end = (start + HANDOFF_CHUNK).min(h.queue.len());
            ctx.send(
                h.to,
                Msg::ShardTransfer {
                    token,
                    from_seq: h.acked,
                    writes: h.queue[start..end].to_vec(),
                },
            );
        }
    }

    /// Appends `key`'s record to the matching in-progress handoff
    /// stream, if any. Called for every write installed outside the
    /// replication log's view (gossip applies, inbound handoff chunks);
    /// engine-pushed writes are mirrored from the log itself by
    /// [`Server::mirror_repl_to_handoffs`].
    fn note_handoff_write(&mut self, key: &Key, record: &SharedRecord) {
        if self.handoffs.is_empty() {
            return;
        }
        let token = self.layout.ring().token_of(key);
        if let Some(h) = self.handoffs.get_mut(&token) {
            h.queue.push((key.clone(), record.clone()));
        }
    }

    /// Mirrors replication-log entries pushed since the last call into
    /// the matching handoff streams. Runs after every dispatch (and
    /// before log compaction), so an in-progress handoff's tail tracks
    /// exactly what this server's gossip peers would see.
    fn mirror_repl_to_handoffs(&mut self) {
        let head = self.repl.head();
        if self.handoffs.is_empty() {
            self.handoff_cursor = head;
            return;
        }
        while self.handoff_cursor < head {
            if let Some((key, record)) = self.repl.entry(self.handoff_cursor) {
                let (key, record) = (key.clone(), record.clone());
                self.note_handoff_write(&key, &record);
            }
            self.handoff_cursor += 1;
        }
    }

    fn handle_notify(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, ts: Timestamp, key: Key) {
        let cost = SimDuration::from_micros(self.config.service.notify_us as u64);
        let _ = self.service(ctx.now(), cost);
        let (engine, mut view) = self.engine_view();
        engine.on_notify(&mut view, ctx, from, ts, key);
    }

    fn handle_notify_summary(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        ts: Timestamp,
        acks: Vec<(NodeId, Key)>,
    ) {
        let per = self.config.service.notify_us as u64;
        let cost = SimDuration::from_micros(per * acks.len().max(1) as u64);
        let _ = self.service(ctx.now(), cost);
        let (engine, mut view) = self.engine_view();
        engine.on_notify_summary(&mut view, ctx, from, ts, acks);
    }

    fn handle_lock(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
        exclusive: bool,
    ) {
        // A lock master fresh out of a crash must not grant until its
        // peer recovery completes: the replayed WAL may be missing a
        // torn tail, and a grant would let a new transaction read (and
        // serialize against) state that silently excludes writes whose
        // transactions committed. Dropping the request is safe — the
        // client re-sends on its retry backoff and gives up at its lock
        // timeout: 2PL trades availability, never isolation.
        if !self.recovering.is_empty() {
            return;
        }
        self.requests_served += 1;
        let cost = SimDuration::from_micros(self.config.service.lock_us as u64);
        let hold = self.service(ctx.now(), cost);
        let grants = {
            let (engine, mut view) = self.engine_view();
            engine.on_lock(&mut view, from, txn, op, key, exclusive)
        };
        for g in grants {
            let floor = self.lock_floor(&g.key);
            ctx.send_after(
                hold,
                g.client,
                Msg::LockResp {
                    txn: g.txn,
                    op: g.op,
                    floor,
                },
            );
        }
    }

    /// The Lamport floor carried on a [`Msg::LockResp`]: the granted
    /// key's current version stamp, so the committing client's clock
    /// advances past every locked key's version — blind writes
    /// included — before it assigns the commit stamp.
    fn lock_floor(&self, key: &Key) -> Timestamp {
        self.store
            .latest(key)
            .map(|r| r.stamp)
            .unwrap_or(Timestamp::INITIAL)
    }

    /// 2PL commit-time lock validation: answers whether `txn` still
    /// holds its lock on `key`. After a crash the rebuilt lock table is
    /// empty, so every check against it fails — exactly the signal the
    /// committing client needs to abort instead of publishing writes
    /// whose read set may already have been overwritten.
    fn handle_lock_check(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        txn: Timestamp,
        op: u32,
        key: Key,
    ) {
        self.requests_served += 1;
        let cost = SimDuration::from_micros(self.config.service.lock_us as u64);
        let hold = self.service(ctx.now(), cost);
        let ok = self.engine.lock_valid(txn, &key);
        ctx.send_after(hold, from, Msg::LockCheckResp { txn, op, ok });
    }

    fn handle_unlock(&mut self, ctx: &mut Ctx<'_, Msg>, txn: Timestamp, keys: Vec<Key>) {
        let cost = SimDuration::from_micros(self.config.service.lock_us as u64);
        let hold = self.service(ctx.now(), cost);
        let grants = {
            let (engine, mut view) = self.engine_view();
            engine.on_unlock(&mut view, txn, keys)
        };
        for g in grants {
            let floor = self.lock_floor(&g.key);
            ctx.send_after(
                hold,
                g.client,
                Msg::LockResp {
                    txn: g.txn,
                    op: g.op,
                    floor,
                },
            );
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("id", &self.id)
            .field("cluster", &self.cluster)
            .field("engine", &self.engine.name())
            .finish_non_exhaustive()
    }
}
