//! Observability regression net: structured tracing must be (a) seed-
//! deterministic — two same-seed traced runs produce byte-identical
//! event streams — and (b) inert — enabling the sink must not move a
//! single recorded transaction relative to an untraced run. Both are
//! load-bearing: traces are compared across runs to debug nemesis
//! failures, which only works if the trace itself never perturbs the
//! run it describes.

use hat_core::{
    spans, ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, SessionOptions, SystemConfig,
    TraceEvent, TraceEventKind, TxnRecord,
};

const ENGINES: [ProtocolKind; 4] = [
    ProtocolKind::ReadCommitted,
    ProtocolKind::Mav,
    ProtocolKind::RampSmall,
    ProtocolKind::TwoPhaseLocking,
];

fn builder(kind: ProtocolKind, trace: bool) -> DeploymentBuilder {
    let mut cfg = SystemConfig::new(kind);
    cfg.trace = trace;
    DeploymentBuilder::new(kind)
        .seed(0x7ACE)
        .clusters(ClusterSpec::single_dc(2, 2))
        .sessions_per_cluster(1)
        .config(cfg)
}

/// Mixed scripted workload: writes, reads, a multi-key read and a scan —
/// enough to produce op spans of several kinds (and lock traffic under
/// 2PL) on every engine.
fn run_script(front: &mut hat_core::SimFrontend) -> Vec<TxnRecord> {
    let s = front.open_session(SessionOptions::default());
    front.txn(&s, |t| {
        t.put("tk:a", "1")?;
        t.put("tk:b", "2")
    });
    front.quiesce();
    for round in 0..3 {
        let v = format!("r{round}");
        front.txn(&s, |t| {
            let _ = t.get("tk:a")?;
            t.put("tk:a", &v)?;
            t.put("tk:b", &v)
        });
        front.quiesce();
        front.txn(&s, |t| {
            let _ = t.get_many(&["tk:a", "tk:b"])?;
            Ok(())
        });
        front.quiesce();
    }
    front.txn(&s, |t| t.scan("tk:"));
    front.quiesce();
    front.take_records()
}

fn traced_run(kind: ProtocolKind) -> (Vec<TxnRecord>, Vec<TraceEvent>) {
    let mut front = builder(kind, true).build();
    let records = run_script(&mut front);
    let events = front.trace_events();
    (records, events)
}

#[test]
fn same_seed_traces_are_byte_identical() {
    for kind in ENGINES {
        let (_, a) = traced_run(kind);
        let (_, b) = traced_run(kind);
        assert!(!a.is_empty(), "{kind:?}: traced run produced no events");
        assert_eq!(a, b, "{kind:?}: same-seed traces diverged");
    }
}

#[test]
fn tracing_does_not_perturb_records() {
    for kind in ENGINES {
        let mut plain = builder(kind, false).build();
        let untraced = run_script(&mut plain);
        let (traced, events) = traced_run(kind);
        assert!(!untraced.is_empty());
        assert_eq!(
            untraced, traced,
            "{kind:?}: enabling the trace sink changed the recorded history"
        );
        // ...and the untraced run really recorded nothing.
        assert!(plain.trace_events().is_empty());
        assert!(!events.is_empty());
    }
}

#[test]
fn trace_covers_txn_lifecycle_and_network() {
    let (records, events) = traced_run(ProtocolKind::ReadCommitted);
    let begins = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::TxnBegin { .. }))
        .count();
    let commits = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::TxnCommit { .. }))
        .count();
    assert_eq!(commits as u64, records.len() as u64);
    assert!(begins >= commits);
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::MsgSend { bytes, .. } if bytes > 0)),
        "network sends must appear with byte counts"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::MsgRecv { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::AntiEntropyRound { .. })));
}

#[test]
fn lock_events_under_two_phase_locking() {
    let (_, events) = traced_run(ProtocolKind::TwoPhaseLocking);
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::LockWait { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::LockGrant { .. })));
}

#[test]
fn spans_reconstruct_complete_transactions() {
    let (records, events) = traced_run(ProtocolKind::Mav);
    let tree = spans(&events);
    let complete = tree.iter().filter(|s| s.is_complete()).count();
    assert!(
        complete >= records.len(),
        "expected at least {} complete spans, got {complete}",
        records.len()
    );
    assert!(
        tree.iter().any(|s| !s.ops.is_empty()),
        "spans must carry op children"
    );
}

#[test]
fn chrome_json_export_has_span_rows() {
    let mut front = builder(ProtocolKind::ReadCommitted, true).build();
    let _ = run_script(&mut front);
    let json = front.trace_sink().to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"), "truncated export");
    assert!(json.contains("\"ph\":\"X\""), "no complete-span rows");
    assert!(json.contains("\"name\":\"txn "));
}

#[test]
fn crash_and_restart_appear_in_the_timeline() {
    let mut front = builder(ProtocolKind::Eventual, true).build();
    let s = front.open_session(SessionOptions::default());
    front.txn(&s, |t| t.put("ck", "v"));
    front.quiesce();
    let victim = front.layout().servers[0][0];
    front.crash_server(victim);
    front.restart_server(victim);
    let events = front.trace_events();
    let crash = events
        .iter()
        .position(|e| e.kind == TraceEventKind::Crash && e.node == victim);
    let restart = events
        .iter()
        .position(|e| e.kind == TraceEventKind::Restart && e.node == victim);
    match (crash, restart) {
        (Some(c), Some(r)) => assert!(c < r, "crash must precede restart"),
        other => panic!("missing crash/restart events: {other:?}"),
    }
}
