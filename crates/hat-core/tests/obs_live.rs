//! Live-telemetry regression net (PR 10): the metrics registry, the
//! time-series sampler and the online probes must be (a) seed-
//! deterministic — same-seed runs produce identical series and registry
//! snapshots — and (b) inert — enabling telemetry must not move a
//! single recorded transaction relative to an untelemetered run. The
//! observability contract is the same as `hat-trace`'s: observation
//! reads, it never steers.

use hat_core::{
    ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, SessionOptions, SystemConfig, TxnRecord,
};
use hat_sim::SimDuration;

const ENGINES: [ProtocolKind; 4] = [
    ProtocolKind::ReadCommitted,
    ProtocolKind::Mav,
    ProtocolKind::RampSmall,
    ProtocolKind::TwoPhaseLocking,
];

fn builder(kind: ProtocolKind, obs: bool) -> DeploymentBuilder {
    let mut cfg = SystemConfig::new(kind);
    cfg.obs.enabled = obs;
    cfg.obs.sample_interval = SimDuration::from_millis(5);
    cfg.obs.probe_every = 2;
    DeploymentBuilder::new(kind)
        .seed(0x7ACE)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .config(cfg)
}

/// Closed-loop workload long enough to cross many sample windows:
/// read-modify-writes and multi-key reads over a small hot set, spaced
/// a tick apart so the series has real time structure.
fn run_loop(front: &mut hat_core::SimFrontend) -> Vec<TxnRecord> {
    let sessions: Vec<_> = (0..2)
        .map(|_| front.open_session(SessionOptions::default()))
        .collect();
    for round in 0..20 {
        for (ci, s) in sessions.iter().enumerate() {
            let a = format!("ok{}", (round + ci) % 4);
            let b = format!("ok{}", (round + ci + 1) % 4);
            front.txn(s, |t| {
                let _ = t.get(&a)?;
                t.put(&a, &format!("r{round}c{ci}"))?;
                t.put(&b, &format!("r{round}c{ci}"))
            });
            front.txn(s, |t| {
                let _ = t.get_many(&[&a, &b])?;
                Ok(())
            });
        }
        front.run_for(SimDuration::from_millis(5));
    }
    front.quiesce();
    front.take_records()
}

#[test]
fn telemetry_does_not_perturb_records() {
    for kind in ENGINES {
        let mut plain = builder(kind, false).build();
        let untelemetered = run_loop(&mut plain);
        let mut live = builder(kind, true).build();
        let telemetered = run_loop(&mut live);
        assert!(!untelemetered.is_empty());
        assert_eq!(
            untelemetered, telemetered,
            "{kind:?}: enabling telemetry changed the recorded history"
        );
        // ...and the disabled run really collected nothing.
        assert!(plain.obs_series().is_none());
        assert!(plain.obs_registry().is_none());
        assert!(live.obs_series().is_some());
    }
}

#[test]
fn same_seed_series_and_registry_are_identical() {
    for kind in ENGINES {
        let mut a = builder(kind, true).build();
        let ra = run_loop(&mut a);
        let mut b = builder(kind, true).build();
        let rb = run_loop(&mut b);
        assert_eq!(ra, rb, "{kind:?}: same-seed histories diverged");
        assert_eq!(
            a.obs_series(),
            b.obs_series(),
            "{kind:?}: same-seed series diverged"
        );
        assert_eq!(
            a.obs_registry(),
            b.obs_registry(),
            "{kind:?}: same-seed registries diverged"
        );
        // Byte-identical exports, not just structural equality.
        let (sa, sb) = (a.obs_series().unwrap(), b.obs_series().unwrap());
        assert_eq!(sa.to_json(), sb.to_json());
        let (ga, gb) = (a.obs_registry().unwrap(), b.obs_registry().unwrap());
        assert_eq!(ga.prometheus(), gb.prometheus());
        assert_eq!(ga.to_json(), gb.to_json());
    }
}

#[test]
fn series_windows_are_monotone_and_sum_to_the_run() {
    let mut front = builder(ProtocolKind::ReadCommitted, true).build();
    let records = run_loop(&mut front);
    let series = front.obs_series().unwrap();
    assert!(
        series.points.len() >= 10,
        "only {} windows",
        series.points.len()
    );
    for w in series.points.windows(2) {
        assert!(
            w[1].t_us >= w[0].t_us + 5_000,
            "windows out of order or closer than the sample interval: \
             {} then {}",
            w[0].t_us,
            w[1].t_us
        );
    }
    let committed: u64 = series.points.iter().map(|p| p.committed).sum();
    let writes: u64 = series.points.iter().map(|p| p.committed_w).sum();
    // Every committed txn lands in some window (the final quiesce runs
    // past the last boundary), and the write-set split is a subset.
    assert_eq!(committed, records.len() as u64);
    assert!(writes > 0 && writes < committed);
    for p in &series.points {
        assert!(p.committed_w <= p.committed);
    }
}

#[test]
fn staleness_probe_reports_finite_histogram_for_weak_engines() {
    for kind in [ProtocolKind::Eventual, ProtocolKind::ReadCommitted] {
        let mut front = builder(kind, true).build();
        run_loop(&mut front);
        let p = front
            .obs_sink()
            .staleness()
            .unwrap_or_else(|| panic!("{kind:?}: no visibility probe resolved"));
        assert!(p.count > 0);
        assert!(
            p.max.is_finite() && p.max < 10_000.0,
            "{kind:?}: t-visibility staleness unbounded: max {} ms",
            p.max
        );
        assert!(p.p99 <= p.max && p.p50 <= p.p99);
    }
}

#[test]
fn streaming_checker_is_quiet_on_healthy_runs() {
    // 2PL is subject to both streaming checks (fractured + monotonic),
    // the RAMPs to the fractured check; a fault-free run must not trip
    // either.
    for kind in [
        ProtocolKind::RampFast,
        ProtocolKind::RampSmall,
        ProtocolKind::TwoPhaseLocking,
    ] {
        let mut front = builder(kind, true).build();
        run_loop(&mut front);
        assert_eq!(
            front.obs_sink().violations(),
            0,
            "{kind:?}: streaming checker false-alarmed on a healthy run"
        );
    }
}

#[test]
fn registry_folds_client_and_server_exposition() {
    let mut front = builder(ProtocolKind::Mav, true).build();
    let records = run_loop(&mut front);
    let reg = front.obs_registry().unwrap();
    assert_eq!(
        reg.counter("hat_txn_committed_total", &[("engine", "MAV")]),
        records.len() as u64
    );
    // Server-side stats ride the same exposition path.
    assert!(reg.counter_total("hat_server_replication_msgs_total") > 0);
    // The probe-derived metrics are folded in.
    assert!(reg.counter_total("hat_probe_samples_total") > 0);
    let text = reg.prometheus();
    assert!(text.contains("# TYPE hat_txn_committed_total counter"));
    assert!(text.contains("hat_visibility_staleness_ms{quantile=\"0.99\"}"));
    let json = reg.to_json();
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"type\":\"histogram\""));
}

/// Sharded exposition merges losslessly: two nodes' `ServerStats`
/// exported into separate registries and merged equal the summed stats
/// exported directly — the round trip a scrape aggregator performs.
#[test]
fn server_stats_exposition_merge_round_trip() {
    use hat_core::ServerStats;
    use hat_obs::MetricsRegistry;
    let a = ServerStats {
        replication_msgs: 3,
        replication_bytes: 4_096,
        replication_records: 17,
        catchup_batches: 1,
        wal_records_replayed: 9,
        ..Default::default()
    };
    let b = ServerStats {
        replication_msgs: 5,
        replication_bytes: 512,
        commit_batches: 2,
        commit_batch_size: 11,
        msgs_dropped_by_partition: 7,
        crashes: 1,
        shard_handoffs: 2,
        shard_nacks: 3,
        ..Default::default()
    };
    let labels = [("cluster", "va")];
    let mut ra = MetricsRegistry::new();
    a.export_into(&mut ra, &labels);
    let mut rb = MetricsRegistry::new();
    b.export_into(&mut rb, &labels);
    ra.merge(&rb);
    let sum = ServerStats {
        replication_msgs: a.replication_msgs + b.replication_msgs,
        replication_bytes: a.replication_bytes + b.replication_bytes,
        replication_records: a.replication_records + b.replication_records,
        catchup_batches: a.catchup_batches + b.catchup_batches,
        commit_batches: a.commit_batches + b.commit_batches,
        commit_batch_size: a.commit_batch_size + b.commit_batch_size,
        msgs_dropped_by_partition: a.msgs_dropped_by_partition + b.msgs_dropped_by_partition,
        crashes: a.crashes + b.crashes,
        wal_records_replayed: a.wal_records_replayed + b.wal_records_replayed,
        shard_handoffs: a.shard_handoffs + b.shard_handoffs,
        shard_nacks: a.shard_nacks + b.shard_nacks,
    };
    let mut direct = MetricsRegistry::new();
    sum.export_into(&mut direct, &labels);
    assert_eq!(ra, direct);
    assert_eq!(ra.prometheus(), direct.prometheus());
}
