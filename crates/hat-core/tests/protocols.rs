//! Protocol-level integration tests: the constructive results of §5.1
//! and the impossibility results of §5.2, exercised end-to-end through
//! the backend-agnostic frontend over the simulator.

use hat_core::{
    ClusterSpec, DeploymentBuilder, Frontend, HatError, ProtocolKind, SessionLevel, SessionOptions,
};
use hat_sim::{Partition, PartitionSchedule, SimDuration, SimTime};

/// §5.1.4 convergence: in the absence of new mutations, all replicas
/// eventually agree — a write from one cluster's session becomes visible
/// to a session of another cluster.
#[test]
fn eventual_converges_across_clusters() {
    let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
        .seed(1)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(1)
        .build();
    let s0 = front.open_session(SessionOptions::default()); // home: Virginia
    let s1 = front.open_session(SessionOptions::default()); // home: Oregon
    front.txn(&s0, |t| t.put("x", "from-virginia"));
    front.quiesce();
    let v = front.txn(&s1, |t| t.get("x"));
    assert_eq!(v.as_deref(), Some("from-virginia"));
}

/// Read Committed write buffering: another session never observes a value
/// before the writer commits (no dirty reads).
#[test]
fn rc_has_no_dirty_reads() {
    let mut front = DeploymentBuilder::new(ProtocolKind::ReadCommitted)
        .seed(2)
        .clusters(ClusterSpec::single_dc(2, 2))
        .sessions_per_cluster(1)
        .build();
    let s0 = front.open_session(SessionOptions::default());
    let s1 = front.open_session(SessionOptions::default());
    // Writes buffer client-side, so nothing is visible even mid-txn;
    // we approximate "mid-transaction" by checking before any commit.
    let v = front.txn(&s1, |t| t.get("dirty"));
    assert_eq!(v, None);
    front.txn(&s0, |t| t.put("dirty", "now-committed"));
    front.quiesce();
    let v = front.txn(&s1, |t| t.get("dirty"));
    assert_eq!(v.as_deref(), Some("now-committed"));
}

/// §5.1.2 MAV: once any effect of a transaction is observed, all its
/// effects are observed. With sticky routing and multi-key writes across
/// clusters, a reader must never see y's new version but x's old one.
#[test]
fn mav_atomic_visibility() {
    let mut front = DeploymentBuilder::new(ProtocolKind::Mav)
        .seed(3)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(1)
        .build();
    let writer = front.open_session(SessionOptions::default());
    let reader = front.open_session(SessionOptions::default());
    // initial values
    front.txn(&writer, |t| {
        t.put("acct-a", "0")?;
        t.put("acct-b", "0")
    });
    front.quiesce();
    for round in 1..=5 {
        let v = format!("{round}");
        front.txn(&writer, |t| {
            t.put("acct-a", &v)?;
            t.put("acct-b", &v)
        });
        // Read at arbitrary intermediate points, including right away.
        for _ in 0..3 {
            let (a, b) = front.txn(&reader, |t| Ok((t.get("acct-a")?, t.get("acct-b")?)));
            let a: u64 = a.unwrap_or_default().parse().unwrap_or(0);
            let b: u64 = b.unwrap_or_default().parse().unwrap_or(0);
            // MAV: having observed acct-a = v, the same txn must observe
            // acct-b >= v (reads happen in a,b order).
            assert!(
                b >= a,
                "round {round}: read a={a} then b={b}: atomic view violated"
            );
            front.run_for(SimDuration::from_millis(37));
        }
    }
    assert_eq!(
        front.mav_required_misses(),
        0,
        "required bound always satisfiable"
    );
}

/// The RAMP engines deliver the same atomic-visibility contract as MAV
/// — without any server-side notification fan-in. Same probe as
/// `mav_atomic_visibility`, for both variants: once a reader observes
/// acct-a at round v, the same transaction's read of acct-b must be
/// ≥ v (RAMP-Fast repairs from write-set metadata, RAMP-Small from its
/// observed-timestamp set).
#[test]
fn ramp_engines_have_atomic_visibility() {
    for protocol in [ProtocolKind::RampFast, ProtocolKind::RampSmall] {
        let mut front = DeploymentBuilder::new(protocol)
            .seed(3)
            .clusters(ClusterSpec::va_or(3))
            .sessions_per_cluster(1)
            .build();
        let writer = front.open_session(SessionOptions::default());
        let reader = front.open_session(SessionOptions::default());
        front.txn(&writer, |t| {
            t.put("acct-a", "0")?;
            t.put("acct-b", "0")
        });
        front.quiesce();
        for round in 1..=5 {
            let v = format!("{round}");
            front.txn(&writer, |t| {
                t.put("acct-a", &v)?;
                t.put("acct-b", &v)
            });
            for _ in 0..3 {
                let (a, b) = front.txn(&reader, |t| Ok((t.get("acct-a")?, t.get("acct-b")?)));
                let a: u64 = a.unwrap_or_default().parse().unwrap_or(0);
                let b: u64 = b.unwrap_or_default().parse().unwrap_or(0);
                assert!(
                    b >= a,
                    "{protocol:?} round {round}: read a={a} then b={b}: atomic view violated"
                );
                front.run_for(SimDuration::from_millis(37));
            }
        }
        let m = front.aggregate_metrics();
        assert_eq!(m.unrepaired_reads, 0, "{protocol:?}: repairs must land");
        assert!(m.msg_rounds > 0);
        if protocol == ProtocolKind::RampFast {
            assert!(
                m.metadata_bytes > 0,
                "RAMP-F moves write-set metadata on reads and writes"
            );
        }
    }
}

/// RAMP writes are invisible until the commit markers land: a reader
/// polling between the prepare phase and quiesce either sees the old
/// value or the whole new write-set, never a prepared fragment.
#[test]
fn ramp_prepared_writes_are_invisible_until_committed() {
    let mut front = DeploymentBuilder::new(ProtocolKind::RampFast)
        .seed(11)
        .clusters(ClusterSpec::single_dc(2, 2))
        .sessions_per_cluster(1)
        .build();
    let writer = front.open_session(SessionOptions::default());
    let reader = front.open_session(SessionOptions::default());
    // A committed baseline.
    front.txn(&writer, |t| {
        t.put("p", "old")?;
        t.put("q", "old")
    });
    front.quiesce();
    front.txn(&writer, |t| {
        t.put("p", "new")?;
        t.put("q", "new")
    });
    // Immediately after commit returns, both markers are applied at the
    // writer's cluster; the reader (other cluster, sticky) converges by
    // gossip but must never see a mixed write-set.
    for _ in 0..10 {
        let (p, q) = front.txn(&reader, |t| Ok((t.get("p")?, t.get("q")?)));
        assert_eq!(p, q, "fractured read of a two-phase RAMP write");
        front.run_for(SimDuration::from_millis(5));
    }
}

/// Master provides per-key linearizability: a committed write is
/// immediately visible to every session (all ops route to the master).
#[test]
fn master_reads_latest_write() {
    let mut front = DeploymentBuilder::new(ProtocolKind::Master)
        .seed(4)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .build();
    let s0 = front.open_session(SessionOptions::default());
    let s1 = front.open_session(SessionOptions::default());
    front.txn(&s0, |t| t.put("k", "v1"));
    // No quiesce: master reads must see it immediately.
    let v = front.txn(&s1, |t| t.get("k"));
    assert_eq!(v.as_deref(), Some("v1"));
}

/// §5.2.2 / Table 3: master (recency) is unavailable under partition —
/// a session cut off from a key's master cannot complete operations.
#[test]
fn master_unavailable_under_partition() {
    let probe = DeploymentBuilder::new(ProtocolKind::Master)
        .seed(5)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .build();
    // find a key mastered in cluster 1 so that partitioning the client
    // from cluster 1 blocks it
    let key = (0..100)
        .map(|i| format!("k{i}"))
        .find(|k| {
            let key = hat_storage::Key::from(k.clone());
            let master = probe.layout().master(&key);
            probe.layout().cluster_of(master) == Some(1)
        })
        .expect("some key is mastered in cluster 1");
    // partition cluster 1 from everyone, starting now, forever
    let side_a: Vec<u32> = probe.layout().servers[1].clone();
    let mut others: Vec<u32> = probe.layout().servers[0].clone();
    others.extend(probe.layout().clients.iter().copied());
    drop(probe);
    let mut front = DeploymentBuilder::new(ProtocolKind::Master)
        .seed(5)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![
            Partition::forever(SimTime::ZERO, side_a, others),
        ]))
        .build();
    let s0 = front.open_session(SessionOptions::default());
    let err = front
        .try_txn(&s0, |t| t.get(&key))
        .expect_err("read of a partitioned master must not complete");
    assert!(matches!(err, HatError::Unavailable { .. }), "{err}");
}

/// The same partition leaves HAT protocols fully available: a sticky
/// session of the healthy cluster commits normally. Note the Monotonic
/// session level: MAV's *visibility* of new writes is indefinitely
/// delayed under partition (its good-set promotion needs the remote
/// cluster's acknowledgements), so reading your own write back relies on
/// the session cache — availability, per §4.2, is about operations
/// completing, which they do for all three HAT protocols.
#[test]
fn hat_protocols_available_under_partition() {
    for protocol in [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
    ] {
        let probe = DeploymentBuilder::new(protocol)
            .seed(6)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(1)
            .build();
        let cluster1: Vec<u32> = probe.layout().servers[1].clone();
        let mut cluster0_and_clients: Vec<u32> = probe.layout().servers[0].clone();
        cluster0_and_clients.push(probe.client(0));
        drop(probe);

        let mut front = DeploymentBuilder::new(protocol)
            .seed(6)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(1)
            .partitions(PartitionSchedule::from_partitions(vec![
                Partition::forever(SimTime::ZERO, cluster1, cluster0_and_clients),
            ]))
            .build();
        let s0 = front.open_session(SessionOptions {
            level: SessionLevel::Monotonic,
            sticky: true, // sticky to healthy cluster 0
        });
        for i in 0..10 {
            let k = format!("k{i}");
            front.txn(&s0, |t| t.put(&k, "v"));
            let v = front.txn(&s0, |t| t.get(&k));
            assert_eq!(v.as_deref(), Some("v"), "{protocol:?} must stay available");
        }
    }
}

/// §5.2.1: Lost Update cannot be prevented by any HAT protocol. Two
/// sessions on opposite sides of a partition both read x=100 and write
/// back x+=20 / x+=30; after healing, one update is lost (LWW keeps one).
#[test]
fn lost_update_happens_under_partition() {
    let probe = DeploymentBuilder::new(ProtocolKind::Eventual)
        .seed(7)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .build();
    let side_a: Vec<u32> = probe.layout().servers[0]
        .iter()
        .copied()
        .chain([probe.client(0)])
        .collect();
    let side_b: Vec<u32> = probe.layout().servers[1]
        .iter()
        .copied()
        .chain([probe.client(1)])
        .collect();
    drop(probe);

    let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
        .seed(7)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![Partition::new(
            SimTime::from_secs(3),
            SimTime::from_secs(30),
            side_a,
            side_b,
        )]))
        .build();
    let s0 = front.open_session(SessionOptions::default());
    let s1 = front.open_session(SessionOptions::default());
    // seed x=100 before the partition
    front.txn(&s0, |t| t.put("x", "100"));
    front.quiesce(); // both clusters have x=100; partition starts at t=3s
    front.run_for(SimDuration::from_secs(2));

    // both sides increment concurrently during the partition
    let a = front.txn(&s0, |t| {
        let v: u64 = t.get("x")?.unwrap().parse().unwrap();
        t.put("x", &format!("{}", v + 20))?;
        Ok(v + 20)
    });
    let b = front.txn(&s1, |t| {
        let v: u64 = t.get("x")?.unwrap().parse().unwrap();
        t.put("x", &format!("{}", v + 30))?;
        Ok(v + 30)
    });
    assert_eq!((a, b), (120, 130), "both committed against x=100");

    // heal and converge
    front.run_for(SimDuration::from_secs(30));
    front.quiesce();
    let v0 = front.txn(&s0, |t| t.get("x")).unwrap();
    let v1 = front.txn(&s1, |t| t.get("x")).unwrap();
    assert_eq!(v0, v1, "replicas converged");
    // The final state could not have arisen from a serial execution
    // (serial would give 150): one update was lost.
    assert!(v0 == "120" || v0 == "130", "got {v0}");
}

/// §5.1.3: read-your-writes fails without stickiness — a non-sticky
/// session that wrote during a partition may read from the other side and
/// miss its own write. With stickiness the same scenario always succeeds.
#[test]
fn ryw_requires_stickiness() {
    // Build: two clusters; partition separates them (clients can reach
    // both). The non-sticky session writes (lands in some cluster) then
    // reads repeatedly — with cluster choice randomized, some read goes
    // to the other cluster, which cannot have the write while partitioned.
    let build = |sticky: bool, seed: u64| {
        let probe = DeploymentBuilder::new(ProtocolKind::Eventual)
            .seed(seed)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(1)
            .build();
        let side_a: Vec<u32> = probe.layout().servers[0].clone();
        let side_b: Vec<u32> = probe.layout().servers[1].clone();
        drop(probe);
        let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
            .seed(seed)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(1)
            .partitions(PartitionSchedule::from_partitions(vec![
                Partition::forever(SimTime::ZERO, side_a, side_b),
            ]))
            .build();
        let session = front.open_session(SessionOptions {
            level: SessionLevel::None,
            sticky,
        });
        (front, session)
    };

    // Non-sticky: hunt for a violation across seeds (randomized routing).
    let mut violated = false;
    'outer: for seed in 0..20 {
        let (mut front, s) = build(false, 100 + seed);
        for i in 0..10 {
            let k = format!("w{i}");
            front.txn(&s, |t| t.put(&k, "mine"));
            let v = front.txn(&s, |t| t.get(&k));
            if v.is_none() {
                violated = true;
                break 'outer;
            }
        }
    }
    assert!(
        violated,
        "non-sticky session should eventually miss its own write during a partition"
    );

    // Sticky: never violated.
    for seed in 0..5 {
        let (mut front, s) = build(true, 200 + seed);
        for i in 0..10 {
            let k = format!("w{i}");
            front.txn(&s, |t| t.put(&k, "mine"));
            let v = front.txn(&s, |t| t.get(&k));
            assert_eq!(v.as_deref(), Some("mine"), "sticky RYW must hold");
        }
    }
}

/// 2PL provides serializable increments (no lost update) when the
/// network is healthy...
#[test]
fn twopl_serializes_increments() {
    let mut front = DeploymentBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(8)
        .clusters(ClusterSpec::single_dc(2, 2))
        .sessions_per_cluster(2)
        .build();
    let sessions: Vec<_> = (0..4)
        .map(|_| front.open_session(SessionOptions::default()))
        .collect();
    front.txn(&sessions[0], |t| t.put("ctr", "0"));
    for _round in 0..3 {
        for s in &sessions {
            front.txn(s, |t| {
                let v: u64 = t.get("ctr")?.unwrap().parse().unwrap();
                t.put("ctr", &format!("{}", v + 1))
            });
        }
    }
    let v = front.txn(&sessions[0], |t| t.get("ctr"));
    assert_eq!(v.as_deref(), Some("12"), "every increment preserved");
}

/// ... but 2PL is unavailable under partition: a session that cannot
/// reach a lock master blocks and externally aborts.
#[test]
fn twopl_unavailable_under_partition() {
    let probe = DeploymentBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(9)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .build();
    let key = (0..100)
        .map(|i| format!("k{i}"))
        .find(|k| {
            let key = hat_storage::Key::from(k.clone());
            probe.layout().cluster_of(probe.layout().master(&key)) == Some(1)
        })
        .unwrap();
    let side_a: Vec<u32> = probe.layout().servers[1].clone();
    let mut side_b: Vec<u32> = probe.layout().servers[0].clone();
    side_b.extend(probe.layout().clients.iter().copied());
    drop(probe);

    let mut front = DeploymentBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(9)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![
            Partition::forever(SimTime::ZERO, side_a, side_b),
        ]))
        .build();
    let s0 = front.open_session(SessionOptions::default());
    let err = front
        .try_txn(&s0, |t| t.put(&key, "v"))
        .expect_err("2PL write across a partition must fail");
    assert!(
        matches!(
            err,
            HatError::ExternalAbort { .. } | HatError::Unavailable { .. }
        ),
        "{err}"
    );
}

/// A 2PL lock timeout mid-transaction is an *external abort* and must
/// surface at the failing operation (the typed-API contract) — not as a
/// silent success followed by a lock-free commit of the write buffer.
/// The failed transaction's earlier locks must also be released, so the
/// keys it touched stay usable for every other session.
#[test]
fn twopl_mid_op_abort_surfaces_and_releases_locks() {
    let probe = DeploymentBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(12)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .build();
    let mastered_in = |cluster: usize| {
        (0..200)
            .map(|i| format!("k{i}"))
            .find(|k| {
                let key = hat_storage::Key::from(k.clone());
                probe.layout().cluster_of(probe.layout().master(&key)) == Some(cluster)
            })
            .unwrap()
    };
    let key_a = mastered_in(0); // reachable lock master
    let key_b = mastered_in(1); // partitioned lock master
    let side_a: Vec<u32> = probe.layout().servers[1].clone();
    let mut side_b: Vec<u32> = probe.layout().servers[0].clone();
    side_b.extend(probe.layout().clients.iter().copied());
    drop(probe);

    // The partition outlives the 10s lock timeout (so the doomed
    // transaction really aborts) and then heals: 2PL commit writes are
    // sync-replicated, so while it holds *no* write can be acked (the
    // master's only peer is on the far side) — the leaked-lock probe
    // below needs a healthy network to commit.
    let heal = SimTime::from_millis(15_000);
    let mut front = DeploymentBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(12)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![Partition::new(
            SimTime::ZERO,
            heal,
            side_a,
            side_b,
        )]))
        .build();
    let s0 = front.open_session(SessionOptions::default());
    let s1 = front.open_session(SessionOptions::default());

    // Lock A succeeds; lock B times out -> external abort mid-put.
    let err = front
        .try_txn(&s0, |t| {
            t.put(&key_a, "doomed")?;
            t.put(&key_b, "doomed")
        })
        .expect_err("lock timeout must fail the transaction");
    assert!(matches!(err, HatError::ExternalAbort { .. }), "{err}");

    // Key A must not be wedged by a leaked lock: another session locks
    // it and commits promptly once the network heals.
    front.run_for(heal.since(front.now()) + SimDuration::from_millis(1));
    front.txn(&s1, |t| t.put(&key_a, "alive"));
    let v = front.txn(&s1, |t| t.get(&key_a));
    assert_eq!(v.as_deref(), Some("alive"));
}

/// Item cut isolation (§5.1.1): with the ItemCut session level, a repeat
/// read inside one transaction returns the first-read value even if a
/// concurrent writer intervenes.
#[test]
fn item_cut_isolation_repeat_reads() {
    let mut front = DeploymentBuilder::new(ProtocolKind::ReadCommitted)
        .seed(10)
        .clusters(ClusterSpec::single_dc(2, 2))
        .sessions_per_cluster(1)
        .build();
    let reader = front.open_session(SessionOptions {
        level: SessionLevel::ItemCut,
        sticky: true,
    });
    let writer = front.open_session(SessionOptions::default());
    front.txn(&writer, |t| t.put("x", "1"));
    front.quiesce();
    let (first, second) = front.txn(&reader, |t| {
        let a = t.get("x")?;
        let b = t.get("x")?;
        Ok((a, b))
    });
    assert_eq!(first, second, "I-CI: repeat read identical");
}

/// Monotonic sessions: reads never go backwards even when a non-sticky
/// session bounces between replicas with different staleness.
#[test]
fn monotonic_reads_with_session_cache() {
    let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
        .seed(11)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .build();
    let writer = front.open_session(SessionOptions::default());
    let reader = front.open_session(SessionOptions {
        level: SessionLevel::Monotonic,
        sticky: false, // bouncing reader
    });
    let mut last: u64 = 0;
    for i in 1..=10u64 {
        front.txn(&writer, |t| t.put("feed", &i.to_string()));
        // do not quiesce: replicas are intentionally unevenly fresh
        front.run_for(SimDuration::from_millis(3));
        let v = front.txn(&reader, |t| t.get("feed"));
        let v: u64 = v.unwrap_or_default().parse().unwrap_or(0);
        assert!(v >= last, "monotonic reads violated: {last} -> {v}");
        last = v;
    }
}

/// Deterministic replay: identical seeds give identical histories.
#[test]
fn runs_are_deterministic() {
    let run = |seed: u64| {
        let mut front = DeploymentBuilder::new(ProtocolKind::Mav)
            .seed(seed)
            .clusters(ClusterSpec::va_or(2))
            .sessions_per_cluster(2)
            .build();
        let s0 = front.open_session(SessionOptions::default());
        let s1 = front.open_session(SessionOptions::default());
        for i in 0..5 {
            let k = format!("k{}", i % 3);
            front.txn(&s0, |t| t.put(&k, &format!("a{i}")));
            let _ = front.txn(&s1, |t| t.get(&k));
        }
        front.quiesce();
        front.take_records()
    };
    assert_eq!(run(99), run(99));
}
