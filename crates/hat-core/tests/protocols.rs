//! Protocol-level integration tests: the constructive results of §5.1
//! and the impossibility results of §5.2, exercised end-to-end through
//! the simulation facade.

use hat_core::{
    ClusterSpec, HatError, ProtocolKind, SessionLevel, SessionOptions, SimulationBuilder,
};
use hat_sim::{Partition, PartitionSchedule, SimDuration, SimTime};

/// §5.1.4 convergence: in the absence of new mutations, all replicas
/// eventually agree — a write from one cluster's client becomes visible
/// to a client of another cluster.
#[test]
fn eventual_converges_across_clusters() {
    let mut sim = SimulationBuilder::new(ProtocolKind::Eventual)
        .seed(1)
        .clusters(ClusterSpec::va_or(3))
        .clients_per_cluster(1)
        .build();
    let c0 = sim.client(0); // home: cluster 0 (Virginia)
    let c1 = sim.client(1); // home: cluster 1 (Oregon)
    sim.txn(c0, |t| t.put("x", "from-virginia"));
    sim.settle();
    let v = sim.txn(c1, |t| t.get("x"));
    assert_eq!(v.as_deref(), Some("from-virginia"));
}

/// Read Committed write buffering: another client never observes a value
/// before the writer commits (no dirty reads).
#[test]
fn rc_has_no_dirty_reads() {
    let mut sim = SimulationBuilder::new(ProtocolKind::ReadCommitted)
        .seed(2)
        .clusters(ClusterSpec::single_dc(2, 2))
        .clients_per_cluster(1)
        .build();
    let c0 = sim.client(0);
    let c1 = sim.client(1);
    // Writes buffer client-side, so nothing is visible even mid-txn;
    // we approximate "mid-transaction" by checking before any commit.
    let v = sim.txn(c1, |t| t.get("dirty"));
    assert_eq!(v, None);
    sim.txn(c0, |t| t.put("dirty", "now-committed"));
    sim.settle();
    let v = sim.txn(c1, |t| t.get("dirty"));
    assert_eq!(v.as_deref(), Some("now-committed"));
}

/// §5.1.2 MAV: once any effect of a transaction is observed, all its
/// effects are observed. With sticky routing and multi-key writes across
/// clusters, a reader must never see y's new version but x's old one.
#[test]
fn mav_atomic_visibility() {
    let mut sim = SimulationBuilder::new(ProtocolKind::Mav)
        .seed(3)
        .clusters(ClusterSpec::va_or(3))
        .clients_per_cluster(1)
        .build();
    let writer = sim.client(0);
    let reader = sim.client(1);
    // initial values
    sim.txn(writer, |t| {
        t.put("acct-a", "0");
        t.put("acct-b", "0");
    });
    sim.settle();
    for round in 1..=5 {
        let v = format!("{round}");
        sim.txn(writer, |t| {
            t.put("acct-a", &v);
            t.put("acct-b", &v);
        });
        // Read at arbitrary intermediate points, including right away.
        for _ in 0..3 {
            let (a, b) = sim.txn(reader, |t| (t.get("acct-a"), t.get("acct-b")));
            let a: u64 = a.unwrap_or_default().parse().unwrap_or(0);
            let b: u64 = b.unwrap_or_default().parse().unwrap_or(0);
            // MAV: having observed acct-a = v, the same txn must observe
            // acct-b >= v (reads happen in a,b order).
            assert!(
                b >= a,
                "round {round}: read a={a} then b={b}: atomic view violated"
            );
            sim.run_for(SimDuration::from_millis(37));
        }
    }
    assert_eq!(
        sim.mav_required_misses(),
        0,
        "required bound always satisfiable"
    );
}

/// Master provides per-key linearizability: a committed write is
/// immediately visible to every client (all ops route to the master).
#[test]
fn master_reads_latest_write() {
    let mut sim = SimulationBuilder::new(ProtocolKind::Master)
        .seed(4)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(1)
        .build();
    let c0 = sim.client(0);
    let c1 = sim.client(1);
    sim.txn(c0, |t| t.put("k", "v1"));
    // No settle: master reads must see it immediately.
    let v = sim.txn(c1, |t| t.get("k"));
    assert_eq!(v.as_deref(), Some("v1"));
}

/// §5.2.2 / Table 3: master (recency) is unavailable under partition —
/// a client cut off from a key's master cannot complete operations.
#[test]
fn master_unavailable_under_partition() {
    let sim = SimulationBuilder::new(ProtocolKind::Master)
        .seed(5)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(1)
        .build();
    // find a key mastered in cluster 1 so that partitioning the client
    // from cluster 1 blocks it
    let key = (0..100)
        .map(|i| format!("k{i}"))
        .find(|k| {
            let key = hat_storage::Key::from(k.clone());
            let master = sim.layout().master(&key);
            sim.layout().cluster_of(master) == Some(1)
        })
        .expect("some key is mastered in cluster 1");
    // partition cluster 1 from everyone, starting now, forever
    let side_a: Vec<u32> = sim.layout().servers[1].clone();
    let mut others: Vec<u32> = sim.layout().servers[0].clone();
    others.extend(sim.layout().clients.iter().copied());
    let mut sim = SimulationBuilder::new(ProtocolKind::Master)
        .seed(5)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![
            Partition::forever(SimTime::ZERO, side_a, others),
        ]))
        .build();
    let c0 = sim.client(0);
    let err = sim
        .try_txn(c0, |t| t.get(&key))
        .expect_err("read of a partitioned master must not complete");
    assert!(matches!(err, HatError::Unavailable { .. }), "{err}");
}

/// The same partition leaves HAT protocols fully available: a sticky
/// client of the healthy cluster commits normally. Note the Monotonic
/// session level: MAV's *visibility* of new writes is indefinitely
/// delayed under partition (its good-set promotion needs the remote
/// cluster's acknowledgements), so reading your own write back relies on
/// the session cache — availability, per §4.2, is about operations
/// completing, which they do for all three HAT protocols.
#[test]
fn hat_protocols_available_under_partition() {
    for protocol in [
        ProtocolKind::Eventual,
        ProtocolKind::ReadCommitted,
        ProtocolKind::Mav,
    ] {
        let probe = SimulationBuilder::new(protocol)
            .seed(6)
            .clusters(ClusterSpec::va_or(2))
            .clients_per_cluster(1)
            .build();
        let cluster1: Vec<u32> = probe.layout().servers[1].clone();
        let mut cluster0_and_clients: Vec<u32> = probe.layout().servers[0].clone();
        cluster0_and_clients.push(probe.client(0));
        drop(probe);

        let mut sim = SimulationBuilder::new(protocol)
            .seed(6)
            .clusters(ClusterSpec::va_or(2))
            .clients_per_cluster(1)
            .session(SessionOptions {
                level: SessionLevel::Monotonic,
                sticky: true,
            })
            .partitions(PartitionSchedule::from_partitions(vec![
                Partition::forever(SimTime::ZERO, cluster1, cluster0_and_clients),
            ]))
            .build();
        let c0 = sim.client(0); // sticky to healthy cluster 0
        for i in 0..10 {
            let k = format!("k{i}");
            sim.txn(c0, |t| t.put(&k, "v"));
            let v = sim.txn(c0, |t| t.get(&k));
            assert_eq!(v.as_deref(), Some("v"), "{protocol:?} must stay available");
        }
    }
}

/// §5.2.1: Lost Update cannot be prevented by any HAT protocol. Two
/// clients on opposite sides of a partition both read x=100 and write
/// back x+=20 / x+=30; after healing, one update is lost (LWW keeps one).
#[test]
fn lost_update_happens_under_partition() {
    let probe = SimulationBuilder::new(ProtocolKind::Eventual)
        .seed(7)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(1)
        .build();
    let side_a: Vec<u32> = probe.layout().servers[0]
        .iter()
        .copied()
        .chain([probe.client(0)])
        .collect();
    let side_b: Vec<u32> = probe.layout().servers[1]
        .iter()
        .copied()
        .chain([probe.client(1)])
        .collect();
    drop(probe);

    let mut sim = SimulationBuilder::new(ProtocolKind::Eventual)
        .seed(7)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![Partition::new(
            SimTime::from_secs(3),
            SimTime::from_secs(30),
            side_a,
            side_b,
        )]))
        .build();
    let c0 = sim.client(0);
    let c1 = sim.client(1);
    // seed x=100 before the partition
    sim.txn(c0, |t| t.put("x", "100"));
    sim.settle(); // both clusters have x=100; partition starts at t=3s
    sim.run_for(SimDuration::from_secs(2));

    // both sides increment concurrently during the partition
    let a = sim.txn(c0, |t| {
        let v: u64 = t.get("x").unwrap().parse().unwrap();
        t.put("x", &format!("{}", v + 20));
        v + 20
    });
    let b = sim.txn(c1, |t| {
        let v: u64 = t.get("x").unwrap().parse().unwrap();
        t.put("x", &format!("{}", v + 30));
        v + 30
    });
    assert_eq!((a, b), (120, 130), "both committed against x=100");

    // heal and converge
    sim.run_for(SimDuration::from_secs(30));
    sim.settle();
    let v0 = sim.txn(c0, |t| t.get("x")).unwrap();
    let v1 = sim.txn(c1, |t| t.get("x")).unwrap();
    assert_eq!(v0, v1, "replicas converged");
    // The final state could not have arisen from a serial execution
    // (serial would give 150): one update was lost.
    assert!(v0 == "120" || v0 == "130", "got {v0}");
}

/// §5.1.3: read-your-writes fails without stickiness — a non-sticky
/// client that wrote during a partition may read from the other side and
/// miss its own write. With stickiness the same scenario always succeeds.
#[test]
fn ryw_requires_stickiness() {
    // Build: two clusters; partition separates them (clients can reach
    // both). The non-sticky client writes (lands in some cluster) then
    // reads repeatedly — with cluster choice randomized, some read goes
    // to the other cluster, which cannot have the write while partitioned.
    let build = |sticky: bool, seed: u64| {
        let probe = SimulationBuilder::new(ProtocolKind::Eventual)
            .seed(seed)
            .clusters(ClusterSpec::va_or(2))
            .clients_per_cluster(1)
            .build();
        let side_a: Vec<u32> = probe.layout().servers[0].clone();
        let side_b: Vec<u32> = probe.layout().servers[1].clone();
        drop(probe);
        SimulationBuilder::new(ProtocolKind::Eventual)
            .seed(seed)
            .clusters(ClusterSpec::va_or(2))
            .clients_per_cluster(1)
            .session(SessionOptions {
                level: SessionLevel::None,
                sticky,
            })
            .partitions(PartitionSchedule::from_partitions(vec![
                Partition::forever(SimTime::ZERO, side_a, side_b),
            ]))
            .build()
    };

    // Non-sticky: hunt for a violation across seeds (randomized routing).
    let mut violated = false;
    'outer: for seed in 0..20 {
        let mut sim = build(false, 100 + seed);
        let c = sim.client(0);
        for i in 0..10 {
            let k = format!("w{i}");
            sim.txn(c, |t| t.put(&k, "mine"));
            let v = sim.txn(c, |t| t.get(&k));
            if v.is_none() {
                violated = true;
                break 'outer;
            }
        }
    }
    assert!(
        violated,
        "non-sticky client should eventually miss its own write during a partition"
    );

    // Sticky: never violated.
    for seed in 0..5 {
        let mut sim = build(true, 200 + seed);
        let c = sim.client(0);
        for i in 0..10 {
            let k = format!("w{i}");
            sim.txn(c, |t| t.put(&k, "mine"));
            let v = sim.txn(c, |t| t.get(&k));
            assert_eq!(v.as_deref(), Some("mine"), "sticky RYW must hold");
        }
    }
}

/// 2PL provides serializable increments (no lost update) when the
/// network is healthy...
#[test]
fn twopl_serializes_increments() {
    let mut sim = SimulationBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(8)
        .clusters(ClusterSpec::single_dc(2, 2))
        .clients_per_cluster(2)
        .build();
    let clients: Vec<_> = (0..4).map(|i| sim.client(i)).collect();
    sim.txn(clients[0], |t| t.put("ctr", "0"));
    for round in 0..3 {
        for &c in &clients {
            let _ = round;
            sim.txn(c, |t| {
                let v: u64 = t.get("ctr").unwrap().parse().unwrap();
                t.put("ctr", &format!("{}", v + 1));
            });
        }
    }
    let v = sim.txn(clients[0], |t| t.get("ctr"));
    assert_eq!(v.as_deref(), Some("12"), "every increment preserved");
}

/// ... but 2PL is unavailable under partition: a client that cannot
/// reach a lock master blocks and externally aborts.
#[test]
fn twopl_unavailable_under_partition() {
    let probe = SimulationBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(9)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(1)
        .build();
    let key = (0..100)
        .map(|i| format!("k{i}"))
        .find(|k| {
            let key = hat_storage::Key::from(k.clone());
            probe.layout().cluster_of(probe.layout().master(&key)) == Some(1)
        })
        .unwrap();
    let side_a: Vec<u32> = probe.layout().servers[1].clone();
    let mut side_b: Vec<u32> = probe.layout().servers[0].clone();
    side_b.extend(probe.layout().clients.iter().copied());
    drop(probe);

    let mut sim = SimulationBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(9)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![
            Partition::forever(SimTime::ZERO, side_a, side_b),
        ]))
        .build();
    let c0 = sim.client(0);
    let err = sim
        .try_txn(c0, |t| {
            t.put(&key, "v");
        })
        .expect_err("2PL write across a partition must fail");
    assert!(
        matches!(
            err,
            HatError::ExternalAbort { .. } | HatError::Unavailable { .. }
        ),
        "{err}"
    );
}

/// Item cut isolation (§5.1.1): with the ItemCut session level, a repeat
/// read inside one transaction returns the first-read value even if a
/// concurrent writer intervenes.
#[test]
fn item_cut_isolation_repeat_reads() {
    let mut sim = SimulationBuilder::new(ProtocolKind::ReadCommitted)
        .seed(10)
        .clusters(ClusterSpec::single_dc(2, 2))
        .clients_per_cluster(1)
        .session(SessionOptions {
            level: SessionLevel::ItemCut,
            sticky: true,
        })
        .build();
    let reader = sim.client(0);
    let writer = sim.client(1);
    sim.txn(writer, |t| t.put("x", "1"));
    sim.settle();
    // The reader's transaction spans a concurrent update. We interleave
    // by performing the writer's txn between two reads of the reader's
    // txn — possible because the facade drives ops synchronously.
    // Since TxnCtx borrows the sim exclusively we emulate interleaving
    // with two sequential reader txns and rely on the cache *within* one:
    let (first, second) = sim.txn(reader, |t| {
        let a = t.get("x");
        let b = t.get("x");
        (a, b)
    });
    assert_eq!(first, second, "I-CI: repeat read identical");
}

/// Monotonic sessions: reads never go backwards even when a non-sticky
/// client bounces between replicas with different staleness.
#[test]
fn monotonic_reads_with_session_cache() {
    let mut sim = SimulationBuilder::new(ProtocolKind::Eventual)
        .seed(11)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(1)
        .session(SessionOptions {
            level: SessionLevel::Monotonic,
            sticky: false, // bouncing reader
        })
        .build();
    let writer = sim.client(0);
    let reader = sim.client(1);
    let mut last: u64 = 0;
    for i in 1..=10u64 {
        sim.txn(writer, |t| t.put("feed", &i.to_string()));
        // do not settle: replicas are intentionally unevenly fresh
        sim.run_for(SimDuration::from_millis(3));
        let v = sim.txn(reader, |t| t.get("feed"));
        let v: u64 = v.unwrap_or_default().parse().unwrap_or(0);
        assert!(v >= last, "monotonic reads violated: {last} -> {v}");
        last = v;
    }
}

/// Deterministic replay: identical seeds give identical histories.
#[test]
fn runs_are_deterministic() {
    let run = |seed: u64| {
        let mut sim = SimulationBuilder::new(ProtocolKind::Mav)
            .seed(seed)
            .clusters(ClusterSpec::va_or(2))
            .clients_per_cluster(2)
            .build();
        let c0 = sim.client(0);
        let c1 = sim.client(1);
        for i in 0..5 {
            let k = format!("k{}", i % 3);
            sim.txn(c0, |t| t.put(&k, &format!("a{i}")));
            let _ = sim.txn(c1, |t| t.get(&k));
        }
        sim.settle();
        sim.take_records()
    };
    assert_eq!(run(99), run(99));
}
