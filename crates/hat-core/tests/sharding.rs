//! Deployment-validation and shard-routing regression tests.
//!
//! * A spec the layout cannot route over (no clusters, a zero-server
//!   cluster, unequal cluster sizes, no session slots) must surface as
//!   a typed [`HatError::InvalidDeployment`] from `try_build`, not as a
//!   routing panic on the first key touched.
//! * A sticky client whose home cluster has lost every replica must
//!   surface [`HatError::Unavailable`] *naming the key* it could not
//!   reach, so the operator sees which item was unreachable instead of
//!   a bare timeout.

use hat_core::{
    ClusterSpec, DeploymentBuilder, Frontend, HatError, ProtocolKind, SessionLevel, SessionOptions,
};

fn build_err(spec: ClusterSpec, sessions: usize) -> HatError {
    DeploymentBuilder::new(ProtocolKind::Eventual)
        .seed(7)
        .clusters(spec)
        .sessions_per_cluster(sessions)
        .try_build()
        .map(|_| ())
        .expect_err("spec must be rejected")
}

#[test]
fn zero_server_cluster_is_a_typed_error() {
    let err = build_err(ClusterSpec::single_dc(2, 0), 1);
    match err {
        HatError::InvalidDeployment { ref reason } => {
            assert!(reason.contains("zero-server"), "reason: {reason}")
        }
        other => panic!("expected InvalidDeployment, got {other}"),
    }
    // The error is a config bug, not a liveness result: it must not
    // count against the availability ledger in experiments.
    assert!(!err.violates_availability());
}

#[test]
fn empty_spec_is_a_typed_error() {
    let spec = ClusterSpec { clusters: vec![] };
    assert!(matches!(
        build_err(spec, 1),
        HatError::InvalidDeployment { .. }
    ));
}

#[test]
fn unequal_cluster_sizes_are_a_typed_error() {
    // Positional anti-entropy peering pairs replicas by index, so the
    // shard ring is only shared between equal-sized clusters.
    let mut spec = ClusterSpec::single_dc(2, 2);
    spec.clusters[1].1 = 3;
    match build_err(spec, 1) {
        HatError::InvalidDeployment { reason } => {
            assert!(reason.contains("equal-sized"), "reason: {reason}")
        }
        other => panic!("expected InvalidDeployment, got {other}"),
    }
}

#[test]
fn zero_session_slots_are_a_typed_error() {
    assert!(matches!(
        build_err(ClusterSpec::single_dc(2, 2), 0),
        HatError::InvalidDeployment { .. }
    ));
}

/// A sticky session pins every request to its (derived) home cluster;
/// when that cluster has crashed every replica, the operation must time
/// out with an [`HatError::Unavailable`] that names the key — and a
/// non-sticky session on the same deployment stays available through
/// the surviving cluster (§5.1.3: stickiness is what the client trades
/// for the session guarantees).
#[test]
fn dead_home_sticky_client_surfaces_unavailable_with_key() {
    let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
        .seed(21)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .build();
    let sticky = front.open_session(SessionOptions {
        level: SessionLevel::None,
        sticky: true,
    });
    let roaming = front.open_session(SessionOptions {
        level: SessionLevel::None,
        sticky: false,
    });

    // Seed a value while both clusters are alive.
    front.txn(&sticky, |t| t.put("shard-k", "v0"));
    front.quiesce();

    // Kill every server in the sticky session's home cluster. Homes are
    // derived round-robin, so session 0's home is cluster 0.
    for server in front.layout().servers[0].clone() {
        front.crash_server(server);
    }

    let err = front
        .try_txn(&sticky, |t| t.get("shard-k"))
        .expect_err("sticky read against a dead home cluster must fail");
    match err {
        HatError::Unavailable { key: Some(ref k) } => {
            assert_eq!(k, "shard-k", "the error must name the unreachable key")
        }
        other => panic!("expected Unavailable naming the key, got {other}"),
    }
    assert!(err.violates_availability());

    // The non-sticky session reads the same key through the surviving
    // cluster.
    let v = front.txn(&roaming, |t| t.get("shard-k"));
    assert_eq!(v.as_deref(), Some("v0"));
}
