//! Zero-cost-when-off audit, in its own integration binary: the
//! process-wide [`hat_obs::obs_recorded_total`] counter must not move
//! across an entire untelemetered deployment run. Isolated here because
//! the counter is global — any obs-enabled test in the same process
//! would race it. Mirrors hat-trace's `events_recorded_total` audit.

use hat_core::{
    ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, SessionOptions, SystemConfig,
};
use hat_sim::SimDuration;

#[test]
fn disabled_telemetry_records_nothing_at_all() {
    let before = hat_obs::obs_recorded_total();
    let cfg = SystemConfig::new(ProtocolKind::Mav);
    assert!(!cfg.obs.enabled, "telemetry must default off");
    let mut front = DeploymentBuilder::new(ProtocolKind::Mav)
        .seed(0x0FF)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .config(cfg)
        .build();
    let s = front.open_session(SessionOptions::default());
    for round in 0..10 {
        front.txn(&s, |t| {
            let _ = t.get("zc:a")?;
            t.put("zc:a", &format!("r{round}"))?;
            t.put("zc:b", &format!("r{round}"))
        });
        front.run_for(SimDuration::from_millis(5));
    }
    front.quiesce();
    assert!(!front.take_records().is_empty());
    assert!(front.obs_series().is_none());
    assert_eq!(
        hat_obs::obs_recorded_total(),
        before,
        "an obs-off run recorded telemetry"
    );
}
