//! Guarantee-preservation tests for the PR-6 performance machinery:
//! group commit (`Msg::CommitBatch`) and delta-compressed anti-entropy
//! catch-up (`Msg::ReplicateDelta`) are *optimizations* — every engine's
//! advertised isolation level must be exactly what it was with per-key
//! commit markers and per-record replay. These tests drive partition /
//! heal schedules with the delta path forced on (a tiny
//! `delta_catchup_threshold`) and group commit at its default, and
//! assert the §5.1 guarantees the seed suite establishes on the healthy
//! path: convergence, MAV atomic visibility (sibling notification must
//! survive batch compaction), and RAMP atomic visibility (prepared-set
//! promotion must survive both batched commit marks and compaction).

use hat_core::protocol::replication::{ReplicationLog, MAX_BATCH};
use hat_core::{
    ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, SessionOptions, SimFrontend,
    SystemConfig, Timestamp,
};
use hat_sim::{NodeId, Partition, PartitionSchedule, SimDuration, SimTime};
use hat_storage::{Key, Record, SharedRecord};
use std::collections::BTreeSet;

/// A config with the delta catch-up path forced on: any peer lagging by
/// more than `threshold` log entries receives one compacted
/// `ReplicateDelta` instead of `MAX_BATCH`-sized replay chunks.
fn delta_config(kind: ProtocolKind, threshold: u64) -> SystemConfig {
    let mut cfg = SystemConfig::new(kind);
    cfg.delta_catchup_threshold = threshold;
    cfg
}

/// Two-cluster deployment with one session per cluster and a partition
/// separating the clusters (servers and their home clients) during
/// `[start, end)`.
/// Probe run to learn node ids and master placement for the schedule.
/// Returns the deployment plus three keys whose master lives in cluster
/// 0 — master/2PL writers must keep making progress while cluster 1 is
/// cut off, and master-routed writes to a cluster-1 master would block.
fn partitioned(
    kind: ProtocolKind,
    cfg: SystemConfig,
    start: SimTime,
    end: SimTime,
) -> (SimFrontend, Vec<String>) {
    let probe = DeploymentBuilder::new(kind)
        .seed(11)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(1)
        .build();
    let cluster0: BTreeSet<NodeId> = probe.layout().servers[0].iter().copied().collect();
    let keys: Vec<String> = (0..100)
        .map(|i| format!("hot-{i}"))
        .filter(|k| cluster0.contains(&probe.layout().master(&Key::from(k.as_str()))))
        .take(3)
        .collect();
    assert_eq!(keys.len(), 3, "expected cluster-0-mastered keys");
    let side_a: Vec<NodeId> = probe.layout().servers[0]
        .iter()
        .copied()
        .chain([probe.client(0)])
        .collect();
    let side_b: Vec<NodeId> = probe.layout().servers[1]
        .iter()
        .copied()
        .chain([probe.client(1)])
        .collect();
    let front = DeploymentBuilder::new(kind)
        .seed(11)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(1)
        .config(cfg)
        .partitions(PartitionSchedule::from_partitions(vec![Partition::new(
            start, end, side_a, side_b,
        )]))
        .build();
    (front, keys)
}

const ALL_ENGINES: [ProtocolKind; 7] = [
    ProtocolKind::Eventual,
    ProtocolKind::ReadCommitted,
    ProtocolKind::Mav,
    ProtocolKind::RampFast,
    ProtocolKind::RampSmall,
    ProtocolKind::Master,
    ProtocolKind::TwoPhaseLocking,
];

/// Every engine: writes accumulated behind a partition are delivered to
/// the lagging cluster through the *compacted* catch-up path once it
/// heals, and a session of that cluster then reads the final values.
/// The overwrite-heavy workload (many rounds over few keys) is exactly
/// what compaction elides, so a compaction bug that drops a live
/// version (or delivers below the watermark twice) surfaces as a stale
/// or non-converging read here.
#[test]
fn delta_catchup_preserves_every_engines_guarantees() {
    for kind in ALL_ENGINES {
        let p_start = SimTime::from_millis(2_000);
        let p_end = SimTime::from_millis(8_000);
        let (mut front, keys) = partitioned(kind, delta_config(kind, 4), p_start, p_end);
        let writer = front.open_session(SessionOptions::default()); // home cluster 0
        let reader = front.open_session(SessionOptions::default()); // home cluster 1
        let (k0, k1, k2) = (keys[0].as_str(), keys[1].as_str(), keys[2].as_str());

        // Seed before the partition so both sides know the keys.
        front.txn(&writer, |t| {
            t.put(k0, "seed")?;
            t.put(k1, "seed")?;
            t.put(k2, "seed")
        });
        front.quiesce();

        // Build replication lag behind the partition: 30 overwrite
        // rounds of 3 keys, far above the threshold of 4.
        front.run_for(p_start.since(front.now()));
        for round in 0..30 {
            let v = format!("round-{round}");
            front.txn(&writer, |t| {
                t.put(k0, &v)?;
                t.put(k1, &v)?;
                t.put(k2, &v)
            });
        }

        // Heal and let catch-up run.
        front.run_for(p_end.since(front.now()) + SimDuration::from_millis(1));
        front.quiesce();
        front.quiesce();

        let (a, b, c) = front.txn(&reader, |t| Ok((t.get(k0)?, t.get(k1)?, t.get(k2)?)));
        for v in [a, b, c] {
            assert_eq!(
                v.as_deref(),
                Some("round-29"),
                "{kind:?}: lagging cluster must converge to the final version"
            );
        }
        let stats = front.server_stats();
        if kind == ProtocolKind::TwoPhaseLocking {
            // 2PL commit writes are sync-replicated (acked only once a
            // peer covers them), so a partitioned master cannot ack and
            // the writer blocks at the partition instead of building
            // replication lag — the delta path has nothing to compact.
            // That unavailability is the point of the CP baseline; what
            // must still hold is convergence (asserted above) across a
            // partition that really dropped traffic.
            assert!(
                stats.msgs_dropped_by_partition > 0,
                "{kind:?}: the partition must have dropped traffic \
                 (stats: {stats:?})"
            );
        } else {
            assert!(
                stats.catchup_batches > 0,
                "{kind:?}: the delta catch-up path must actually have run \
                 (stats: {stats:?})"
            );
        }
        assert!(stats.replication_msgs > 0 && stats.replication_bytes > 0);
        if kind == ProtocolKind::Mav {
            assert_eq!(front.mav_required_misses(), 0);
        }
    }
}

/// MAV atomic visibility across a partition/heal cycle with compaction
/// forced on. The stamp-closure property of the compacted batch is what
/// keeps MAV's sibling ack counting sound: if the batch shipped only
/// per-key latest versions, a transaction whose sibling was overwritten
/// would never fully promote on the healed side and a reader could see
/// a fractured write-set. The probe reads (a, b) in order and requires
/// b >= a in every transaction, during and after the partition.
#[test]
fn mav_sibling_notification_survives_compacted_catchup() {
    let p_start = SimTime::from_millis(2_000);
    let p_end = SimTime::from_millis(6_000);
    let (mut front, _) = partitioned(
        ProtocolKind::Mav,
        delta_config(ProtocolKind::Mav, 2),
        p_start,
        p_end,
    );
    let writer = front.open_session(SessionOptions::default());
    let reader = front.open_session(SessionOptions::default());
    front.txn(&writer, |t| {
        t.put("acct-a", "0")?;
        t.put("acct-b", "0")
    });
    front.quiesce();
    front.run_for(p_start.since(front.now()));

    let probe = |front: &mut SimFrontend, phase: &str| {
        let (a, b) = front.txn(&reader, |t| Ok((t.get("acct-a")?, t.get("acct-b")?)));
        let a: u64 = a.unwrap_or_default().parse().unwrap_or(0);
        let b: u64 = b.unwrap_or_default().parse().unwrap_or(0);
        assert!(
            b >= a,
            "{phase}: read a={a} then b={b}: atomic view violated"
        );
    };

    // Behind the partition: overwrite rounds (the compaction fodder)…
    for round in 1..=12 {
        let v = format!("{round}");
        front.txn(&writer, |t| {
            t.put("acct-a", &v)?;
            t.put("acct-b", &v)
        });
        // …while the partitioned side keeps reading its stale-but-atomic
        // snapshot.
        probe(&mut front, "during partition");
        front.run_for(SimDuration::from_millis(53));
    }

    front.run_for(p_end.since(front.now()) + SimDuration::from_millis(1));
    // Probe while catch-up is in flight and after it settles.
    for _ in 0..6 {
        probe(&mut front, "during heal");
        front.run_for(SimDuration::from_millis(41));
    }
    front.quiesce();
    front.quiesce();
    probe(&mut front, "after quiesce");
    assert_eq!(front.mav_required_misses(), 0);
    assert!(front.server_stats().catchup_batches > 0);
}

/// RAMP-Fast and RAMP-Small atomic visibility with group commit at its
/// default (batched commit marks) and catch-up compaction forced on:
/// prepared-set promotion must behave exactly as with per-key
/// `Msg::Commit` marks — a batched mark that was lost, reordered or
/// double-delivered would strand prepared versions or expose fractured
/// write-sets, which the (a, b) probe detects.
#[test]
fn ramp_promotion_survives_group_commit_and_catchup() {
    for kind in [ProtocolKind::RampFast, ProtocolKind::RampSmall] {
        let p_start = SimTime::from_millis(2_000);
        let p_end = SimTime::from_millis(6_000);
        let (mut front, _) = partitioned(kind, delta_config(kind, 2), p_start, p_end);
        let writer = front.open_session(SessionOptions::default());
        let reader = front.open_session(SessionOptions::default());
        front.txn(&writer, |t| {
            t.put("acct-a", "0")?;
            t.put("acct-b", "0")
        });
        front.quiesce();
        front.run_for(p_start.since(front.now()));
        for round in 1..=12 {
            let v = format!("{round}");
            front.txn(&writer, |t| {
                t.put("acct-a", &v)?;
                t.put("acct-b", &v)
            });
            let (a, b) = front.txn(&reader, |t| Ok((t.get("acct-a")?, t.get("acct-b")?)));
            let a: u64 = a.unwrap_or_default().parse().unwrap_or(0);
            let b: u64 = b.unwrap_or_default().parse().unwrap_or(0);
            assert!(b >= a, "{kind:?}: a={a} then b={b}: atomic view violated");
            front.run_for(SimDuration::from_millis(53));
        }
        front.run_for(p_end.since(front.now()) + SimDuration::from_millis(1));
        front.quiesce();
        front.quiesce();
        let (a, b) = front.txn(&reader, |t| Ok((t.get("acct-a")?, t.get("acct-b")?)));
        assert_eq!(a.as_deref(), Some("12"));
        assert_eq!(b.as_deref(), Some("12"));
        // The batched phase-2 path must actually have been used: the
        // writer's client batched marks and the servers counted them.
        let client = front.aggregate_metrics();
        assert!(
            client.commit_batches > 0 && client.commit_batch_marks >= client.commit_batches,
            "{kind:?}: group commit not exercised: {client:?}"
        );
        let stats = front.server_stats();
        assert!(stats.commit_batches > 0 && stats.catchup_batches > 0);
    }
}

/// Group commit is invisible to histories: the same fixed-seed script
/// with batching on (default) and off (`commit_batch_size = 1`, one
/// `Msg::Commit` per key) must record bit-identical transactions for
/// both RAMP engines.
#[test]
fn group_commit_histories_are_bit_identical_to_per_key_commit() {
    for kind in [ProtocolKind::RampFast, ProtocolKind::RampSmall] {
        let run = |batch: usize| {
            let mut cfg = SystemConfig::new(kind);
            cfg.commit_batch_size = batch;
            let mut front = DeploymentBuilder::new(kind)
                .seed(77)
                .clusters(ClusterSpec::va_or(3))
                .sessions_per_cluster(1)
                .config(cfg)
                .build();
            let w = front.open_session(SessionOptions::default());
            let r = front.open_session(SessionOptions::default());
            for round in 0..5 {
                let v = format!("v{round}");
                front.txn(&w, |t| {
                    t.put("x", &v)?;
                    t.put("y", &v)?;
                    t.put("z", &v)
                });
                front.quiesce();
                front.txn(&r, |t| Ok((t.get("x")?, t.get("y")?, t.get("z")?)));
                front.quiesce();
            }
            front.take_records()
        };
        let batched = run(64);
        let per_key = run(1);
        assert_eq!(
            batched, per_key,
            "{kind:?}: group commit changed observable history"
        );
        assert!(!batched.is_empty());
    }
}

/// The acceptance bound on the wire win: for a 10k-entry lag on a hot
/// overwrite workload, the compacted catch-up batch carries far fewer
/// records, messages and bytes than per-record replay of the same
/// window.
#[test]
fn catchup_beats_replay_on_messages_and_bytes_for_10k_lag() {
    let mut log = ReplicationLog::new(1);
    for i in 0..10_000u64 {
        log.push(
            Key::from(format!("user{:08}", i % 1000)),
            Record::new(Timestamp::new(i + 1, 1), bytes::Bytes::from(vec![7u8; 128])).into(),
        );
    }
    let wire_bytes = |entries: &[(Key, SharedRecord)]| -> u64 {
        entries
            .iter()
            .map(|(k, r)| 4 + k.len() as u64 + r.encoded_len() as u64)
            .sum()
    };

    // Per-record replay: the peer acks each chunk, the sender rebatches.
    let mut replay = log.clone();
    let mut replay_msgs = 0u64;
    let mut replay_records = 0u64;
    let mut replay_bytes = 0u64;
    loop {
        let (start, batch) = replay.batch_for(0);
        if batch.is_empty() {
            break;
        }
        replay_msgs += 1;
        replay_records += batch.len() as u64;
        replay_bytes += wire_bytes(&batch);
        replay.ack(0, start + batch.len() as u64);
    }
    assert_eq!(replay_msgs, (10_000 / MAX_BATCH as u64) + 1);
    assert_eq!(replay_records, 10_000);

    // Compacted catch-up: one message, one live version per key.
    let (upto, entries) = log.catchup_for(0);
    assert_eq!(upto, 10_000);
    assert_eq!(entries.len(), 1000, "one surviving version per hot key");
    let delta_bytes = wire_bytes(&entries);
    assert!(
        delta_bytes * 5 < replay_bytes,
        "delta catch-up must be far cheaper: {delta_bytes} vs {replay_bytes} bytes"
    );
    assert!(1 < replay_msgs, "replay takes multiple round trips");
}

/// End-to-end version of the wire-win check: the same partition/heal
/// workload replicated once with delta catch-up enabled and once with
/// it disabled (threshold = u64::MAX → per-record replay only) must
/// converge to the same reads, with the delta run shipping fewer
/// records.
#[test]
fn delta_catchup_ships_fewer_records_end_to_end() {
    let run = |threshold: u64| {
        let p_start = SimTime::from_millis(2_000);
        let p_end = SimTime::from_millis(8_000);
        let kind = ProtocolKind::Eventual;
        let (mut front, _) = partitioned(kind, delta_config(kind, threshold), p_start, p_end);
        let writer = front.open_session(SessionOptions::default());
        let reader = front.open_session(SessionOptions::default());
        front.txn(&writer, |t| t.put("k", "seed"));
        front.quiesce();
        front.run_for(p_start.since(front.now()));
        for round in 0..40 {
            let v = format!("r{round}");
            front.txn(&writer, |t| t.put("k", &v));
        }
        front.run_for(p_end.since(front.now()) + SimDuration::from_millis(1));
        front.quiesce();
        front.quiesce();
        let v = front.txn(&reader, |t| t.get("k"));
        (v, front.server_stats())
    };
    let (v_delta, delta) = run(4);
    let (v_replay, replay) = run(u64::MAX);
    assert_eq!(v_delta.as_deref(), Some("r39"));
    assert_eq!(v_replay, v_delta, "both replication modes converge alike");
    assert!(delta.catchup_batches > 0);
    assert_eq!(replay.catchup_batches, 0);
    assert!(
        delta.replication_records < replay.replication_records,
        "compaction must ship fewer records: {} vs {}",
        delta.replication_records,
        replay.replication_records
    );
}
