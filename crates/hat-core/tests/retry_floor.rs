//! Regression test for the retry-path `required` floor.
//!
//! `Client::on_retry_timer` used to rebuild a retried `Msg::Get` from the
//! transaction's `required` vector alone, dropping the cross-transaction
//! `causal_required` session floor that the initial send applies. Under
//! `SessionLevel::Causal`, a read whose first `GetResp` is lost would
//! therefore be retried with `required = INITIAL` and could legally be
//! answered with a causally stale version. Both paths now share one
//! floor computation; this test drives the client state machine directly,
//! drops the first `GetResp`, fires the retry timer, and asserts the
//! resent `Get` still carries the session floor.

use hat_core::{
    Client, ClusterLayout, Msg, ProtocolKind, SessionLevel, SessionOptions, SystemConfig, Timestamp,
};
use hat_sim::{Ctx, NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SERVER: NodeId = 0;
const CLIENT: NodeId = 1;

fn single_replica_client(level: SessionLevel) -> Client {
    let layout = Arc::new(ClusterLayout::new(
        vec![vec![SERVER]],
        vec![CLIENT],
        vec![0],
    ));
    let config = Arc::new(SystemConfig::new(ProtocolKind::Mav));
    Client::new(
        CLIENT,
        1,
        0,
        layout,
        config,
        SessionOptions {
            level,
            sticky: true,
        },
    )
}

/// Runs `f` against the client with a detached context and returns the
/// messages it sent.
fn step(
    client: &mut Client,
    rng: &mut StdRng,
    now: SimTime,
    f: impl FnOnce(&mut Client, &mut Ctx<'_, Msg>),
) -> Vec<(NodeId, Msg)> {
    let mut ctx = Ctx::detached(CLIENT, now, rng);
    f(client, &mut ctx);
    let (sends, _timers) = ctx.into_outputs();
    sends.into_iter().map(|(_, to, msg)| (to, msg)).collect()
}

fn get_required(sends: &[(NodeId, Msg)]) -> Timestamp {
    match sends {
        [(_, Msg::Get { required, .. })] => *required,
        other => panic!("expected exactly one Get, saw {other:?}"),
    }
}

#[test]
fn retried_get_keeps_the_causal_session_floor() {
    let mut client = single_replica_client(SessionLevel::Causal);
    let mut rng = StdRng::seed_from_u64(1);
    let t = SimTime::ZERO;

    // Txn 1: write k and commit, establishing the causal floor for k.
    let txn1 = client.begin(t);
    let sends = step(&mut client, &mut rng, t, |c, ctx| {
        c.issue_write(ctx, "k".into(), bytes::Bytes::from_static(b"v1"))
    });
    assert!(sends.is_empty(), "MAV buffers writes until commit");
    let commit_sends = step(&mut client, &mut rng, t, |c, ctx| c.start_commit(ctx));
    let put_op = match commit_sends.as_slice() {
        [(to, Msg::Put { op, record, .. })] => {
            assert_eq!(*to, SERVER);
            assert!(record.stamp > txn1, "write stamp Lamport-dominates");
            *op
        }
        other => panic!("expected one commit Put, saw {other:?}"),
    };
    step(&mut client, &mut rng, t, |c, ctx| {
        c.on_message(
            ctx,
            SERVER,
            Msg::PutResp {
                txn: txn1,
                op: put_op,
            },
        )
    });
    assert!(!client.busy(), "txn 1 committed");
    let floor = match commit_sends.as_slice() {
        [(_, Msg::Put { record, .. })] => record.stamp,
        _ => unreachable!(),
    };

    // Txn 2: read k. The initial Get must carry the session floor.
    client.clear_finished();
    client.begin(t + SimDuration::from_millis(1));
    let sends = step(&mut client, &mut rng, t, |c, ctx| {
        c.issue_read(ctx, "k".into())
    });
    assert_eq!(
        get_required(&sends),
        floor,
        "initial Get carries the causal floor"
    );

    // Drop the first GetResp (never deliver it) and fire the retry
    // timer. Issue ids are allocated sequentially: commit used 1, this
    // read used 2.
    let resent = step(
        &mut client,
        &mut rng,
        t + SimDuration::from_secs(1),
        |c, ctx| c.on_timer(ctx, 2),
    );
    assert_eq!(
        get_required(&resent),
        floor,
        "retried Get must keep the causal session floor — a stale \
         retry can observe a causally older version"
    );
}

/// Control: without a causal session the retried Get has no floor (the
/// per-transaction `required` vector is empty for a fresh read).
#[test]
fn retried_get_without_causal_session_has_no_floor() {
    let mut client = single_replica_client(SessionLevel::None);
    let mut rng = StdRng::seed_from_u64(2);
    let t = SimTime::ZERO;
    client.begin(t);
    let sends = step(&mut client, &mut rng, t, |c, ctx| {
        c.issue_read(ctx, "k".into())
    });
    assert_eq!(get_required(&sends), Timestamp::INITIAL);
    let resent = step(
        &mut client,
        &mut rng,
        t + SimDuration::from_secs(1),
        |c, ctx| c.on_timer(ctx, 1),
    );
    assert_eq!(get_required(&resent), Timestamp::INITIAL);
}
