//! Property-based tests for the consistent-hash shard ring and the
//! layout routing built on it (§6.3 data partitioning).
//!
//! The unit tests in `shard.rs`/`cluster.rs` pin specific sizes; these
//! properties hold the same contracts over arbitrary cluster sizes,
//! vnode counts and key shapes:
//!
//! * every key has exactly one owner, and it is a valid position;
//! * placement is a pure function of the spec — two layouts built from
//!   the same parameters route bit-identically (the determinism seeded
//!   simulator runs and nemesis reruns rely on);
//! * growing a cluster by one server remaps a bounded fraction of the
//!   keyspace (≤ 2/N of sampled keys), and every remapped key lands on
//!   the *new* server — existing arcs never trade keys among themselves.

use hat_core::{ClusterLayout, ShardRing};
use hat_sim::NodeId;
use proptest::prelude::*;

fn layout(clusters: usize, servers_each: usize) -> ClusterLayout {
    let mut next = 0u32;
    let servers: Vec<Vec<NodeId>> = (0..clusters)
        .map(|_| {
            (0..servers_each)
                .map(|_| {
                    let id = next;
                    next += 1;
                    id
                })
                .collect()
        })
        .collect();
    let clients: Vec<NodeId> = vec![next, next + 1];
    ClusterLayout::new(servers, clients, vec![0, 1 % clusters])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly one owner per key, always a valid position, for any ring
    /// geometry and any key bytes.
    #[test]
    fn one_owner_per_key(
        positions in 1usize..32,
        vnodes in 1u32..32,
        key in proptest::collection::vec(0u8..255, 0..24),
    ) {
        let ring = ShardRing::with_vnodes(positions, vnodes);
        let token = ring.token_of(&key);
        prop_assert!(token < ring.num_tokens());
        let owner = ring.owner_position(&key);
        prop_assert!(owner < positions as u32);
        prop_assert_eq!(owner, ring.position_of_token(token));
        // Owner is stable: the same key always maps to the same arc.
        prop_assert_eq!(owner, ring.owner_position(&key));
    }

    /// Two layouts built from the same spec are bit-identical in every
    /// routing decision — rings, replica sets and masters.
    #[test]
    fn same_spec_layouts_route_identically(
        clusters in 1usize..5,
        servers_each in 1usize..9,
        keys in proptest::collection::vec(
            proptest::collection::vec(0u8..255, 1..16),
            1..32,
        ),
    ) {
        let a = layout(clusters, servers_each);
        let b = layout(clusters, servers_each);
        prop_assert_eq!(a.ring(), b.ring());
        for key in &keys {
            let key = hat_storage::Key::from(key.clone());
            prop_assert_eq!(a.replicas(&key), b.replicas(&key));
            prop_assert_eq!(a.master(&key), b.master(&key));
            prop_assert_eq!(a.master_cluster(&key), b.master_cluster(&key));
        }
    }

    /// Adding one server to an N-server cluster remaps at most 2/N of
    /// sampled keys (the consistent-hash contract; modulo placement
    /// would remap ~all of them), and every key that moves lands on the
    /// new server — growth never shuffles keys between existing arcs.
    #[test]
    fn growth_remaps_bounded_fraction_onto_the_new_server(n in 2usize..17, salt in 0u64..1000) {
        let old = ShardRing::new(n);
        let new = ShardRing::new(n + 1);
        let samples = 512usize;
        let mut moved = 0usize;
        for i in 0..samples {
            let key = format!("grow-{salt}-{i}");
            let before = old.owner_position(key.as_bytes());
            let after = new.owner_position(key.as_bytes());
            if before != after {
                moved += 1;
                prop_assert_eq!(
                    after,
                    n as u32,
                    "a remapped key must move to the new position, not between old arcs"
                );
            }
        }
        let bound = 2 * samples / n;
        prop_assert!(moved <= bound, "moved {}/{} keys, bound {}", moved, samples, bound);
    }

    /// The O(1) lookup tables agree with the authoritative server lists
    /// for every server in any layout geometry.
    #[test]
    fn node_lookup_tables_match_server_lists(
        clusters in 1usize..5,
        servers_each in 1usize..9,
    ) {
        let l = layout(clusters, servers_each);
        for (c, cluster) in l.servers.iter().enumerate() {
            for (pos, &id) in cluster.iter().enumerate() {
                prop_assert_eq!(l.cluster_of(id), Some(c));
                prop_assert_eq!(l.position_of(id), Some(pos as u32));
            }
        }
        for &client in &l.clients {
            prop_assert_eq!(l.cluster_of(client), None);
            prop_assert_eq!(l.position_of(client), None);
        }
    }
}
