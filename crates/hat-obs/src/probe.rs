//! Online t-visibility probes.
//!
//! The HAT paper quantifies eventual consistency by *t-visibility*: how
//! long after a write is acknowledged does it become visible at each
//! replica? Rather than injecting probe traffic (which would perturb
//! the deterministic simulation), the tracker piggybacks on the real
//! workload: every Nth committed write is registered here with its
//! replica set, and at each sample tick the frontend asks each pending
//! replica's store whether the stamped version has arrived. The elapsed
//! sim-time from ack to visibility lands in a live histogram.
//!
//! Memory is bounded: at most `cap` writes are in flight; registering
//! past the cap evicts the oldest entry (counted, never silent).

use crate::hist::Histogram;

/// A write stamp as an opaque ordered pair (the simulator's hybrid
/// timestamp `(time, node)` — hat-obs stays dependency-free, so the
/// core crate converts at the boundary).
pub type Stamp = (u64, u32);

/// One acked write awaiting visibility on some replicas.
#[derive(Debug, Clone)]
struct ProbeEntry {
    key: Vec<u8>,
    stamp: Stamp,
    acked_at_us: u64,
    /// Replica node ids that have not yet shown the write.
    pending: Vec<u32>,
}

/// Tracks sampled writes until every replica has seen them, recording
/// ack-to-visible staleness per replica into a histogram.
#[derive(Debug, Clone)]
pub struct VisibilityTracker {
    /// Register every Nth commit (N = `every`); 0 disables probing.
    every: u64,
    cap: usize,
    commits_seen: u64,
    inflight: Vec<ProbeEntry>,
    /// Entries evicted before resolving (cap pressure).
    pub evicted: u64,
    /// Staleness samples resolved (one per write × replica).
    pub samples: u64,
    /// Ack-to-visible staleness in ms.
    pub staleness_ms: Histogram,
}

impl VisibilityTracker {
    pub fn new(every: u64, cap: usize) -> Self {
        VisibilityTracker {
            every,
            cap: cap.max(1),
            commits_seen: 0,
            inflight: Vec::new(),
            evicted: 0,
            samples: 0,
            staleness_ms: Histogram::for_latency_ms(),
        }
    }

    /// Considers a committed write for probing. Deterministic sampling:
    /// every Nth commit (by arrival order) is registered, no rng.
    pub fn observe_commit(&mut self, at_us: u64, key: &[u8], stamp: Stamp, replicas: &[u32]) {
        if self.every == 0 {
            return;
        }
        self.commits_seen += 1;
        if !self.commits_seen.is_multiple_of(self.every) || replicas.is_empty() {
            return;
        }
        if self.inflight.len() >= self.cap {
            self.inflight.remove(0);
            self.evicted += 1;
        }
        self.inflight.push(ProbeEntry {
            key: key.to_vec(),
            stamp,
            acked_at_us: at_us,
            pending: replicas.to_vec(),
        });
    }

    /// Polls every pending `(write, replica)` pair: `visible(key, stamp,
    /// node)` should return true once the replica's store holds a
    /// version of `key` at or above `stamp`. Each newly-visible pair
    /// records `now - acked_at` as one staleness sample.
    pub fn drive<F>(&mut self, now_us: u64, mut visible: F)
    where
        F: FnMut(&[u8], Stamp, u32) -> bool,
    {
        for e in &mut self.inflight {
            e.pending.retain(|&node| {
                if visible(&e.key, e.stamp, node) {
                    self.samples += 1;
                    self.staleness_ms
                        .record((now_us.saturating_sub(e.acked_at_us)) as f64 / 1000.0);
                    false
                } else {
                    true
                }
            });
        }
        self.inflight.retain(|e| !e.pending.is_empty());
    }

    /// Writes still awaiting visibility somewhere.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_every_nth_commit() {
        let mut t = VisibilityTracker::new(2, 16);
        for i in 0..6u64 {
            t.observe_commit(i * 1000, b"k", (i, 0), &[1, 2]);
        }
        // Commits 2, 4, 6 registered.
        assert_eq!(t.inflight(), 3);
    }

    #[test]
    fn resolves_staleness_per_replica() {
        let mut t = VisibilityTracker::new(1, 16);
        t.observe_commit(10_000, b"k", (5, 0), &[1, 2]);
        // Replica 1 sees it at t=12ms (2ms staleness), replica 2 at 30ms.
        t.drive(12_000, |_, _, node| node == 1);
        assert_eq!(t.samples, 1);
        assert_eq!(t.inflight(), 1);
        t.drive(30_000, |_, _, _| true);
        assert_eq!(t.samples, 2);
        assert_eq!(t.inflight(), 0);
        let p = t.staleness_ms.percentiles();
        assert_eq!(p.count, 2);
        assert!((p.max - 20.0).abs() < 0.01, "max {}", p.max);
    }

    #[test]
    fn cap_evicts_oldest_and_counts() {
        let mut t = VisibilityTracker::new(1, 2);
        for i in 0..4u64 {
            t.observe_commit(i, b"k", (i, 0), &[9]);
        }
        assert_eq!(t.inflight(), 2);
        assert_eq!(t.evicted, 2);
    }

    #[test]
    fn zero_every_disables() {
        let mut t = VisibilityTracker::new(0, 4);
        t.observe_commit(0, b"k", (1, 0), &[1]);
        assert_eq!(t.inflight(), 0);
    }
}
