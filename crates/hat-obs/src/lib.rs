//! # hat-obs — live telemetry for the HAT testbed
//!
//! `hat-trace` (PR 8) is forensic: it reconstructs what happened after a
//! run ends. This crate is the *live* layer — the paper's claims (HAT
//! engines stay available and bounded-anomalous **during** partitions,
//! while master/2PL go unavailable) are claims about behavior over
//! time under faults, which end-of-run aggregates flatten away. Three
//! pieces:
//!
//! 1. **[`MetricsRegistry`]** — one typed namespace of counters, gauges
//!    and log-scale histograms, labeled by node/engine/shard, with
//!    lossless merge, Prometheus text exposition and JSON snapshots.
//!    `ClientMetrics`/`ServerStats` export into it at run end.
//! 2. **[`TimeSeries`]** — a sampler snapshots cumulative counters
//!    every N sim-ms and stores per-window *deltas* (throughput, p99
//!    commit latency, abort/retry/redirect rates, replication lag, WAL
//!    bytes), with nemesis fault begin/end [`FaultMark`]s embedded in
//!    the same timeline.
//! 3. **Online probes** — [`VisibilityTracker`] measures t-visibility
//!    staleness (acked write → visible at each replica) from sampled
//!    real commits, and [`StreamingChecker`] flags fractured-read and
//!    session-monotonicity violations in a bounded sliding window as
//!    they occur.
//!
//! ## Determinism contract
//!
//! Same rules as `hat-trace`: observation draws **nothing** from the
//! rng and never mutates simulation state — samplers read existing
//! counters, probes piggyback on real commits (no injected traffic),
//! and the prober polls stores read-only at sample ticks. Same-seed
//! runs produce byte-identical series, and an obs-off run is
//! bit-identical to an obs-on run. The disabled path is a single
//! `Option` check; the process-wide [`obs_recorded_total`] counter
//! audits that nothing records when disabled (mirroring hat-trace's
//! `events_recorded_total` audit).

mod check;
mod hist;
mod probe;
mod registry;
mod series;

pub use check::{CheckerPolicy, CommitObs, ObsViolation, StreamingChecker};
pub use hist::{Histogram, LatencyPercentiles};
pub use probe::{Stamp, VisibilityTracker};
pub use registry::{Labels, Metric, MetricsRegistry};
pub use series::{Cumulative, FaultMark, SeriesPoint, TimeSeries};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-wide count of observations recorded by *any* sink. Tests use
/// [`obs_recorded_total`] deltas to prove the disabled path records
/// nothing — an accidentally-enabled sink can't silently perturb a
/// benchmark without this counter moving.
static OBS_RECORDED: AtomicU64 = AtomicU64::new(0);

/// Total observations recorded process-wide (all sinks, ever).
pub fn obs_recorded_total() -> u64 {
    OBS_RECORDED.load(Ordering::Relaxed)
}

fn bump(n: u64) {
    OBS_RECORDED.fetch_add(n, Ordering::Relaxed);
}

/// Configuration for an enabled sink.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsOptions {
    /// Sampling cadence in sim-microseconds (one series window each).
    pub sample_interval_us: u64,
    /// Register every Nth commit as a visibility probe (0 = no probes).
    pub probe_every: u64,
    /// Max in-flight visibility probes (oldest evicted beyond this).
    pub probe_cap: usize,
    /// Streaming-checker sliding window (recent writers / floors kept).
    pub checker_window: usize,
    /// Which streaming checks this engine is subject to.
    pub policy: CheckerPolicy,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            sample_interval_us: 10_000,
            probe_every: 4,
            probe_cap: 64,
            checker_window: 256,
            policy: CheckerPolicy::default(),
        }
    }
}

#[derive(Debug)]
struct Shared {
    registry: MetricsRegistry,
    series: TimeSeries,
    last: Cumulative,
    next_sample_us: u64,
    interval_us: u64,
    probes: VisibilityTracker,
    checker: StreamingChecker,
    /// Set once the first violation has been returned to the caller
    /// (the client dumps the trace window exactly once).
    violation_reported: bool,
}

/// A cheap, cloneable handle to the live-telemetry state.
///
/// Disabled sinks hold no allocation and every method is a single
/// `Option` check before returning — the hot path costs one branch.
/// Enabled sinks share state behind `Arc<Mutex<..>>`, so the clients,
/// the frontend sampler and the nemesis runner all feed one registry
/// and one timeline.
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    inner: Option<Arc<Mutex<Shared>>>,
}

impl ObsSink {
    /// A sink that drops everything (the default everywhere).
    pub fn disabled() -> Self {
        ObsSink { inner: None }
    }

    /// A live sink with the given options.
    pub fn enabled(opts: ObsOptions) -> Self {
        ObsSink {
            inner: Some(Arc::new(Mutex::new(Shared {
                registry: MetricsRegistry::new(),
                series: TimeSeries::default(),
                last: Cumulative::default(),
                next_sample_us: opts.sample_interval_us,
                interval_us: opts.sample_interval_us.max(1),
                probes: VisibilityTracker::new(opts.probe_every, opts.probe_cap),
                checker: StreamingChecker::new(opts.policy, opts.checker_window),
                violation_reported: false,
            }))),
        }
    }

    /// True if this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds to a registry counter (no-op when disabled).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let Some(s) = &self.inner else { return };
        bump(1);
        s.lock().unwrap().registry.counter_add(name, labels, delta);
    }

    /// Sets a registry gauge (no-op when disabled).
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let Some(s) = &self.inner else { return };
        bump(1);
        s.lock().unwrap().registry.gauge_set(name, labels, v);
    }

    /// Records into a registry histogram (no-op when disabled).
    pub fn hist_record(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let Some(s) = &self.inner else { return };
        bump(1);
        s.lock().unwrap().registry.hist_record(name, labels, v);
    }

    /// Applies `f` to the registry — the hook `ClientMetrics` /
    /// `ServerStats` exposition uses at end of run (no-op when
    /// disabled).
    pub fn with_registry(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        let Some(s) = &self.inner else { return };
        bump(1);
        f(&mut s.lock().unwrap().registry);
    }

    /// Feeds one committed transaction to the visibility probe sampler
    /// and the streaming checker. Returns `Some(violation)` only for
    /// the **first** violation this sink ever sees (further ones are
    /// counted in the registry but not returned), so the caller can
    /// dump the trace window exactly once.
    pub fn observe_commit(&self, c: &CommitObs) -> Option<ObsViolation> {
        let s = self.inner.as_ref()?;
        bump(1);
        let mut s = s.lock().unwrap();
        if let Some((key, replicas)) = c.writes.first() {
            s.probes.observe_commit(c.at_us, key, c.stamp, replicas);
            s.registry
                .counter_add("hat_txn_write_committed_total", &[], 1);
        }
        let v = s.checker.observe(c);
        if let Some(v) = &v {
            let kind = match v {
                ObsViolation::FracturedRead { .. } => "fractured_read",
                ObsViolation::NonMonotonicRead { .. } => "non_monotonic_read",
            };
            s.registry
                .counter_add("hat_check_violations_total", &[("kind", kind)], 1);
        }
        if v.is_some() && !s.violation_reported {
            s.violation_reported = true;
            v
        } else {
            None
        }
    }

    /// Records a fault injection in the series timeline.
    pub fn fault_begin(&self, t_us: u64, label: &str) {
        let Some(s) = &self.inner else { return };
        bump(1);
        let mut s = s.lock().unwrap();
        s.series.mark(t_us, true, label);
        s.registry.counter_add("hat_faults_injected_total", &[], 1);
    }

    /// Records a fault heal/restart in the series timeline.
    pub fn fault_end(&self, t_us: u64, label: &str) {
        let Some(s) = &self.inner else { return };
        bump(1);
        s.lock().unwrap().series.mark(t_us, false, label);
    }

    /// True if a sample window boundary has been reached (disabled
    /// sinks are never due — the frontend's fast path).
    pub fn sample_due(&self, now_us: u64) -> bool {
        match &self.inner {
            Some(s) => now_us >= s.lock().unwrap().next_sample_us,
            None => false,
        }
    }

    /// Closes a sample window: diffs `cum` against the previous
    /// snapshot into a [`SeriesPoint`] at `t_us` and schedules the next
    /// boundary. The caller collects `cum` purely by *reading* existing
    /// counters — sampling must not mutate simulation state. The
    /// unavailability and probe-sample fields are filled from the
    /// sink's own state (the nemesis tally feeds
    /// `hat_txn_unavailable_total` through [`ObsSink::counter_add`]),
    /// so callers need not thread them through.
    pub fn sample(&self, t_us: u64, mut cum: Cumulative) {
        let Some(s) = &self.inner else { return };
        bump(1);
        let mut s = s.lock().unwrap();
        cum.staleness_samples = s.probes.samples;
        cum.unavailable = s.registry.counter_total("hat_txn_unavailable_total");
        cum.committed_w = s.registry.counter_total("hat_txn_write_committed_total");
        let prev = std::mem::take(&mut s.last);
        s.series.push_window(t_us, &prev, &cum);
        s.last = cum;
        s.next_sample_us = t_us + s.interval_us;
    }

    /// Polls pending visibility probes: `visible(key, stamp, node)`
    /// answers whether `node`'s store now holds `key` at or above
    /// `stamp` (a read-only store inspection). No-op when disabled.
    pub fn drive_probes<F>(&self, now_us: u64, visible: F)
    where
        F: FnMut(&[u8], Stamp, u32) -> bool,
    {
        let Some(s) = &self.inner else { return };
        bump(1);
        s.lock().unwrap().probes.drive(now_us, visible);
    }

    /// Snapshot of the time series (None when disabled).
    pub fn series(&self) -> Option<TimeSeries> {
        Some(self.inner.as_ref()?.lock().unwrap().series.clone())
    }

    /// Snapshot of the registry, with probe/checker-derived metrics
    /// folded in (`hat_visibility_staleness_ms`, probe sample/eviction
    /// counters, checker totals). None when disabled.
    pub fn registry(&self) -> Option<MetricsRegistry> {
        let s = self.inner.as_ref()?.lock().unwrap();
        let mut reg = s.registry.clone();
        if s.probes.samples > 0 {
            reg.hist_merge("hat_visibility_staleness_ms", &[], &s.probes.staleness_ms);
        }
        reg.counter_add("hat_probe_samples_total", &[], s.probes.samples);
        reg.counter_add("hat_probe_evicted_total", &[], s.probes.evicted);
        reg.counter_add(
            "hat_check_evicted_writers_total",
            &[],
            s.checker.evicted_writers,
        );
        Some(reg)
    }

    /// Staleness distribution measured so far (None when disabled or
    /// when no probe has resolved yet).
    pub fn staleness(&self) -> Option<LatencyPercentiles> {
        let s = self.inner.as_ref()?.lock().unwrap();
        if s.probes.samples == 0 {
            return None;
        }
        Some(s.probes.staleness_ms.percentiles())
    }

    /// Total streaming-checker violations so far (0 when disabled).
    pub fn violations(&self) -> u64 {
        match &self.inner {
            Some(s) => s.lock().unwrap().checker.violations(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = ObsSink::disabled();
        let before = obs_recorded_total();
        sink.counter_add("c", &[], 1);
        sink.gauge_set("g", &[], 1.0);
        sink.hist_record("h", &[], 1.0);
        sink.fault_begin(0, "x");
        sink.fault_end(1, "x");
        sink.sample(10, Cumulative::default());
        sink.drive_probes(0, |_, _, _| true);
        sink.with_registry(|_| panic!("must not run when disabled"));
        assert!(sink
            .observe_commit(&CommitObs {
                at_us: 0,
                session: 0,
                session_seq: 0,
                stamp: (1, 0),
                reads: vec![],
                writes: vec![(b"k".to_vec(), vec![0])],
            })
            .is_none());
        assert!(!sink.sample_due(u64::MAX));
        assert!(sink.series().is_none());
        assert!(sink.registry().is_none());
        assert_eq!(obs_recorded_total(), before);
    }

    #[test]
    fn enabled_sink_counts_recordings() {
        let sink = ObsSink::enabled(ObsOptions::default());
        let before = obs_recorded_total();
        sink.counter_add("c", &[("n", "0")], 2);
        sink.counter_add("c", &[("n", "0")], 3);
        assert!(obs_recorded_total() >= before + 2);
        assert_eq!(sink.registry().unwrap().counter("c", &[("n", "0")]), 5);
    }

    #[test]
    fn sampling_produces_windows() {
        let sink = ObsSink::enabled(ObsOptions {
            sample_interval_us: 1000,
            ..Default::default()
        });
        assert!(!sink.sample_due(999));
        assert!(sink.sample_due(1000));
        sink.sample(
            1000,
            Cumulative {
                committed: 4,
                ..Default::default()
            },
        );
        assert!(!sink.sample_due(1500));
        assert!(sink.sample_due(2000));
        sink.sample(
            2000,
            Cumulative {
                committed: 10,
                ..Default::default()
            },
        );
        let s = sink.series().unwrap();
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].committed, 4);
        assert_eq!(s.points[1].committed, 6);
    }

    #[test]
    fn first_violation_only_returned_once() {
        let sink = ObsSink::enabled(ObsOptions {
            policy: CheckerPolicy {
                fractured: true,
                monotonic: false,
            },
            ..Default::default()
        });
        let writer = CommitObs {
            at_us: 0,
            session: 0,
            session_seq: 0,
            stamp: (10, 0),
            reads: vec![],
            writes: vec![(b"x".to_vec(), vec![0]), (b"y".to_vec(), vec![0])],
        };
        let fractured = |stamp: Stamp| CommitObs {
            at_us: 1,
            session: 1,
            session_seq: 0,
            stamp,
            reads: vec![(b"x".to_vec(), (10, 0)), (b"y".to_vec(), (3, 0))],
            writes: vec![],
        };
        assert!(sink.observe_commit(&writer).is_none());
        assert!(sink.observe_commit(&fractured((20, 1))).is_some());
        assert!(sink.observe_commit(&fractured((21, 1))).is_none());
        assert_eq!(sink.violations(), 2);
        let reg = sink.registry().unwrap();
        assert_eq!(
            reg.counter("hat_check_violations_total", &[("kind", "fractured_read")]),
            2
        );
    }

    #[test]
    fn probe_feeds_staleness_into_registry() {
        let sink = ObsSink::enabled(ObsOptions {
            probe_every: 1,
            ..Default::default()
        });
        sink.observe_commit(&CommitObs {
            at_us: 5_000,
            session: 0,
            session_seq: 0,
            stamp: (7, 0),
            reads: vec![],
            writes: vec![(b"k".to_vec(), vec![1, 2])],
        });
        sink.drive_probes(9_000, |_, _, _| true);
        let p = sink.staleness().unwrap();
        assert_eq!(p.count, 2);
        assert!((p.max - 4.0).abs() < 0.01);
        let reg = sink.registry().unwrap();
        assert_eq!(reg.counter("hat_probe_samples_total", &[]), 2);
        assert!(reg.hist("hat_visibility_staleness_ms", &[]).is_some());
    }
}
