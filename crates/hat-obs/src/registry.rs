//! The typed metrics registry.
//!
//! One flat namespace of `(metric name, sorted label set) -> value`
//! holding counters, gauges and log-scale histograms. Every component
//! (clients, servers, WAL, nemesis) exports into the same registry, so
//! a run produces a single merged view with lossless aggregation:
//! counters add, gauges keep the max, histograms bucket-merge.
//!
//! Two export formats:
//! - [`MetricsRegistry::prometheus`] — Prometheus text exposition
//!   (histograms rendered summary-style with `quantile` labels plus
//!   `_sum`/`_count`), for eyeballing and for the CI parser check;
//! - [`MetricsRegistry::to_json`] — a hand-rolled JSON snapshot, the
//!   machine-readable form `exp_nemesis --json` embeds.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::Histogram;

/// A label set: `(key, value)` pairs. Stored sorted by key so the same
/// logical labels always map to the same registry entry regardless of
/// the order call sites list them in.
pub type Labels = Vec<(String, String)>;

/// One metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonically increasing count; merge adds.
    Counter(u64),
    /// Point-in-time measurement; merge keeps the max (the registry is
    /// an end-of-window aggregate, and for every gauge we export —
    /// replication lag, WAL size — the max across sources is the
    /// conservative summary).
    Gauge(f64),
    /// Log-scale distribution; merge is lossless bucket addition.
    Hist(Histogram),
}

/// A typed metrics registry with lossless merge and text/JSON export.
///
/// `base` labels (e.g. `engine="ramp-fast"`) are prepended to every
/// entry at insert time, so per-run registries can be merged across
/// engines without collisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    base: Labels,
    entries: BTreeMap<(String, Labels), Metric>,
}

impl MetricsRegistry {
    /// An empty registry with no base labels.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry whose every entry will carry `base` labels.
    pub fn with_base(base: Labels) -> Self {
        let mut base = base;
        base.sort();
        MetricsRegistry {
            base,
            entries: BTreeMap::new(),
        }
    }

    fn key(&self, name: &str, labels: &[(&str, &str)]) -> (String, Labels) {
        let mut l: Labels = self
            .base
            .iter()
            .cloned()
            .chain(labels.iter().map(|(k, v)| (k.to_string(), v.to_string())))
            .collect();
        l.sort();
        l.dedup();
        (name.to_string(), l)
    }

    /// Adds `delta` to the counter `name{labels}` (creating it at 0).
    ///
    /// # Panics
    /// Panics if the entry exists with a non-counter type.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        match self
            .entries
            .entry(self.key(name, labels))
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += delta,
            other => panic!("{name} registered as {other:?}, not a counter"),
        }
    }

    /// Sets the gauge `name{labels}` to `v`.
    ///
    /// # Panics
    /// Panics if the entry exists with a non-gauge type.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        match self
            .entries
            .entry(self.key(name, labels))
            .or_insert(Metric::Gauge(v))
        {
            Metric::Gauge(g) => *g = v,
            other => panic!("{name} registered as {other:?}, not a gauge"),
        }
    }

    /// Records `v` into the histogram `name{labels}` (created with the
    /// standard latency configuration if absent).
    ///
    /// # Panics
    /// Panics if the entry exists with a non-histogram type.
    pub fn hist_record(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        match self
            .entries
            .entry(self.key(name, labels))
            .or_insert_with(|| Metric::Hist(Histogram::for_latency_ms()))
        {
            Metric::Hist(h) => h.record(v),
            other => panic!("{name} registered as {other:?}, not a histogram"),
        }
    }

    /// Merges an already-populated histogram into `name{labels}`.
    /// This is how `ClientMetrics`' per-client latency histograms fold
    /// into the run-wide registry without re-recording samples.
    pub fn hist_merge(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        match self
            .entries
            .entry(self.key(name, labels))
            .or_insert_with(|| Metric::Hist(Histogram::for_latency_ms()))
        {
            Metric::Hist(mine) => mine.merge(h),
            other => panic!("{name} registered as {other:?}, not a histogram"),
        }
    }

    /// Reads a counter (0 if absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.entries.get(&self.key(name, labels)) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Reads a gauge (`None` if absent).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.entries.get(&self.key(name, labels)) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Reads a histogram (`None` if absent).
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.entries.get(&self.key(name, labels)) {
            Some(Metric::Hist(h)) => Some(h),
            _ => None,
        }
    }

    /// Sums a counter across all label sets it appears under.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Number of distinct `(name, labels)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no metrics have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Losslessly merges `other` into `self`: counters add, gauges keep
    /// the max, histograms bucket-merge. Entries unique to either side
    /// survive. `other`'s base labels are already baked into its keys.
    ///
    /// # Panics
    /// Panics if the same `(name, labels)` entry has different types on
    /// the two sides.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, m) in &other.entries {
            match self.entries.entry(k.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(m.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => match (e.get_mut(), m) {
                    (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                    (Metric::Gauge(a), Metric::Gauge(b)) => *a = a.max(*b),
                    (Metric::Hist(a), Metric::Hist(b)) => a.merge(b),
                    (a, b) => panic!("type mismatch merging {k:?}: {a:?} vs {b:?}"),
                },
            }
        }
    }

    fn fmt_labels(labels: &Labels, extra: Option<(&str, String)>) -> String {
        let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }

    /// Prometheus text exposition. Counters and gauges render as single
    /// samples; histograms render summary-style: one sample per
    /// quantile (0.5/0.9/0.99/0.999) plus `_sum` and `_count`.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for ((name, labels), m) in &self.entries {
            if name != last_name {
                let kind = match m {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Hist(_) => "summary",
                };
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_name = name;
            }
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {c}", Self::fmt_labels(labels, None));
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name}{} {g}", Self::fmt_labels(labels, None));
                }
                Metric::Hist(h) => {
                    for q in [0.5, 0.9, 0.99, 0.999] {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            Self::fmt_labels(labels, Some(("quantile", format!("{q}")))),
                            h.quantile(q).min(h.max())
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        Self::fmt_labels(labels, None),
                        h.mean() * h.count() as f64
                    );
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        Self::fmt_labels(labels, None),
                        h.count()
                    );
                }
            }
        }
        out
    }

    /// JSON snapshot: an array of `{name, labels, type, ...}` objects,
    /// deterministic order (the BTreeMap iteration order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, ((name, labels), m)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let labels_json: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", esc(k), esc(v)))
                .collect();
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"labels\":{{{}}},",
                esc(name),
                labels_json.join(",")
            );
            match m {
                Metric::Counter(c) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{c}}}");
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{}}}", json_f64(*g));
                }
                Metric::Hist(h) => {
                    let p = h.percentiles();
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
                        p.count,
                        json_f64(p.mean),
                        json_f64(p.p50),
                        json_f64(p.p90),
                        json_f64(p.p99),
                        json_f64(p.p999),
                        json_f64(p.max)
                    );
                }
            }
        }
        out.push(']');
        out
    }
}

/// Formats an f64 so the output is always valid JSON (no NaN/inf).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_total() {
        let mut r = MetricsRegistry::new();
        r.counter_add("hat_txn_committed_total", &[("node", "0")], 3);
        r.counter_add("hat_txn_committed_total", &[("node", "0")], 2);
        r.counter_add("hat_txn_committed_total", &[("node", "1")], 7);
        assert_eq!(r.counter("hat_txn_committed_total", &[("node", "0")]), 5);
        assert_eq!(r.counter_total("hat_txn_committed_total"), 12);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let mut r = MetricsRegistry::new();
        r.counter_add("m", &[("a", "1"), ("b", "2")], 1);
        r.counter_add("m", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.counter("m", &[("b", "2"), ("a", "1")]), 2);
    }

    #[test]
    fn base_labels_prepend() {
        let mut r = MetricsRegistry::with_base(vec![("engine".into(), "eventual".into())]);
        r.counter_add("m", &[("node", "0")], 1);
        assert_eq!(r.counter("m", &[("node", "0"), ("engine", "eventual")]), 1);
        let text = r.prometheus();
        assert!(text.contains("engine=\"eventual\""), "{text}");
    }

    #[test]
    fn merge_is_lossless_across_types() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", &[], 1);
        a.gauge_set("g", &[], 2.0);
        a.hist_record("h", &[], 10.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", &[], 4);
        b.gauge_set("g", &[], 1.5);
        b.hist_record("h", &[], 30.0);
        b.counter_add("only_b", &[], 9);
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), 5);
        assert_eq!(a.gauge("g", &[]), Some(2.0)); // max wins
        assert_eq!(a.hist("h", &[]).unwrap().count(), 2);
        assert_eq!(a.counter("only_b", &[]), 9);
    }

    #[test]
    fn merge_round_trip_matches_direct_recording() {
        // Recording into two registries and merging equals recording
        // everything into one — the satellite "merge round-trip" check.
        let mut direct = MetricsRegistry::new();
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        for v in [1.0, 5.0, 9.0] {
            direct.hist_record("h", &[("node", "0")], v);
            a.hist_record("h", &[("node", "0")], v);
        }
        for v in [2.0, 400.0] {
            direct.hist_record("h", &[("node", "0")], v);
            b.hist_record("h", &[("node", "0")], v);
        }
        direct.counter_add("c", &[], 10);
        a.counter_add("c", &[], 4);
        b.counter_add("c", &[], 6);
        a.merge(&b);
        assert_eq!(a, direct);
        assert_eq!(a.to_json(), direct.to_json());
        assert_eq!(a.prometheus(), direct.prometheus());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut r = MetricsRegistry::new();
        r.counter_add("hat_txn_committed_total", &[("engine", "rc")], 5);
        r.hist_record("hat_txn_latency_ms", &[("engine", "rc")], 4.2);
        let text = r.prometheus();
        assert!(text.contains("# TYPE hat_txn_committed_total counter"));
        assert!(text.contains("hat_txn_committed_total{engine=\"rc\"} 5"));
        assert!(text.contains("# TYPE hat_txn_latency_ms summary"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("hat_txn_latency_ms_count{engine=\"rc\"} 1"));
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", &[("k", "v")], 1);
        r.gauge_set("g", &[], 0.5);
        r.hist_record("h", &[], 3.0);
        let j = r.to_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"type\":\"counter\""));
        assert!(j.contains("\"type\":\"gauge\""));
        assert!(j.contains("\"type\":\"histogram\""));
        // Deterministic: same registry, same bytes.
        assert_eq!(j, r.to_json());
    }
}
