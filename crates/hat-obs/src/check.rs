//! Bounded-memory streaming consistency checker.
//!
//! Mirrors the two *online-checkable* phenomena from `hat-history`'s
//! offline checker — fractured reads (RAMP Definition 2) and
//! non-monotonic session reads (Definition 28) — but over a sliding
//! window of recent commits instead of the full history, so it runs
//! while the workload is still in flight with O(window) memory.
//!
//! The sliding window makes the checker *sound but incomplete*: a
//! writer evicted from the window becomes "unknown" and its phenomena
//! go undetected (counted in [`StreamingChecker::evicted_writers`]),
//! but the checker never reports a violation the offline checker
//! wouldn't. That one-sidedness is exactly what the live use case
//! needs — "zero violations at the advertised level" stays meaningful,
//! and the first hit can dump the trace window immediately.
//!
//! Which checks apply is per-engine policy ([`CheckerPolicy`]): only
//! engines whose advertised isolation level *prohibits* a phenomenon
//! are checked for it (MAV legitimately permits non-monotonic reads,
//! eventual/RC legitimately permit fractured reads).

use std::collections::{BTreeMap, VecDeque};

use crate::probe::Stamp;

/// What a committed transaction exposed to the observer: its stamp,
/// session coordinates, the versions its reads observed, and the keys
/// it wrote (with the replica set per write, for the visibility probe).
/// Built by the client only when the sink is enabled.
#[derive(Debug, Clone)]
pub struct CommitObs {
    /// Commit (ack) sim-time, microseconds.
    pub at_us: u64,
    /// Session (client) index and per-session sequence number.
    pub session: u32,
    pub session_seq: u64,
    /// The stamp all of this transaction's writes carry.
    pub stamp: Stamp,
    /// `(key, observed write stamp)` per read, in operation order.
    pub reads: Vec<(Vec<u8>, Stamp)>,
    /// `(key, replica node ids)` per write.
    pub writes: Vec<(Vec<u8>, Vec<u32>)>,
}

/// Which streaming checks an engine is subject to.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CheckerPolicy {
    /// Check fractured reads (Read Atomic and stronger).
    pub fractured: bool,
    /// Check session read monotonicity (serializable engines).
    pub monotonic: bool,
}

/// A phenomenon flagged by the streaming checker.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsViolation {
    /// Reader observed part of `writer`'s write-set: read one key from
    /// `writer` but sibling `key` at an older version.
    FracturedRead {
        reader: Stamp,
        writer: Stamp,
        key: Vec<u8>,
        older: Stamp,
    },
    /// A session re-read `key` and observed an older version than its
    /// own earlier read.
    NonMonotonicRead {
        reader: Stamp,
        session: u32,
        key: Vec<u8>,
        observed: Stamp,
        floor: Stamp,
    },
}

/// Streaming checker state: a bounded window of recent writers plus
/// per-session read high-water marks.
#[derive(Debug, Clone)]
pub struct StreamingChecker {
    policy: CheckerPolicy,
    window: usize,
    /// stamp -> keys written, for write-set membership tests.
    writers: BTreeMap<Stamp, Vec<Vec<u8>>>,
    /// Eviction order for `writers`.
    order: VecDeque<Stamp>,
    /// session -> key -> max observed stamp.
    high_read: BTreeMap<u32, BTreeMap<Vec<u8>, Stamp>>,
    /// Writers dropped from the window (bounded-memory blind spots).
    pub evicted_writers: u64,
    /// Violations found, by kind.
    pub fractured_found: u64,
    pub non_monotonic_found: u64,
}

impl StreamingChecker {
    pub fn new(policy: CheckerPolicy, window: usize) -> Self {
        StreamingChecker {
            policy,
            window: window.max(1),
            writers: BTreeMap::new(),
            order: VecDeque::new(),
            high_read: BTreeMap::new(),
            evicted_writers: 0,
            fractured_found: 0,
            non_monotonic_found: 0,
        }
    }

    /// Feeds one committed transaction; returns the first violation it
    /// exposes, if any. Commits must arrive in per-session order (they
    /// do: sessions are sequential and the client reports at commit
    /// ack), matching the offline checker's `session_seq` sort.
    pub fn observe(&mut self, c: &CommitObs) -> Option<ObsViolation> {
        let mut found = None;
        if self.policy.fractured {
            found = self.check_fractured(c);
        }
        if self.policy.monotonic {
            let nm = self.check_monotonic(c);
            if found.is_none() {
                found = nm;
            }
        }
        self.admit_writer(c);
        found
    }

    /// Mirror of `hat_history::phenomena::fractured_reads`, restricted
    /// to writers still in the window. Reads of the reader's own
    /// buffered writes (`observed == stamp`) are exempt on both sides,
    /// as in the RAMP read-write extension; unknown writers (initial
    /// stamp, or evicted from the window) are skipped.
    fn check_fractured(&mut self, c: &CommitObs) -> Option<ObsViolation> {
        let mut first = None;
        for (i, (_key_i, from)) in c.reads.iter().enumerate() {
            if *from == c.stamp {
                continue;
            }
            let Some(written) = self.writers.get(from) else {
                continue; // unknown or initial writer: not checkable
            };
            for (j, (key_j, obs_j)) in c.reads.iter().enumerate() {
                if i == j || *obs_j == c.stamp || *obs_j >= *from {
                    continue;
                }
                if written.iter().any(|k| k == key_j) {
                    self.fractured_found += 1;
                    if first.is_none() {
                        first = Some(ObsViolation::FracturedRead {
                            reader: c.stamp,
                            writer: *from,
                            key: key_j.clone(),
                            older: *obs_j,
                        });
                    }
                }
            }
        }
        first
    }

    /// Mirror of `hat_history::phenomena::non_monotonic_reads`: within
    /// a session, per-key observed stamps must never go backwards.
    fn check_monotonic(&mut self, c: &CommitObs) -> Option<ObsViolation> {
        let mut first = None;
        let floors = self.high_read.entry(c.session).or_default();
        for (key, observed) in &c.reads {
            if let Some(&floor) = floors.get(key) {
                if *observed < floor {
                    self.non_monotonic_found += 1;
                    if first.is_none() {
                        first = Some(ObsViolation::NonMonotonicRead {
                            reader: c.stamp,
                            session: c.session,
                            key: key.clone(),
                            observed: *observed,
                            floor,
                        });
                    }
                }
            }
            let e = floors.entry(key.clone()).or_insert(*observed);
            *e = (*e).max(*observed);
        }
        // Bound per-session floor memory; evicting a floor can only
        // make the checker miss (sound), never false-positive.
        while floors.len() > self.window {
            let victim = floors.keys().next().cloned().unwrap();
            floors.remove(&victim);
        }
        first
    }

    fn admit_writer(&mut self, c: &CommitObs) {
        if c.writes.is_empty() {
            return;
        }
        let keys: Vec<Vec<u8>> = c.writes.iter().map(|(k, _)| k.clone()).collect();
        if self.writers.insert(c.stamp, keys).is_none() {
            self.order.push_back(c.stamp);
        }
        while self.order.len() > self.window {
            let old = self.order.pop_front().unwrap();
            self.writers.remove(&old);
            self.evicted_writers += 1;
        }
    }

    /// Total violations across both kinds.
    pub fn violations(&self) -> u64 {
        self.fractured_found + self.non_monotonic_found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(stamp: Stamp, session: u32, reads: &[(&[u8], Stamp)], writes: &[&[u8]]) -> CommitObs {
        CommitObs {
            at_us: 0,
            session,
            session_seq: 0,
            stamp,
            reads: reads.iter().map(|(k, s)| (k.to_vec(), *s)).collect(),
            writes: writes.iter().map(|k| (k.to_vec(), vec![0])).collect(),
        }
    }

    const ALL: CheckerPolicy = CheckerPolicy {
        fractured: true,
        monotonic: true,
    };

    #[test]
    fn flags_fractured_read() {
        let mut ck = StreamingChecker::new(ALL, 64);
        // T1 writes x and y at stamp (10,0).
        assert!(ck
            .observe(&commit((10, 0), 0, &[], &[b"x", b"y"]))
            .is_none());
        // Reader sees x from T1 but y at the older (3,0): fractured.
        let v = ck.observe(&commit((20, 1), 1, &[(b"x", (10, 0)), (b"y", (3, 0))], &[]));
        assert!(
            matches!(
                v,
                Some(ObsViolation::FracturedRead {
                    writer: (10, 0),
                    ..
                })
            ),
            "{v:?}"
        );
        assert_eq!(ck.fractured_found, 1);
    }

    #[test]
    fn atomic_read_sets_pass() {
        let mut ck = StreamingChecker::new(ALL, 64);
        ck.observe(&commit((10, 0), 0, &[], &[b"x", b"y"]));
        // Reader sees both keys from T1: atomic, fine.
        let v = ck.observe(&commit(
            (20, 1),
            1,
            &[(b"x", (10, 0)), (b"y", (10, 0))],
            &[],
        ));
        assert!(v.is_none());
        // Stale-but-atomic older snapshot is also fine for fractured
        // reads (fresh session, so monotonicity is not in play).
        let v = ck.observe(&commit((21, 2), 2, &[(b"x", (0, 0)), (b"y", (0, 0))], &[]));
        assert!(v.is_none());
        assert_eq!(ck.violations(), 0);
    }

    #[test]
    fn own_writes_exempt() {
        let mut ck = StreamingChecker::new(ALL, 64);
        ck.observe(&commit((10, 0), 0, &[], &[b"x", b"y"]));
        // Reader's read of y observed its own stamp (read-your-writes
        // rewrite): exempt even though (5,1) < (10,0) would otherwise trip.
        let v = ck.observe(&commit(
            (5, 1),
            1,
            &[(b"x", (10, 0)), (b"y", (5, 1))],
            &[b"y"],
        ));
        assert!(v.is_none(), "{v:?}");
    }

    #[test]
    fn unknown_writer_is_skipped() {
        let mut ck = StreamingChecker::new(ALL, 64);
        // (10,0) never registered — reads from it are unverifiable.
        let v = ck.observe(&commit((20, 1), 1, &[(b"x", (10, 0)), (b"y", (3, 0))], &[]));
        assert!(v.is_none());
    }

    #[test]
    fn window_eviction_bounds_memory() {
        let mut ck = StreamingChecker::new(ALL, 2);
        for i in 0..5u64 {
            ck.observe(&commit((10 + i, 0), 0, &[], &[b"x", b"y"]));
        }
        assert_eq!(ck.evicted_writers, 3);
        // The evicted first writer is now unknown: no false report, the
        // miss is counted instead.
        let v = ck.observe(&commit((99, 1), 1, &[(b"x", (10, 0)), (b"y", (3, 0))], &[]));
        assert!(v.is_none());
        // A windowed writer still trips it.
        let v = ck.observe(&commit(
            (100, 1),
            1,
            &[(b"x", (14, 0)), (b"y", (3, 0))],
            &[],
        ));
        assert!(v.is_some());
    }

    #[test]
    fn flags_non_monotonic_session_read() {
        let mut ck = StreamingChecker::new(ALL, 64);
        assert!(ck
            .observe(&commit((10, 0), 3, &[(b"k", (8, 0))], &[]))
            .is_none());
        // Same session later observes an older version of k.
        let v = ck.observe(&commit((12, 0), 3, &[(b"k", (4, 0))], &[]));
        assert!(
            matches!(v, Some(ObsViolation::NonMonotonicRead { session: 3, .. })),
            "{v:?}"
        );
        // A different session reading old k is fine.
        assert!(ck
            .observe(&commit((13, 0), 4, &[(b"k", (4, 0))], &[]))
            .is_none());
        assert_eq!(ck.non_monotonic_found, 1);
    }

    #[test]
    fn policy_gates_checks() {
        let mut ck = StreamingChecker::new(
            CheckerPolicy {
                fractured: false,
                monotonic: false,
            },
            64,
        );
        ck.observe(&commit((10, 0), 0, &[], &[b"x", b"y"]));
        let v = ck.observe(&commit((20, 1), 1, &[(b"x", (10, 0)), (b"y", (3, 0))], &[]));
        assert!(v.is_none());
        assert_eq!(ck.violations(), 0);
    }
}
