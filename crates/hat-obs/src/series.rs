//! Time-sliced telemetry: per-window deltas with fault markers.
//!
//! The sampler (driven by the sim frontend at a fixed sim-time cadence)
//! hands the sink one *cumulative* [`Cumulative`] snapshot per window
//! boundary; the sink subtracts the previous snapshot to produce a
//! [`SeriesPoint`] of per-window rates. Nemesis fault injections drop
//! [`FaultMark`]s into the same timeline, so "throughput during the
//! partition" is readable straight off the series instead of being
//! flattened into run totals.

use crate::hist::Histogram;
use crate::registry::json_f64;
use std::fmt::Write as _;

/// Run-cumulative counters collected at a sample boundary. The sampler
/// only ever *reads* existing client/server counters — it performs no
/// writes and draws nothing from the rng, so sampling cannot perturb
/// the simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cumulative {
    /// Committed transactions across all clients.
    pub committed: u64,
    /// Committed transactions whose write-set was non-empty (counted by
    /// the sink itself from [`crate::CommitObs`] feeds — read-only
    /// commits don't prove write availability, which is the split the
    /// paper's §6 claim is about).
    pub committed_w: u64,
    /// Aborts (internal + external) across all clients.
    pub aborted: u64,
    /// Operations that failed unavailable (nemesis tally).
    pub unavailable: u64,
    /// Client-level retries.
    pub retries: u64,
    /// Cross-shard redirects.
    pub redirects: u64,
    /// Messages dropped by the network (partitions).
    pub dropped: u64,
    /// Total WAL bytes written across all servers.
    pub wal_bytes: u64,
    /// Max replication backlog across servers (entries not yet applied
    /// by a peer), a lag gauge.
    pub repl_lag: u64,
    /// Snapshot of the commit-latency histogram (cumulative); the sink
    /// diffs consecutive snapshots to get the window's own tail.
    pub commit_lat: Option<Histogram>,
    /// Cumulative count of t-visibility staleness samples resolved.
    pub staleness_samples: u64,
}

/// One window of the time series: per-window deltas between two
/// consecutive cumulative snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Window end, sim-time microseconds.
    pub t_us: u64,
    pub committed: u64,
    /// Commits with a non-empty write-set.
    pub committed_w: u64,
    pub aborted: u64,
    pub unavailable: u64,
    pub retries: u64,
    pub redirects: u64,
    pub dropped: u64,
    pub wal_bytes: u64,
    /// Gauge (not a delta): max replication backlog at the boundary.
    pub repl_lag: u64,
    /// p99 commit latency of commits inside this window (ms); 0 when
    /// the window saw no commits.
    pub p99_commit_ms: f64,
    /// Staleness probe samples resolved inside this window.
    pub staleness_samples: u64,
}

/// A fault lifecycle marker embedded in the series timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMark {
    /// Sim-time microseconds of the transition.
    pub t_us: u64,
    /// `true` for injection, `false` for heal/restart.
    pub begin: bool,
    /// Human-readable fault description; begin/end pairs share the
    /// same label, which is how the CI validator pairs them.
    pub label: String,
}

/// The assembled per-run timeline: windows plus fault marks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    pub points: Vec<SeriesPoint>,
    pub marks: Vec<FaultMark>,
}

impl TimeSeries {
    /// Folds a new cumulative snapshot into the series, producing the
    /// window delta against `prev`.
    pub fn push_window(&mut self, t_us: u64, prev: &Cumulative, now: &Cumulative) {
        let p99 = match (&now.commit_lat, &prev.commit_lat) {
            (Some(n), Some(p)) => {
                let win = n.delta_since(p);
                if win.count() == 0 {
                    0.0
                } else {
                    win.percentiles().p99
                }
            }
            (Some(n), None) => {
                if n.count() == 0 {
                    0.0
                } else {
                    n.percentiles().p99
                }
            }
            _ => 0.0,
        };
        self.points.push(SeriesPoint {
            t_us,
            committed: now.committed.saturating_sub(prev.committed),
            committed_w: now.committed_w.saturating_sub(prev.committed_w),
            aborted: now.aborted.saturating_sub(prev.aborted),
            unavailable: now.unavailable.saturating_sub(prev.unavailable),
            retries: now.retries.saturating_sub(prev.retries),
            redirects: now.redirects.saturating_sub(prev.redirects),
            dropped: now.dropped.saturating_sub(prev.dropped),
            wal_bytes: now.wal_bytes.saturating_sub(prev.wal_bytes),
            repl_lag: now.repl_lag,
            p99_commit_ms: p99,
            staleness_samples: now.staleness_samples.saturating_sub(prev.staleness_samples),
        });
    }

    /// Records a fault transition.
    pub fn mark(&mut self, t_us: u64, begin: bool, label: impl Into<String>) {
        self.marks.push(FaultMark {
            t_us,
            begin,
            label: label.into(),
        });
    }

    /// Sum of committed transactions across windows whose end falls in
    /// `(from_us, to_us]` — used by tests to assert the availability
    /// split inside a fault window.
    pub fn committed_in(&self, from_us: u64, to_us: u64) -> u64 {
        self.points
            .iter()
            .filter(|p| p.t_us > from_us && p.t_us <= to_us)
            .map(|p| p.committed)
            .sum()
    }

    /// Like [`TimeSeries::committed_in`], but counting only commits
    /// with a non-empty write-set — the measurable form of "2PL write
    /// throughput is zero inside the partition".
    pub fn writes_committed_in(&self, from_us: u64, to_us: u64) -> u64 {
        self.points
            .iter()
            .filter(|p| p.t_us > from_us && p.t_us <= to_us)
            .map(|p| p.committed_w)
            .sum()
    }

    /// True if every begin mark has a matching later end mark with the
    /// same label (begin-only marks like clock skew are reported via
    /// the allowlist argument).
    pub fn marks_paired(&self, begin_only_ok: &[&str]) -> bool {
        for (i, m) in self.marks.iter().enumerate() {
            if !m.begin {
                continue;
            }
            if begin_only_ok.iter().any(|p| m.label.starts_with(p)) {
                continue;
            }
            let paired = self.marks[i + 1..]
                .iter()
                .any(|e| !e.begin && e.label == m.label && e.t_us >= m.t_us);
            if !paired {
                return false;
            }
        }
        true
    }

    /// JSON export: `{"windows":[...],"faults":[...]}` with one object
    /// per window, deterministic field order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"windows\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t_us\":{},\"committed\":{},\"committed_w\":{},\"aborted\":{},\"unavailable\":{},\"retries\":{},\"redirects\":{},\"dropped\":{},\"wal_bytes\":{},\"repl_lag\":{},\"p99_commit_ms\":{},\"staleness_samples\":{}}}",
                p.t_us,
                p.committed,
                p.committed_w,
                p.aborted,
                p.unavailable,
                p.retries,
                p.redirects,
                p.dropped,
                p.wal_bytes,
                p.repl_lag,
                json_f64(p.p99_commit_ms),
                p.staleness_samples
            );
        }
        out.push_str("],\"faults\":[");
        for (i, m) in self.marks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t_us\":{},\"kind\":\"{}\",\"label\":\"{}\"}}",
                m.t_us,
                if m.begin { "begin" } else { "end" },
                m.label.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cum(committed: u64, aborted: u64) -> Cumulative {
        Cumulative {
            committed,
            aborted,
            ..Default::default()
        }
    }

    #[test]
    fn windows_are_deltas() {
        let mut ts = TimeSeries::default();
        ts.push_window(10_000, &cum(0, 0), &cum(5, 1));
        ts.push_window(20_000, &cum(5, 1), &cum(12, 1));
        assert_eq!(ts.points[0].committed, 5);
        assert_eq!(ts.points[1].committed, 7);
        assert_eq!(ts.points[1].aborted, 0);
        assert_eq!(ts.committed_in(0, 20_000), 12);
        assert_eq!(ts.committed_in(10_000, 20_000), 7);
    }

    #[test]
    fn window_p99_is_window_local() {
        let mut h = Histogram::for_latency_ms();
        h.record(1.0);
        let mut prev = Cumulative {
            commit_lat: Some(h.clone()),
            ..Default::default()
        };
        prev.committed = 1;
        h.record(200.0);
        h.record(200.0);
        let now = Cumulative {
            committed: 3,
            commit_lat: Some(h),
            ..Default::default()
        };
        let mut ts = TimeSeries::default();
        ts.push_window(5_000, &prev, &now);
        let p = &ts.points[0];
        assert_eq!(p.committed, 2);
        // The window contains only the two 200ms commits; the 1ms
        // pre-window commit must not drag the window p99 down.
        assert!(
            (p.p99_commit_ms - 200.0).abs() / 200.0 < 0.05,
            "{}",
            p.p99_commit_ms
        );
    }

    #[test]
    fn mark_pairing() {
        let mut ts = TimeSeries::default();
        ts.mark(100, true, "partition dc0/dc1");
        ts.mark(500, false, "partition dc0/dc1");
        ts.mark(600, true, "skew clocks");
        assert!(ts.marks_paired(&["skew"]));
        assert!(!ts.marks_paired(&[]));
        ts.mark(700, true, "crash node 2");
        assert!(!ts.marks_paired(&["skew"]));
        ts.mark(900, false, "crash node 2");
        assert!(ts.marks_paired(&["skew"]));
    }

    #[test]
    fn json_shape_and_determinism() {
        let mut ts = TimeSeries::default();
        ts.push_window(10_000, &cum(0, 0), &cum(3, 0));
        ts.mark(4_000, true, "partition");
        ts.mark(9_000, false, "partition");
        let j = ts.to_json();
        assert!(j.starts_with("{\"windows\":["));
        assert!(j.contains("\"kind\":\"begin\""));
        assert!(j.contains("\"kind\":\"end\""));
        assert_eq!(j, ts.to_json());
    }
}
