//! Log-scaled histograms with lossless merge and per-window deltas.
//!
//! This is the one histogram implementation the whole workspace uses:
//! `hat-sim` re-exports it (so `ClientMetrics`' latency fields *are*
//! these histograms) and the metrics registry stores them directly —
//! aggregation across clients, servers and time windows never loses a
//! sample. Buckets are geometric, so memory stays constant for
//! arbitrarily long runs while preserving the requested relative
//! resolution.

/// The fixed percentile set every latency report in the repo uses
/// (paper-style tail latency: median, p90, p99, p999, max), extracted
/// from a [`Histogram`] by [`Histogram::percentiles`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPercentiles {
    /// Number of samples the percentiles summarize.
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub p999: f64,
    pub max: f64,
}

impl LatencyPercentiles {
    /// All-zero summary of an empty sample.
    pub fn empty() -> Self {
        LatencyPercentiles {
            count: 0,
            mean: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            p999: 0.0,
            max: 0.0,
        }
    }
}

/// A log-scaled histogram over positive values.
///
/// Buckets are geometric: bucket `i` covers `[min * g^i, min * g^(i+1))`
/// where `g` is chosen from the requested per-bucket relative error.
/// Merging histograms with identical configuration is lossless — the
/// merged percentiles equal those of recording every sample into one
/// histogram — and [`Histogram::delta_since`] subtracts an earlier
/// snapshot bucket-by-bucket, which is how the time-series sampler
/// reports per-window tail latency instead of run-cumulative tails.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min_value: f64,
    growth: f64,
    log_growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
    sum: f64,
    max_seen: f64,
}

impl Histogram {
    /// Creates a histogram covering `[min_value, max_value]` with roughly
    /// `rel_err` relative resolution per bucket (e.g. `0.01` for 1%).
    ///
    /// # Panics
    /// Panics unless `0 < min_value < max_value` and `rel_err > 0`.
    pub fn new(min_value: f64, max_value: f64, rel_err: f64) -> Self {
        assert!(min_value > 0.0 && max_value > min_value && rel_err > 0.0);
        let growth = 1.0 + 2.0 * rel_err;
        let buckets = ((max_value / min_value).ln() / growth.ln()).ceil() as usize + 1;
        Histogram {
            min_value,
            growth,
            log_growth: growth.ln(),
            counts: vec![0; buckets],
            underflow: 0,
            total: 0,
            sum: 0.0,
            max_seen: 0.0,
        }
    }

    /// A histogram suitable for latencies from 10 µs to 100 s (in ms).
    pub fn for_latency_ms() -> Self {
        Histogram::new(0.01, 100_000.0, 0.01)
    }

    /// Records one sample. Values below the minimum are counted in an
    /// underflow bucket; values above the maximum clamp into the last
    /// bucket.
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        self.sum += v;
        if v > self.max_seen {
            self.max_seen = v;
        }
        if v < self.min_value {
            self.underflow += 1;
            return;
        }
        let idx = ((v / self.min_value).ln() / self.log_growth) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// Approximate `q`-quantile (`0.0..=1.0`); returns the upper edge of
    /// the bucket containing the rank. Returns 0 if empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= rank {
            return self.min_value;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.min_value * self.growth.powi(i as i32 + 1);
            }
        }
        self.max_seen
    }

    /// The standard tail-latency summary (p50/p90/p99/p999 + mean/max).
    pub fn percentiles(&self) -> LatencyPercentiles {
        if self.total == 0 {
            return LatencyPercentiles::empty();
        }
        // A quantile reports its bucket's upper edge, which can sit just
        // above the true maximum — clamp so p999 ≤ max always holds.
        let q = |q: f64| self.quantile(q).min(self.max_seen);
        LatencyPercentiles {
            count: self.total,
            mean: self.mean(),
            p50: q(0.5),
            p90: q(0.9),
            p99: q(0.99),
            p999: q(0.999),
            max: self.max_seen,
        }
    }

    /// Returns `(value, cumulative_fraction)` pairs describing the CDF,
    /// one point per non-empty bucket. Suitable for plotting Figure 1.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut points = Vec::new();
        if self.total == 0 {
            return points;
        }
        let mut cum = self.underflow;
        if self.underflow > 0 {
            points.push((self.min_value, cum as f64 / self.total as f64));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                let edge = self.min_value * self.growth.powi(i as i32 + 1);
                points.push((edge, cum as f64 / self.total as f64));
            }
        }
        points
    }

    /// Merges another histogram with identical configuration.
    ///
    /// # Panics
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len());
        assert!((self.min_value - other.min_value).abs() < f64::EPSILON);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// The samples recorded since `prev` was snapshotted from this same
    /// histogram: bucket-wise subtraction. `prev` must be an earlier
    /// clone of `self` (every bucket a lower bound); the result's
    /// quantiles describe only the window between the two snapshots.
    ///
    /// The window's `max` is not recoverable from bucket counts, so the
    /// delta keeps the cumulative `max_seen` purely as a quantile clamp
    /// — window quantiles still come out of the window's own buckets.
    ///
    /// # Panics
    /// Panics if the configurations differ.
    pub fn delta_since(&self, prev: &Histogram) -> Histogram {
        assert_eq!(self.counts.len(), prev.counts.len());
        assert!((self.min_value - prev.min_value).abs() < f64::EPSILON);
        let counts = self
            .counts
            .iter()
            .zip(&prev.counts)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        Histogram {
            min_value: self.min_value,
            growth: self.growth,
            log_growth: self.log_growth,
            counts,
            underflow: self.underflow.saturating_sub(prev.underflow),
            total: self.total.saturating_sub(prev.total),
            sum: self.sum - prev.sum,
            max_seen: self.max_seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new(0.1, 1000.0, 0.01);
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
        let p95 = h.quantile(0.95);
        assert!((p95 - 950.0).abs() / 950.0 < 0.05, "p95 {p95}");
        assert!((h.mean() - 500.5).abs() < 1e-6);
    }

    /// The log-scale design bound: a quantile estimate is the upper
    /// edge of the geometric bucket holding the rank sample, so it can
    /// overshoot the true order statistic by at most the bucket growth
    /// factor `g = 1 + 2·rel_err` (and never undershoot past one
    /// bucket). Verified against exact order statistics at two
    /// configured resolutions.
    #[test]
    fn quantile_error_is_bounded_by_the_configured_resolution() {
        for rel_err in [0.01, 0.05] {
            let g = 1.0 + 2.0 * rel_err;
            let mut h = Histogram::new(0.1, 100_000.0, rel_err);
            // Log-spaced samples so every quantile sits in a distinct
            // region of the bucket ladder (adjacent samples differ by
            // 0.4%, far below either configured resolution).
            let vals: Vec<f64> = (0..2500).map(|i| 0.5 * 1.004f64.powi(i)).collect();
            for &v in &vals {
                h.record(v);
            }
            for q in [0.25, 0.5, 0.9, 0.99, 0.999] {
                let exact = vals[(q * (vals.len() - 1) as f64).round() as usize];
                let est = h.quantile(q);
                assert!(
                    est >= exact / (g * 1.01) && est <= exact * g * 1.01,
                    "rel_err {rel_err}: q{q} estimate {est} strays past the                      bucket bound around exact {exact}"
                );
            }
        }
    }

    /// Percentiles are a function of the merged *contents*, never of
    /// the merge *order* — shards arriving in any order report the same
    /// tail.
    #[test]
    fn merge_order_never_changes_percentiles() {
        let mk = |vals: &[f64]| {
            let mut h = Histogram::for_latency_ms();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let shards = [
            mk(&[0.004, 0.3, 2.2]), // underflow sample included
            mk(&[5.0, 5.0, 17.0, 80.0]),
            mk(&[0.9, 450.0]),
            mk(&[2e9, 33.0]), // clamp sample included
        ];
        let merged_in = |order: &[usize]| {
            let mut h = Histogram::for_latency_ms();
            for &i in order {
                h.merge(&shards[i]);
            }
            h
        };
        let base = merged_in(&[0, 1, 2, 3]);
        for order in [[3, 2, 1, 0], [2, 0, 3, 1], [1, 3, 0, 2]] {
            let h = merged_in(&order);
            assert_eq!(h.percentiles(), base.percentiles(), "order {order:?}");
            assert_eq!(h.cdf(), base.cdf(), "order {order:?}");
        }
    }

    #[test]
    fn histogram_underflow_and_clamp() {
        let mut h = Histogram::new(1.0, 10.0, 0.05);
        h.record(0.5); // underflow
        h.record(100.0); // clamps to last bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.25), 1.0); // underflow reports min
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn cdf_monotone_and_ends_at_one() {
        let mut h = Histogram::for_latency_ms();
        for v in [0.2, 0.5, 1.0, 5.0, 50.0, 300.0] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::for_latency_ms();
        for v in [0.3, 2.0, 41.5, 900.0] {
            a.record(v);
        }
        let before = a.clone();
        a.merge(&Histogram::for_latency_ms());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        assert_eq!(a.max(), before.max());
        assert_eq!(a.cdf(), before.cdf());
        // Merging *into* an empty histogram reproduces the source too.
        let mut empty = Histogram::for_latency_ms();
        empty.merge(&before);
        assert_eq!(empty.cdf(), before.cdf());
        assert_eq!(empty.quantile(0.5), before.quantile(0.5));
    }

    #[test]
    fn merge_is_associative_and_lossless() {
        let mk = |vals: &[f64]| {
            let mut h = Histogram::for_latency_ms();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[0.005, 0.12, 3.4]); // includes an underflow sample
        let b = mk(&[7.7, 7.7, 250.0]);
        let c = mk(&[1e9]); // clamps into the last bucket
                            // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.count(), right.count());
        assert_eq!(left.cdf(), right.cdf());
        assert_eq!(left.percentiles(), right.percentiles());
        // Lossless vs recording everything into one histogram.
        let all = mk(&[0.005, 0.12, 3.4, 7.7, 7.7, 250.0, 1e9]);
        assert_eq!(left.cdf(), all.cdf());
        assert_eq!(left.count(), all.count());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_preserves_bucket_boundaries() {
        // A value landing exactly on a bucket edge must stay in the same
        // bucket whether it was recorded before or after a merge.
        let mut a = Histogram::new(1.0, 100.0, 0.01);
        let edge = 1.0 * (1.0 + 2.0 * 0.01); // upper edge of bucket 0
        a.record(edge);
        let mut b = Histogram::new(1.0, 100.0, 0.01);
        b.record(edge);
        let direct_q = a.quantile(1.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.quantile(1.0), direct_q);
        assert_eq!(a.quantile(0.5), direct_q);
    }

    #[test]
    fn percentiles_summary_shape() {
        assert_eq!(Histogram::for_latency_ms().percentiles().count, 0);
        let mut h = Histogram::for_latency_ms();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p = h.percentiles();
        assert_eq!(p.count, 1000);
        assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p999);
        assert!(p.p999 <= p.max);
        assert!((p.p90 - 900.0).abs() / 900.0 < 0.05, "p90 {}", p.p90);
        assert!((p.p999 - 999.0).abs() / 999.0 < 0.05, "p999 {}", p.p999);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(1.0, 100.0, 0.01);
        let mut b = Histogram::new(1.0, 100.0, 0.01);
        a.record(10.0);
        b.record(20.0);
        b.record(30.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 30.0);
    }

    #[test]
    fn delta_since_isolates_the_window() {
        let mut h = Histogram::for_latency_ms();
        h.record(1.0);
        h.record(2.0);
        let snap = h.clone();
        h.record(100.0);
        h.record(100.0);
        h.record(100.0);
        let win = h.delta_since(&snap);
        assert_eq!(win.count(), 3);
        // All three window samples are 100ms; the window p50 must sit in
        // the 100ms bucket, not be dragged down by the pre-window 1-2ms.
        assert!((win.quantile(0.5) - 100.0).abs() / 100.0 < 0.05);
        assert!((win.mean() - 100.0).abs() < 1e-6);
        // Empty window: delta of identical snapshots.
        let none = h.delta_since(&h.clone());
        assert_eq!(none.count(), 0);
        assert_eq!(none.percentiles(), LatencyPercentiles::empty());
    }

    #[test]
    fn delta_since_composes_with_merge() {
        // cumulative(t2) - cumulative(t1) over a merged stream equals
        // recording the window directly.
        let mut a = Histogram::for_latency_ms();
        a.record(5.0);
        let t1 = a.clone();
        a.record(9.0);
        a.record(0.002); // underflow in the window
        let win = a.delta_since(&t1);
        let mut direct = Histogram::for_latency_ms();
        direct.record(9.0);
        direct.record(0.002);
        assert_eq!(win.count(), direct.count());
        assert_eq!(win.quantile(0.9), direct.quantile(0.9));
    }
}
