//! Phenomenon detectors (Appendix A.3, Definitions 16–39).

use crate::dsg::{Dsg, EdgeKind, History};
use hat_core::{OpRecord, Timestamp, TxnOutcome};
use hat_storage::Key;
use std::collections::HashMap;
use std::fmt;

/// The phenomena of Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phenomenon {
    /// G0 — write cycles ("dirty writes").
    G0,
    /// G1a — aborted reads.
    G1a,
    /// G1b — intermediate reads.
    G1b,
    /// G1c — circular information flow.
    G1c,
    /// IMP — item-many-preceders (item cut isolation violation).
    Imp,
    /// PMP — predicate-many-preceders (predicate cut isolation violation).
    Pmp,
    /// OTV — observed transaction vanishes (MAV violation).
    Otv,
    /// Fractured reads (RAMP Definition 2) — a transaction observes a
    /// partial write-set (Read Atomic violation).
    FracturedReads,
    /// N-MR — non-monotonic reads.
    NonMonotonicReads,
    /// N-MW — non-monotonic writes.
    NonMonotonicWrites,
    /// MYR — missing your writes (read-your-writes violation).
    MissingYourWrites,
    /// MRWD — missing read-write dependency (writes-follow-reads
    /// violation).
    Mrwd,
    /// Lost Update.
    LostUpdate,
    /// Write Skew (Adya G2-item).
    WriteSkew,
}

impl fmt::Display for Phenomenon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phenomenon::G0 => "G0 (dirty write)",
            Phenomenon::G1a => "G1a (aborted read)",
            Phenomenon::G1b => "G1b (intermediate read)",
            Phenomenon::G1c => "G1c (circular information flow)",
            Phenomenon::Imp => "IMP (item-many-preceders)",
            Phenomenon::Pmp => "PMP (predicate-many-preceders)",
            Phenomenon::Otv => "OTV (observed transaction vanishes)",
            Phenomenon::FracturedReads => "Fractured Reads (partial write-set observed)",
            Phenomenon::NonMonotonicReads => "N-MR (non-monotonic reads)",
            Phenomenon::NonMonotonicWrites => "N-MW (non-monotonic writes)",
            Phenomenon::MissingYourWrites => "MYR (missing your writes)",
            Phenomenon::Mrwd => "MRWD (missing read-write dependency)",
            Phenomenon::LostUpdate => "Lost Update",
            Phenomenon::WriteSkew => "Write Skew (G2-item)",
        };
        f.write_str(s)
    }
}

/// One detected violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which phenomenon.
    pub phenomenon: Phenomenon,
    /// Transactions involved (write stamps).
    pub txns: Vec<Timestamp>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} [", self.phenomenon, self.detail)?;
        for (i, t) in self.txns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

fn cycle_violation(history: &History, phenomenon: Phenomenon, nodes: &[usize]) -> Violation {
    Violation {
        phenomenon,
        txns: nodes.iter().map(|&ci| history.txn(ci).id).collect(),
        detail: format!("cycle over {} transactions", nodes.len()),
    }
}

/// G0: a cycle of write-dependency edges only (Definition 16).
pub fn g0(history: &History, dsg: &Dsg) -> Vec<Violation> {
    dsg.cycles(|e| e.kind == EdgeKind::Ww)
        .iter()
        .map(|c| cycle_violation(history, Phenomenon::G0, c))
        .collect()
}

/// G1a: a committed transaction read a version written by an aborted
/// transaction (Definition 18).
pub fn g1a(history: &History) -> Vec<Violation> {
    // Only determinate aborts count: an `Indeterminate` transaction
    // (commit round lost to a partition or crash) may well have
    // installed its writes, so observing them is not an aborted read.
    let aborted: HashMap<Timestamp, ()> = history
        .all
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                TxnOutcome::AbortedInternal | TxnOutcome::AbortedExternal
            )
        })
        .map(|r| (r.id, ()))
        .collect();
    let mut out = Vec::new();
    for &ri in &history.committed {
        let r = &history.all[ri];
        for op in &r.ops {
            if let OpRecord::Read { key, observed, .. } = op {
                if aborted.contains_key(observed) {
                    out.push(Violation {
                        phenomenon: Phenomenon::G1a,
                        txns: vec![r.id, *observed],
                        detail: format!("read of aborted write to {key:?}"),
                    });
                }
            }
        }
    }
    out
}

/// G1b: a committed transaction read a version that was not the writer's
/// final modification of the item (Definition 19). Detected by value:
/// the observed value differs from the writer's final write of the item.
pub fn g1b(history: &History) -> Vec<Violation> {
    let mut out = Vec::new();
    for &ri in &history.committed {
        let r = &history.all[ri];
        for op in &r.ops {
            if let OpRecord::Read {
                key,
                observed,
                value,
            } = op
            {
                if observed.is_initial() || history.writer_of.get(observed) == Some(&ri) {
                    continue;
                }
                if let Some(final_value) = history.final_write.get(&(*observed, key.clone())) {
                    if final_value != value {
                        out.push(Violation {
                            phenomenon: Phenomenon::G1b,
                            txns: vec![r.id, *observed],
                            detail: format!("read intermediate version of {key:?}"),
                        });
                    }
                }
            }
        }
    }
    out
}

/// G1c: a cycle of dependency edges (ww ∪ wr) only (Definition 20).
pub fn g1c(history: &History, dsg: &Dsg) -> Vec<Violation> {
    dsg.cycles(|e| matches!(e.kind, EdgeKind::Ww | EdgeKind::Wr))
        .iter()
        .map(|c| cycle_violation(history, Phenomenon::G1c, c))
        .collect()
}

/// IMP: a transaction item-read-depends by the same item on more than
/// one other transaction (Definition 22) — i.e. two reads of one item
/// observed different transactions' writes.
pub fn imp(history: &History) -> Vec<Violation> {
    let mut out = Vec::new();
    for &ri in &history.committed {
        let r = &history.all[ri];
        let mut seen: HashMap<&Key, Timestamp> = HashMap::new();
        for op in &r.ops {
            if let OpRecord::Read { key, observed, .. } = op {
                if let Some(&first) = seen.get(key) {
                    if first != *observed {
                        out.push(Violation {
                            phenomenon: Phenomenon::Imp,
                            txns: vec![r.id, first, *observed],
                            detail: format!("two reads of {key:?} observed different versions"),
                        });
                    }
                } else {
                    seen.insert(key, *observed);
                }
            }
        }
    }
    out
}

/// PMP: two overlapping predicate reads in one transaction whose
/// version sets were changed by different transaction sets
/// (Definition 24). Detected for identical prefixes: differing match
/// sets.
pub fn pmp(history: &History) -> Vec<Violation> {
    let mut out = Vec::new();
    for &ri in &history.committed {
        let r = &history.all[ri];
        let mut seen: HashMap<&Key, &Vec<(Key, Timestamp)>> = HashMap::new();
        for op in &r.ops {
            if let OpRecord::PredicateRead { prefix, matches } = op {
                if let Some(first) = seen.get(prefix) {
                    if *first != matches {
                        out.push(Violation {
                            phenomenon: Phenomenon::Pmp,
                            txns: vec![r.id],
                            detail: format!("predicate read over {prefix:?} changed mid-txn"),
                        });
                    }
                } else {
                    seen.insert(prefix, matches);
                }
            }
        }
    }
    out
}

/// OTV: having observed some effect of transaction `Ti`, a later read in
/// the same transaction observes an *earlier* version of an item `Ti`
/// also wrote — the observed transaction "vanishes" (Definition 26).
pub fn otv(history: &History) -> Vec<Violation> {
    let mut out = Vec::new();
    for &ri in &history.committed {
        let r = &history.all[ri];
        // Observed transactions so far (by any read in program order).
        let mut observed_txns: Vec<Timestamp> = Vec::new();
        for op in &r.ops {
            let (key, observed) = match op {
                OpRecord::Read { key, observed, .. } => (key, *observed),
                _ => continue,
            };
            // For each previously observed transaction that wrote `key`:
            // this read must not return a version older than that write.
            for &prev in &observed_txns {
                if prev == observed || !history.writer_of.contains_key(&prev) {
                    continue;
                }
                if history.final_write.contains_key(&(prev, key.clone())) && observed < prev {
                    out.push(Violation {
                        phenomenon: Phenomenon::Otv,
                        txns: vec![r.id, prev],
                        detail: format!(
                            "observed txn's write to {key:?} vanished (read older version)"
                        ),
                    });
                }
            }
            if !observed.is_initial() && !observed_txns.contains(&observed) {
                observed_txns.push(observed);
            }
        }
    }
    out
}

/// Fractured reads (the RAMP paper's Definition 2, the phenomenon Read
/// Atomic isolation prohibits): transaction `Tj` reads `x` as written by
/// committed transaction `Ti`, and also reads `y` at a version *older*
/// than `Ti`'s write of `y`, where `Ti` wrote both — i.e. `Tj` observed
/// a partial write-set. Unlike [`otv`] this is order-free over the
/// transaction's whole read set: it also catches the case where the
/// stale sibling was read *before* any of `Ti`'s writes were observed
/// (the direction MAV's monotonic view permits but Read Atomic forbids).
///
/// Reads of the transaction's own buffered writes (`observed == id`)
/// are exempt on both sides: read-your-writes takes precedence over
/// snapshot membership, exactly as in the RAMP read-write extension.
pub fn fractured_reads(history: &History) -> Vec<Violation> {
    let mut out = Vec::new();
    for &ri in &history.committed {
        let r = &history.all[ri];
        let reads: Vec<(&Key, Timestamp)> = r
            .ops
            .iter()
            .filter_map(|op| match op {
                OpRecord::Read { key, observed, .. } => Some((key, *observed)),
                _ => None,
            })
            .collect();
        for (i, &(key_i, from_ts)) in reads.iter().enumerate() {
            // `from_ts` is the writer whose write-set membership we test.
            if from_ts.is_initial() || from_ts == r.id || !history.writer_of.contains_key(&from_ts)
            {
                continue;
            }
            for (j, &(key_j, obs_j)) in reads.iter().enumerate() {
                if i == j || obs_j == r.id || obs_j >= from_ts {
                    continue;
                }
                if history.final_write.contains_key(&(from_ts, key_j.clone())) {
                    out.push(Violation {
                        phenomenon: Phenomenon::FracturedReads,
                        txns: vec![r.id, from_ts],
                        detail: format!(
                            "read {key_i:?} from {from_ts} but {key_j:?} at older {obs_j}"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// N-MR: within a session, a later transaction read an older version of
/// an item than an earlier transaction observed (Definition 28).
pub fn non_monotonic_reads(history: &History) -> Vec<Violation> {
    per_session_scan(history, |r, high_read, _high_write, out| {
        for op in &r.ops {
            if let OpRecord::Read { key, observed, .. } = op {
                if let Some(&prev) = high_read.get(key) {
                    if *observed < prev {
                        out.push(Violation {
                            phenomenon: Phenomenon::NonMonotonicReads,
                            txns: vec![r.id],
                            detail: format!("session read of {key:?} went backwards"),
                        });
                    }
                }
                let e = high_read.entry(key.clone()).or_insert(*observed);
                *e = (*e).max(*observed);
            }
        }
    })
}

/// MYR: a session read an item it previously wrote and observed a
/// version older than its own write (Definition 34).
pub fn missing_your_writes(history: &History) -> Vec<Violation> {
    per_session_scan(history, |r, _high_read, high_write, out| {
        for op in &r.ops {
            match op {
                OpRecord::Read { key, observed, .. } => {
                    if let Some(&mine) = high_write.get(key) {
                        if *observed < mine {
                            out.push(Violation {
                                phenomenon: Phenomenon::MissingYourWrites,
                                txns: vec![r.id],
                                detail: format!("own write to {key:?} not read back"),
                            });
                        }
                    }
                }
                OpRecord::Write { key, .. } => {
                    let e = high_write.entry(key.clone()).or_insert(r.id);
                    *e = (*e).max(r.id);
                }
                _ => {}
            }
        }
    })
}

/// N-MW: a session's writes to an item must enter the version order in
/// session order (Definition 30, same-item case).
pub fn non_monotonic_writes(history: &History) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut by_session: HashMap<u32, Vec<usize>> = HashMap::new();
    for &ri in &history.committed {
        by_session
            .entry(history.all[ri].session)
            .or_default()
            .push(ri);
    }
    for (_, mut txns) in by_session {
        txns.sort_by_key(|&ri| history.all[ri].session_seq);
        let mut last_write: HashMap<Key, Timestamp> = HashMap::new();
        for ri in txns {
            let r = &history.all[ri];
            for op in &r.ops {
                if let OpRecord::Write { key, .. } = op {
                    if let Some(&prev) = last_write.get(key) {
                        // later session write must sort above the earlier
                        if r.id < prev {
                            out.push(Violation {
                                phenomenon: Phenomenon::NonMonotonicWrites,
                                txns: vec![prev, r.id],
                                detail: format!("session writes to {key:?} install out of order"),
                            });
                        }
                    }
                    last_write.insert(key.clone(), r.id);
                }
            }
        }
    }
    out
}

/// MRWD (writes-follow-reads violation): a session observed `T1`'s write
/// to `x` and then wrote `y` in `T2`; another committed transaction
/// observed `T2`'s `y` but read a version of `x` older than `T1`'s
/// (Definition 32, operational form).
pub fn mrwd(history: &History) -> Vec<Violation> {
    // collect (read x@>=t1, then wrote y in t2) per session
    struct Dep {
        x: Key,
        x_version: Timestamp,
        t2: Timestamp,
        y: Key,
    }
    let mut deps: Vec<Dep> = Vec::new();
    let mut by_session: HashMap<u32, Vec<usize>> = HashMap::new();
    for &ri in &history.committed {
        by_session
            .entry(history.all[ri].session)
            .or_default()
            .push(ri);
    }
    for (_, mut txns) in by_session {
        txns.sort_by_key(|&ri| history.all[ri].session_seq);
        let mut observed: Vec<(Key, Timestamp)> = Vec::new();
        for ri in txns {
            let r = &history.all[ri];
            for op in &r.ops {
                match op {
                    OpRecord::Read {
                        key, observed: o, ..
                    } if !o.is_initial() => {
                        observed.push((key.clone(), *o));
                    }
                    OpRecord::Write { key, .. } => {
                        for (x, xv) in &observed {
                            deps.push(Dep {
                                x: x.clone(),
                                x_version: *xv,
                                t2: r.id,
                                y: key.clone(),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    // check all other committed txns
    let mut out = Vec::new();
    for &ri in &history.committed {
        let r = &history.all[ri];
        let mut saw_t2_y: Vec<&Dep> = Vec::new();
        for op in &r.ops {
            if let OpRecord::Read { key, observed, .. } = op {
                for d in &deps {
                    if d.t2 == *observed && d.y == *key && d.t2 != r.id {
                        saw_t2_y.push(d);
                    }
                }
            }
        }
        if saw_t2_y.is_empty() {
            continue;
        }
        for op in &r.ops {
            if let OpRecord::Read { key, observed, .. } = op {
                for d in &saw_t2_y {
                    if d.x == *key && *observed < d.x_version && r.id != d.t2 {
                        out.push(Violation {
                            phenomenon: Phenomenon::Mrwd,
                            txns: vec![r.id, d.t2],
                            detail: format!("saw {:?} from dependent txn but older {:?}", d.y, d.x),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Lost Update: a DSG cycle containing an anti-dependency with all edges
/// by the same item (Definition 38). The classic instance: two
/// transactions read the same version of `x` and both installed new
/// versions of `x`.
pub fn lost_update(history: &History, dsg: &Dsg) -> Vec<Violation> {
    let mut out = Vec::new();
    let items: std::collections::HashSet<&Key> =
        dsg.edges.iter().filter_map(|e| e.item.as_ref()).collect();
    for item in items {
        let cycles = dsg.cycles(|e| e.item.as_ref() == Some(item));
        for c in cycles {
            let has_rw = dsg
                .edges_within(&c, |e| {
                    e.kind == EdgeKind::Rw && e.item.as_ref() == Some(item)
                })
                .next()
                .is_some();
            if has_rw {
                let mut v = cycle_violation(history, Phenomenon::LostUpdate, &c);
                v.detail = format!("lost update cycle on {item:?}");
                out.push(v);
            }
        }
    }
    out
}

/// Write Skew (G2-item): a DSG cycle with at least one anti-dependency
/// edge (Definition 39).
pub fn write_skew(history: &History, dsg: &Dsg) -> Vec<Violation> {
    dsg.cycles(|e| e.kind != EdgeKind::Session)
        .into_iter()
        .filter(|c| {
            dsg.edges_within(c, |e| e.kind == EdgeKind::Rw)
                .next()
                .is_some()
        })
        .map(|c| cycle_violation(history, Phenomenon::WriteSkew, &c))
        .collect()
}

/// Helper: runs `f` over each session's committed transactions in
/// session order with running per-key high-water marks.
fn per_session_scan(
    history: &History,
    mut f: impl FnMut(
        &hat_core::TxnRecord,
        &mut HashMap<Key, Timestamp>,
        &mut HashMap<Key, Timestamp>,
        &mut Vec<Violation>,
    ),
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut by_session: HashMap<u32, Vec<usize>> = HashMap::new();
    for &ri in &history.committed {
        by_session
            .entry(history.all[ri].session)
            .or_default()
            .push(ri);
    }
    for (_, mut txns) in by_session {
        txns.sort_by_key(|&ri| history.all[ri].session_seq);
        let mut high_read: HashMap<Key, Timestamp> = HashMap::new();
        let mut high_write: HashMap<Key, Timestamp> = HashMap::new();
        for ri in txns {
            f(&history.all[ri], &mut high_read, &mut high_write, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use hat_core::TxnRecord;

    fn write(key: &str, val: &str) -> OpRecord {
        OpRecord::Write {
            key: Key::from(key.to_owned()),
            value: Bytes::from(val.to_owned()),
        }
    }
    fn read_v(key: &str, observed: Timestamp, val: &str) -> OpRecord {
        OpRecord::Read {
            key: Key::from(key.to_owned()),
            observed,
            value: Bytes::from(val.to_owned()),
        }
    }
    fn read(key: &str, observed: Timestamp) -> OpRecord {
        read_v(key, observed, "")
    }
    fn txn(id: Timestamp, session: u32, seq: u64, ops: Vec<OpRecord>) -> TxnRecord {
        TxnRecord {
            id,
            session,
            session_seq: seq,
            ops,
            outcome: TxnOutcome::Committed,
        }
    }
    fn ts(s: u64, w: u32) -> Timestamp {
        Timestamp::new(s, w)
    }

    #[test]
    fn g1a_detects_aborted_reads() {
        let mut t1 = txn(ts(1, 1), 1, 0, vec![write("x", "dirty")]);
        t1.outcome = TxnOutcome::AbortedInternal;
        let t2 = txn(ts(2, 2), 2, 0, vec![read("x", ts(1, 1))]);
        let h = History::new(vec![t1, t2]);
        let v = g1a(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].phenomenon, Phenomenon::G1a);
    }

    #[test]
    fn g1b_detects_intermediate_reads() {
        // T1's final write of x is "2"; T2 observed "1".
        let t1 = txn(ts(1, 1), 1, 0, vec![write("x", "1"), write("x", "2")]);
        let t2 = txn(ts(2, 2), 2, 0, vec![read_v("x", ts(1, 1), "1")]);
        let h = History::new(vec![t1, t2]);
        assert_eq!(g1b(&h).len(), 1);
        // reading the final value is fine
        let t3 = txn(ts(3, 3), 3, 0, vec![read_v("x", ts(1, 1), "2")]);
        let h2 = History::new(vec![
            txn(ts(1, 1), 1, 0, vec![write("x", "1"), write("x", "2")]),
            t3,
        ]);
        assert!(g1b(&h2).is_empty());
    }

    #[test]
    fn g1c_detects_circular_information_flow() {
        // T1 reads T2's y; T2 reads T1's x — wr cycle.
        let t1 = txn(ts(1, 1), 1, 0, vec![write("x", "1"), read("y", ts(2, 2))]);
        let t2 = txn(ts(2, 2), 2, 0, vec![write("y", "1"), read("x", ts(1, 1))]);
        let h = History::new(vec![t1, t2]);
        let g = Dsg::build(&h);
        assert_eq!(g1c(&h, &g).len(), 1);
    }

    #[test]
    fn imp_detects_fuzzy_reads() {
        // Figure 7 of the paper: T3 reads x twice, seeing T1 then T2.
        let t1 = txn(ts(1, 1), 1, 0, vec![write("x", "1")]);
        let t2 = txn(ts(2, 2), 2, 0, vec![write("x", "2")]);
        let t3 = txn(
            ts(3, 3),
            3,
            0,
            vec![read("x", ts(1, 1)), read("x", ts(2, 2))],
        );
        let h = History::new(vec![t1, t2, t3]);
        assert_eq!(imp(&h).len(), 1);
        // consistent repeats are fine
        let t4 = txn(
            ts(4, 4),
            4,
            0,
            vec![read("x", ts(1, 1)), read("x", ts(1, 1))],
        );
        let h2 = History::new(vec![txn(ts(1, 1), 1, 0, vec![write("x", "1")]), t4]);
        assert!(imp(&h2).is_empty());
    }

    #[test]
    fn pmp_detects_phantoms() {
        let t1 = txn(
            ts(1, 1),
            1,
            0,
            vec![
                OpRecord::PredicateRead {
                    prefix: Key::from("p/"),
                    matches: vec![(Key::from("p/a"), ts(5, 5))],
                },
                OpRecord::PredicateRead {
                    prefix: Key::from("p/"),
                    matches: vec![(Key::from("p/a"), ts(5, 5)), (Key::from("p/b"), ts(6, 6))],
                },
            ],
        );
        let h = History::new(vec![t1]);
        assert_eq!(pmp(&h).len(), 1);
    }

    #[test]
    fn otv_matches_figure_9() {
        // Paper's Figure 9: T3 reads x from T2 then y from T1, but T2
        // also wrote y (T2's write to y "vanished").
        let t1 = txn(ts(1, 1), 1, 0, vec![write("x", "1"), write("y", "1")]);
        let t2 = txn(ts(2, 2), 2, 0, vec![write("x", "2"), write("y", "2")]);
        let t3 = txn(
            ts(3, 3),
            3,
            0,
            vec![read("x", ts(2, 2)), read("y", ts(1, 1))],
        );
        let h = History::new(vec![t1, t2, t3]);
        let v = otv(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].phenomenon, Phenomenon::Otv);
        // reading y from T2 as well is MAV-clean
        let t3ok = txn(
            ts(4, 4),
            4,
            0,
            vec![read("x", ts(2, 2)), read("y", ts(2, 2))],
        );
        let h2 = History::new(vec![
            txn(ts(1, 1), 1, 0, vec![write("x", "1"), write("y", "1")]),
            txn(ts(2, 2), 2, 0, vec![write("x", "2"), write("y", "2")]),
            t3ok,
        ]);
        assert!(otv(&h2).is_empty());
    }

    #[test]
    fn nmr_matches_figure_11() {
        // session reads x=2 then a later txn reads x=1 (older).
        let t1 = txn(ts(1, 1), 1, 0, vec![write("x", "1")]);
        let t2 = txn(ts(2, 2), 2, 0, vec![write("x", "2")]);
        let t3 = txn(ts(3, 9), 9, 0, vec![read("x", ts(2, 2))]);
        let t4 = txn(ts(4, 9), 9, 1, vec![read("x", ts(1, 1))]);
        let h = History::new(vec![t1, t2, t3, t4]);
        assert_eq!(non_monotonic_reads(&h).len(), 1);
    }

    #[test]
    fn myr_matches_figure_17() {
        // session writes x then reads the initial version.
        let t1 = txn(ts(5, 9), 9, 0, vec![write("x", "1")]);
        let t2 = txn(ts(6, 9), 9, 1, vec![read("x", Timestamp::INITIAL)]);
        let h = History::new(vec![t1, t2]);
        assert_eq!(missing_your_writes(&h).len(), 1);
        // reading own write is fine
        let h2 = History::new(vec![
            txn(ts(5, 9), 9, 0, vec![write("x", "1")]),
            txn(ts(6, 9), 9, 1, vec![read("x", ts(5, 9))]),
        ]);
        assert!(missing_your_writes(&h2).is_empty());
    }

    #[test]
    fn nmw_detects_out_of_order_installs() {
        // session writes x twice but the second write got a smaller stamp
        let t1 = txn(ts(9, 9), 9, 0, vec![write("x", "first")]);
        let t2 = txn(ts(3, 9), 9, 1, vec![write("x", "second")]);
        let h = History::new(vec![t1, t2]);
        assert_eq!(non_monotonic_writes(&h).len(), 1);
    }

    #[test]
    fn mrwd_matches_figure_15() {
        // T1 writes x; session S reads x then writes y (T2);
        // T3 reads y from T2 but x older than T1's version.
        let t1 = txn(ts(1, 1), 1, 0, vec![write("x", "1")]);
        let t2 = txn(ts(2, 2), 2, 0, vec![read("x", ts(1, 1)), write("y", "1")]);
        let t3 = txn(
            ts(3, 3),
            3,
            0,
            vec![read("y", ts(2, 2)), read("x", Timestamp::INITIAL)],
        );
        let h = History::new(vec![t1, t2, t3]);
        let v = mrwd(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].phenomenon, Phenomenon::Mrwd);
    }

    #[test]
    fn lost_update_detects_concurrent_increments() {
        // both read x@init and both wrote x.
        let t1 = txn(
            ts(1, 1),
            1,
            0,
            vec![read("x", Timestamp::INITIAL), write("x", "120")],
        );
        let t2 = txn(
            ts(1, 2),
            2,
            0,
            vec![read("x", Timestamp::INITIAL), write("x", "130")],
        );
        let h = History::new(vec![t1, t2]);
        let g = Dsg::build(&h);
        let v = lost_update(&h, &g);
        assert!(!v.is_empty(), "expected lost update");
        // serial increments are fine
        let s1 = txn(
            ts(1, 1),
            1,
            0,
            vec![read("x", Timestamp::INITIAL), write("x", "120")],
        );
        let s2 = txn(ts(2, 2), 2, 0, vec![read("x", ts(1, 1)), write("x", "150")]);
        let h2 = History::new(vec![s1, s2]);
        let g2 = Dsg::build(&h2);
        assert!(lost_update(&h2, &g2).is_empty());
    }

    #[test]
    fn write_skew_matches_section_521() {
        // T1: ry(0) wx(1); T2: rx(0) wy(1)
        let t1 = txn(
            ts(1, 1),
            1,
            0,
            vec![read("y", Timestamp::INITIAL), write("x", "1")],
        );
        let t2 = txn(
            ts(1, 2),
            2,
            0,
            vec![read("x", Timestamp::INITIAL), write("y", "1")],
        );
        let h = History::new(vec![t1, t2]);
        let g = Dsg::build(&h);
        let v = write_skew(&h, &g);
        assert!(!v.is_empty(), "expected write skew");
    }

    #[test]
    fn clean_serial_history_has_no_phenomena() {
        let t1 = txn(ts(1, 1), 1, 0, vec![write("x", "1"), write("y", "1")]);
        let t2 = txn(
            ts(2, 2),
            2,
            0,
            vec![
                read_v("x", ts(1, 1), "1"),
                read_v("y", ts(1, 1), "1"),
                write("x", "2"),
            ],
        );
        let t3 = txn(
            ts(3, 1),
            1,
            1,
            vec![read_v("x", ts(2, 2), "2"), read_v("y", ts(1, 1), "1")],
        );
        let h = History::new(vec![t1, t2, t3]);
        let g = Dsg::build(&h);
        assert!(g0(&h, &g).is_empty());
        assert!(g1a(&h).is_empty());
        assert!(g1b(&h).is_empty());
        assert!(g1c(&h, &g).is_empty());
        assert!(imp(&h).is_empty());
        assert!(otv(&h).is_empty());
        assert!(non_monotonic_reads(&h).is_empty());
        assert!(missing_your_writes(&h).is_empty());
        assert!(non_monotonic_writes(&h).is_empty());
        assert!(mrwd(&h).is_empty());
        assert!(lost_update(&h, &g).is_empty());
        assert!(write_skew(&h, &g).is_empty());
    }
}
